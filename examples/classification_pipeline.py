#!/usr/bin/env python
"""End-to-end image classification with *real* data processing.

Unlike the simulator-driven examples, this one exercises the actual
numpy kernels on a synthesized camera frame — the same algorithms the
paper catalogues in §II: YUV NV21 -> RGB, bilinear scale + center crop,
normalization (or quantization), then topK over model scores, exactly
as a TFLite Android app would.

Run:  python examples/classification_pipeline.py
"""

import time

import numpy as np

from repro.capture import synthesize_nv21
from repro.models import load_model, model_card
from repro.processing import (
    QuantParams,
    bilinear_resize,
    build_preprocessor,
    center_crop,
    dequantize_scores,
    normalize,
    top_k,
    yuv_nv21_to_argb,
)

LABELS = ["background"] + [f"class_{index:03d}" for index in range(1, 1001)]


def fake_model_scores(model_input, classes=1001, seed=7):
    """Stand-in for the accelerator: deterministic pseudo-logits."""
    rng = np.random.default_rng(seed + int(abs(float(model_input.sum()))) % 1000)
    scores = rng.dirichlet(np.ones(classes) * 0.1)
    return scores.astype(np.float32)


def timed(label, func, *args, **kwargs):
    start = time.perf_counter()
    result = func(*args, **kwargs)
    elapsed_ms = (time.perf_counter() - start) * 1000
    print(f"  {label:<28s} {elapsed_ms:8.2f} ms (host wall time)")
    return result


def main():
    card = model_card("mobilenet_v1")
    model = load_model("mobilenet_v1", "int8")
    print(f"Model: {model.summary()}")
    print(f"Pre-processing tasks (Table I): {', '.join(card.pre_tasks)}")
    print()

    # 1. "Data capture": a 640x480 NV21 frame off the simulated sensor.
    rng = np.random.default_rng(0)
    nv21 = synthesize_nv21(rng, 480, 640)
    print("Stage timings on this machine:")
    rgb = timed("bitmap_convert (YUV->RGB)", yuv_nv21_to_argb, nv21, 480, 640)

    # 2. Pre-processing: scale short side, center-crop, type-convert.
    scale = max(224 / rgb.shape[0], 224 / rgb.shape[1])
    inter = (
        max(224, round(rgb.shape[0] * scale)),
        max(224, round(rgb.shape[1] * scale)),
    )
    scaled = timed("scale (bilinear)", bilinear_resize, rgb, inter)
    cropped = timed("crop (center 224x224)", center_crop, scaled, (224, 224))
    model_input = timed("normalize", normalize, cropped)
    assert model_input.shape == (224, 224, 3)

    # 3. "Inference" (placeholder scores) + 4. post-processing.
    quant = QuantParams.from_range(0.0, 1.0)
    raw_scores = (fake_model_scores(model_input) / quant.scale).astype(np.uint8)
    scores = timed("dequantization", dequantize_scores, raw_scores, quant)
    top = timed("topK (k=5)", top_k, scores, 5, LABELS)

    print("\nTop-5 predictions:")
    for label, score in top:
        print(f"  {label:<12s} {score:.4f}")

    # 5. What the simulator charges for the same pipeline.
    plan = build_preprocessor(card, model, context="app", source_hw=(480, 640))
    print(
        f"\nSimulated cost of this pre-processing plan: "
        f"{plan.cost_us / 1000:.2f} ms "
        f"({' -> '.join(plan.step_names())})"
    )


if __name__ == "__main__":
    main()
