#!/usr/bin/env python
"""Profile a pipeline and export a Chrome trace (the Fig. 6 workflow).

Runs quantized EfficientNet-Lite0 under the three execution modes the
paper profiles with the Snapdragon Profiler, prints terminal utilization
strips per core, and writes Chrome trace-event JSON files you can open
at chrome://tracing or ui.perfetto.dev.

Run:  python examples/profile_trace.py [output_dir]
"""

import pathlib
import sys

from repro.apps import PipelineConfig
from repro.apps.harness import run_pipeline_with_rig
from repro.sim.export import write_chrome_trace
from repro.viz import profile_strips

TARGETS = ("cpu", "hexagon", "nnapi")


def main(output_dir="."):
    output = pathlib.Path(output_dir)
    for target in TARGETS:
        config = PipelineConfig(
            model_key="efficientnet_lite0", dtype="int8", context="cli",
            target=target, runs=6, trace=True,
        )
        _records, sim, soc, _kernel, _packaging = run_pipeline_with_rig(config)
        trace = sim.trace
        tracks = [core.name for core in soc.big_cores] + ["cdsp"]
        timelines = {
            track: trace.timeline(track, bucket_us=10_000.0)
            for track in tracks
        }
        print(f"-- {target} ({sim.now / 1000:.0f} ms simulated) --")
        print(profile_strips(timelines, order=tracks, width=60))
        print(
            f"   migrations={trace.counter_total('migration')} "
            f"ctx_switches={trace.counter_total('ctx_switch')} "
            f"axi={trace.counter_total('axi_bytes') / 1e6:.2f} MB"
        )
        path = output / f"trace_{target}.json"
        events = write_chrome_trace(trace, path, process_name=f"repro:{target}")
        print(f"   wrote {path} ({events} events)\n")
    print("Open the JSON files at chrome://tracing or ui.perfetto.dev")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
