#!/usr/bin/env python
"""Profile a pipeline and export a Chrome trace (the Fig. 6 workflow).

Runs quantized EfficientNet-Lite0 under the three execution modes the
paper profiles with the Snapdragon Profiler, prints terminal utilization
strips per core plus the observability layer's self-time rollup, and
writes Chrome trace-event JSON files you can open at chrome://tracing
or ui.perfetto.dev. The full trace-analysis workflow (what each track
and label means, how to read the AI tax off the timeline) is documented
in docs/tracing.md.

Run:  python examples/profile_trace.py [output_dir]
"""

import pathlib
import sys

from repro.observability import (
    record_trace,
    summarize_trace,
    write_chrome_trace,
)
from repro.viz import profile_strips

SCENARIOS = ("fig6-cpu", "fig6-hexagon", "fig6-nnapi")


def main(output_dir="."):
    output = pathlib.Path(output_dir)
    for scenario in SCENARIOS:
        session = record_trace(scenario)
        sim, soc, trace = session.sim, session.soc, session.sim.trace
        target = session.config.target
        tracks = [core.name for core in soc.big_cores] + ["cdsp"]
        timelines = {
            track: trace.timeline(track, bucket_us=10_000.0)
            for track in tracks
        }
        print(f"-- {target} ({sim.now / 1000:.0f} ms simulated) --")
        print(profile_strips(timelines, order=tracks, width=60))
        print(
            f"   migrations={trace.counter_total('migration')} "
            f"ctx_switches={trace.counter_total('ctx_switch')} "
            f"axi={trace.counter_total('axi_bytes') / 1e6:.2f} MB"
        )
        print(summarize_trace(trace, tracks=("pipeline",)).render(top=4))
        path = output / f"trace_{target}.json"
        events = write_chrome_trace(
            trace, path, process_name=f"repro:{target}"
        )
        print(f"   wrote {path} ({events} events)\n")
    print("Open the JSON files at chrome://tracing or ui.perfetto.dev")
    print("(docs/tracing.md walks through reading them)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
