#!/usr/bin/env python
"""Dashcam object detection: heavy post-processing in action (§IV-A).

"Dashcams, for instance, compute and visualize bounding boxes from a
model's output." This example runs the real detection post-processing
chain — anchor decode, NMS, IoU tracking across frames — on synthetic
moving objects, and then simulates the full SSD app pipeline to show
how post-processing weighs against inference.

Run:  python examples/dashcam_detection.py
"""

import numpy as np

from repro.apps import PipelineConfig, run_pipeline
from repro.core import breakdown
from repro.processing import decode_boxes, non_max_suppression
from repro.processing.tracking import IouTracker

FRAMES = 12
RNG = np.random.default_rng(7)


def synthetic_scene(frame_index):
    """Two cars and a pedestrian moving through the frame."""
    objects = [
        # (cy, cx, h, w) drifting right / left / crossing.
        (0.55, 0.15 + 0.05 * frame_index, 0.18, 0.25),
        (0.50, 0.90 - 0.04 * frame_index, 0.15, 0.22),
        (0.70, 0.40 + 0.02 * frame_index, 0.25, 0.10),
    ]
    return [obj for obj in objects if 0.0 < obj[1] < 1.0]


def fake_ssd_output(scene, anchors):
    """Encode the scene into anchor-relative SSD outputs with clutter."""
    count = anchors.shape[0]
    encodings = RNG.normal(0, 0.05, size=(count, 4)).astype(np.float32)
    scores = RNG.uniform(0.0, 0.25, size=count).astype(np.float32)
    for cy, cx, height, width in scene:
        # Plant each object on its nearest anchor.
        distance = np.abs(anchors[:, 0] - cy) + np.abs(anchors[:, 1] - cx)
        index = int(np.argmin(distance))
        anchor = anchors[index]
        encodings[index] = [
            10.0 * (cy - anchor[0]) / anchor[2],
            10.0 * (cx - anchor[1]) / anchor[3],
            5.0 * np.log(height / anchor[2]),
            5.0 * np.log(width / anchor[3]),
        ]
        scores[index] = RNG.uniform(0.75, 0.95)
    return encodings, scores


def main():
    # A small anchor grid (the real SSD head has 1917; the algorithms
    # are identical and the full count runs in the simulated pipeline).
    grid = np.linspace(0.1, 0.9, 12)
    anchors = np.array(
        [(cy, cx, 0.2, 0.2) for cy in grid for cx in grid],
        dtype=np.float32,
    )
    tracker = IouTracker(iou_threshold=0.3, max_misses=2)

    print(f"Tracking {FRAMES} frames of synthetic traffic:")
    for frame_index in range(FRAMES):
        scene = synthetic_scene(frame_index)
        encodings, scores = fake_ssd_output(scene, anchors)
        boxes = decode_boxes(encodings, anchors)
        keep = non_max_suppression(
            boxes, scores, iou_threshold=0.4, max_detections=8
        )
        keep = [index for index in keep if scores[index] > 0.5]
        tracks = tracker.update(boxes[keep], scores[keep])
        confirmed = [track for track in tracks if track.confirmed]
        labels = ", ".join(
            f"#{track.track_id}@({track.box[0]:.2f},{track.box[1]:.2f})"
            for track in confirmed
        )
        print(
            f"  frame {frame_index:2d}: {len(keep)} detections, "
            f"{len(confirmed)} confirmed tracks {labels}"
        )

    # The same workload through the simulated end-to-end app.
    config = PipelineConfig(
        model_key="ssd_mobilenet_v2", dtype="int8", context="app",
        target="nnapi", runs=15,
    )
    result = breakdown(run_pipeline(config))
    print(
        f"\nSimulated SSD app pipeline: inference {result.inference_ms:.1f} ms, "
        f"post-processing (decode+NMS+draw) {result.post_ms:.2f} ms, "
        f"capture+pre {result.capture_ms + result.pre_ms:.1f} ms"
    )
    print(f"AI tax: {result.tax_fraction:.0%} of end-to-end latency")


if __name__ == "__main__":
    main()
