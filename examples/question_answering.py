#!/usr/bin/env python
"""MobileBERT question answering — the non-vision pipeline of Table I.

Language processing swaps the image pipeline for tokenization
(pre-processing) and answer-logit computation (post-processing). This
example runs the *real* WordPiece tokenizer and span selection, and then
simulates the same pipeline end-to-end to report its AI tax.

Run:  python examples/question_answering.py
"""

import numpy as np

from repro.apps import PipelineConfig, run_pipeline
from repro.core import breakdown
from repro.models import load_model
from repro.processing import compute_logits, wordpiece_tokenize

CONTEXT = (
    "The benchmark ran on a mobile phone. The soc has a neural network "
    "accelerator and the machine learning model runs with low latency. "
    "The inference time was not the performance tax."
)
QUESTION = "what has a neural network accelerator"


def fake_span_logits(token_ids, seed=3):
    """Stand-in for MobileBERT inference: plausible start/end logits."""
    rng = np.random.default_rng(seed)
    length = int(np.count_nonzero(token_ids))
    start = rng.normal(0, 1, token_ids.size)
    end = rng.normal(0, 1, token_ids.size)
    # Plant an answer span inside the real tokens.
    anchor = max(2, length // 3)
    start[anchor] += 8.0
    end[anchor + 3] += 8.0
    return start, end


def main():
    model = load_model("mobile_bert")
    print(f"Model: {model.summary()}")

    # Real pre-processing: tokenize question + context.
    token_ids = wordpiece_tokenize(f"{QUESTION} {CONTEXT}", max_len=384)
    real_tokens = int(np.count_nonzero(token_ids))
    print(f"Tokenized to {real_tokens} WordPiece tokens (padded to 384)")

    # Real post-processing: span selection over (placeholder) logits.
    start_logits, end_logits = fake_span_logits(token_ids)
    spans = compute_logits(start_logits, end_logits, top_k=3)
    print("Best answer spans (start, end, score):")
    for span in spans:
        print(f"  tokens[{span[0]}:{span[1] + 1}]  score={span[2]:.2f}")

    # Simulated end-to-end pipeline for the same task.
    config = PipelineConfig(
        model_key="mobile_bert", dtype="fp32", context="app",
        target="cpu", runs=10,
    )
    result = breakdown(run_pipeline(config))
    print(
        f"\nSimulated app pipeline: tokenization {result.pre_ms:.2f} ms, "
        f"inference {result.inference_ms:.1f} ms, "
        f"logits {result.post_ms:.2f} ms -> AI tax {result.tax_fraction:.1%}"
    )


if __name__ == "__main__":
    main()
