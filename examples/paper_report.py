#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Prints each experiment's table; pass ``--fast`` for a quicker pass with
fewer iterations. This is the script behind EXPERIMENTS.md.

Run:  python examples/paper_report.py [--fast]
"""

import sys
import time

from repro.experiments import run_experiment

#: (experiment id, default kwargs, fast kwargs)
SCHEDULE = (
    ("table1", {}, {}),
    ("table2", {}, {}),
    ("fig3", {"runs": 10}, {"runs": 5}),
    ("fig4", {"runs": 10}, {"runs": 5}),
    ("fig5", {"runs": 10}, {"runs": 5}),
    ("fig6", {"runs": 8}, {"runs": 4}),
    ("fig7", {}, {}),
    ("fig8", {}, {"counts": (1, 5, 20, 100)}),
    ("fig9", {"runs": 10}, {"runs": 5}),
    ("fig10", {"runs": 10}, {"runs": 5}),
    ("fig11", {"runs": 200}, {"runs": 60}),
    ("ablation_snpe", {"runs": 8}, {"runs": 4}),
    ("ablation_probe", {"runs": 8}, {"runs": 4}),
    ("ablation_coupling", {}, {}),
    ("ablation_stdlib", {}, {}),
    ("energy", {}, {"invokes": 8}),
    ("preferences", {}, {"invokes": 4}),
    ("thermal", {}, {"invokes": 60}),
    ("soc_sweep", {}, {"runs": 5}),
    ("streaming", {}, {"runs": 10}),
    ("init_time", {}, {}),
    ("pipelining", {}, {"frames": 10}),
    ("ablation_fastcv", {}, {"runs": 6}),
    ("driver_versions", {}, {"invokes": 5}),
    ("mlperf_gap", {}, {"queries": 15, "runs": 8}),
    ("resolution_sweep", {}, {"runs": 5}),
    ("whatif", {}, {"runs": 6}),
    ("takeaways", {}, {"runs": 6}),
    ("arvr_multimodel", {}, {"frames": 6}),
    ("memory_footprint", {}, {}),
    ("model_scaling", {}, {"runs": 4}),
)


def main(argv):
    fast = "--fast" in argv
    total_start = time.perf_counter()
    for experiment_id, kwargs, fast_kwargs in SCHEDULE:
        chosen = fast_kwargs if fast and fast_kwargs else kwargs
        start = time.perf_counter()
        result = run_experiment(experiment_id, **chosen)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"(regenerated in {elapsed:.1f}s)\n")
    print(
        f"All {len(SCHEDULE)} experiments regenerated in "
        f"{time.perf_counter() - total_start:.1f}s"
    )


if __name__ == "__main__":
    main(sys.argv[1:])
