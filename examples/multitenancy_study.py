#!/usr/bin/env python
"""Multi-tenancy study: one DSP, many hungry models (paper Figs. 9/10).

Sweeps the number of background inference jobs and where they run, and
shows the two contention regimes: DSP queueing inflates the app's
inference latency; CPU contention inflates its capture/pre-processing.

Run:  python examples/multitenancy_study.py
"""

from repro.apps import PipelineConfig, run_pipeline
from repro.core import breakdown
from repro.core.report import render_table


def sweep(background_target, counts=(0, 1, 2, 3, 4), runs=10):
    rows = []
    for count in counts:
        config = PipelineConfig(
            model_key="mobilenet_v1",
            dtype="int8",
            context="app",
            target="nnapi",
            runs=runs,
            background=(count, background_target) if count else None,
            background_dtype="int8" if background_target == "nnapi" else "fp32",
            background_threads=4 if background_target == "cpu" else 1,
        )
        b = breakdown(run_pipeline(config))
        rows.append(
            (count, b.capture_ms, b.pre_ms, b.inference_ms, b.total_ms)
        )
    return rows


def main():
    headers = ("bg jobs", "capture ms", "pre ms", "inference ms", "total ms")
    print(render_table(
        headers, sweep("nnapi"),
        title="Background jobs on the DSP (Fig. 9): inference queues",
    ))
    print()
    print(render_table(
        headers, sweep("cpu"),
        title="Background jobs on the CPU (Fig. 10): capture/pre stretch",
    ))
    print(
        "\nTakeaway (paper §IV-C): looking at any single pipeline stage in\n"
        "isolation would mislead — the bottleneck moves with co-tenants."
    )


if __name__ == "__main__":
    main()
