#!/usr/bin/env python
"""Framework shootout: where should a model run?

For each quantized model that supports acceleration, compare the TFLite
Hexagon delegate, 4- and 1-thread CPU, NNAPI automatic assignment, and
vendor SNPE — and show NNAPI's partition plan, which explains *why*
some models degrade (paper §IV-B, Fig. 5).

Run:  python examples/framework_shootout.py
"""

from repro.android import Kernel
from repro.apps import make_session
from repro.core.report import render_table
from repro.frameworks import NnapiSession, UnsupportedModelError
from repro.models import load_model, model_card
from repro.sim import Simulator
from repro.soc import make_soc

MODELS = ("mobilenet_v1", "efficientnet_lite0", "ssd_mobilenet_v2", "inception_v3")
TARGETS = ("hexagon", "cpu", "cpu1", "nnapi", "snpe-dsp")


def measure(model_key, target, invokes=6, seed=0):
    sim = Simulator(seed=seed)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    model = load_model(model_key, "int8")
    session = make_session(kernel, model, target=target)
    durations = []

    def body():
        yield from session.prepare()
        for _ in range(invokes):
            duration = yield from session.invoke()
            durations.append(duration)

    thread = kernel.spawn_on_big(body(), name="shootout")
    sim.run(until=thread.done)
    warm = durations[1:]
    return sum(warm) / len(warm) / 1000.0, session


def main():
    rows = []
    plans = {}
    for model_key in MODELS:
        card = model_card(model_key)
        if not card.nnapi_int8 and not card.cpu_int8:
            continue
        row = [model_key]
        for target in TARGETS:
            try:
                mean_ms, session = measure(model_key, target)
            except UnsupportedModelError:
                row.append("n/a")
                continue
            row.append(mean_ms)
            if target == "nnapi":
                plans[model_key] = session
        rows.append(tuple(row))

    print(render_table(("Model (int8)",) + TARGETS, rows,
                       title="Warm inference latency (ms) per target"))
    print("\nNNAPI partition plans (why NNAPI wins or loses):")
    for model_key, session in plans.items():
        fraction = session.accelerated_fraction()
        fallback = " [REFERENCE-KERNEL FALLBACK]" if session.reference_fallback else ""
        print(f"  {model_key:<20s} {fraction:5.0%} accelerated{fallback}")
        plan = session.describe_plan()
        if len(plan) > 100:
            plan = plan[:97] + "..."
        print(f"    {plan}")


if __name__ == "__main__":
    main()
