#!/usr/bin/env python
"""Quickstart: measure the AI tax of one ML application.

Builds a simulated Pixel 3 (Snapdragon 845), runs a MobileNet v1
image-classification app for 30 camera frames through NNAPI, and prints
the per-stage latency breakdown — the paper's core measurement.

Run:  python examples/quickstart.py
"""

from repro.apps import PipelineConfig, run_pipeline
from repro.core import breakdown
from repro.core.report import render_breakdown
from repro.core.taxonomy import Taxonomy


def main():
    config = PipelineConfig(
        model_key="mobilenet_v1",
        dtype="int8",
        context="app",        # a real app: camera, managed runtime, UI
        target="nnapi",       # automatic device assignment
        runs=30,
        soc="sd845",
        seed=0,
    )
    records = run_pipeline(config)
    result = breakdown(records)

    print(Taxonomy.describe())
    print()
    print(render_breakdown(result))
    print()
    print(
        f"AI tax: {result.tax_ms:.1f} ms of {result.total_ms:.1f} ms "
        f"({result.tax_fraction:.0%} of end-to-end latency)"
    )
    print(
        "capture+pre vs inference: "
        f"{result.capture_plus_pre_over_inference:.2f}x"
    )


if __name__ == "__main__":
    main()
