#!/usr/bin/env python
"""Battery-life estimation from the energy meter.

The paper's opening claim — general-purpose processors are power-
inefficient for AI — has a user-visible consequence: how long a phone
battery survives a continuously-running ML feature. This example runs a
MobileNet classification workload at 30 fps under several placements,
meters the SoC energy, and converts it to hours on a typical battery.

Run:  python examples/battery_life.py
"""

from repro.android import Kernel
from repro.apps import make_session
from repro.core.report import render_table
from repro.models import load_model
from repro.sim import Simulator
from repro.soc import make_soc
from repro.soc.power import idle_floor_uj

#: Pixel-3-class battery: 2915 mAh at 3.85 V nominal.
BATTERY_WH = 2.915 * 3.85
#: Non-SoC system floor while the screen is on (display, radios), watts.
SYSTEM_FLOOR_W = 1.1
TARGET_FPS = 30.0


def measure_soc_power(target, dtype, frames=30, seed=0):
    """Average SoC power (W) for the inference workload at 30 fps."""
    sim = Simulator(seed=seed)
    soc = make_soc(sim, "sd845")
    kernel = Kernel(sim, soc)
    model = load_model("mobilenet_v1", dtype)
    session = make_session(kernel, model, target=target)
    frame_interval_us = 1e6 / TARGET_FPS

    def body():
        from repro.android.thread import Sleep

        yield from session.prepare()
        while kernel.now < frames * frame_interval_us:
            start = kernel.now
            yield from session.invoke()
            remaining = frame_interval_us - (kernel.now - start)
            if remaining > 0:
                yield Sleep(remaining)

    thread = kernel.spawn_on_big(body(), name="workload")
    snapshot = soc.energy.snapshot()
    start_us = sim.now
    sim.run(until=thread.done)
    window_us = sim.now - start_us
    active_uj = soc.energy.since(snapshot)["total_uj"]
    idle_uj = idle_floor_uj(len(soc.cores), window_us)
    return (active_uj + idle_uj) / window_us  # uJ/us == W


def main():
    rows = []
    for label, target, dtype in (
        ("cpu x4 [fp32]", "cpu", "fp32"),
        ("cpu x4 [int8]", "cpu", "int8"),
        ("gpu [fp16]", "gpu", "fp32"),
        ("hexagon [int8]", "hexagon", "int8"),
        ("snpe-dsp [int8]", "snpe-dsp", "int8"),
    ):
        soc_w = measure_soc_power(target, dtype)
        total_w = soc_w + SYSTEM_FLOOR_W
        hours = BATTERY_WH / total_w
        rows.append((label, soc_w, total_w, hours))
    print(
        render_table(
            ("placement", "SoC W", "system W", "battery hours"),
            rows,
            title=(
                "Continuous 30 fps MobileNet classification on a "
                "Pixel-3-class battery"
            ),
        )
    )
    best = max(rows, key=lambda row: row[3])
    worst = min(rows, key=lambda row: row[3])
    print(
        f"\nPlacement changes battery life {worst[3]:.1f}h -> {best[3]:.1f}h "
        f"({best[3] / worst[3]:.1f}x): the paper's §I motivation, in hours."
    )


if __name__ == "__main__":
    main()
