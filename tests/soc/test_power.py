"""Energy model tests."""

import pytest

from repro.android import Kernel
from repro.android.thread import Work
from repro.apps.sessions import make_session
from repro.models import load_model
from repro.sim import Simulator
from repro.soc import make_soc
from repro.soc.power import (
    BIG_CORE_BUSY_W,
    EnergyMeter,
    LITTLE_CORE_BUSY_W,
    idle_floor_uj,
)


def make_rig(seed=0, governor="performance"):
    sim = Simulator(seed=seed)
    soc = make_soc(sim, "sd845", governor_mode=governor)
    kernel = Kernel(sim, soc, enable_dvfs=(governor == "schedutil"))
    return sim, soc, kernel


def run_session(target, dtype, invokes=10, model_key="mobilenet_v1"):
    sim, soc, kernel = make_rig()
    model = load_model(model_key, dtype)
    session = make_session(kernel, model, target=target)
    durations = []

    def body():
        yield from session.prepare()
        for _ in range(invokes):
            duration = yield from session.invoke()
            durations.append(duration)

    thread = kernel.spawn_on_big(body(), name="driver")
    snapshot = soc.energy.snapshot()
    sim.run(until=thread.done)
    return soc.energy.since(snapshot), durations


def test_meter_accumulates_components():
    meter = EnergyMeter()
    sim = Simulator()
    soc = make_soc(sim, "sd845", governor_mode="performance")
    core = soc.big_cores[0]
    added = meter.add_cpu_slice(core, 1_000.0, label="x")
    assert added == pytest.approx(BIG_CORE_BUSY_W * 1_000.0)
    meter.add_gpu_busy(100.0)
    meter.add_dsp_busy(100.0)
    meter.add_dram_transfer(1_000_000)
    assert meter.total_uj == pytest.approx(
        added + 2.4 * 100 + 0.75 * 100 + 60.0
    )
    assert meter.by_label["x"] == pytest.approx(added)


def test_little_core_cheaper_than_big():
    meter = EnergyMeter()
    sim = Simulator()
    soc = make_soc(sim, "sd845", governor_mode="performance")
    big = meter.add_cpu_slice(soc.big_cores[0], 1_000.0)
    little = meter.add_cpu_slice(soc.little_cores[0], 1_000.0)
    assert little == pytest.approx(LITTLE_CORE_BUSY_W * 1_000.0)
    assert big > 4 * little


def test_downclocked_core_draws_cubic_power():
    meter = EnergyMeter()
    sim = Simulator()
    soc = make_soc(sim, "sd845", governor_mode="powersave")
    soc.big_cluster.governor.update(1.0)
    fraction = soc.big_cluster.governor.speed_fraction
    energy = meter.add_cpu_slice(soc.big_cores[0], 1_000.0)
    assert energy == pytest.approx(
        BIG_CORE_BUSY_W * fraction ** 3 * 1_000.0
    )
    assert energy < BIG_CORE_BUSY_W * 1_000.0 * 0.2


def test_snapshot_and_since():
    meter = EnergyMeter()
    meter.add_gpu_busy(10.0)
    snapshot = meter.snapshot()
    meter.add_gpu_busy(5.0)
    delta = meter.since(snapshot)
    assert delta["gpu_uj"] == pytest.approx(2.4 * 5.0)
    assert delta["cpu_uj"] == 0.0
    assert delta["total_uj"] == delta["gpu_uj"]


def test_idle_floor():
    assert idle_floor_uj(8, 1_000.0) == pytest.approx(0.015 * 8 * 1_000.0)


def test_cpu_work_is_metered_through_scheduler():
    sim, soc, kernel = make_rig()

    def body():
        yield Work(10_000, label="hot")

    worker = kernel.spawn_on_big(body(), name="worker")
    sim.run(until=worker.done)
    assert soc.energy.cpu_uj == pytest.approx(
        BIG_CORE_BUSY_W * 10_000.0, rel=0.05
    )
    assert "hot" in soc.energy.by_label


def test_dsp_inference_far_more_efficient_than_cpu():
    """Paper §I: general-purpose cores are energy-inefficient for AI."""
    dsp_energy, _ = run_session("hexagon", "int8")
    cpu_energy, _ = run_session("cpu", "int8")
    assert cpu_energy["total_uj"] > 8 * dsp_energy["total_uj"]
    assert dsp_energy["dsp_uj"] > 0.5 * dsp_energy["total_uj"]


def test_offload_moves_energy_between_components():
    dsp_energy, _ = run_session("hexagon", "int8", invokes=5)
    cpu_energy, _ = run_session("cpu", "int8", invokes=5)
    assert cpu_energy["dsp_uj"] == 0.0
    assert dsp_energy["cpu_uj"] < 0.1 * cpu_energy["cpu_uj"]
    assert dsp_energy["dram_uj"] > 0  # AXI transfers cost DRAM energy
