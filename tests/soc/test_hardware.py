"""SoC hardware model tests: catalog, devices, DVFS, memory, thermal."""

import pytest

from repro.models import conv2d, depthwise_conv2d, load_model
from repro.sim import Simulator, units
from repro.soc import SOC_SPECS, make_soc, soc_spec
from repro.soc.frequency import DvfsGovernor, OppTable


def test_catalog_matches_table2():
    assert set(SOC_SPECS) == {"sd835", "sd845", "sd855", "sd865"}
    pixel3 = soc_spec("sd845")
    assert pixel3.system == "Google Pixel 3"
    assert pixel3.gpu_name == "Adreno 630"
    assert pixel3.dsp_name == "Hexagon 685"
    assert pixel3.core_count == 8


def test_unknown_soc_raises():
    with pytest.raises(KeyError, match="unknown SoC"):
        soc_spec("sd999")


def test_soc_assembly():
    sim = Simulator()
    soc = make_soc(sim, "sd845")
    assert len(soc.cores) == 8
    assert len(soc.big_cores) == 4
    assert soc.big_cluster.perf_index > soc.little_cluster.perf_index
    assert soc.accelerator("gpu") is soc.gpu
    assert soc.accelerator("npu") is soc.dsp
    assert soc.core(0).name == "cpu0"


def test_generational_speedup_ordering():
    sim = Simulator()
    op = conv2d("c", (56, 56), 64, 64, 3)
    times = {
        key: make_soc(sim, key).dsp.op_time_us(op, "int8")
        for key in SOC_SPECS
    }
    assert times["sd835"] > times["sd845"] > times["sd855"] > times["sd865"]


def test_dsp_int8_much_faster_than_scalar_fp():
    sim = Simulator()
    soc = make_soc(sim, "sd845")
    op = conv2d("c", (56, 56), 64, 128, 3)
    assert soc.dsp.op_time_us(op, "fp32") > 20 * soc.dsp.op_time_us(op, "int8")
    assert soc.dsp.supports_dtype("int8")
    assert not soc.dsp.supports_dtype("fp32")


def test_depthwise_less_efficient_than_dense():
    sim = Simulator()
    soc = make_soc(sim, "sd845")
    dense = conv2d("dense", (28, 28), 128, 128, 3)
    depthwise = depthwise_conv2d("dw", (28, 28), 128, 3)
    # Per-FLOP cost must be higher for depthwise on both GPU and DSP.
    dense_rate = dense.flops / soc.gpu.op_time_us(dense, "fp32")
    dw_rate = depthwise.flops / soc.gpu.op_time_us(depthwise, "fp32")
    assert dense_rate > dw_rate


def test_gpu_fp16_speedup():
    sim = Simulator()
    soc = make_soc(sim, "sd845")
    op = conv2d("c", (56, 56), 64, 128, 3)
    assert soc.gpu.op_time_us(op, "fp16") < soc.gpu.op_time_us(op, "fp32")


def test_memory_costs_scale_linearly():
    sim = Simulator()
    soc = make_soc(sim, "sd845")
    small = soc.memory.axi_transfer_us(100_000)
    large = soc.memory.axi_transfer_us(1_000_000)
    assert large == pytest.approx(10 * small, rel=0.01)
    flush_small = soc.memory.cache_flush_us(100_000)
    flush_large = soc.memory.cache_flush_us(1_000_000)
    assert flush_large > flush_small
    assert soc.memory.axi_bytes_between(0, 1) == 1_100_000


def test_opp_table_validation_and_lookup():
    with pytest.raises(ValueError):
        OppTable(())
    with pytest.raises(ValueError):
        OppTable((2_000, 1_000))
    table = OppTable((500, 1_000, 2_000))
    assert table.for_capacity(0.0) == 500
    assert table.for_capacity(0.3) == 1_000
    assert table.for_capacity(1.0) == 2_000
    assert table.step_towards(500, 2_000) == 1_000
    assert table.step_towards(2_000, 500) == 1_000
    assert table.step_towards(1_000, 1_000) == 1_000


def test_governor_modes():
    table = OppTable((500, 1_000, 2_000))
    performance = DvfsGovernor(table, mode="performance")
    assert performance.update(0.0) == 2_000
    powersave = DvfsGovernor(table, mode="powersave")
    assert powersave.update(1.0) == 500
    schedutil = DvfsGovernor(table, mode="schedutil")
    for _ in range(5):
        schedutil.update(1.0)
    assert schedutil.current_khz == 2_000
    for _ in range(5):
        schedutil.update(0.0)
    assert schedutil.current_khz == 500
    with pytest.raises(ValueError):
        DvfsGovernor(table, mode="turbo")


def test_thermal_heats_under_load_and_throttles():
    sim = Simulator()
    soc = make_soc(sim, "sd845")
    thermal = soc.thermal
    assert thermal.temperature == pytest.approx(33.0)

    def run_hot():
        yield sim.timeout(units.seconds(60))

    sim.process(run_hot())
    sim.run()
    thermal.update(load_fraction=1.0)
    assert thermal.temperature > 70.0
    assert thermal.is_throttling
    assert soc.big_cluster.thermal_factor < 1.0


def test_thermal_cooldown_protocol():
    sim = Simulator()
    soc = make_soc(sim, "sd845")
    soc.thermal.temperature = 60.0
    soc.thermal._last_update = sim.now

    def cool():
        yield from soc.thermal.wait_until_cool()
        return soc.thermal.temperature

    final = sim.run(until=sim.process(cool()))
    assert final < 34.5
    assert sim.now > 0


def test_inception_cpu_anchor_plausible():
    """Inception v3 fp32 conv work ~ paper's 250 ms CPU benchmark."""
    from repro.soc import params

    graph = load_model("inception_v3")
    conv_flops = sum(op.flops for op in graph.ops if op.compute_class == "conv")
    # 4 big cores at ~12 GFLOP/s each, 80% parallel efficiency.
    seconds = conv_flops / (params.CPU_CONV_GFLOPS * 1e9 * 4 * 0.8)
    assert 0.15 < seconds < 0.5
