"""Memoized cost tables: bit-equality with the inline sums they replace."""

import pytest

from repro.frameworks.cpu_kernels import (
    IMPL_REFERENCE,
    IMPL_TUNED,
    graph_cpu_work_us,
    op_cpu_work_us,
)
from repro.models import load_model
from repro.sim import Simulator
from repro.soc import cost_tables
from repro.soc.catalog import make_soc


@pytest.fixture(autouse=True)
def fresh_tables():
    cost_tables.clear_cost_tables()
    yield
    cost_tables.clear_cost_tables()


def _soc():
    return make_soc(Simulator(seed=0), "sd855")


# -- bit-equality with the uncached fold --------------------------------


@pytest.mark.parametrize("dtype,impl", [
    ("fp32", IMPL_TUNED),
    ("fp16", IMPL_TUNED),
    ("int8", IMPL_TUNED),
    ("fp32", IMPL_REFERENCE),
    ("int8", IMPL_REFERENCE),
])
def test_cpu_total_bit_equal_to_inline_sum(dtype, impl):
    ops = load_model("mobilenet_v1", dtype).ops
    expected = sum(op_cpu_work_us(op, dtype, impl) for op in ops)
    assert graph_cpu_work_us(ops, dtype, impl) == expected
    # The cached read on the second call is the same float, not merely
    # a close one.
    assert graph_cpu_work_us(ops, dtype, impl) == expected


@pytest.mark.parametrize("dtype", ["fp32", "fp16", "int8"])
def test_gpu_total_bit_equal_to_inline_sum(dtype):
    soc = _soc()
    ops = load_model("inception_v3", dtype).ops
    expected = sum(soc.gpu.op_time_us(op, dtype) for op in ops)
    assert soc.gpu.graph_time_us(ops, dtype) == expected
    assert soc.gpu.graph_time_us(ops, dtype) == expected


@pytest.mark.parametrize("dtype", ["int8", "fp32"])
def test_dsp_total_bit_equal_to_inline_sum(dtype):
    soc = _soc()
    ops = load_model("mobilenet_v1", "int8").ops
    expected = sum(soc.dsp.op_time_us(op, dtype) for op in ops)
    assert soc.dsp.graph_time_us(ops, dtype) == expected


def test_per_op_column_matches_per_op_function():
    ops = load_model("mobilenet_v1", "int8").ops
    graph_cpu_work_us(ops, "int8", IMPL_TUNED)
    table = cost_tables.lookup_table(("cpu", "int8", IMPL_TUNED), ops)
    assert table is not None
    assert len(table) == len(ops)
    assert table.op_us == tuple(
        op_cpu_work_us(op, "int8", IMPL_TUNED) for op in ops
    )


# -- memoization keys ---------------------------------------------------


def test_same_ops_tuple_hits_by_identity():
    ops = load_model("mobilenet_v1", "fp32").ops
    graph_cpu_work_us(ops, "fp32")
    before = cost_tables.cost_table_stats()
    graph_cpu_work_us(ops, "fp32")
    after = cost_tables.cost_table_stats()
    assert after["hits"] == before["hits"] + 1
    assert after["misses"] == before["misses"]


def test_equal_content_tuple_dedupes_to_one_table():
    ops = load_model("mobilenet_v1", "fp32").ops
    clone = tuple(list(ops))  # equal content, distinct object
    assert clone is not ops
    graph_cpu_work_us(ops, "fp32")
    graph_cpu_work_us(clone, "fp32")
    stats = cost_tables.cost_table_stats()
    assert stats["tables"] == 1  # one value-level table...
    assert stats["aliases"] == 2  # ...aliased by both tuple identities


def test_id_entries_pin_the_exact_tuple_they_key():
    """Regression guard for id-recycling: every ``_by_id`` entry must
    hold the very object whose address it is keyed on, otherwise
    CPython may hand a dead tuple's id to a different graph and a
    lookup would return the wrong costs."""
    ops = load_model("mobilenet_v1", "fp32").ops
    graph_cpu_work_us(ops, "fp32")
    graph_cpu_work_us(tuple(list(ops)), "fp32")
    for (_config, oid), (pinned, _table) in cost_tables._by_id.items():
        assert id(pinned) == oid


def test_configs_do_not_alias():
    soc = _soc()
    ops = load_model("mobilenet_v1", "int8").ops
    cpu = graph_cpu_work_us(ops, "int8")
    cpu_ref = graph_cpu_work_us(ops, "int8", IMPL_REFERENCE)
    gpu = soc.gpu.graph_time_us(ops, "int8")
    dsp = soc.dsp.graph_time_us(ops, "int8")
    assert len({cpu, cpu_ref, gpu, dsp}) == 4


def test_different_device_scale_prices_differently():
    sim = Simulator(seed=0)
    slow, fast = make_soc(sim, "sd835"), make_soc(sim, "sd865")
    ops = load_model("mobilenet_v1", "int8").ops
    if slow.dsp.scale == fast.dsp.scale:
        pytest.skip("catalog gives both SoCs the same DSP scale")
    assert (
        slow.dsp.graph_time_us(ops, "int8")
        != fast.dsp.graph_time_us(ops, "int8")
    )


def test_list_ops_are_priced_but_not_cached():
    ops = list(load_model("mobilenet_v1", "fp32").ops)
    expected = sum(op_cpu_work_us(op, "fp32") for op in ops)
    assert graph_cpu_work_us(ops, "fp32") == expected
    stats = cost_tables.cost_table_stats()
    assert stats["tables"] == 0
    assert stats["aliases"] == 0


def test_clear_resets_everything():
    ops = load_model("mobilenet_v1", "fp32").ops
    graph_cpu_work_us(ops, "fp32")
    cost_tables.clear_cost_tables()
    assert cost_tables.cost_table_stats() == {
        "tables": 0, "aliases": 0, "hits": 0, "misses": 0,
    }
