"""Camera HAL and frame synthesis tests."""

import numpy as np
import pytest

from repro.android import Kernel
from repro.capture import CameraHal, FrameDescriptor, synthesize_nv21, synthesize_rgb
from repro.processing import yuv_nv21_to_argb
from repro.sim import Simulator
from repro.soc import make_soc


def make_rig(seed=0):
    sim = Simulator(seed=seed)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    return sim, kernel


def test_frames_arrive_at_frame_rate():
    sim, kernel = make_rig()
    camera = CameraHal(kernel, fps=30.0, jitter_fraction=0.0, isp_enabled=False)
    camera.start()
    timestamps = []

    def consumer():
        for _ in range(5):
            frame = yield from camera.capture()
            timestamps.append((frame.sequence, frame.timestamp_us))

    thread = kernel.spawn(consumer(), name="consumer")
    sim.run(until=thread.done)
    assert [seq for seq, _ts in timestamps] == [0, 1, 2, 3, 4]
    gaps = [b - a for (_, a), (_, b) in zip(timestamps, timestamps[1:])]
    for gap in gaps:
        assert gap == pytest.approx(1e6 / 30.0, rel=0.01)


def test_slow_consumer_drops_frames():
    sim, kernel = make_rig()
    camera = CameraHal(kernel, fps=30.0, buffer_count=2, jitter_fraction=0.0)
    camera.start()
    seen = []

    def slow_consumer():
        from repro.android.thread import Sleep

        for _ in range(3):
            frame = yield from camera.capture()
            seen.append(frame.sequence)
            yield Sleep(120_000)  # far slower than the camera

    thread = kernel.spawn(slow_consumer(), name="slow")
    sim.run(until=thread.done)
    assert camera.frames_dropped > 0
    # Sequences skip ahead because stale frames were recycled.
    assert seen[-1] > len(seen) - 1


def test_capture_before_start_raises():
    sim, kernel = make_rig()
    camera = CameraHal(kernel)

    def consumer():
        yield from camera.capture()

    with pytest.raises(RuntimeError, match="start"):
        kernel.spawn(consumer(), name="bad")
        sim.run()


def test_jitter_varies_intervals():
    sim, kernel = make_rig(seed=3)
    camera = CameraHal(kernel, fps=30.0, jitter_fraction=0.1)
    camera.start()
    sim.run(until=500_000)
    assert camera.frames_produced > 10


def test_bad_fps_rejected():
    sim, kernel = make_rig()
    with pytest.raises(ValueError):
        CameraHal(kernel, fps=0)


def test_frame_descriptor_bytes():
    frame = FrameDescriptor(0, 0.0, 480, 640)
    assert frame.nbytes == 480 * 640 * 3 // 2
    rgb = FrameDescriptor(0, 0.0, 480, 640, format="RGB")
    assert rgb.nbytes == 480 * 640 * 3
    with pytest.raises(ValueError):
        FrameDescriptor(0, 0.0, 4, 4, format="HEIC").nbytes


def test_synthesize_nv21_is_convertible():
    rng = np.random.default_rng(0)
    buffer = synthesize_nv21(rng, 48, 64)
    assert buffer.dtype == np.uint8
    assert buffer.size == 48 * 64 * 3 // 2
    rgb = yuv_nv21_to_argb(buffer, 48, 64)
    assert rgb.shape == (48, 64, 3)
    # A synthesized scene has nontrivial content.
    assert rgb.std() > 5


def test_synthesize_nv21_requires_even_dims():
    with pytest.raises(ValueError):
        synthesize_nv21(np.random.default_rng(0), 7, 8)


def test_synthesize_rgb_shape():
    frame = synthesize_rgb(np.random.default_rng(0), 10, 12)
    assert frame.shape == (10, 12, 3)
    assert frame.dtype == np.uint8
