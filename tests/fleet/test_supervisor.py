"""Crash-path tests for the fleet supervisor and run journal.

The toy tasks below stand in for session simulation: they are
module-level (picklable into pool workers) and communicate one-shot
crash/hang behaviour through flag files, so a victim misbehaves exactly
once and then completes — which is what lets the tests assert the
supervision contract: whatever the crash/kill/timeout interleaving,
the final results are bit-identical to an undisturbed run.
"""

import json
import os
import signal
import time

import pytest

from repro.fleet import (
    QUARANTINE_ERROR,
    RunJournal,
    Supervisor,
    run_fleet,
    run_key_for,
)
from repro.fleet.population import expand_population, paper_population
from repro.fleet.supervisor import JOURNAL_VERSION


def _ok_task(payload):
    return {"spec": dict(payload), "runs": [{"value": payload["x"] * 2}]}


def _kill_once_task(payload):
    """SIGKILL the worker on the victim's first execution only."""
    flag = payload.get("flag")
    if payload.get("victim") and flag and not os.path.exists(flag):
        with open(flag, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return _ok_task(payload)


def _hang_once_task(payload):
    """Wedge the worker on the victim's first execution only."""
    flag = payload.get("flag")
    if payload.get("victim") and flag and not os.path.exists(flag):
        with open(flag, "w"):
            pass
        time.sleep(3600)
    return _ok_task(payload)


def _always_kill_task(payload):
    if payload.get("victim"):
        os.kill(os.getpid(), signal.SIGKILL)
    return _ok_task(payload)


def _sim_error_task(payload):
    if payload.get("victim"):
        return {
            "spec": dict(payload), "runs": [],
            "error": {"type": "FaultInjected", "message": "deterministic"},
        }
    return _ok_task(payload)


def _items(count, victim=None, flag=None):
    return [
        (
            index,
            {
                "x": index,
                "victim": index == victim,
                "flag": str(flag) if flag is not None else None,
            },
        )
        for index in range(count)
    ]


def _expected(items):
    return {key: _ok_task(payload) for key, payload in items}


def test_sigkilled_worker_respawns_pool_and_results_are_identical(tmp_path):
    items = _items(6, victim=2, flag=tmp_path / "killed")
    supervisor = Supervisor(
        workers=2, task=_kill_once_task, backoff_base_s=0.01
    )
    results = supervisor.run(items)
    assert results == _expected(items)
    assert supervisor.stats.respawns >= 1
    assert supervisor.stats.crashes >= 1
    assert supervisor.stats.quarantined == 0
    # Every session produced exactly one final payload.
    assert supervisor.stats.completed == len(items)


def test_hung_session_is_killed_at_deadline_and_retried(tmp_path):
    items = _items(4, victim=1, flag=tmp_path / "hung")
    supervisor = Supervisor(
        workers=2, task=_hang_once_task,
        session_timeout_s=0.5, backoff_base_s=0.01,
    )
    start = time.monotonic()
    results = supervisor.run(items)
    assert results == _expected(items)
    # The deadline kill named its culprit: exactly one timeout strike,
    # and the innocents were never struck.
    assert supervisor.stats.timeouts == 1
    assert supervisor.stats.quarantined == 0
    assert supervisor.stats.respawns >= 1
    # The run did not wait out the hour-long hang.
    assert time.monotonic() - start < 30.0


def test_poisoned_spec_is_quarantined_with_structured_error(tmp_path):
    items = _items(3, victim=0)
    supervisor = Supervisor(
        workers=2, task=_always_kill_task,
        max_crashes=2, backoff_base_s=0.01,
    )
    results = supervisor.run(items)
    # The healthy sessions completed despite the poison pill.
    for key, payload in items[1:]:
        assert results[key] == _ok_task(payload)
    error = results[0]["error"]
    assert error["type"] == QUARANTINE_ERROR
    assert error["attempts"] == 2
    assert error["crashes"] == 2
    assert results[0]["runs"] == []
    assert supervisor.stats.quarantined == 1
    # Quarantine is a bound: 2 strikes, not an infinite respawn loop.
    assert supervisor.stats.crashes >= 2


def test_sim_errors_retry_individually_without_blocking_others():
    items = _items(5, victim=3)
    supervisor = Supervisor(
        workers=2, task=_sim_error_task, session_retries=2
    )
    results = supervisor.run(items)
    for key, payload in items:
        if key == 3:
            continue
        assert results[key] == _ok_task(payload)
    # retries=2 means three attempts total, recorded in the error.
    assert results[3]["error"]["attempts"] == 3
    assert supervisor.stats.sim_retries == 2
    # No host strikes for a deterministic simulation failure.
    assert supervisor.stats.crashes == 0
    assert supervisor.stats.timeouts == 0


def test_serial_and_pooled_results_are_identical(tmp_path):
    items = _items(6, victim=4, flag=tmp_path / "killed")
    serial = Supervisor(workers=1, task=_kill_once_task)
    # Serial runs in-process: the flag prevents the self-SIGKILL only
    # after the pooled run took it, so give the serial run its own.
    serial_items = _items(6)
    assert serial.run(serial_items) == _expected(serial_items)


# -- run journal --------------------------------------------------------


def test_run_journal_records_and_resumes(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunJournal(path, "key-a") as journal:
        journal.record("d1", {"spec": {"x": 1}, "runs": []})
        journal.record("d2", {"spec": {"x": 2}, "runs": []})
        journal.record("d1", {"spec": {"ignored": True}, "runs": []})
    with RunJournal(path, "key-a") as journal:
        assert set(journal.recorded) == {"d1", "d2"}
        # Idempotent: the duplicate record never overwrote the first.
        assert journal.recorded["d1"] == {"spec": {"x": 1}, "runs": []}


def test_run_journal_truncates_torn_tail(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunJournal(path, "key-a") as journal:
        journal.record("d1", {"spec": {"x": 1}, "runs": []})
    with open(path, "a") as handle:
        handle.write('{"digest": "d2", "payl')  # crash mid-append
    with RunJournal(path, "key-a") as journal:
        assert set(journal.recorded) == {"d1"}
        journal.record("d3", {"spec": {"x": 3}, "runs": []})
    lines = [
        json.loads(line)
        for line in path.read_text().splitlines()
    ]
    assert lines[0] == {"journal": JOURNAL_VERSION, "run_key": "key-a"}
    assert [line["digest"] for line in lines[1:]] == ["d1", "d3"]


def test_run_journal_discards_foreign_run(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunJournal(path, "key-a") as journal:
        journal.record("d1", {"spec": {"x": 1}, "runs": []})
    with RunJournal(path, "key-b") as journal:
        assert journal.recorded == {}


def test_run_key_covers_work_list_and_retry_bound():
    specs = expand_population(paper_population(), 4, seed=0)
    other = expand_population(paper_population(), 4, seed=1)
    assert run_key_for(specs) == run_key_for(specs)
    assert run_key_for(specs) != run_key_for(other)
    assert run_key_for(specs) != run_key_for(specs, session_retries=2)


def test_interrupted_fleet_resumes_from_journal_digest_identical(tmp_path):
    journal = tmp_path / "fleet.jsonl"
    kwargs = dict(sessions=6, workers=1, seed=0, runs=2)
    baseline = run_fleet(**kwargs)

    seen = []

    def interrupt(spec, payload):
        seen.append(spec.session_id)
        if len(seen) == 3:
            raise KeyboardInterrupt("operator ^C")

    with pytest.raises(KeyboardInterrupt):
        run_fleet(journal=journal, on_session=interrupt, **kwargs)

    resumed = run_fleet(journal=journal, **kwargs)
    # The resume re-simulated only the unfinished sessions ...
    assert resumed.journal_hits == 3
    assert resumed.simulated == 3
    # ... and assembled the exact result an undisturbed run produces.
    assert [result.to_dict() for result in resumed] == [
        result.to_dict() for result in baseline
    ]


def test_journal_also_resumes_failed_sessions(tmp_path):
    journal = tmp_path / "chaos.jsonl"
    from repro.fleet.population import chaos_population

    kwargs = dict(
        population=chaos_population(), sessions=12, workers=1, seed=5,
        runs=2, fault_rate=0.25, session_retries=1,
    )
    first = run_fleet(journal=journal, **kwargs)
    assert first.failures, "fixture must produce failed sessions"
    resumed = run_fleet(journal=journal, **kwargs)
    # Unlike the cache, the journal resumes failures too: within one
    # run's retry policy their structured errors are final.
    assert resumed.simulated == 0
    assert resumed.journal_hits == len(first.results)
    assert [result.to_dict() for result in resumed] == [
        result.to_dict() for result in first
    ]
