"""Population axes, expansion, session specs, and the result cache."""

import json

import numpy as np
import pytest

from repro.fleet import (
    Axis,
    ResultCache,
    SessionSpec,
    expand_population,
    paper_population,
    resolve_workload,
    simulate_session,
)
from repro.models import MODEL_CARDS


def test_axis_rejects_empty_and_nonpositive_weights():
    with pytest.raises(ValueError):
        Axis("empty", ())
    with pytest.raises(ValueError):
        Axis("bad", (("a", 0.0),))


def test_axis_sampling_follows_weights():
    axis = Axis("x", (("heavy", 9.0), ("light", 1.0)))
    rng = np.random.default_rng(0)
    draws = [axis.sample(rng) for _ in range(2000)]
    heavy = draws.count("heavy") / len(draws)
    assert 0.85 < heavy < 0.95


def test_expansion_is_deterministic_and_prefix_stable():
    population = paper_population()
    first = expand_population(population, 32, seed=5)
    second = expand_population(population, 32, seed=5)
    assert first == second
    longer = expand_population(population, 48, seed=5)
    assert longer[:32] == first
    other_seed = expand_population(population, 32, seed=6)
    assert other_seed != first


def test_expanded_sessions_have_distinct_independent_seeds():
    specs = expand_population(paper_population(), 64, seed=0)
    seeds = [spec.seed for spec in specs]
    assert len(set(seeds)) == len(seeds)
    assert [spec.session_id for spec in specs] == list(range(64))


def test_expansion_only_yields_supported_workloads():
    specs = expand_population(paper_population(), 128, seed=1)
    for spec in specs:
        card = MODEL_CARDS[spec.model_key]
        framework = "nnapi" if spec.target == "nnapi" else "cpu"
        assert card.supports(framework, spec.dtype)


def test_cli_sessions_follow_benchmark_protocol():
    """CLI benchmarks run isolated on a cooled device (paper §III-D)."""
    specs = expand_population(paper_population(), 128, seed=0)
    cli = [spec for spec in specs if spec.context == "cli"]
    assert cli, "expected some cli sessions in 128 draws"
    assert all(spec.background is None for spec in cli)
    assert all(spec.ambient_celsius == 33.0 for spec in cli)


def test_resolve_workload_downgrades_unsupported_combos():
    # NasNet has no int8 variant: dtype downgrades, target survives.
    assert resolve_workload("nasnet_mobile", "int8", "cpu") == ("fp32", "cpu")
    # AlexNet has no NNAPI path at all: falls back to the CPU target.
    dtype, target = resolve_workload("alexnet", "fp32", "nnapi")
    assert target == "cpu"
    # Fully supported combos pass through untouched.
    assert resolve_workload("mobilenet_v1", "int8", "nnapi") == (
        "int8", "nnapi"
    )


def test_spec_digest_stable_and_sensitive():
    spec = expand_population(paper_population(), 1, seed=0)[0]
    clone = SessionSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert clone == spec
    assert clone.digest() == spec.digest()
    bumped = SessionSpec.from_dict({**spec.to_dict(), "seed": spec.seed + 1})
    assert bumped.digest() != spec.digest()


def test_session_result_roundtrips_through_json():
    spec = expand_population(paper_population().with_runs(3), 1, seed=2)[0]
    result = simulate_session(spec)
    assert len(result.runs) == 3
    payload = json.loads(json.dumps(result.to_dict()))
    from repro.fleet import SessionResult

    rebuilt = SessionResult.from_dict(payload, from_cache=True)
    assert rebuilt.spec == spec
    assert rebuilt.runs == result.runs
    assert rebuilt.from_cache


def test_ambient_start_slows_throttled_sessions():
    """A session starting hot must not run faster than a cool one."""
    base = expand_population(paper_population().with_runs(4), 1, seed=0)[0]
    cool = SessionSpec.from_dict({
        **base.to_dict(), "context": "app", "target": "cpu",
        "background": None, "ambient_celsius": 33.0,
    })
    hot = SessionSpec.from_dict({
        **cool.to_dict(), "ambient_celsius": 80.0,
    })
    cool_total = sum(map(cool_run_total, simulate_session(cool).runs))
    hot_total = sum(map(cool_run_total, simulate_session(hot).runs))
    assert hot_total >= cool_total


def cool_run_total(run):
    from repro.fleet import SessionResult

    return SessionResult.total_us(run)


def test_cache_handles_missing_and_corrupt_entries(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get("ab" + "0" * 62) is None
    cache.put("ab" + "0" * 62, {"hello": 1})
    assert cache.get("ab" + "0" * 62) == {"hello": 1}
    assert len(cache) == 1
    # Corrupt the entry: it must read as a miss and be evicted.
    path = cache._path("ab" + "0" * 62)
    path.write_text("{not json")
    assert cache.get("ab" + "0" * 62) is None
    assert not path.exists()
