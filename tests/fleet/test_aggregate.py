"""Fleet aggregation: slices, percentiles, and the paper shapes."""

from repro.experiments import REGISTRY, run_experiment
from repro.fleet import aggregate_fleet, run_fleet


def test_aggregate_slices_cover_every_session():
    fleet = run_fleet(sessions=24, workers=1, seed=0, runs=4)
    aggregate = aggregate_fleet(fleet)
    assert aggregate.sessions == 24
    assert sum(s.sessions for s in aggregate.by_context.values()) == 24
    assert sum(s.sessions for s in aggregate.by_soc.values()) == 24
    assert sum(s.sessions for s in aggregate.by_model.values()) == 24
    # Cold start pools exactly one run per session; steady the rest.
    assert aggregate.cold.runs == 24
    assert aggregate.steady.runs == 24 * 3


def test_aggregate_percentiles_ordered():
    aggregate = aggregate_fleet(run_fleet(sessions=16, seed=1, runs=4))
    for stats in (
        aggregate.overall,
        *aggregate.by_context.values(),
        *aggregate.by_soc.values(),
        *aggregate.by_model.values(),
    ):
        assert stats.p50_ms <= stats.p90_ms <= stats.p99_ms
        assert stats.tail_ratio >= 1.0


def test_fleet_percentiles_experiment_registered():
    assert "fleet_percentiles" in REGISTRY


def test_fleet_percentiles_reproduces_paper_shapes():
    """Fig 11 + Takeaway 1 at population scale (the acceptance shapes)."""
    result = run_experiment("fleet_percentiles", sessions=64, seed=0)
    rows = result.row_map("slice")
    assert "fleet" in rows and "cold-start" in rows

    app_tail = result.series["app_tail_ratio"][0]
    benchmark_tail = result.series["benchmark_tail_ratio"][0]
    assert app_tail > benchmark_tail

    quantized = result.series["quantized_app_tax_fraction"][0]
    assert 0.35 <= quantized <= 0.80  # "reaching ~50%" of end-to-end time

    assert result.series["cold_start_penalty"][0] > 1.0


def test_experiment_render_includes_notes():
    result = run_experiment("fleet_percentiles", sessions=12, runs=3, seed=2)
    rendered = result.render()
    assert "Takeaway 1" in rendered
    assert "Fig 11" in rendered
    assert "simulated 12 sessions" in rendered
