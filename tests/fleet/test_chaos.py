"""Chaos fleets: partial results, structured errors, fault determinism."""

import json

import pytest

from repro.fleet import (
    aggregate_fleet,
    chaos_population,
    run_fleet,
)

#: A (seed, sessions) pair known to produce both failed vendor-runtime
#: sessions and degraded-but-complete NNAPI sessions at rate 0.25
#: (faults are deterministic, so this is stable by construction).
CHAOS_SEED = 5
CHAOS_SESSIONS = 12


def chaos_fleet(workers=1, cache_dir=None, rate=0.25, seed=CHAOS_SEED):
    return run_fleet(
        population=chaos_population(),
        sessions=CHAOS_SESSIONS,
        workers=workers,
        seed=seed,
        runs=4,
        fault_rate=rate,
        cache_dir=cache_dir,
    )


def _dicts(fleet):
    return [result.to_dict() for result in fleet]


def test_faulting_fleet_is_partial_with_structured_errors():
    fleet = chaos_fleet()
    assert len(fleet) == CHAOS_SESSIONS
    failures = fleet.failures
    ok = fleet.ok_results
    assert failures, "expected at least one dead vendor-runtime session"
    assert ok, "expected surviving sessions"
    assert len(failures) + len(ok) == CHAOS_SESSIONS
    for result in failures:
        assert result.runs == []
        assert result.error["type"] in (
            "FastRpcTimeout", "FastRpcSessionDeath"
        )
        assert "injected" in result.error["message"]
        assert result.error["attempts"] >= 1
        # Only the un-recovering vendor runtime dies.
        assert result.spec.target == "snpe-dsp"


def test_single_raising_session_does_not_kill_multiworker_fleet():
    fleet = chaos_fleet(workers=3)
    # The regression this guards: a raising worker used to propagate
    # through the bare pool.map and abort every other session.
    assert len(fleet) == CHAOS_SESSIONS
    assert fleet.failures and fleet.ok_results


def test_nnapi_sessions_degrade_instead_of_dying():
    fleet = chaos_fleet()
    nnapi = [r for r in fleet if r.spec.target == "nnapi"
             and r.spec.dtype == "int8"]
    assert all(r.ok for r in nnapi)
    assert any(r.degradation for r in fleet.ok_results)
    for result in fleet.ok_results:
        if result.degradation:
            summary = result.degradation
            assert set(summary) >= {
                "faults", "retries", "fallbacks", "degraded_invokes",
            }


def test_session_retries_are_bounded_and_recorded():
    fleet = run_fleet(
        population=chaos_population(), sessions=CHAOS_SESSIONS,
        seed=CHAOS_SEED, runs=4, fault_rate=0.25, session_retries=2,
    )
    for result in fleet.failures:
        # Deterministic faults fail on every attempt; all were burned.
        assert result.error["attempts"] == 3
    with pytest.raises(ValueError):
        run_fleet(sessions=2, session_retries=-1)


def test_failed_sessions_are_never_cached(tmp_path):
    cache_dir = tmp_path / "chaos-cache"
    first = chaos_fleet(cache_dir=str(cache_dir))
    failed = len(first.failures)
    assert failed > 0
    second = chaos_fleet(cache_dir=str(cache_dir))
    # Every completed session hits the cache; every failure re-simulates.
    assert second.cache_hits == CHAOS_SESSIONS - failed
    assert second.simulated == failed
    assert _dicts(first) == _dicts(second)


def test_fault_rate_changes_cache_key_but_zero_rate_matches_legacy(tmp_path):
    cache_dir = str(tmp_path / "cache")
    baseline = run_fleet(sessions=6, seed=0, runs=3, cache_dir=cache_dir)
    assert baseline.simulated == 6
    # A faulting sweep must not collide with the fault-free entries.
    chaotic = run_fleet(sessions=6, seed=0, runs=3, cache_dir=cache_dir,
                        fault_rate=0.2)
    assert chaotic.cache_hits == 0
    # Re-running fault-free hits all six original entries.
    again = run_fleet(sessions=6, seed=0, runs=3, cache_dir=cache_dir)
    assert again.cache_hits == 6


def test_chaos_fleet_percentiles_bit_identical_across_runs_and_workers():
    runs = [
        chaos_fleet(workers=1),
        chaos_fleet(workers=1),
        chaos_fleet(workers=3),
    ]
    rendered = [
        aggregate_fleet(fleet).to_experiment_result().render()
        for fleet in runs
    ]
    assert rendered[0] == rendered[1] == rendered[2]
    blobs = [json.dumps(_dicts(fleet), sort_keys=True) for fleet in runs]
    assert blobs[0] == blobs[1] == blobs[2]


def test_aggregate_excludes_failures_and_notes_them():
    fleet = chaos_fleet()
    aggregate = aggregate_fleet(fleet)
    assert aggregate.failed_sessions == len(fleet.failures)
    assert aggregate.sessions == len(fleet.ok_results)
    assert any("partial fleet" in note for note in aggregate.notes)


def test_all_failed_fleet_raises_with_diagnosis():
    from repro.fleet import FleetResult, SessionResult, SessionSpec

    spec = SessionSpec(
        session_id=0, soc="sd845", model_key="mobilenet_v1", dtype="int8",
        context="app", target="snpe-dsp", runs=4, seed=0,
        ambient_celsius=33.0, background=None, fault_rate=0.5,
    )
    dead = SessionResult(spec=spec, runs=[],
                         error={"type": "FastRpcTimeout", "message": "x"})
    fleet = FleetResult(seed=0, workers=1, results=[dead])
    with pytest.raises(ValueError, match="all 1 fleet sessions failed"):
        aggregate_fleet(fleet)


def test_chaos_trace_export_is_identical_across_reruns(tmp_path):
    """Same seed + same FaultPlan => byte-identical chrome-trace JSON."""
    from repro.observability import record_trace, write_chrome_trace

    paths = []
    for index in range(2):
        session = record_trace("chaos")
        path = tmp_path / f"chaos{index}.json"
        write_chrome_trace(session.sim.trace, str(path),
                           process_name="repro:chaos")
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()
    events = json.loads(paths[0].read_text())["traceEvents"]
    fault_marks = [e for e in events
                   if e["ph"] == "i" and e["name"].startswith("fault:")]
    assert fault_marks, "chaos scenario should inject faults"
