"""Cache-verification sanitizer hook: a cache hit must match a fresh
simulation's payload digest, or the fleet run fails loudly."""

import json

import pytest

from repro.fleet import (
    CacheDigestError,
    run_fleet,
    session_payload_digest,
    simulate_session_payload,
)
from repro.fleet.population import expand_population, paper_population


def _tamper_one_entry(cache_dir):
    entry = sorted(cache_dir.rglob("*.json"))[0]
    payload = json.loads(entry.read_text())
    payload["runs"].append({"tampered": True})
    entry.write_text(json.dumps(payload))


def test_verified_cache_hits_pass(tmp_path):
    cache_dir = tmp_path / "cache"
    first = run_fleet(
        sessions=3, workers=1, seed=7, runs=2, cache_dir=cache_dir
    )
    assert first.simulated == 3
    second = run_fleet(
        sessions=3, workers=1, seed=7, runs=2, cache_dir=cache_dir,
        verify_cache=True,
    )
    assert second.cache_hits == 3 and second.simulated == 0


def test_tampered_cache_entry_raises(tmp_path):
    cache_dir = tmp_path / "cache"
    run_fleet(sessions=3, workers=1, seed=7, runs=2, cache_dir=cache_dir)
    _tamper_one_entry(cache_dir)
    with pytest.raises(CacheDigestError, match="does not match"):
        run_fleet(
            sessions=3, workers=1, seed=7, runs=2, cache_dir=cache_dir,
            verify_cache=True,
        )


def test_tampered_entry_passes_silently_without_verification(tmp_path):
    # The hook is opt-in: without it, cache hits are trusted (that is
    # the whole point of the sanitizer mode existing).
    cache_dir = tmp_path / "cache"
    run_fleet(sessions=2, workers=1, seed=7, runs=2, cache_dir=cache_dir)
    _tamper_one_entry(cache_dir)
    result = run_fleet(
        sessions=2, workers=1, seed=7, runs=2, cache_dir=cache_dir,
        verify_cache=False,
    )
    assert result.cache_hits == 2


def test_env_var_enables_verification(tmp_path, monkeypatch):
    cache_dir = tmp_path / "cache"
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    run_fleet(sessions=2, workers=1, seed=3, runs=2, cache_dir=cache_dir)
    _tamper_one_entry(cache_dir)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    with pytest.raises(CacheDigestError):
        run_fleet(sessions=2, workers=1, seed=3, runs=2, cache_dir=cache_dir)


def test_session_payload_digest_is_canonical():
    spec = expand_population(paper_population().with_runs(2), 1, seed=0)[0]
    payload = simulate_session_payload(spec.to_dict())
    digest = session_payload_digest(payload)
    assert len(digest) == 64
    # Stable across a JSON round trip (what the cache does to payloads).
    assert session_payload_digest(json.loads(json.dumps(payload))) == digest
    # Sensitive to the simulated numbers.
    tampered = json.loads(json.dumps(payload))
    tampered["runs"].append({"tampered": True})
    assert session_payload_digest(tampered) != digest
