"""Fleet determinism: sharding and caching must not change results."""

from repro.fleet import aggregate_fleet, run_fleet


def _dicts(fleet):
    return [result.to_dict() for result in fleet]


def test_worker_count_does_not_change_results():
    """64 sessions, 1 vs 4 workers: bit-identical measurements."""
    serial = run_fleet(sessions=64, workers=1, seed=0, runs=4)
    parallel = run_fleet(sessions=64, workers=4, seed=0, runs=4)
    assert _dicts(serial) == _dicts(parallel)

    rendered_serial = aggregate_fleet(serial).to_experiment_result().render()
    rendered_parallel = (
        aggregate_fleet(parallel).to_experiment_result().render()
    )
    assert rendered_serial == rendered_parallel


def test_warm_cache_returns_identical_results_without_simulating(tmp_path):
    cache_dir = tmp_path / "fleet-cache"
    cold = run_fleet(sessions=64, workers=2, seed=0, runs=4,
                     cache_dir=str(cache_dir))
    assert cold.simulated == 64
    assert cold.cache_hits == 0

    warm = run_fleet(sessions=64, workers=2, seed=0, runs=4,
                     cache_dir=str(cache_dir))
    assert warm.simulated == 0
    assert warm.cache_hits == 64
    assert _dicts(cold) == _dicts(warm)
    assert all(result.from_cache for result in warm)

    rendered_cold = aggregate_fleet(cold).to_experiment_result().render()
    rendered_warm = aggregate_fleet(warm).to_experiment_result().render()
    assert rendered_cold == rendered_warm


def test_cached_results_match_uncached(tmp_path):
    cached = run_fleet(sessions=12, workers=1, seed=3, runs=3,
                       cache_dir=str(tmp_path / "cache"))
    plain = run_fleet(sessions=12, workers=1, seed=3, runs=3)
    assert _dicts(cached) == _dicts(plain)


def test_incremental_sweep_reuses_prefix_sessions(tmp_path):
    """Growing a fleet re-simulates only the new sessions."""
    cache_dir = str(tmp_path / "cache")
    small = run_fleet(sessions=8, workers=1, seed=0, runs=3,
                      cache_dir=cache_dir)
    assert small.simulated == 8
    grown = run_fleet(sessions=16, workers=1, seed=0, runs=3,
                      cache_dir=cache_dir)
    assert grown.cache_hits == 8
    assert grown.simulated == 8
    assert _dicts(grown)[:8] == _dicts(small)


def test_different_seeds_differ():
    one = run_fleet(sessions=8, workers=1, seed=0, runs=3)
    two = run_fleet(sessions=8, workers=1, seed=1, runs=3)
    assert _dicts(one) != _dicts(two)
