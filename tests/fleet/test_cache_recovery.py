"""ResultCache resilience: torn, empty, and vanishing entries."""

import json

from repro.fleet import ResultCache, run_fleet


PAYLOAD = {"spec": {"session_id": 0}, "runs": [{"capture_us": 1.0}]}


def make_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = "ab" + "0" * 62
    return cache, key


def test_torn_json_entry_is_a_miss_and_gets_removed(tmp_path):
    cache, key = make_cache(tmp_path)
    path = cache.put(key, PAYLOAD)
    # Simulate a crash mid-write that somehow bypassed the atomic
    # replace (e.g. a partial copy from another machine).
    path.write_text(json.dumps(PAYLOAD)[:17])
    assert cache.get(key) is None
    assert cache.misses == 1
    assert not path.exists(), "corrupt entry should be evicted"
    # The slot is rewritable and healthy afterwards.
    cache.put(key, PAYLOAD)
    assert cache.get(key) == PAYLOAD


def test_empty_file_entry_is_a_miss(tmp_path):
    cache, key = make_cache(tmp_path)
    path = cache.put(key, PAYLOAD)
    path.write_text("")
    assert cache.get(key) is None
    assert not path.exists()


def test_entry_deleted_between_get_and_put_is_harmless(tmp_path):
    cache, key = make_cache(tmp_path)
    cache.put(key, PAYLOAD)
    path = cache._path(key)
    # A concurrent cleaner removes the entry after this run decided the
    # key exists: get() must degrade to a miss, and put() must recreate
    # the sharded directory if that vanished too.
    path.unlink()
    assert cache.get(key) is None
    path.parent.rmdir()
    cache.put(key, PAYLOAD)
    assert cache.get(key) == PAYLOAD


def test_len_survives_foreign_files(tmp_path):
    cache, key = make_cache(tmp_path)
    cache.put(key, PAYLOAD)
    (cache.cache_dir / "ab" / "stray.tmp").write_text("partial")
    assert len(cache) == 1


def test_fleet_recovers_from_corrupted_cache_entries(tmp_path):
    cache_dir = tmp_path / "cache"
    first = run_fleet(sessions=6, seed=0, runs=3, cache_dir=str(cache_dir))
    assert first.simulated == 6
    # Corrupt two entries in place; the next run must re-simulate
    # exactly those two and still produce identical results.
    victims = sorted(cache_dir.glob("??/*.json"))[:2]
    victims[0].write_text("{not json")
    victims[1].write_text("")
    second = run_fleet(sessions=6, seed=0, runs=3, cache_dir=str(cache_dir))
    assert second.cache_hits == 4
    assert second.simulated == 2
    assert (
        [r.to_dict() for r in first] == [r.to_dict() for r in second]
    )
