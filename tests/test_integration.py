"""Cross-module integration tests.

These drive full pipelines across the support matrix and check
system-level invariants that no single-module test can see.
"""

import pytest

from repro.apps import PipelineConfig, run_pipeline
from repro.core import breakdown
from repro.experiments.base import ExperimentResult
from repro.models import MODEL_CARDS, load_model
from repro.soc import SOC_SPECS


@pytest.mark.parametrize("model_key", sorted(MODEL_CARDS))
def test_every_table1_model_runs_as_cpu_app(model_key):
    """Every Table-I model completes a full app pipeline on the CPU."""
    config = PipelineConfig(
        model_key=model_key, dtype="fp32", context="app",
        target="cpu", runs=3,
    )
    records = run_pipeline(config)
    assert len(records) == 3
    result = breakdown(records, drop_warmup=1)
    assert result.total_ms > 0
    assert result.inference_ms > 0
    assert 0.0 <= result.tax_fraction < 1.0


@pytest.mark.parametrize(
    "model_key",
    [k for k, card in MODEL_CARDS.items() if card.nnapi_fp32],
)
def test_nnapi_supported_models_run_via_nnapi(model_key):
    config = PipelineConfig(
        model_key=model_key, dtype="fp32", context="cli",
        target="nnapi", runs=2,
    )
    records = run_pipeline(config)
    assert records.mean_us("inference_us") > 0


@pytest.mark.parametrize("soc_key", sorted(SOC_SPECS))
def test_pipeline_runs_on_every_platform(soc_key):
    config = PipelineConfig(
        model_key="mobilenet_v1", dtype="int8", context="app",
        target="nnapi", runs=3, soc=soc_key,
    )
    records = run_pipeline(config)
    assert breakdown(records).total_ms > 0


def test_newer_socs_infer_faster():
    inference = []
    for soc_key in ("sd835", "sd845", "sd855", "sd865"):
        config = PipelineConfig(
            model_key="mobilenet_v1", dtype="int8", context="cli",
            target="nnapi", runs=4, soc=soc_key,
        )
        inference.append(
            breakdown(run_pipeline(config)).inference_ms
        )
    assert all(a > b for a, b in zip(inference, inference[1:]))


def test_stage_sum_equals_total():
    config = PipelineConfig(
        model_key="posenet", dtype="fp32", context="app",
        target="nnapi", runs=4,
    )
    records = run_pipeline(config)
    for run in records:
        parts = (
            run.capture_us + run.pre_us + run.inference_us
            + run.post_us + run.other_us
        )
        assert parts == pytest.approx(run.total_us)


def test_simulated_time_is_causal():
    """Per-run stage timings are non-negative in every configuration."""
    for context in ("cli", "bench_app", "app"):
        config = PipelineConfig(
            model_key="squeezenet", dtype="fp32", context=context,
            target="cpu", runs=3,
        )
        for run in run_pipeline(config):
            assert run.capture_us >= 0
            assert run.pre_us >= 0
            assert run.inference_us > 0
            assert run.post_us >= 0
            assert run.other_us >= 0


def test_quantized_faster_than_float_on_dsp_capable_path():
    latencies = {}
    for dtype in ("fp32", "int8"):
        config = PipelineConfig(
            model_key="mobilenet_v1", dtype=dtype, context="cli",
            target="nnapi", runs=4,
        )
        latencies[dtype] = breakdown(run_pipeline(config)).inference_ms
    # int8 goes to the DSP; fp32 to the GPU: the DSP path wins.
    assert latencies["int8"] < latencies["fp32"]


def test_experiment_result_column_and_rowmap_roundtrip():
    result = ExperimentResult(
        experiment_id="x",
        title="t",
        headers=("a", "b"),
        rows=[(1, "one"), (2, "two")],
    )
    assert result.column("b") == ["one", "two"]
    assert result.row_map("a")[2] == (2, "two")
    rendered = result.render()
    assert "[x] t" in rendered


def test_models_are_immutable_across_runs():
    """Shared cached graphs must not be mutated by pipeline runs."""
    graph = load_model("mobilenet_v1")
    flops_before = graph.total_flops
    config = PipelineConfig(
        model_key="mobilenet_v1", dtype="fp32", context="cli",
        target="cpu", runs=2,
    )
    run_pipeline(config)
    assert load_model("mobilenet_v1").total_flops == flops_before
