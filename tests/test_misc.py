"""Miscellaneous behaviour tests across small utility surfaces."""

import pytest

from repro.sim import Simulator, units
from repro.soc import make_soc


# -- units ---------------------------------------------------------------


def test_unit_conversions_roundtrip():
    assert units.ms(3.5) == 3_500.0
    assert units.seconds(2) == 2_000_000.0
    assert units.us(7) == 7.0
    assert units.to_ms(units.ms(12.0)) == 12.0
    assert units.to_seconds(units.seconds(0.5)) == 0.5


# -- report rendering edge cases ------------------------------------------


def test_render_table_empty_rows():
    from repro.core.report import render_table

    text = render_table(("col_a", "col_b"), [])
    lines = text.splitlines()
    assert len(lines) == 2
    assert "col_a" in lines[0]


def test_render_table_bool_formatting():
    from repro.core.report import render_table

    text = render_table(("x",), [(True,), (False,)])
    assert "Y" in text and "N" in text


# -- stdlib variants through the harness -----------------------------------


def test_libstdcpp_benchmark_cheap_int_capture():
    from repro.apps import PipelineConfig, run_pipeline
    from repro.core import breakdown

    captures = {}
    for stdlib in ("libc++", "libstdc++"):
        config = PipelineConfig(
            model_key="mobilenet_v1", dtype="int8", context="cli",
            target="cpu", runs=4, stdlib=stdlib,
        )
        captures[stdlib] = breakdown(run_pipeline(config)).capture_ms
    # int8 random generation: expensive under libc++, cheap under GNU.
    assert captures["libc++"] > 3 * captures["libstdc++"]


# -- soc odds and ends -------------------------------------------------------


def test_chip_accelerator_lookup_errors():
    sim = Simulator()
    soc = make_soc(sim, "sd845")
    with pytest.raises(KeyError):
        soc.accelerator("tpu")
    with pytest.raises(KeyError):
        soc.core(99)
    assert "Snapdragon 845" in repr(soc)


def test_opp_ceiling_for():
    from repro.soc.frequency import OppTable

    table = OppTable((300, 600, 900, 1_000))
    assert table.ceiling_for(0.85) == 600
    assert table.ceiling_for(1.0) == 1_000
    assert table.ceiling_for(0.1) == 300  # below min: floor at min


def test_dsp_map_unmap_cycle():
    sim = Simulator()
    soc = make_soc(sim, "sd845")
    assert soc.dsp.map_process(1) is True
    assert soc.dsp.map_process(1) is False  # already mapped
    soc.dsp.unmap_process(1)
    assert soc.dsp.map_process(1) is True


def test_gpu_rejects_nothing_it_claims():
    sim = Simulator()
    soc = make_soc(sim, "sd845")
    assert soc.gpu.supports_dtype("fp16")
    assert soc.gpu.supports_dtype("int8")
    assert not soc.dsp.supports_dtype("fp16")


# -- trace marks --------------------------------------------------------------


def test_trace_marks_recorded():
    sim = Simulator(trace=True)

    def body():
        yield sim.timeout(5)
        sim.trace.mark("checkpoint", reason="test")

    sim.process(body())
    sim.run()
    assert sim.trace.marks == [(5.0, "checkpoint", {"reason": "test"})]


# -- interpreter details -------------------------------------------------------


def test_nnapi_gpu_compile_charged_for_float_models():
    from repro.android import Kernel
    from repro.frameworks import NnapiSession
    from repro.models import load_model

    sim = Simulator()
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    session = NnapiSession(kernel, load_model("mobilenet_v1"))
    thread = kernel.spawn_on_big(session.prepare(), name="prep")
    sim.run(until=thread.done)
    # fp32 compilation includes the GPU shader build.
    assert session.stats.compile_us > soc.gpu.init_time_us * 0.9


def test_nnapi_boundary_bytes_reflect_dtype():
    from repro.android import Kernel
    from repro.frameworks import NnapiSession
    from repro.models import load_model

    sim = Simulator()
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    fp32 = NnapiSession(kernel, load_model("inception_v3"))
    int8 = NnapiSession(kernel, load_model("inception_v3", "int8"))
    partition = fp32.plan_partitions()[0]
    in_fp32, _ = fp32._boundary_bytes(partition)
    partition8 = int8.plan_partitions()[0]
    in_int8, _ = int8._boundary_bytes(partition8)
    assert in_fp32 == 4 * in_int8


def test_low_power_preference_uses_little_cores():
    from repro.android import Kernel
    from repro.frameworks import LOW_POWER, NnapiSession
    from repro.models import load_model

    sim = Simulator(trace=True)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    session = NnapiSession(
        kernel, load_model("inception_v3"), preference=LOW_POWER
    )

    def body():
        yield from session.prepare()
        yield from session.invoke()

    thread = kernel.spawn_on_big(body(), name="lowpower")
    sim.run(until=thread.done)
    little_tracks = [core.name for core in soc.little_cores]
    little_busy = sum(
        1
        for span in sim.trace.spans
        if span.track in little_tracks
        and "cpu_partition" in str(span.label)
    )
    assert little_busy > 0


def test_model_card_repr_fields():
    from repro.models import model_card

    card = model_card("posenet")
    assert card.resolution == "224x224"
    assert card.post_tasks_for("fp32") == ("calculate keypoints",)
