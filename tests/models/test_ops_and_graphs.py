"""Op factory and graph accounting tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    ModelGraph,
    TensorSpec,
    avgpool,
    concat,
    conv2d,
    depthwise_conv2d,
    fully_connected,
    matmul,
    maxpool,
    quantize_graph,
    softmax,
)


def test_conv2d_flops_formula():
    op = conv2d("c", (8, 8), 16, 32, kernel=3, stride=1)
    assert op.flops == 2 * 8 * 8 * 32 * 16 * 9
    assert op.params == 9 * 16 * 32 + 32
    assert op.output_shape == (8, 8, 32)


def test_conv2d_stride_halves_output():
    op = conv2d("c", (9, 9), 4, 4, kernel=3, stride=2)
    assert op.output_shape[:2] == (5, 5)  # ceil(9/2)


def test_conv2d_rectangular_kernel():
    op = conv2d("c", (8, 8), 16, 16, kernel=(1, 7))
    square = conv2d("c2", (8, 8), 16, 16, kernel=7)
    assert op.flops == square.flops / 7
    assert op.attrs["kernel"] == (1, 7)


def test_depthwise_much_cheaper_than_dense():
    dense = conv2d("d", (16, 16), 64, 64, 3)
    dw = depthwise_conv2d("dw", (16, 16), 64, 3)
    assert dense.flops == 64 * dw.flops
    assert dw.compute_class == "depthwise"


def test_fully_connected_and_matmul():
    fc = fully_connected("fc", 1024, 10)
    assert fc.flops == 2 * 1024 * 10
    assert fc.params == 1024 * 10 + 10
    mm = matmul("mm", 128, 512, 512, weights=False)
    assert mm.params == 0
    mm_w = matmul("mmw", 128, 512, 512)
    assert mm_w.params == 512 * 512 + 512


def test_pool_shapes():
    assert maxpool("p", (224, 224), 64, 3, 2).output_shape == (112, 112, 64)
    assert avgpool("g", (7, 7), 1280).output_shape == (1, 1, 1280)


def test_concat_adds_channels():
    op = concat("cat", [(8, 8, 16), (8, 8, 32)])
    assert op.output_shape == (8, 8, 48)


def test_negative_work_rejected():
    with pytest.raises(ValueError):
        softmax("s", -1)


def test_graph_requires_ops():
    with pytest.raises(ValueError, match="no ops"):
        ModelGraph("empty", "classification", TensorSpec((4, 4, 3)), ())


def test_graph_aggregates():
    ops = (
        conv2d("c", (8, 8), 3, 8, 3),
        fully_connected("fc", 512, 10),
    )
    graph = ModelGraph("tiny", "classification", TensorSpec((8, 8, 3)), ops)
    assert graph.total_flops == ops[0].flops + ops[1].flops
    assert graph.total_params == ops[0].params + ops[1].params
    assert graph.op_count == 2
    assert graph.weight_bytes == graph.total_params * 4
    assert "tiny" in graph.summary()


def test_quantize_graph_shrinks_weights():
    ops = (conv2d("c", (8, 8), 3, 8, 3),)
    graph = ModelGraph("tiny", "classification", TensorSpec((8, 8, 3)), ops)
    quantized = quantize_graph(graph)
    assert quantized.dtype == "int8"
    assert quantized.is_quantized
    assert quantized.weight_bytes == graph.weight_bytes // 4
    assert quantized.total_flops == graph.total_flops
    assert quantized.metadata["quantized_from"] == "tiny"
    with pytest.raises(ValueError, match="already quantized"):
        quantize_graph(quantized)


def test_tensor_spec_validation():
    with pytest.raises(ValueError):
        TensorSpec((0, 4), "fp32")
    with pytest.raises(ValueError):
        TensorSpec((4,), "complex128")
    spec = TensorSpec((2, 3), "int8")
    assert spec.numel == 6
    assert spec.nbytes == 6
    assert spec.with_dtype("fp32").nbytes == 24
    assert str(spec) == "int8[2x3]"


@settings(max_examples=30, deadline=None)
@given(
    hw=st.integers(4, 64),
    in_ch=st.integers(1, 64),
    out_ch=st.integers(1, 64),
    kernel=st.sampled_from([1, 3, 5, 7]),
    stride=st.sampled_from([1, 2]),
)
def test_conv_flops_positive_and_monotone_property(hw, in_ch, out_ch, kernel, stride):
    op = conv2d("c", (hw, hw), in_ch, out_ch, kernel, stride)
    assert op.flops > 0
    bigger = conv2d("c2", (hw, hw), in_ch, out_ch + 1, kernel, stride)
    assert bigger.flops > op.flops
    assert bigger.params > op.params


def test_peak_activation_and_footprint():
    ops = (
        conv2d("c", (8, 8), 3, 8, 3),
        fully_connected("fc", 512, 10),
    )
    graph = ModelGraph("tiny", "classification", TensorSpec((8, 8, 3)), ops)
    per_op = [
        (op.input_elems + op.output_elems) * 4 for op in ops
    ]
    assert graph.peak_activation_bytes == max(per_op)
    assert graph.memory_footprint_bytes == (
        graph.weight_bytes + graph.peak_activation_bytes
    )
    quantized = quantize_graph(graph)
    assert quantized.peak_activation_bytes == graph.peak_activation_bytes // 4
