"""Model zoo tests: Table-I fidelity and architecture sanity."""

import pytest

from repro.models import MODEL_CARDS, load_model, model_card

#: Canonical (MMACs, MParams) ballparks from the literature; the builders
#: should land within a loose factor of these.
CANONICAL = {
    "mobilenet_v1": (569, 4.2),
    "squeezenet": (837, 1.25),
    "efficientnet_lite0": (400, 4.6),
    "inception_v3": (5_700, 23.8),
    "inception_v4": (12_300, 42.7),
    "ssd_mobilenet_v2": (800, 4.3),
    "mobile_bert": (7_500, 25.0),
}


def test_table1_has_eleven_rows():
    assert len(MODEL_CARDS) == 11


def test_all_models_build_in_supported_dtypes():
    for key, card in MODEL_CARDS.items():
        fp32 = load_model(key, "fp32")
        assert fp32.op_count > 5
        assert fp32.total_flops > 0
        if card.cpu_int8 or card.nnapi_int8:
            int8 = load_model(key, "int8")
            assert int8.dtype == "int8"
            assert int8.total_flops == fp32.total_flops


def test_macs_and_params_near_canonical():
    for key, (mmacs, mparams) in CANONICAL.items():
        graph = load_model(key)
        measured_mmacs = graph.total_macs / 1e6
        measured_mparams = graph.total_params / 1e6
        assert mmacs / 2.0 < measured_mmacs < mmacs * 2.5, key
        assert mparams / 2.0 < measured_mparams < mparams * 2.0, key


def test_resolutions_match_table1():
    expectations = {
        "mobilenet_v1": 224,
        "nasnet_mobile": 331,
        "squeezenet": 227,
        "efficientnet_lite0": 224,
        "alexnet": 256,
        "inception_v4": 299,
        "inception_v3": 299,
        "deeplab_v3": 513,
        "ssd_mobilenet_v2": 300,
        "posenet": 224,
    }
    for key, resolution in expectations.items():
        graph = load_model(key)
        assert graph.input_spec.shape[0] == resolution, key


def test_support_matrix_matches_table1():
    card = model_card("alexnet")
    assert not card.supports("nnapi", "fp32")
    assert card.supports("cpu", "int8")
    card = model_card("nasnet_mobile")
    assert card.supports("nnapi", "fp32")
    assert not card.supports("nnapi", "int8")
    card = model_card("mobilenet_v1")
    assert all(
        card.supports(fw, dt)
        for fw in ("nnapi", "cpu")
        for dt in ("fp32", "int8")
    )
    with pytest.raises(ValueError):
        card.supports("coreml", "fp32")


def test_post_tasks_dequantization_only_for_int8():
    card = model_card("mobilenet_v1")
    assert "dequantization" in card.post_tasks_for("int8")
    assert "dequantization" not in card.post_tasks_for("fp32")
    assert "topK" in card.post_tasks_for("fp32")


def test_tasks_match_table1():
    tasks = {card.task for card in MODEL_CARDS.values()}
    assert tasks == {
        "classification",
        "face_recognition",
        "segmentation",
        "object_detection",
        "pose_estimation",
        "language_processing",
    }


def test_unknown_model_raises():
    with pytest.raises(KeyError, match="unknown model"):
        model_card("resnet50")
    with pytest.raises(KeyError):
        load_model("resnet50")
    with pytest.raises(ValueError):
        load_model("mobilenet_v1", "int4")


def test_load_model_caches():
    assert load_model("mobilenet_v1") is load_model("mobilenet_v1")


def test_nasnet_has_many_ops():
    """NASNet's cell structure yields a large op count (delegation stress)."""
    assert load_model("nasnet_mobile").op_count > 300


def test_posenet_heads_and_metadata():
    graph = load_model("posenet")
    heads = [op for op in graph.ops if op.name.startswith("head_")]
    assert len(heads) == 4
    assert graph.metadata["keypoints"] == 17
    grid = graph.metadata["heatmap_size"]
    assert grid[0] == 14  # 224 / 16


def test_deeplab_output_is_dense():
    graph = load_model("deeplab_v3")
    assert graph.ops[-1].kind == "RESIZE_BILINEAR"
    assert graph.ops[-1].output_shape[:2] == (513, 513)


def test_alexnet_params_dominated_by_fc():
    graph = load_model("alexnet")
    fc_params = sum(op.params for op in graph.ops if op.kind == "FULLY_CONNECTED")
    assert fc_params > 0.85 * graph.total_params


def test_mobilebert_attention_present():
    graph = load_model("mobile_bert")
    assert len(graph.ops_of_kind("ATTENTION")) == 24
    assert graph.input_spec.dtype == "int32"
