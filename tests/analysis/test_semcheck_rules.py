"""Fixture-driven coverage for every semcheck rule.

Each rule has a positive fixture (``<rule>_bad.py``) that must produce
*exactly* the expected finding, and a negative fixture (``<rule>_ok.py``)
that must stay clean — plus targeted tests for pragma sharing with the
determinism linter, the units-module exemption, declared call
signatures, the baseline workflow, and the CLI contract both checkers
share.
"""

import json
import pathlib

import pytest

from repro import cli
from repro.analysis import lint, semcheck
from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: Fixtures are resolved as simulation modules — *not* units.py, so the
#: magic-conversion exemption does not apply to them.
PLAIN_PATH = "repo/src/repro/sim/fixture.py"
UNITS_PATH = "repo/src/repro/sim/units.py"


def check_fixture(rule, flavor):
    name = rule.replace("-", "_") + f"_{flavor}.py"
    source = (FIXTURES / name).read_text()
    findings, errors = semcheck.semcheck_source(
        source, name, resolved_path=PLAIN_PATH
    )
    assert errors == []
    return findings


@pytest.mark.parametrize("rule", sorted(semcheck.RULES_BY_ID))
def test_bad_fixture_produces_exactly_the_expected_finding(rule):
    findings = check_fixture(rule, "bad")
    assert [finding.rule for finding in findings] == [rule]


@pytest.mark.parametrize("rule", sorted(semcheck.RULES_BY_ID))
def test_ok_fixture_is_clean(rule):
    assert check_fixture(rule, "ok") == []


@pytest.mark.parametrize("rule", sorted(semcheck.RULES_BY_ID))
def test_every_rule_has_a_fix_it_hint(rule):
    findings = check_fixture(rule, "bad")
    rendered = "\n".join(semcheck.render_findings(findings))
    assert "fix:" in rendered
    assert semcheck.RULES_BY_ID[rule].hint in rendered


def test_every_rule_has_both_fixtures():
    for rule in semcheck.RULES_BY_ID:
        stem = rule.replace("-", "_")
        assert (FIXTURES / f"{stem}_bad.py").exists()
        assert (FIXTURES / f"{stem}_ok.py").exists()


def test_rule_ids_do_not_collide_with_the_linter():
    assert not set(semcheck.RULES_BY_ID) & set(lint.RULES_BY_ID)


# -- units pass specifics ------------------------------------------------


def test_magic_conversion_exempt_inside_units_module():
    source = "def to_ms(value_us):\n    return value_us / 1000.0\n"
    findings, errors = semcheck.semcheck_source(
        source, "units.py", resolved_path=UNITS_PATH
    )
    assert findings == [] and errors == []


def test_cross_unit_comparison_is_flagged():
    source = (
        "def late(total_us, budget_ms):\n"
        "    return total_us > budget_ms\n"
    )
    findings, _errors = semcheck.semcheck_source(source, "x.py")
    assert [finding.rule for finding in findings] == ["unit-mismatch"]


def test_unit_propagates_through_assignment():
    source = (
        "def f(total_us):\n"
        "    elapsed = total_us\n"
        "    copy = elapsed\n"
        "    return copy + f_ms()\n"
        "def f_ms():\n"
        "    return 1.0\n"
    )
    findings, _errors = semcheck.semcheck_source(source, "x.py")
    assert [finding.rule for finding in findings] == ["unit-mismatch"]


def test_converter_misuse_is_flagged():
    # to_ms converts *from* microseconds; feeding it milliseconds is a
    # double conversion.
    source = (
        "from repro.sim import units\n"
        "def f(frame_ms):\n"
        "    return units.to_ms(frame_ms)\n"
    )
    findings, _errors = semcheck.semcheck_source(source, "x.py")
    assert [finding.rule for finding in findings] == ["unit-arg-mismatch"]


@pytest.mark.parametrize("call", [
    "Sleep(duration_ms)",
    "Work(duration_ms)",
    "sim.schedule_callback(duration_ms, callback)",
])
def test_declared_microsecond_contracts_are_enforced(call):
    source = (
        f"def f(sim, duration_ms, callback):\n"
        f"    return {call}\n"
    )
    findings, _errors = semcheck.semcheck_source(source, "x.py")
    assert [finding.rule for finding in findings] == ["unit-arg-mismatch"]


def test_same_module_suffixed_parameters_are_enforced():
    source = (
        "def wait(delay_us):\n"
        "    return delay_us\n"
        "def f(poll_ms):\n"
        "    return wait(poll_ms)\n"
    )
    findings, _errors = semcheck.semcheck_source(source, "x.py")
    assert [finding.rule for finding in findings] == ["unit-arg-mismatch"]


def test_unknown_units_never_flag():
    source = (
        "def f(total_us, budget):\n"
        "    return total_us + budget\n"
    )
    findings, _errors = semcheck.semcheck_source(source, "x.py")
    assert findings == []


# -- protocol pass specifics ---------------------------------------------


def test_leak_on_exception_path_is_flagged():
    # The release is only on the fall-through path; a raise in between
    # leaks the grant.
    source = (
        "def worker(resource, compute, limit):\n"
        "    request = resource.request()\n"
        "    yield request\n"
        "    request.release()\n"
        "    request = resource.request()\n"
        "    if limit:\n"
        "        raise RuntimeError('abort')\n"
        "    request.release()\n"
        "    yield compute\n"
    )
    findings, _errors = semcheck.semcheck_source(source, "x.py")
    assert "resource-leak" in {finding.rule for finding in findings}


def test_discarded_request_is_a_leak():
    source = (
        "def worker(resource, sim):\n"
        "    resource.request()\n"
        "    yield sim.timeout(1.0)\n"
    )
    findings, _errors = semcheck.semcheck_source(source, "x.py")
    assert [finding.rule for finding in findings] == ["resource-leak"]


def test_broad_except_handler_counts_as_protection():
    source = (
        "def worker(resource, compute):\n"
        "    request = resource.request()\n"
        "    try:\n"
        "        yield request\n"
        "        yield compute\n"
        "        request.release()\n"
        "    except Exception:\n"
        "        request.release()\n"
        "        raise\n"
    )
    findings, _errors = semcheck.semcheck_source(source, "x.py")
    assert findings == []


def test_non_generator_functions_are_not_protocol_checked():
    source = (
        "def helper(resource):\n"
        "    return resource.request()\n"
    )
    findings, _errors = semcheck.semcheck_source(source, "x.py")
    assert findings == []


def test_plain_generators_are_not_event_checked():
    # A data generator that never touches the simulation DSL may yield
    # whatever it wants.
    source = (
        "def squares(n):\n"
        "    for i in range(n):\n"
        "        yield i * i\n"
    )
    findings, _errors = semcheck.semcheck_source(source, "x.py")
    assert findings == []


# -- pragma sharing ------------------------------------------------------


def test_pragma_suppresses_semcheck_rule():
    source = (
        "def f(compute_us, display_ms):\n"
        "    return compute_us + display_ms  # repro: allow[unit-mismatch]\n"
    )
    findings, errors = semcheck.semcheck_source(source, "x.py")
    assert findings == [] and errors == []


def test_linter_rule_in_pragma_is_valid_but_inert_for_semcheck():
    # wall-clock belongs to the determinism linter: naming it is not a
    # typo, but it suppresses nothing here.
    source = (
        "def f(compute_us, display_ms):\n"
        "    return compute_us + display_ms  # repro: allow[wall-clock]\n"
    )
    findings, errors = semcheck.semcheck_source(source, "x.py")
    assert errors == []
    assert [finding.rule for finding in findings] == ["unit-mismatch"]


def test_semcheck_rule_in_pragma_is_valid_but_inert_for_linter():
    source = "import time\nT0 = time.time()  # repro: allow[unit-mismatch]\n"
    findings, errors = lint.lint_source(source, "x.py")
    assert errors == []
    assert [finding.rule for finding in findings] == ["wall-clock"]


def test_unknown_rule_in_pragma_is_a_hard_error():
    source = "X = 1  # repro: allow[unit-mismtach]\n"
    findings, errors = semcheck.semcheck_source(source, "x.py")
    assert findings == []
    assert len(errors) == 1 and "unit-mismtach" in errors[0].message


# -- baseline workflow ---------------------------------------------------


def test_baseline_round_trip_with_semcheck_rules(tmp_path):
    findings = check_fixture("resource-leak", "bad")
    path = tmp_path / "baseline.json"
    count = write_baseline(path, findings)
    assert count == len(findings) > 0
    entries, errors = load_baseline(path, known_rules=semcheck.RULES_BY_ID)
    assert errors == []
    new, stale = apply_baseline(findings, entries)
    assert new == [] and stale == []


def test_semcheck_rule_is_unknown_to_the_lint_baseline(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "entries": [{"rule": "resource-leak", "path": "x.py", "line": 1}],
    }))
    entries, errors = load_baseline(path)  # lint's rule set by default
    assert entries == []
    assert len(errors) == 1 and "resource-leak" in errors[0].message


# -- CLI contract --------------------------------------------------------


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(total_us):\n    return total_us / 1000.0\n")
    baseline = tmp_path / "baseline.json"

    assert cli.main(["semcheck", str(bad)]) == 1
    assert "[magic-conversion]" in capsys.readouterr().out

    assert cli.main(
        ["semcheck", str(bad), "--baseline", str(baseline),
         "--write-baseline"]
    ) == 0
    assert cli.main(
        ["semcheck", str(bad), "--baseline", str(baseline), "--check"]
    ) == 0

    bad.write_text("X = 1\n")
    capsys.readouterr()
    assert cli.main(
        ["semcheck", str(bad), "--baseline", str(baseline), "--check"]
    ) == 2


def test_cli_json_format_is_shared_between_checkers(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import time\n"
        "T0 = time.time()\n"
        "def f(total_us):\n"
        "    return total_us / 1000.0\n"
    )
    assert cli.main(["semcheck", str(bad), "--format=json"]) == 1
    semcheck_payload = json.loads(capsys.readouterr().out)
    assert cli.main(["lint", str(bad), "--format=json"]) == 1
    lint_payload = json.loads(capsys.readouterr().out)
    assert semcheck_payload[0]["rule"] == "magic-conversion"
    assert lint_payload[0]["rule"] == "wall-clock"
    # Identical schema: same keys in both checkers' findings.
    assert set(semcheck_payload[0]) == set(lint_payload[0]) == {
        "rule", "path", "line", "col", "message"
    }


def test_cli_legacy_json_flag_still_works(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nT0 = time.time()\n")
    assert cli.main(["lint", str(bad), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "wall-clock"
