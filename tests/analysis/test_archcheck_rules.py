"""Fixture-driven coverage for every archcheck rule family.

archcheck is a whole-program analysis, so its fixtures are miniature
package trees written to ``tmp_path`` and checked against a miniature
contract — one positive and at least one negative fixture per rule,
plus the pragma/baseline/CLI contract the checker family shares.
"""

import json
import pathlib
import textwrap

import pytest

from repro import cli
from repro.analysis import archcheck

CONTRACT = """
[layers]
order = ["base", "mid", "top"]

[layers.modules]
base = ["pkg.base"]
mid = ["pkg.mid"]
top = ["pkg.top"]

[surfaces]
packages = ["pkg.base"]
sanctioned = ["pkg.base.units"]

[workers]
entrypoints = ["pkg.mid.worker.entry"]

[artifacts]
modules = ["*/top/export.py"]

[blocking]
process_layers = ["base", "mid"]
allow = ["*/mid/calibrate.py"]
"""


def run_program(tmp_path, files, contract=CONTRACT):
    """Write a mini package tree + contract, run archcheck over it."""
    contract_path = tmp_path / "arch.toml"
    contract_path.write_text(contract)
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    for directory in [root, *(p for p in root.rglob("*") if p.is_dir())]:
        marker = directory / "__init__.py"
        if not marker.exists():
            marker.write_text("")
    return archcheck.archcheck_paths([root], contract_path=contract_path)


def rules_of(findings):
    return [finding.rule for finding in findings]


# -- layering contracts --------------------------------------------------


def test_upward_import_is_a_layer_violation(tmp_path):
    findings, errors = run_program(tmp_path, {
        "mid/helper.py": "def helper():\n    return 1\n",
        "base/core.py": "from pkg.mid import helper\n",
    })
    assert errors == []
    assert rules_of(findings) == ["layer-violation"]
    assert "imports up the layer order" in findings[0].message


def test_downward_import_is_clean(tmp_path):
    findings, errors = run_program(tmp_path, {
        "base/core.py": "def api():\n    return 1\n",
        "mid/consumer.py": "from pkg.base import api\n",
    })
    assert errors == []
    assert findings == []


def test_explicitly_forbidden_edge_is_flagged(tmp_path):
    contract = CONTRACT + "\n[layers.forbidden]\nedges = [['top', 'mid']]\n"
    # TOML wants double quotes; the subset parser and tomllib both
    # accept them — rewrite for strictness.
    contract = contract.replace("'", '"')
    findings, errors = run_program(tmp_path, {
        "mid/helper.py": "def helper():\n    return 1\n",
        "top/report.py": "from pkg.mid import helper\n",
    }, contract=contract)
    assert errors == []
    assert rules_of(findings) == ["layer-violation"]
    assert "explicitly forbidden edge" in findings[0].message


def test_module_outside_the_contract_is_skipped_by_layer_rules(tmp_path):
    findings, errors = run_program(tmp_path, {
        "other/misc.py": "from pkg.mid import helper\n",
        "mid/helper.py": "def helper():\n    return 1\n",
    })
    assert errors == []
    assert findings == []


# -- surface packages ----------------------------------------------------


def test_deep_import_of_surface_package_internals(tmp_path):
    findings, errors = run_program(tmp_path, {
        "base/engine.py": "class Engine:\n    pass\n",
        "mid/consumer.py": "from pkg.base.engine import Engine\n",
    })
    assert errors == []
    assert rules_of(findings) == ["deep-import"]
    assert "pkg.base.engine" in findings[0].message


def test_sanctioned_submodule_import_is_clean(tmp_path):
    findings, errors = run_program(tmp_path, {
        "base/units.py": "def to_ms(value_us):\n    return value_us\n",
        "mid/consumer.py": "from pkg.base.units import to_ms\n",
    })
    assert errors == []
    assert findings == []


def test_intra_package_deep_import_is_clean(tmp_path):
    findings, errors = run_program(tmp_path, {
        "base/engine.py": "class Engine:\n    pass\n",
        "base/other.py": "from pkg.base.engine import Engine\n",
    })
    assert errors == []
    assert findings == []


# -- cross-process safety ------------------------------------------------


def test_lambda_submitted_to_pool_is_flagged(tmp_path):
    findings, errors = run_program(tmp_path, {
        "mid/jobs.py": """\
            def run(pool):
                return pool.submit(lambda: 1)
            """,
    })
    assert errors == []
    assert rules_of(findings) == ["worker-capture"]
    assert "cannot pickle" in findings[0].message


def test_nested_function_submitted_to_executor_is_flagged(tmp_path):
    findings, errors = run_program(tmp_path, {
        "mid/jobs.py": """\
            def run(executor, payload):
                def task(item):
                    return item
                return executor.submit(task, payload)
            """,
    })
    assert errors == []
    assert rules_of(findings) == ["worker-capture"]
    assert "task" in findings[0].message


def test_supervisor_task_lambda_is_flagged(tmp_path):
    findings, errors = run_program(tmp_path, {
        "mid/jobs.py": """\
            from pkg.mid.pooling import Supervisor

            def launch():
                return Supervisor(workers=2, task=lambda p: p)
            """,
        "mid/pooling.py": "class Supervisor:\n    pass\n",
    })
    assert errors == []
    assert rules_of(findings) == ["worker-capture"]


def test_module_level_function_submitted_to_pool_is_clean(tmp_path):
    findings, errors = run_program(tmp_path, {
        "mid/jobs.py": """\
            def task(payload):
                return payload

            def run(pool, payload):
                return pool.submit(task, payload)
            """,
    })
    assert errors == []
    assert findings == []


def test_mutated_global_read_by_worker_entry_is_flagged(tmp_path):
    findings, errors = run_program(tmp_path, {
        "mid/worker.py": """\
            _CACHE = {}

            def entry(payload):
                if payload in _CACHE:
                    return _CACHE[payload]
                _CACHE[payload] = payload * 2
                return _CACHE[payload]
            """,
    })
    assert errors == []
    assert rules_of(findings) == ["fork-unsafe-global"]
    assert "_CACHE" in findings[0].message
    assert findings[0].line == 1  # anchored at the definition


def test_global_reached_one_call_below_the_entry_is_flagged(tmp_path):
    findings, errors = run_program(tmp_path, {
        "mid/worker.py": """\
            _SEEN = []

            def _note(payload):
                _SEEN.append(payload)

            def entry(payload):
                _note(payload)
                return payload
            """,
    })
    assert errors == []
    assert rules_of(findings) == ["fork-unsafe-global"]
    assert "_SEEN" in findings[0].message


def test_unmutated_module_dict_is_a_constant_not_a_hazard(tmp_path):
    findings, errors = run_program(tmp_path, {
        "mid/worker.py": """\
            LIMITS = {"runs": 3}

            def entry(payload):
                return LIMITS["runs"] * payload
            """,
    })
    assert errors == []
    assert findings == []


def test_mutable_global_not_reachable_from_entry_is_clean(tmp_path):
    findings, errors = run_program(tmp_path, {
        "mid/worker.py": """\
            _STATS = {}

            def unrelated(key):
                _STATS[key] = _STATS.get(key, 0) + 1

            def entry(payload):
                return payload
            """,
    })
    assert errors == []
    assert findings == []


# -- interprocedural nondeterminism escape -------------------------------


def test_order_dependent_callee_reached_from_artifact_module(tmp_path):
    findings, errors = run_program(tmp_path, {
        "mid/stats.py": """\
            def summarize(data):
                return [key for key, value in data.items()]
            """,
        "top/export.py": """\
            from pkg.mid.stats import summarize

            def export(data):
                return {"rows": summarize(data)}
            """,
    })
    assert errors == []
    assert rules_of(findings) == ["nondet-escape"]
    assert "pkg.mid.stats.summarize" in findings[0].message


def test_sorted_callee_is_clean(tmp_path):
    findings, errors = run_program(tmp_path, {
        "mid/stats.py": """\
            def summarize(data):
                return [key for key, value in sorted(data.items())]
            """,
        "top/export.py": """\
            from pkg.mid.stats import summarize

            def export(data):
                return {"rows": summarize(data)}
            """,
    })
    assert errors == []
    assert findings == []


def test_unsorted_iteration_inside_artifact_module_is_lint_turf(tmp_path):
    # Same-module hazards belong to lint's unsorted-items rule;
    # archcheck only tracks the *cross-module* escape.
    findings, errors = run_program(tmp_path, {
        "top/export.py": """\
            def rows(data):
                return [key for key, value in data.items()]

            def export(data):
                return {"rows": rows(data)}
            """,
    })
    assert errors == []
    assert findings == []


# -- blocking calls in DES process bodies --------------------------------


def test_real_sleep_inside_a_process_body(tmp_path):
    findings, errors = run_program(tmp_path, {
        "base/proc.py": """\
            import time

            def body(sim):
                yield sim.timeout(10)
                time.sleep(0.1)
            """,
    })
    assert errors == []
    assert rules_of(findings) == ["sim-blocking-call"]
    assert "time.sleep" in findings[0].message


def test_file_io_one_call_below_a_process_body(tmp_path):
    findings, errors = run_program(tmp_path, {
        "base/proc.py": """\
            def _dump(path):
                with open(path, "w") as handle:
                    handle.write("x")

            def body(sim):
                yield sim.timeout(10)
                _dump("out.txt")
            """,
    })
    assert errors == []
    assert rules_of(findings) == ["sim-blocking-call"]
    assert "open" in findings[0].message


def test_blocking_outside_a_generator_is_clean(tmp_path):
    findings, errors = run_program(tmp_path, {
        "base/proc.py": """\
            def export(path):
                with open(path, "w") as handle:
                    handle.write("x")
            """,
    })
    assert errors == []
    assert findings == []


def test_generator_outside_process_layers_is_clean(tmp_path):
    findings, errors = run_program(tmp_path, {
        "top/reader.py": """\
            def lines(path):
                with open(path) as handle:
                    yield from handle
            """,
    })
    assert errors == []
    assert findings == []


def test_allowlisted_module_may_block(tmp_path):
    findings, errors = run_program(tmp_path, {
        "mid/calibrate.py": """\
            import time

            def pulses(count):
                for _ in range(count):
                    time.sleep(0.001)
                    yield 1
            """,
    })
    assert errors == []
    assert findings == []


# -- pragmas -------------------------------------------------------------


def test_line_pragma_suppresses_a_finding(tmp_path):
    findings, errors = run_program(tmp_path, {
        "base/proc.py": """\
            import time

            def body(sim):
                yield sim.timeout(10)
                time.sleep(0.1)  # repro: allow[sim-blocking-call]
            """,
    })
    assert errors == []
    assert findings == []


def test_other_checkers_rule_ids_are_inert_but_valid(tmp_path):
    findings, errors = run_program(tmp_path, {
        "base/proc.py": """\
            import time

            def body(sim):
                yield sim.timeout(10)
                time.sleep(0.1)  # repro: allow[wall-clock]
            """,
    })
    # A lint rule id neither suppresses an archcheck finding nor
    # errors: the pragma namespace is shared across the family.
    assert errors == []
    assert rules_of(findings) == ["sim-blocking-call"]


def test_unknown_rule_id_in_pragma_is_an_error(tmp_path):
    findings, errors = run_program(tmp_path, {
        "base/util.py": "VALUE = 1  # repro: allow[no-such-rule]\n",
    })
    assert findings == []
    assert len(errors) == 1
    assert "unknown rule id" in errors[0].message


# -- contract handling ---------------------------------------------------


def test_missing_contract_is_an_error_not_a_clean_run(tmp_path):
    findings, errors = archcheck.archcheck_paths(
        [tmp_path], contract_path=tmp_path / "absent.toml"
    )
    assert findings == []
    assert len(errors) == 1
    assert "unreadable contract" in errors[0].message


def test_contract_naming_an_undeclared_layer_is_an_error(tmp_path):
    bad = CONTRACT + '\n[blocking2]\n'
    bad = bad.replace('top = ["pkg.top"]',
                      'top = ["pkg.top"]\nghost = ["pkg.ghost"]')
    findings, errors = run_program(tmp_path, {}, contract=bad)
    assert findings == []
    assert any("undeclared layer" in error.message for error in errors)


def test_subset_toml_parser_matches_tomllib_on_the_fixture_contract():
    tomllib = pytest.importorskip("tomllib")
    assert archcheck._parse_toml_subset(CONTRACT, "<fixture>") == (
        tomllib.loads(CONTRACT)
    )


def test_every_rule_id_has_a_hint_and_renders():
    for rule in archcheck.RULES:
        assert rule.hint
        assert rule.summary


# -- CLI contract --------------------------------------------------------


def _write_bad_program(tmp_path):
    contract_path = tmp_path / "arch.toml"
    contract_path.write_text(CONTRACT)
    root = tmp_path / "pkg"
    (root / "base").mkdir(parents=True)
    (root / "__init__.py").write_text("")
    (root / "base" / "__init__.py").write_text("")
    (root / "base" / "proc.py").write_text(
        "import time\n\n"
        "def body(sim):\n"
        "    yield sim.timeout(10)\n"
        "    time.sleep(0.1)\n"
    )
    return root, contract_path


def test_cli_exit_codes_and_baseline_round_trip(tmp_path, capsys):
    root, contract_path = _write_bad_program(tmp_path)
    baseline = tmp_path / "baseline.json"

    assert cli.main([
        "archcheck", str(root), "--contract", str(contract_path),
    ]) == 1
    assert "[sim-blocking-call]" in capsys.readouterr().out

    assert cli.main([
        "archcheck", str(root), "--contract", str(contract_path),
        "--baseline", str(baseline), "--write-baseline",
    ]) == 0
    assert cli.main([
        "archcheck", str(root), "--contract", str(contract_path),
        "--baseline", str(baseline), "--check",
    ]) == 0

    # The hazard is fixed: the acknowledged entry is now stale, and
    # --check turns staleness into a configuration error.
    (root / "base" / "proc.py").write_text(
        "def body(sim):\n    yield sim.timeout(10)\n"
    )
    capsys.readouterr()
    assert cli.main([
        "archcheck", str(root), "--contract", str(contract_path),
        "--baseline", str(baseline), "--check",
    ]) == 2


def test_cli_json_format_matches_the_checker_family(tmp_path, capsys):
    root, contract_path = _write_bad_program(tmp_path)
    assert cli.main([
        "archcheck", str(root), "--contract", str(contract_path),
        "--format=json",
    ]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "sim-blocking-call"
    assert set(payload[0]) == {"rule", "path", "line", "col", "message"}


def test_check_umbrella_merges_exit_codes(tmp_path, capsys):
    root, contract_path = _write_bad_program(tmp_path)
    assert cli.main([
        "check", str(root), "--contract", str(contract_path),
    ]) == 1
    out = capsys.readouterr().out
    assert "== lint ==" in out
    assert "== semcheck ==" in out
    assert "== archcheck ==" in out

    (root / "base" / "proc.py").write_text(
        "def body(sim):\n    yield sim.timeout(10)\n"
    )
    capsys.readouterr()
    assert cli.main([
        "check", str(root), "--contract", str(contract_path),
    ]) == 0
    assert "check: all clean" in capsys.readouterr().out


def test_check_umbrella_json_is_keyed_by_tool(tmp_path, capsys):
    root, contract_path = _write_bad_program(tmp_path)
    assert cli.main([
        "check", str(root), "--contract", str(contract_path),
        "--format=json",
    ]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"lint", "semcheck", "archcheck", "racecheck"}
    assert payload["archcheck"][0]["rule"] == "sim-blocking-call"
    assert payload["lint"] == []


def test_check_umbrella_rejects_baseline_flags(tmp_path, capsys):
    root, contract_path = _write_bad_program(tmp_path)
    assert cli.main([
        "check", str(root), "--contract", str(contract_path),
        "--write-baseline",
    ]) == 2


def test_list_pragmas_inventories_suppressions(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(
        "import time\n"
        "T0 = time.time()  # repro: allow[wall-clock]\n"
        "# repro: allow-file[sim-blocking-call]\n"
    )
    assert cli.main(["archcheck", str(target), "--list-pragmas"]) == 0
    out = capsys.readouterr().out
    assert "allow[wall-clock]" in out
    assert "allow-file[sim-blocking-call]" in out
    assert "2 pragma(s)" in out

    assert cli.main([
        "lint", str(target), "--list-pragmas", "--format=json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [record["kind"] for record in payload] == ["allow", "allow-file"]
    assert payload[0]["rules"] == ["wall-clock"]
