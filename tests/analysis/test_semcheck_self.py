"""The source tree must pass semcheck — and semcheck must stay sharp.

Mirror of ``test_selflint.py`` for the semantic checker: the committed
baseline is empty (every unit hazard and protocol hazard was fixed, not
acknowledged), and seeding the original bugs back into the real modules
they were fixed in proves the checker would catch a regression.
"""

import pathlib

import repro
from repro.analysis import semcheck
from repro.analysis.baseline import load_baseline

SRC = pathlib.Path(repro.__file__).parent
REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_source_tree_is_clean():
    findings, errors = semcheck.semcheck_paths([SRC])
    rendered = "\n".join(
        [finding.render() for finding in findings]
        + [error.render() for error in errors]
    )
    assert not findings and not errors, f"semcheck regressions:\n{rendered}"


def test_committed_baseline_is_empty():
    entries, errors = load_baseline(
        REPO_ROOT / ".repro-semcheck-baseline.json",
        known_rules=semcheck.RULES_BY_ID,
    )
    assert errors == []
    assert entries == [], "fix hazards instead of baselining them"


def _seed_hazard(module, extra):
    """Append a hazard to a real module's source and recheck it."""
    path = SRC / module
    source = path.read_text() + "\n" + extra
    findings, errors = semcheck.semcheck_source(
        source, module, resolved_path=path.as_posix()
    )
    assert errors == []
    return {finding.rule for finding in findings}


def test_seeded_resource_leak_is_caught():
    # The exact bug the GPU delegate used to have: the try/finally
    # began only after the queue wait, so an interrupt at the WaitFor
    # leaked the grant.
    rules = _seed_hazard(
        "frameworks/delegates.py",
        "def _leaky_invoke(gpu, compute):\n"
        "    request = gpu.resource.request()\n"
        "    yield WaitFor(request)\n"
        "    yield Sleep(compute)\n"
        "    request.release()\n",
    )
    assert "resource-leak" in rules


def test_seeded_magic_conversion_is_caught():
    rules = _seed_hazard(
        "experiments/fig8.py",
        "def _raw_report(total_us):\n"
        "    return total_us / 1000.0\n",
    )
    assert "magic-conversion" in rules


def test_seeded_cross_unit_arithmetic_is_caught():
    rules = _seed_hazard(
        "experiments/fig8.py",
        "def _mixed(total_us, budget_ms):\n"
        "    return total_us + budget_ms\n",
    )
    assert "unit-mismatch" in rules


def test_seeded_microsecond_contract_violation_is_caught():
    rules = _seed_hazard(
        "android/fastrpc.py",
        "def _bad_wait(sim, backoff_ms):\n"
        "    yield WaitFor(sim.timeout(backoff_ms))\n",
    )
    assert "unit-arg-mismatch" in rules


def test_seeded_yieldless_loop_is_caught():
    rules = _seed_hazard(
        "android/fastrpc.py",
        "def _spin(sim, flag):\n"
        "    yield sim.timeout(1.0)\n"
        "    while True:\n"
        "        flag.append(1)\n",
    )
    assert "yieldless-loop" in rules
