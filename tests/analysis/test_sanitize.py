"""Runtime sanitizer: clock invariants, tie audit, span accounting."""

import pytest

from repro.analysis.sanitize import (
    SanitizerError,
    audit_accounting,
    collecting,
)
from repro.sim.engine import Simulator


# -- attachment ----------------------------------------------------------


def test_sanitize_flag_attaches_sanitizer():
    assert Simulator(sanitize=True).sanitizer is not None
    assert Simulator().sanitizer is None
    assert Simulator(sanitize=False).sanitizer is None


def test_env_var_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Simulator().sanitizer is not None
    # An explicit constructor argument still wins over the environment.
    assert Simulator(sanitize=False).sanitizer is None
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert Simulator().sanitizer is None


def test_collecting_forces_and_registers():
    with collecting() as collector:
        sim = Simulator()
        assert sim.sanitizer is not None
        sim.timeout(1.0, name="tick")
        sim.run()
    assert collector.sanitizers == [sim.sanitizer]
    assert collector.event_count() == 1
    # The forced default is restored on scope exit.
    assert Simulator().sanitizer is None


# -- clock invariants ----------------------------------------------------


def test_scheduling_into_the_past_raises():
    # Timeout() rejects negative delays itself, so go through the raw
    # scheduling path a buggy event class would use.
    sim = Simulator(sanitize=True)
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(SanitizerError, match="past"):
        sim._schedule(sim.event(), delay=-1.0)


def test_backwards_pop_raises():
    sim = Simulator(sanitize=True)
    sim.now = 10.0
    with pytest.raises(SanitizerError, match="backwards"):
        sim.sanitizer.on_pop(5.0, 1, 0, sim.event())


# -- tie audit -----------------------------------------------------------


def test_tie_groups_record_equal_time_priority_runs():
    sim = Simulator(sanitize=True)
    sim.timeout(1.0, name="solo")
    sim.timeout(5.0, name="a")
    sim.timeout(5.0, name="b")
    sim.timeout(5.0, name="c")
    sim.run()
    assert len(sim.sanitizer.ties) == 1
    assert [record.label for record in sim.sanitizer.ties[0]] == [
        "a", "b", "c",
    ]
    assert len(sim.sanitizer.stream.records) == 4


def test_audit_reports_events_ties_and_digest():
    sim = Simulator(trace=True, sanitize=True)
    sim.timeout(3.0, name="x")
    sim.timeout(3.0, name="y")
    sim.run()
    report = sim.sanitizer.audit()
    assert report["events"] == 2
    assert report["ties"] == 1
    assert len(report["digest"]) == 64


def test_digest_is_deterministic_across_fresh_simulators():
    def run_once():
        sim = Simulator(seed=3, sanitize=True)
        for index in range(4):
            sim.timeout(float(index % 2), name=f"e{index}")
        sim.run()
        return sim.sanitizer.stream.digest()

    assert run_once() == run_once()


# -- span invariants -----------------------------------------------------


def test_negative_span_duration_raises():
    sim = Simulator(trace=True, sanitize=True)
    with pytest.raises(SanitizerError, match="negative span"):
        sim.trace.record("cpu0", "bad", 10.0, 4.0)


def test_end_before_begin_raises():
    sim = Simulator(trace=True, sanitize=True)
    sim.now = 8.0
    span = sim.trace.begin("cpu0", "work")
    sim.now = 2.0
    with pytest.raises(SanitizerError, match="negative span"):
        sim.trace.end(span)


# -- resource accounting -------------------------------------------------


def test_accounting_conserves_busy_plus_idle():
    sim = Simulator(trace=True)
    sim.trace.record("cpu0", "outer", 0.0, 10.0)
    sim.trace.record("cpu0", "inner", 2.0, 8.0)
    sim.trace.record("binder", "ignored-soft-track", 0.0, 99.0)
    report = audit_accounting(sim.trace, 20.0)
    assert set(report) == {"cpu0"}
    assert report["cpu0"]["busy_us"] == pytest.approx(10.0)
    assert report["cpu0"]["idle_us"] == pytest.approx(10.0)
    assert report["cpu0"]["elapsed_us"] == pytest.approx(20.0)


def test_partially_overlapping_spans_raise():
    sim = Simulator(trace=True)
    sim.trace.record("cpu0", "a", 0.0, 10.0)
    sim.trace.record("cpu0", "b", 5.0, 15.0)
    with pytest.raises(SanitizerError, match="overlapping"):
        audit_accounting(sim.trace, 20.0)


def test_span_past_end_of_run_is_clipped_not_fatal():
    sim = Simulator(trace=True)
    sim.trace.record("gpu", "tail", 0.0, 30.0)
    report = audit_accounting(sim.trace, 20.0)
    assert report["gpu"]["busy_us"] == pytest.approx(20.0)
    assert report["gpu"]["idle_us"] == pytest.approx(0.0)


# -- engine-scoped ids ---------------------------------------------------


def test_next_id_is_engine_scoped_and_named():
    first, second = Simulator(), Simulator()
    assert [first.next_id("req") for _ in range(3)] == [0, 1, 2]
    # A fresh simulator starts from zero — no process-global bleed.
    assert second.next_id("req") == 0
    # Streams are independent per name.
    assert first.next_id("other") == 0
