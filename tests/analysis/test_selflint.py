"""The source tree must lint clean — and the linter must stay sharp.

The acceptance bar for the determinism linter is an *empty* committed
baseline: every hazard it knows about was fixed in the tree, not
suppressed. These tests keep that true, and seed known hazards back
into real modules to prove the linter would catch a regression.
"""

import pathlib

import repro
from repro.analysis import lint
from repro.analysis.baseline import load_baseline

SRC = pathlib.Path(repro.__file__).parent
REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_source_tree_is_clean():
    findings, errors = lint.lint_paths([SRC])
    rendered = "\n".join(
        [finding.render() for finding in findings]
        + [error.render() for error in errors]
    )
    assert not findings and not errors, f"lint regressions:\n{rendered}"


def test_committed_baseline_is_empty():
    entries, errors = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
    assert errors == []
    assert entries == [], "fix hazards instead of baselining them"


def _seed_hazard(module, extra):
    """Append a hazard to a real module's source and lint the result."""
    path = SRC / module
    source = path.read_text() + "\n" + extra
    findings, errors = lint.lint_source(
        source, module, resolved_path=path.as_posix()
    )
    assert errors == []
    return {finding.rule for finding in findings}


def test_seeded_module_counter_is_caught():
    # The exact hazard PriorityResource used to have (a process-global
    # itertools.count for request ids) must not be reintroducible.
    rules = _seed_hazard(
        "sim/resources.py",
        "import itertools\n_request_ids = itertools.count()\n",
    )
    assert "module-counter" in rules


def test_seeded_wall_clock_is_caught():
    rules = _seed_hazard(
        "sim/engine.py",
        "import time\n\ndef _stamp():\n    return time.time()\n",
    )
    assert "wall-clock" in rules


def test_seeded_unsorted_items_is_caught_in_export_module():
    rules = _seed_hazard(
        "observability/chrome_trace.py",
        "def _dump(counters):\n"
        "    return [pair for pair in counters.items()]\n",
    )
    assert "unsorted-items" in rules
