"""timeout() takes microseconds; this passes milliseconds."""


def schedule(sim, poll_ms):
    sim.timeout(poll_ms)
