"""Positive fixture: process-global and unseeded random sources."""

import random


def jitter():
    return random.random()


def make_rng():
    return random.Random()
