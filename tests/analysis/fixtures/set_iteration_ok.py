"""Negative fixture: sets are sorted before iteration."""


def drain(pending, sink):
    for item in sorted({"cpu", "gpu", "cdsp"}):
        sink.append(item)
    return sorted(set(pending))
