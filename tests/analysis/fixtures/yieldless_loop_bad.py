"""An unbounded loop that never yields: zero-time livelock."""


def poller(sim, queue):
    yield sim.timeout(1.0)
    while True:
        if queue:
            queue.pop()
