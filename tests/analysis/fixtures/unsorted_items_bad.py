"""Positive fixture: insertion-ordered .items() reaches an artifact.

Only flagged when linted as an export module (``LintConfig.export_modules``).
"""


def export(series):
    return [(name, values) for name, values in series.items()]
