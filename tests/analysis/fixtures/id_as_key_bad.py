"""Positive fixture: interpreter addresses used as identity tokens."""


def register(table, obj):
    table[id(obj)] = obj
    return id(obj)
