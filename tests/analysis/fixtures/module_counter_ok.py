"""Negative fixture: ids come from the owning simulator."""


class Registry:
    def __init__(self, sim):
        self.sim = sim

    def fresh(self):
        return self.sim.next_id("registry")
