"""The conversion is spelled with its direction."""

from repro.sim import units


def report_ms(total_us):
    return units.to_ms(total_us)
