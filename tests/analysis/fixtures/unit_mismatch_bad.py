"""Cross-unit arithmetic: microseconds plus milliseconds."""


def total_latency(compute_us, display_ms):
    return compute_us + display_ms
