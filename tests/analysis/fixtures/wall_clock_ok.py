"""Negative fixture: time comes from the simulation clock."""


def stamp(sim):
    return sim.now


def elapsed(sim, start):
    return sim.now - start
