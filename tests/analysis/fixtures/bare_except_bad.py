"""Positive fixture: handlers that swallow every exception."""


def run(step):
    try:
        step()
    except:
        pass


def run_quietly(step):
    try:
        step()
    except Exception:
        pass
