"""Negative fixture: identity comes from an engine-scoped allocator."""


def register(table, sim, obj):
    token = sim.next_id("obj")
    table[token] = obj
    return token
