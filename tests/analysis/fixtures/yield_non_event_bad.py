"""A process yielding a plain number instead of an Event."""


def worker(sim, duration_us):
    yield sim.timeout(duration_us)
    yield duration_us * 2
