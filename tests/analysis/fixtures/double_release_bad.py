"""The with-block already released; the explicit release is a second."""


def worker(resource, compute):
    with resource.request() as request:
        yield request
        yield compute
    request.release()
