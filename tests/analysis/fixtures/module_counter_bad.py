"""Positive fixture: interpreter-global mutable counters."""

import itertools

_ids = itertools.count()


class Registry:
    _counters = {}


def fresh():
    return next(_ids)
