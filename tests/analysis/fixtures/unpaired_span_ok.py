"""Negative fixture: the handle is kept and the span is closed."""


def work(trace):
    span = trace.begin("cpu0", "inference")
    trace.end(span)
    return span
