"""A bare power-of-1000 literal hiding a unit conversion."""


def report(total_us):
    return total_us / 1000.0
