"""The release lives inside the branch that requested."""


def worker(resource, compute, want):
    if want:
        with resource.request() as request:
            yield request
    yield compute
