"""The loop yields every iteration, so simulated time advances."""


def poller(sim, queue):
    while True:
        if queue:
            queue.pop()
        yield sim.timeout(1.0)
