"""Every yield hands the engine an Event."""


def worker(sim, duration_us):
    yield sim.timeout(duration_us)
    yield sim.timeout(duration_us * 2)
