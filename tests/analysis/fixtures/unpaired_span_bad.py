"""Positive fixture: a begin() handle is discarded, span never ends."""


def work(trace):
    trace.begin("cpu0", "inference")
