"""Negative fixture: explicitly seeded generators only."""

import random


def make_rng(seed):
    return random.Random(seed)


def jitter(rng):
    return rng.random()
