"""Positive fixture: hash-ordered set iteration feeds downstream state."""


def drain(pending, sink):
    for item in {"cpu", "gpu", "cdsp"}:
        sink.append(item)
    return list(set(pending))
