"""The millisecond term is converted before mixing."""

from repro.sim import units


def total_latency_us(compute_us, display_ms):
    return compute_us + units.ms(display_ms)
