"""The with-block releases on every exit, including interrupts."""


def worker(resource, compute):
    with resource.request() as request:
        yield request
        yield compute
