"""Negative fixture: specific exceptions, and broad ones re-raised."""


def run(step):
    try:
        return step()
    except ValueError:
        return None


def run_logged(step, log):
    try:
        return step()
    except Exception as exc:
        log.append(exc)
        raise
