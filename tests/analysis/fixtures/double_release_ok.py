"""Exactly one release, on every path, via try/finally."""


def worker(resource, compute):
    request = resource.request()
    try:
        yield request
        yield compute
    finally:
        request.release()
