"""Releasing a handle that only some paths requested."""


def worker(resource, compute, want):
    request = None
    if want:
        request = resource.request()
    request.release()
    yield compute
