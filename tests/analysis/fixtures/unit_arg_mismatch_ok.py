"""The millisecond value is converted at the call site."""

from repro.sim import units


def schedule(sim, poll_ms):
    sim.timeout(units.ms(poll_ms))
