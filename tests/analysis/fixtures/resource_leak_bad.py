"""A grant held across a yield with no finally/with protection."""


def worker(resource, compute):
    request = resource.request()
    yield request
    yield compute
    request.release()
