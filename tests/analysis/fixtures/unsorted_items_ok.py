"""Negative fixture: exported .items() iteration goes through sorted()."""


def export(series):
    return [(name, values) for name, values in sorted(series.items())]
