"""Positive fixture: reads the host clock inside simulation code."""

import time
from datetime import datetime


def stamp():
    return time.time()


def started():
    return datetime.now()
