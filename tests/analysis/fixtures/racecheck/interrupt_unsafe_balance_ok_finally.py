"""The balancing decrement in a finally survives the interrupt."""

from repro.sim.events import Sleep


class Backend:
    def serve(self):
        self.inflight += 1
        try:
            yield Sleep(10.0)
        finally:
            self.inflight -= 1

    def depth(self):
        yield Sleep(1.0)
        return self.inflight
