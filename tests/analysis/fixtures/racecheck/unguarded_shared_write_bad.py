"""One lock-free writer voids the protocol the locked sites rely on."""

from repro.sim.events import Sleep, WaitFor


class Pool:
    def worker(self):
        with self.lock.request() as grant:
            yield WaitFor(grant)
            self.depth += 1

    def drain(self):
        with self.lock.request() as grant:
            yield WaitFor(grant)
            self.depth -= 1

    def poke(self):
        self.depth += 1
        yield Sleep(1.0)
