"""Accumulate into locals, commit after the last yield in one step."""

from repro.sim.events import Sleep


class Channel:
    def invoke(self):
        busy = 0.0
        yield Sleep(10.0)
        busy += 10.0
        self.stats.calls += 1
        self.stats.busy_us += busy

    def snapshot(self):
        yield Sleep(1.0)
        return (self.stats.calls, self.stats.busy_us)
