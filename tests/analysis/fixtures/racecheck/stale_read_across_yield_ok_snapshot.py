"""Deliberate snapshot: compared against a fresh read, then history."""

from repro.sim.events import Sleep


class Tracker:
    def watch(self):
        previous = self.device
        while True:
            yield Sleep(10.0)
            if self.device != previous:
                self.moves.append(previous)
            previous = self.device

    def migrate(self):
        self.device = "gpu"
        yield Sleep(1.0)
