"""A cached shared value used after a yield that can invalidate it."""

from repro.sim.events import Sleep


class Monitor:
    def sample(self):
        depth = self.depth
        yield Sleep(10.0)
        self.history.append(depth)

    def bump(self):
        self.depth += 1
        yield Sleep(1.0)
