"""try/finally around the interior yield: no torn multi-field update."""

from repro.sim.events import Sleep


class Channel:
    def invoke(self):
        try:
            self.stats.calls += 1
            yield Sleep(10.0)
            self.stats.busy_us += 10.0
        finally:
            self.stats.settled += 1

    def snapshot(self):
        yield Sleep(1.0)
        return (self.stats.calls, self.stats.busy_us)
