"""Windowed delta: the cached value is compared against a fresh read."""

from repro.sim.events import Sleep


class Monitor:
    def sample(self):
        busy = self.busy_us
        yield Sleep(10.0)
        self.window_us = self.busy_us - busy

    def bump(self):
        self.busy_us += 5.0
        yield Sleep(1.0)
