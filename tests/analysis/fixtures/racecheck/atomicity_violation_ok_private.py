"""State nobody else writes cannot be invalidated at the yield."""

from repro.sim.events import Sleep


class Worker:
    def run(self):
        if not self.done:
            yield Sleep(5.0)
            self.done = True
