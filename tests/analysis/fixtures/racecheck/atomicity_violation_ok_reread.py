"""Re-reading after the last yield makes check and write atomic."""

from repro.sim.events import Sleep


class Channel:
    def open_session(self):
        if not self.opened:
            yield Sleep(10.0)
            if not self.opened:
                self.opened = True

    def reset(self):
        self.opened = False
        yield Sleep(1.0)
