"""Two Resources taken in opposite orders on different paths."""

from repro.sim.events import WaitFor


class Transfer:
    def move_ab(self):
        with self.bus_a.request() as first:
            yield WaitFor(first)
            with self.bus_b.request() as second:
                yield WaitFor(second)

    def move_ba(self):
        with self.bus_b.request() as first:
            yield WaitFor(first)
            with self.bus_a.request() as second:
                yield WaitFor(second)
