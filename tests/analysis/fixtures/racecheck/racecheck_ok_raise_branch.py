"""An error path that raises contributes no state to the join."""

from repro.sim.events import Sleep


class Channel:
    def invoke(self):
        if self.dead:
            self.stats.errors += 1
            yield Sleep(1.0)
            raise RuntimeError("dead channel")
        yield Sleep(10.0)
        self.stats.calls += 1

    def snapshot(self):
        yield Sleep(1.0)
        return (self.stats.errors, self.stats.calls)
