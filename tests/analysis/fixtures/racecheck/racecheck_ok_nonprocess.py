"""Plain (non-yielding) methods are not preemptible: never analyzed."""

from repro.sim.events import Sleep


class Config:
    def toggle(self):
        if not self.enabled:
            self.enabled = True

    def apply(self, value):
        self.enabled = value

    def run(self):
        yield Sleep(1.0)
        if self.enabled:
            yield Sleep(2.0)
