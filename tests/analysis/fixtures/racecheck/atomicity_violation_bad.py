"""Check-then-act split across a yield: the classic lost update."""

from repro.sim.events import Sleep


class Channel:
    def open_session(self):
        if not self.opened:
            yield Sleep(10.0)
            self.opened = True

    def reset(self):
        self.opened = False
        yield Sleep(1.0)
