"""A Resource held across the read-modify-write window guards it."""

from repro.sim.events import Sleep, WaitFor


class Channel:
    def open_session(self):
        with self.lock.request() as grant:
            yield WaitFor(grant)
            if not self.opened:
                yield Sleep(10.0)
                self.opened = True

    def reset(self):
        with self.lock.request() as grant:
            yield WaitFor(grant)
            self.opened = False
