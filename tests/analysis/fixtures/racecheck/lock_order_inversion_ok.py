"""One global acquisition order: every path nests the same way."""

from repro.sim.events import WaitFor


class Transfer:
    def move_one(self):
        with self.bus_a.request() as first:
            yield WaitFor(first)
            with self.bus_b.request() as second:
                yield WaitFor(second)

    def move_two(self):
        with self.bus_a.request() as first:
            yield WaitFor(first)
            with self.bus_b.request() as second:
                yield WaitFor(second)
