"""A Resource held from the read to the use keeps the cache current."""

from repro.sim.events import Sleep, WaitFor


class Monitor:
    def sample(self):
        with self.lock.request() as grant:
            yield WaitFor(grant)
            depth = self.depth
            yield Sleep(5.0)
            self.history.append(depth)

    def bump(self):
        with self.lock.request() as grant:
            yield WaitFor(grant)
            self.depth += 1
