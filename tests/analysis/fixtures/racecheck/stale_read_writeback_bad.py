"""A write-back of a cached value is the atomicity rule's territory."""

from repro.sim.events import Sleep


class Counter:
    def flush(self):
        total = self.total_us
        yield Sleep(5.0)
        self.total_us = total + 1.0

    def bump(self):
        self.total_us += 2.0
        yield Sleep(1.0)
