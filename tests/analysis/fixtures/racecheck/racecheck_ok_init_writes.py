"""Constructor-time writes never race with running processes."""

from repro.sim.events import Sleep


class Worker:
    def __init__(self, kernel):
        self.kernel = kernel
        self.done = False

    def run(self):
        if not self.done:
            yield Sleep(5.0)
            self.done = True
