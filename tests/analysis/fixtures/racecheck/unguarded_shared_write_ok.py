"""Every accessor holds the Resource: the lockset discipline holds."""

from repro.sim.events import WaitFor


class Pool:
    def worker(self):
        with self.lock.request() as grant:
            yield WaitFor(grant)
            self.depth += 1

    def drain(self):
        with self.lock.request() as grant:
            yield WaitFor(grant)
            self.depth -= 1
