"""Two fields of one object written across an unprotected yield."""

from repro.sim.events import Sleep


class Channel:
    def invoke(self):
        self.stats.calls += 1
        yield Sleep(10.0)
        self.stats.busy_us += 10.0

    def snapshot(self):
        yield Sleep(1.0)
        return (self.stats.calls, self.stats.busy_us)
