"""A +=/-= balance pair split across an unprotected yield."""

from repro.sim.events import Sleep


class Backend:
    def serve(self):
        self.inflight += 1
        yield Sleep(10.0)
        self.inflight -= 1

    def depth(self):
        yield Sleep(1.0)
        return self.inflight
