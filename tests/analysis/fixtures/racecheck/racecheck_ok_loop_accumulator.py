"""Retry-loop accumulators commit whole between yields, every pass."""

from repro.sim.events import Sleep


class Channel:
    def retry(self):
        attempt = 0
        while True:
            try:
                yield Sleep(5.0)
                return True
            except TimeoutError:
                attempt += 1
                self.stats.retries += 1
                self.stats.backoff_us += 2.0
                yield Sleep(2.0)

    def snapshot(self):
        yield Sleep(1.0)
        return (self.stats.retries, self.stats.backoff_us)
