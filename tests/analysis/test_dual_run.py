"""Dual-run replay digests: real scenarios replay bit-identically, and
an injected insertion-order nondeterminism is localized to its first
divergent event (and labelled as a tiebreak, not a logic change)."""

from repro.analysis.sanitize import collecting, dual_run
from repro.experiments import run_experiment
from repro.fleet import run_fleet
from repro.observability.scenarios import record_trace
from repro.sim.engine import Simulator


def test_fig7_experiment_replays_identically():
    report = dual_run(lambda: run_experiment("fig7"))
    assert report.identical
    assert report.events > 0
    assert "IDENTICAL" in report.render()


def test_chaos_scenario_replays_identically():
    report = dual_run(lambda: record_trace("chaos", runs=2, seed=0))
    assert report.identical
    assert report.events > 0


def test_small_fleet_replays_identically():
    report = dual_run(
        lambda: run_fleet(sessions=2, workers=1, seed=0, runs=2)
    )
    assert report.identical
    assert report.events > 0


# -- artificial divergence -----------------------------------------------


def _tiebreak_scenario(order):
    """Two same-timestamp events whose only ordering is insertion order —
    the exact signature of iterating an unordered container while
    scheduling."""
    sim = Simulator(seed=0)
    sim.timeout(1.0, name="lead")
    for label in order:
        sim.timeout(5.0, name=label)
    sim.run()


def test_divergent_tiebreak_is_localized_to_first_event():
    with collecting() as first:
        _tiebreak_scenario(["x", "y"])
    with collecting() as second:
        _tiebreak_scenario(["y", "x"])
    assert first.combined_digest() != second.combined_digest()
    divergence = first.first_divergence(second)
    assert divergence["stream"] == 0
    # Event 0 is the lead timeout in both runs; the first tied event is
    # where the replays disagree.
    assert divergence["index"] == 1
    assert divergence["tie"] is True
    assert {divergence["left"].label, divergence["right"].label} == {"x", "y"}


def test_dual_run_report_names_the_tiebreak():
    orders = iter([["x", "y"], ["y", "x"]])
    report = dual_run(lambda: _tiebreak_scenario(next(orders)))
    assert not report.identical
    rendered = report.render()
    assert "DIVERGED" in rendered
    assert "event #1" in rendered
    assert "insertion" in rendered


def test_identical_runs_have_no_divergence():
    with collecting() as first:
        _tiebreak_scenario(["x", "y"])
    with collecting() as second:
        _tiebreak_scenario(["x", "y"])
    assert first.first_divergence(second) is None
    assert first.combined_digest() == second.combined_digest()
