"""archcheck applied to this repository: the tree must be clean.

Mirrors test_selflint.py / test_semcheck_self.py: the committed
contract describes the real layering, the committed baseline is empty,
and the tree holds both invariants — architecture violations are fixed
at the source, never acknowledged away.
"""

import json
import pathlib

from repro.analysis import archcheck

SRC = pathlib.Path(archcheck.__file__).resolve().parents[1]
REPO_ROOT = SRC.parents[1]
CONTRACT_PATH = REPO_ROOT / archcheck.CONTRACT_NAME


def test_repo_tree_is_archcheck_clean():
    findings, errors = archcheck.archcheck_paths(
        [SRC], contract_path=CONTRACT_PATH
    )
    assert errors == [], [e.message for e in errors]
    assert findings == [], [
        f"{f.path}:{f.line} [{f.rule}] {f.message}" for f in findings
    ]


def test_committed_baseline_is_empty():
    baseline = REPO_ROOT / ".repro-archcheck-baseline.json"
    payload = json.loads(baseline.read_text())
    assert payload == {"version": 1, "entries": []}


def test_contract_loads_without_errors():
    contract, errors = archcheck.load_contract(CONTRACT_PATH)
    assert errors == []
    assert contract is not None
    assert contract.order[0] == "sim"
    assert contract.order[-1] == "frontend"


def test_contract_anchors_to_real_code():
    """Entries in the contract must name things that still exist.

    A renamed worker entrypoint or sanctioned module would silently
    disable its rule family; this pins the contract to the tree.
    """
    contract, _ = archcheck.load_contract(CONTRACT_PATH)
    modules, errors = archcheck.build_program([SRC])
    assert errors == []

    for sanctioned in contract.sanctioned:
        assert sanctioned in modules, f"sanctioned {sanctioned} is gone"
    for package in contract.surface_packages:
        assert package in modules, f"surface package {package} is gone"

    function_names = {
        qualname
        for info in modules.values()
        for qualname in info.functions
    }
    for entry in contract.worker_entrypoints:
        assert entry in function_names, f"worker entry {entry} is gone"


def test_layer_assignment_spot_checks():
    contract, _ = archcheck.load_contract(CONTRACT_PATH)
    assert contract.layer_of("repro.sim.engine") == "sim"
    assert contract.layer_of("repro.soc.dsp") == "domain"
    assert contract.layer_of("repro.fleet.runner") == "fleet"
    assert contract.layer_of("repro.analysis.archcheck") == "tools"
    # Longest prefix wins: `repro` alone is frontend, subpackages are not.
    assert contract.layer_of("repro") == "frontend"
    assert contract.layer_of("repro.cli") == "frontend"
    assert contract.layer_of("not.in.program") is None


def test_every_src_module_is_inside_the_contract():
    """No repro.* module may drift outside the layer map."""
    contract, _ = archcheck.load_contract(CONTRACT_PATH)
    modules, _ = archcheck.build_program([SRC])
    unassigned = sorted(
        name for name in modules if contract.layer_of(name) is None
    )
    assert unassigned == []
