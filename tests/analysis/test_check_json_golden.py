"""Golden-file pin for the tool-keyed ``check --format=json`` payload.

External tooling (CI annotations, dashboards) parses this payload; its
shape is a contract. The golden file records the three stable facts —
tool key order, finding-object key order, and the exit-status mapping —
and these tests regenerate each fact from a live run and compare.
Changing the schema therefore requires editing the golden on purpose,
in the same commit as the code.
"""

import json
import pathlib

import pytest

from repro import cli

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "goldens" / "check_json_schema.json")
    .read_text()
)

CONTRACT = """
[layers]
order = ["app"]

[layers.modules]
app = ["pkg"]
"""

# One module that trips lint (wall-clock) and racecheck (check-then-act
# across a yield) at once, so the payload carries findings from more
# than one tool in a single run.
BAD_MODULE = """\
import time

from repro.sim.events import Sleep

T0 = time.time()


class Channel:
    def open_session(self):
        if not self.opened:
            yield Sleep(10.0)
            self.opened = True

    def reset(self):
        self.opened = False
        yield Sleep(1.0)
"""


@pytest.fixture
def tree(tmp_path):
    contract = tmp_path / "arch.toml"
    contract.write_text(CONTRACT)
    target = tmp_path / "mod.py"
    target.write_text(BAD_MODULE)
    return target, contract


def run_check(target, contract, capsys):
    code = cli.main([
        "check", str(target), "--contract", str(contract),
        "--format=json",
    ])
    return code, json.loads(capsys.readouterr().out)


def test_payload_is_keyed_by_tool_in_golden_order(tree, capsys):
    target, contract = tree
    code, payload = run_check(target, contract, capsys)
    assert code == GOLDEN["exit_status"]["findings"]
    assert list(payload) == GOLDEN["tools"]


def test_every_finding_object_matches_the_golden_key_order(tree, capsys):
    target, contract = tree
    _code, payload = run_check(target, contract, capsys)
    flagged = {tool for tool in GOLDEN["tools"] if payload[tool]}
    assert {"lint", "racecheck"} <= flagged
    for tool in GOLDEN["tools"]:
        for finding in payload[tool]:
            assert list(finding) == GOLDEN["finding_keys"]


def test_findings_are_sorted_by_the_golden_order(tree, capsys):
    target, contract = tree
    _code, payload = run_check(target, contract, capsys)
    for tool in GOLDEN["tools"]:
        keys = [
            tuple(finding[field] for field in GOLDEN["finding_order"])
            for finding in payload[tool]
        ]
        assert keys == sorted(keys)


def test_exit_status_mapping_matches_the_golden(tmp_path, capsys):
    contract = tmp_path / "arch.toml"
    contract.write_text(CONTRACT)
    target = tmp_path / "mod.py"

    target.write_text("VALUE = 1\n")
    assert cli.main([
        "check", str(target), "--contract", str(contract),
        "--format=json",
    ]) == GOLDEN["exit_status"]["clean"]
    capsys.readouterr()

    target.write_text(BAD_MODULE)
    assert cli.main([
        "check", str(target), "--contract", str(contract),
        "--format=json",
    ]) == GOLDEN["exit_status"]["findings"]
    capsys.readouterr()

    target.write_text("VALUE = 1  # repro: allow[not-a-rule]\n")
    assert cli.main([
        "check", str(target), "--contract", str(contract),
        "--format=json",
    ]) == GOLDEN["exit_status"]["errors"]
    capsys.readouterr()


def test_sanitize_is_the_only_key_allowed_beyond_the_tools():
    # The umbrella may append a "sanitize" report when asked to dual-run
    # scenarios; nothing else may grow into the payload unnoticed.
    assert GOLDEN["optional_keys"] == ["sanitize"]
