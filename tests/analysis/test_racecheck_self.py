"""racecheck over its own repository: the tree must stay clean.

The committed baseline is empty by policy (CI enforces it), so every
yield-point race the checker can see has to be fixed in-tree, never
acknowledged. These tests pin that invariant and the registration
contract that makes ``check`` and the pragma validator see racecheck.
"""

import json
import pathlib

from repro.analysis import baseline, common, racecheck

REPO = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"


def test_tree_is_racecheck_clean():
    findings, errors = racecheck.racecheck_paths([SRC])
    assert errors == []
    assert [f"{f.path}:{f.line} {f.rule}" for f in findings] == []


def test_committed_baseline_is_empty():
    payload = json.loads(
        (REPO / baseline.RACECHECK_BASELINE_NAME).read_text())
    assert payload == {"version": 1, "entries": []}


def test_rules_are_registered_with_the_pragma_validator():
    known = common.known_rule_ids()
    assert set(racecheck.RULES_BY_ID) <= known


def test_rule_ids_do_not_collide_with_other_checkers():
    from repro.analysis import archcheck, lint, semcheck

    others = (
        set(lint.RULES_BY_ID)
        | set(semcheck.RULES_BY_ID)
        | set(archcheck.RULES_BY_ID)
    )
    assert not set(racecheck.RULES_BY_ID) & others


def test_inventory_names_the_known_held_across_yield_resources():
    records, errors = racecheck.lock_inventory([SRC])
    assert errors == []
    held = {lock for rec in records for lock in rec["locks"]}
    # The DSP queue and GPU delegate serialize work by holding their
    # Resource across the compute yields — by design, and on record.
    assert "dsp.resource" in held
    assert any(lock.endswith("gpu.resource") for lock in held)
    # No path in the tree ever holds two Resources at once, so the
    # lock-order rule has nothing to order (and nothing to invert).
    assert all(len(rec["locks"]) == 1 for rec in records)
