"""Fixture-driven coverage for every racecheck rule family.

Each fixture under ``fixtures/racecheck/`` is a miniature module of
cooperative process bodies. ``*_bad`` fixtures produce exactly the
findings named in ``EXPECTED``; ``*_ok`` fixtures are true negatives
exercising the guards the checker must respect (Resource locksets,
try/finally protection, re-reads, delta idioms, terminator pruning).
The pragma/baseline/CLI contract shared by the checker family is
covered at the bottom.
"""

import json
import pathlib

import pytest

from repro import cli
from repro.analysis import racecheck
from repro.analysis.common import LintError

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "racecheck"
PLAIN_PATH = "repo/src/repro/sim/fixture.py"

# fixture stem -> exact finding rules, in report order.
EXPECTED = {
    "atomicity_violation_bad": ["atomicity-violation"],
    "atomicity_violation_ok_lock": [],
    "atomicity_violation_ok_private": [],
    "atomicity_violation_ok_reread": [],
    "interrupt_unsafe_balance_bad": ["interrupt-unsafe-update"],
    "interrupt_unsafe_balance_ok_finally": [],
    "interrupt_unsafe_update_bad": ["interrupt-unsafe-update"],
    "interrupt_unsafe_update_ok_atomic": [],
    "interrupt_unsafe_update_ok_finally": [],
    "lock_order_inversion_bad": [
        "lock-order-inversion", "lock-order-inversion",
    ],
    "lock_order_inversion_ok": [],
    "racecheck_ok_init_writes": [],
    "racecheck_ok_loop_accumulator": [],
    "racecheck_ok_nonprocess": [],
    "racecheck_ok_raise_branch": [],
    "stale_read_across_yield_bad": ["stale-read-across-yield"],
    "stale_read_across_yield_ok_delta": [],
    "stale_read_across_yield_ok_lock": [],
    "stale_read_across_yield_ok_snapshot": [],
    # A write-back of a cached value is an atomicity violation, not a
    # stale read: the two rules must not double-report one defect.
    "stale_read_writeback_bad": ["atomicity-violation"],
    "unguarded_shared_write_bad": ["unguarded-shared-write"],
    "unguarded_shared_write_ok": [],
}


def check_fixture(stem):
    source = (FIXTURES / f"{stem}.py").read_text()
    findings, errors = racecheck.racecheck_source(
        source, f"{stem}.py", resolved_path=PLAIN_PATH)
    assert errors == []
    return findings


@pytest.mark.parametrize("stem", sorted(EXPECTED))
def test_fixture_produces_exactly_the_expected_findings(stem):
    findings = check_fixture(stem)
    assert [finding.rule for finding in findings] == EXPECTED[stem]


def test_fixture_table_is_exhaustive():
    on_disk = {path.stem for path in FIXTURES.glob("*.py")}
    assert on_disk == set(EXPECTED)


def test_every_rule_family_has_a_bad_and_an_ok_fixture():
    flagged = {rule for rules in EXPECTED.values() for rule in rules}
    assert flagged == set(racecheck.RULES_BY_ID)
    # Every rule with a positive fixture also has a same-family true
    # negative (shared `<family>_ok*` stem prefix).
    for stem, rules in EXPECTED.items():
        if not rules or not stem.endswith("_bad"):
            continue
        family = stem[: -len("_bad")]
        negatives = [
            other for other in EXPECTED
            if other.startswith(family) and not EXPECTED[other]
        ]
        if stem == "stale_read_writeback_bad":
            continue  # variant of the stale-read family above
        assert negatives, f"no true-negative fixture for {stem}"


def test_every_rule_id_has_a_hint_and_renders():
    findings = []
    for stem in ("atomicity_violation_bad", "unguarded_shared_write_bad",
                 "stale_read_across_yield_bad", "interrupt_unsafe_update_bad",
                 "lock_order_inversion_bad"):
        findings.extend(check_fixture(stem))
    assert {f.rule for f in findings} == set(racecheck.RULES_BY_ID)
    rendered = "\n".join(racecheck.render_findings(findings))
    for rule in racecheck.RULES_BY_ID.values():
        assert rule.hint  # each rule states its fix
    for finding in findings:
        assert f"[{finding.rule}]" in rendered
        assert racecheck.RULES_BY_ID[finding.rule].hint in rendered


def test_findings_carry_locations_and_messages():
    finding = check_fixture("atomicity_violation_bad")[0]
    assert finding.path == "atomicity_violation_bad.py"
    assert finding.line > 0
    assert "yield" in finding.message


# -- pragmas -------------------------------------------------------------


def test_line_pragma_suppresses_a_finding():
    source = (FIXTURES / "atomicity_violation_bad.py").read_text()
    line = check_fixture("atomicity_violation_bad")[0].line
    lines = source.splitlines()
    lines[line - 1] += "  # repro: allow[atomicity-violation]"
    findings, errors = racecheck.racecheck_source(
        "\n".join(lines) + "\n", "pragma.py", resolved_path=PLAIN_PATH)
    assert errors == []
    assert findings == []


def test_file_pragma_suppresses_the_whole_module():
    source = (FIXTURES / "interrupt_unsafe_update_bad.py").read_text()
    source = "# repro: allow-file[interrupt-unsafe-update]\n" + source
    findings, errors = racecheck.racecheck_source(
        source, "pragma.py", resolved_path=PLAIN_PATH)
    assert errors == []
    assert findings == []


def test_other_checkers_rule_ids_are_inert_but_valid():
    source = (FIXTURES / "atomicity_violation_bad.py").read_text()
    source = "# repro: allow-file[wall-clock]\n" + source
    findings, errors = racecheck.racecheck_source(
        source, "pragma.py", resolved_path=PLAIN_PATH)
    assert errors == []
    assert [f.rule for f in findings] == ["atomicity-violation"]


def test_unknown_rule_id_in_pragma_is_an_error():
    findings, errors = racecheck.racecheck_source(
        "# repro: allow-file[not-a-rule]\n", "pragma.py",
        resolved_path=PLAIN_PATH)
    assert findings == []
    assert len(errors) == 1
    assert isinstance(errors[0], LintError)
    assert "not-a-rule" in errors[0].message


def test_syntax_error_is_reported_not_raised():
    findings, errors = racecheck.racecheck_source(
        "def broken(:\n", "broken.py", resolved_path=PLAIN_PATH)
    assert findings == []
    assert len(errors) == 1


# -- lock inventory ------------------------------------------------------


def test_lock_inventory_reports_yields_while_holding(tmp_path):
    target = tmp_path / "transfer.py"
    target.write_text((FIXTURES / "lock_order_inversion_ok.py").read_text())
    records, errors = racecheck.lock_inventory([target])
    assert errors == []
    # Each body yields once holding bus_a, once holding bus_a + bus_b.
    assert len(records) == 4
    assert [rec["locks"] for rec in records] == [
        ["bus_a"], ["bus_a", "bus_b"], ["bus_a"], ["bus_a", "bus_b"],
    ]
    assert {rec["function"] for rec in records} == {
        "Transfer.move_one", "Transfer.move_two",
    }
    assert records == sorted(
        records, key=lambda rec: (rec["path"], rec["line"]))


# -- CLI contract --------------------------------------------------------


def _write_bad_module(tmp_path):
    target = tmp_path / "channel.py"
    target.write_text((FIXTURES / "atomicity_violation_bad.py").read_text())
    return target


def test_cli_exit_codes_and_baseline_round_trip(tmp_path, capsys):
    target = _write_bad_module(tmp_path)
    baseline = tmp_path / "baseline.json"

    assert cli.main(["racecheck", str(target)]) == 1
    assert "[atomicity-violation]" in capsys.readouterr().out

    assert cli.main([
        "racecheck", str(target),
        "--baseline", str(baseline), "--write-baseline",
    ]) == 0
    assert cli.main([
        "racecheck", str(target), "--baseline", str(baseline), "--check",
    ]) == 0

    # Fixed in-tree: the acknowledged entry is now stale and --check
    # turns staleness into a configuration error.
    target.write_text(
        (FIXTURES / "atomicity_violation_ok_reread.py").read_text())
    capsys.readouterr()
    assert cli.main([
        "racecheck", str(target), "--baseline", str(baseline), "--check",
    ]) == 2


def test_cli_json_format_matches_the_checker_family(tmp_path, capsys):
    target = _write_bad_module(tmp_path)
    assert cli.main(["racecheck", str(target), "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "atomicity-violation"
    assert set(payload[0]) == {"rule", "path", "line", "col", "message"}


def test_cli_list_locks_prints_the_inventory(tmp_path, capsys):
    target = tmp_path / "transfer.py"
    target.write_text((FIXTURES / "lock_order_inversion_ok.py").read_text())
    assert cli.main(["racecheck", str(target), "--list-locks"]) == 0
    out = capsys.readouterr().out
    assert "Transfer.move_one yields holding [bus_a, bus_b]" in out
    assert "4 yield(s) while holding" in out

    assert cli.main([
        "racecheck", str(target), "--list-locks", "--format=json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 4
    assert set(payload[0]) >= {"path", "line", "function", "locks"}
