"""The shared checker machinery itself: pragmas, baselines, JSON.

lint/semcheck/archcheck all ride on analysis/common.py and
analysis/baseline.py; these tests pin the cross-tool contract — one
pragma namespace spanning every checker, baselines that only shrink,
and a stable JSON finding schema.
"""

import json

from repro.analysis import archcheck, baseline, common, lint, semcheck


def test_known_rule_ids_union_all_three_checkers():
    known = common.known_rule_ids()
    assert set(lint.RULES_BY_ID) <= known
    assert set(semcheck.RULES_BY_ID) <= known
    assert set(archcheck.RULES_BY_ID) <= known
    # The checkers own disjoint rule-id namespaces.
    assert not set(lint.RULES_BY_ID) & set(archcheck.RULES_BY_ID)
    assert not set(semcheck.RULES_BY_ID) & set(archcheck.RULES_BY_ID)


def test_pragma_for_another_checker_is_inert_not_an_error(tmp_path):
    # A file carrying only archcheck pragmas must lint clean: shared
    # namespace means no checker rejects another checker's rule ids.
    target = tmp_path / "mod.py"
    target.write_text(
        "# repro: allow-file[sim-blocking-call]\n"
        "VALUE = 1  # repro: allow[layer-violation]\n"
    )
    findings, errors = lint.lint_paths([target])
    assert findings == []
    assert errors == []
    findings, errors = semcheck.semcheck_paths([target])
    assert findings == []
    assert errors == []


def test_findings_to_json_schema():
    finding = common.Finding("wall-clock", "a.py", 3, 7, "tick")
    payload = common.findings_to_json([finding])
    assert json.loads(json.dumps(payload)) == [{
        "rule": "wall-clock",
        "path": "a.py",
        "line": 3,
        "col": 7,
        "message": "tick",
    }]


def test_baseline_round_trip_preserves_unknown_free_entries(tmp_path):
    path = tmp_path / "baseline.json"
    findings = [
        common.Finding("wall-clock", "b.py", 9, 0, "m"),
        common.Finding("wall-clock", "a.py", 4, 0, "m"),
    ]
    count = baseline.write_baseline(path, findings)
    assert count == 2
    entries, errors = baseline.load_baseline(
        path, known_rules=common.known_rule_ids()
    )
    assert errors == []
    assert [e.key() for e in entries] == [
        ("a.py", 4, "wall-clock"),
        ("b.py", 9, "wall-clock"),
    ]


def test_baseline_rejects_rules_unknown_to_every_checker(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "entries": [
            {"rule": "sim-blocking-call", "path": "a.py", "line": 1},
            {"rule": "never-a-rule", "path": "a.py", "line": 2},
        ],
    }))
    entries, errors = baseline.load_baseline(
        path, known_rules=common.known_rule_ids()
    )
    # The archcheck rule parses (family-wide namespace); the junk
    # entry is a hard error, not a silent skip.
    assert [e.rule for e in entries] == ["sim-blocking-call"]
    assert len(errors) == 1
    assert "never-a-rule" in errors[0].message


def test_inventory_pragmas_lists_every_suppression(tmp_path):
    first = tmp_path / "first.py"
    first.write_text(
        "import time\n"
        "T0 = time.time()  # repro: allow[wall-clock]\n"
    )
    second = tmp_path / "second.py"
    second.write_text("# repro: allow-file[unsorted-items, wall-clock]\n")
    records, errors = common.inventory_pragmas([tmp_path])
    assert errors == []
    assert records == [
        {
            "path": str(first),
            "line": 2,
            "kind": "allow",
            "rules": ["wall-clock"],
        },
        {
            "path": str(second),
            "line": 1,
            "kind": "allow-file",
            "rules": ["unsorted-items", "wall-clock"],
        },
    ]


def test_inventory_pragmas_flags_unknown_rule_ids(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("VALUE = 1  # repro: allow[bogus-rule]\n")
    records, errors = common.inventory_pragmas([tmp_path])
    # The record still appears (the audit shows everything) but the
    # unknown rule id is a hard error, exactly as in a check run.
    assert [record["rules"] for record in records] == [["bogus-rule"]]
    assert len(errors) == 1
    assert "bogus-rule" in errors[0].message


def test_repo_pragma_inventory_is_tiny():
    # Every committed suppression must be deliberate; inventory the
    # real tree so new pragmas show up in review.
    import pathlib

    src = pathlib.Path(common.__file__).resolve().parents[1]
    records, errors = common.inventory_pragmas([src])
    assert errors == []
    assert len(records) <= 4, records
    for record in records:
        assert record["kind"] in {"allow", "allow-file"}
