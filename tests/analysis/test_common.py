"""The shared checker machinery itself: pragmas, baselines, JSON.

lint/semcheck/archcheck all ride on analysis/common.py and
analysis/baseline.py; these tests pin the cross-tool contract — one
pragma namespace spanning every checker, baselines that only shrink,
and a stable JSON finding schema.
"""

import json

from repro.analysis import archcheck, baseline, common, lint, semcheck


def test_known_rule_ids_union_all_three_checkers():
    known = common.known_rule_ids()
    assert set(lint.RULES_BY_ID) <= known
    assert set(semcheck.RULES_BY_ID) <= known
    assert set(archcheck.RULES_BY_ID) <= known
    # The checkers own disjoint rule-id namespaces.
    assert not set(lint.RULES_BY_ID) & set(archcheck.RULES_BY_ID)
    assert not set(semcheck.RULES_BY_ID) & set(archcheck.RULES_BY_ID)


def test_pragma_for_another_checker_is_inert_not_an_error(tmp_path):
    # A file carrying only archcheck pragmas must lint clean: shared
    # namespace means no checker rejects another checker's rule ids.
    target = tmp_path / "mod.py"
    target.write_text(
        "# repro: allow-file[sim-blocking-call]\n"
        "VALUE = 1  # repro: allow[layer-violation]\n"
    )
    findings, errors = lint.lint_paths([target])
    assert findings == []
    assert errors == []
    findings, errors = semcheck.semcheck_paths([target])
    assert findings == []
    assert errors == []


def test_findings_to_json_schema():
    finding = common.Finding("wall-clock", "a.py", 3, 7, "tick")
    payload = common.findings_to_json([finding])
    assert json.loads(json.dumps(payload)) == [{
        "rule": "wall-clock",
        "path": "a.py",
        "line": 3,
        "col": 7,
        "message": "tick",
    }]


def test_baseline_round_trip_preserves_unknown_free_entries(tmp_path):
    path = tmp_path / "baseline.json"
    findings = [
        common.Finding("wall-clock", "b.py", 9, 0, "m"),
        common.Finding("wall-clock", "a.py", 4, 0, "m"),
    ]
    count = baseline.write_baseline(path, findings)
    assert count == 2
    entries, errors = baseline.load_baseline(
        path, known_rules=common.known_rule_ids()
    )
    assert errors == []
    assert [e.key() for e in entries] == [
        ("a.py", 4, "wall-clock"),
        ("b.py", 9, "wall-clock"),
    ]


def test_baseline_rejects_rules_unknown_to_every_checker(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "entries": [
            {"rule": "sim-blocking-call", "path": "a.py", "line": 1},
            {"rule": "never-a-rule", "path": "a.py", "line": 2},
        ],
    }))
    entries, errors = baseline.load_baseline(
        path, known_rules=common.known_rule_ids()
    )
    # The archcheck rule parses (family-wide namespace); the junk
    # entry is a hard error, not a silent skip.
    assert [e.rule for e in entries] == ["sim-blocking-call"]
    assert len(errors) == 1
    assert "never-a-rule" in errors[0].message


def test_inventory_pragmas_lists_every_suppression(tmp_path):
    first = tmp_path / "first.py"
    first.write_text(
        "import time\n"
        "T0 = time.time()  # repro: allow[wall-clock]\n"
    )
    second = tmp_path / "second.py"
    second.write_text("# repro: allow-file[unsorted-items, wall-clock]\n")
    records, errors = common.inventory_pragmas([tmp_path])
    assert errors == []
    assert records == [
        {
            "path": str(first),
            "line": 2,
            "kind": "allow",
            "rules": ["wall-clock"],
        },
        {
            "path": str(second),
            "line": 1,
            "kind": "allow-file",
            "rules": ["unsorted-items", "wall-clock"],
        },
    ]


def test_inventory_pragmas_flags_unknown_rule_ids(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("VALUE = 1  # repro: allow[bogus-rule]\n")
    records, errors = common.inventory_pragmas([tmp_path])
    # The record still appears (the audit shows everything) but the
    # unknown rule id is a hard error, exactly as in a check run.
    assert [record["rules"] for record in records] == [["bogus-rule"]]
    assert len(errors) == 1
    assert "bogus-rule" in errors[0].message


def test_rule_owners_covers_every_known_rule_exactly_once():
    owners = common.rule_owners()
    assert set(owners) == set(common.known_rule_ids())
    assert set(owners.values()) == {
        "lint", "semcheck", "archcheck", "racecheck",
    }
    assert owners["wall-clock"] == "lint"
    assert owners["sim-blocking-call"] == "archcheck"
    assert owners["atomicity-violation"] == "racecheck"


def test_prune_baseline_drops_only_stale_entries(tmp_path):
    path = tmp_path / "baseline.json"
    live = common.Finding("wall-clock", "a.py", 4, 0, "m")
    gone = common.Finding("wall-clock", "b.py", 9, 0, "m")
    baseline.write_baseline(path, [live, gone])

    kept, pruned, errors = baseline.prune_baseline(
        path, [live], known_rules=common.known_rule_ids()
    )
    assert errors == []
    assert [e.key() for e in kept] == [("a.py", 4, "wall-clock")]
    assert [e.key() for e in pruned] == [("b.py", 9, "wall-clock")]
    # The file was rewritten without the stale entry.
    entries, errors = baseline.load_baseline(
        path, known_rules=common.known_rule_ids()
    )
    assert errors == []
    assert [e.key() for e in entries] == [("a.py", 4, "wall-clock")]


def test_prune_baseline_never_repairs_an_unreadable_file(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{not json")
    before = path.read_text()
    _kept, pruned, errors = baseline.prune_baseline(
        path, [], known_rules=common.known_rule_ids()
    )
    assert pruned == []
    assert len(errors) == 1
    assert path.read_text() == before


def test_prune_baseline_leaves_a_current_file_untouched(tmp_path):
    path = tmp_path / "baseline.json"
    live = common.Finding("wall-clock", "a.py", 4, 0, "m")
    baseline.write_baseline(path, [live])
    stamp = path.read_text()
    kept, pruned, errors = baseline.prune_baseline(
        path, [live], known_rules=common.known_rule_ids()
    )
    assert (len(kept), pruned, errors) == (1, [], [])
    assert path.read_text() == stamp


def test_list_pragmas_merges_rows_and_annotates_owning_tools(
        tmp_path, capsys):
    from repro import cli

    target = tmp_path / "mod.py"
    target.write_text(
        "import time\n"
        "T0 = time.time()  # repro: allow[wall-clock]\n"
        "X = 1  # repro: allow[atomicity-violation]\n"
        "# repro: allow-file[sim-blocking-call]\n"
    )
    assert cli.main(["check", str(target), "--list-pragmas"]) == 0
    out = capsys.readouterr().out
    assert "allow[wall-clock] (lint)" in out
    assert "allow[atomicity-violation] (racecheck)" in out
    assert "allow-file[sim-blocking-call] (archcheck)" in out
    assert "3 pragma(s)" in out

    assert cli.main([
        "check", str(target), "--list-pragmas", "--format=json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [row["tools"] for row in payload] == [
        ["lint"], ["racecheck"], ["archcheck"],
    ]
    assert all(row["unrecognized"] == [] for row in payload)


def test_list_pragmas_flags_rules_no_tool_recognizes(tmp_path, capsys):
    from repro import cli

    target = tmp_path / "mod.py"
    target.write_text("X = 1  # repro: allow[not-anyones-rule]\n")
    assert cli.main(["check", str(target), "--list-pragmas"]) == 2
    out = capsys.readouterr().out
    assert "unrecognized by every tool: not-anyones-rule" in out


def test_cli_update_baseline_prunes_and_reports(tmp_path, capsys):
    from repro import cli

    target = tmp_path / "mod.py"
    target.write_text("import time\nT0 = time.time()\n")
    path = tmp_path / "baseline.json"
    assert cli.main([
        "lint", str(target), "--baseline", str(path), "--write-baseline",
    ]) == 0
    capsys.readouterr()

    # Nothing stale yet: the file is left alone.
    assert cli.main([
        "lint", str(target), "--baseline", str(path), "--update-baseline",
    ]) == 0
    assert "pruned 0 stale entries, 1 kept" in capsys.readouterr().out

    # Fix the hazard; the acknowledged entry is now stale and pruned.
    target.write_text("VALUE = 1\n")
    assert cli.main([
        "lint", str(target), "--baseline", str(path), "--update-baseline",
    ]) == 0
    out = capsys.readouterr().out
    assert "[wall-clock]" in out
    assert "pruned 1 stale entry, 0 kept" in out
    assert json.loads(path.read_text())["entries"] == []


def test_repo_pragma_inventory_is_tiny():
    # Every committed suppression must be deliberate; inventory the
    # real tree so new pragmas show up in review.
    import pathlib

    src = pathlib.Path(common.__file__).resolve().parents[1]
    records, errors = common.inventory_pragmas([src])
    assert errors == []
    assert len(records) <= 4, records
    for record in records:
        assert record["kind"] in {"allow", "allow-file"}
