"""Fixture-driven coverage for every determinism lint rule.

Each rule has a positive fixture (``<rule>_bad.py``, must flag) and a
negative fixture (``<rule>_ok.py``, must stay clean), plus targeted
tests for pragma suppression, config scoping, the baseline workflow,
and the CLI exit codes.
"""

import json
import pathlib

import pytest

from repro import cli
from repro.analysis import lint
from repro.analysis.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: unsorted-items only fires in artifact-export modules, so its fixtures
#: are resolved as if they lived in one; everything else gets a neutral
#: simulation-module path.
EXPORT_PATH = "repo/src/repro/observability/fixture.py"
PLAIN_PATH = "repo/src/repro/sim/fixture.py"


def lint_fixture(rule, flavor):
    name = rule.replace("-", "_") + f"_{flavor}.py"
    source = (FIXTURES / name).read_text()
    resolved = EXPORT_PATH if rule == "unsorted-items" else PLAIN_PATH
    findings, errors = lint.lint_source(source, name, resolved_path=resolved)
    assert errors == []
    return findings


@pytest.mark.parametrize("rule", sorted(lint.RULES_BY_ID))
def test_bad_fixture_is_flagged(rule):
    findings = lint_fixture(rule, "bad")
    assert rule in {finding.rule for finding in findings}


@pytest.mark.parametrize("rule", sorted(lint.RULES_BY_ID))
def test_ok_fixture_is_clean(rule):
    assert lint_fixture(rule, "ok") == []


def test_every_rule_has_both_fixtures():
    for rule in lint.RULES_BY_ID:
        stem = rule.replace("-", "_")
        assert (FIXTURES / f"{stem}_bad.py").exists()
        assert (FIXTURES / f"{stem}_ok.py").exists()


# -- suppression ---------------------------------------------------------


def test_line_pragma_suppresses_one_line():
    source = (
        "import time\n"
        "T0 = time.time()  # repro: allow[wall-clock]\n"
        "T1 = time.time()\n"
    )
    findings, errors = lint.lint_source(source, "x.py")
    assert errors == []
    assert [finding.line for finding in findings] == [3]


def test_file_pragma_suppresses_whole_file():
    source = (
        "# repro: allow-file[wall-clock]\n"
        "import time\n"
        "T0 = time.time()\n"
        "T1 = time.time()\n"
    )
    findings, errors = lint.lint_source(source, "x.py")
    assert findings == [] and errors == []


def test_pragma_quoted_in_docstring_does_not_suppress():
    source = (
        '"""Example: # repro: allow-file[wall-clock]."""\n'
        "import time\n"
        "T0 = time.time()\n"
    )
    findings, errors = lint.lint_source(source, "x.py")
    assert errors == []
    assert [finding.rule for finding in findings] == ["wall-clock"]


def test_unknown_rule_in_pragma_is_a_hard_error():
    source = "X = 1  # repro: allow[not-a-rule]\n"
    findings, errors = lint.lint_source(source, "x.py")
    assert findings == []
    assert len(errors) == 1 and "not-a-rule" in errors[0].message


def test_empty_pragma_rule_list_is_a_hard_error():
    _findings, errors = lint.lint_source("X = 1  # repro: allow[]\n", "x.py")
    assert len(errors) == 1 and "empty" in errors[0].message


# -- config scoping ------------------------------------------------------


def test_wallclock_allowed_in_calibration_module():
    source = "import time\nT0 = time.time()\n"
    findings, _errors = lint.lint_source(
        source,
        "calibrate.py",
        resolved_path="repo/src/repro/processing/calibrate.py",
    )
    assert findings == []


def test_unsorted_items_ignored_outside_export_modules():
    source = (FIXTURES / "unsorted_items_bad.py").read_text()
    findings, _errors = lint.lint_source(
        source, "x.py", resolved_path=PLAIN_PATH
    )
    assert findings == []


# -- baseline workflow ---------------------------------------------------


def test_baseline_round_trip(tmp_path):
    findings = lint_fixture("wall-clock", "bad")
    path = tmp_path / "baseline.json"
    count = write_baseline(path, findings)
    assert count == len(findings) > 0
    entries, errors = load_baseline(path)
    assert errors == []
    new, stale = apply_baseline(findings, entries)
    assert new == [] and stale == []


def test_unknown_rule_in_baseline_is_a_hard_error(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "entries": [{"rule": "ghost-rule", "path": "x.py", "line": 1}],
    }))
    entries, errors = load_baseline(path)
    assert entries == []
    assert len(errors) == 1 and "ghost-rule" in errors[0].message


def test_stale_baseline_entries_are_surfaced():
    entries = [BaselineEntry(rule="wall-clock", path="gone.py", line=3)]
    new, stale = apply_baseline([], entries)
    assert new == [] and stale == entries


# -- CLI exit codes ------------------------------------------------------


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nT0 = time.time()\n")
    baseline = tmp_path / "baseline.json"

    assert cli.main(["lint", str(bad)]) == 1
    assert "[wall-clock]" in capsys.readouterr().out

    assert cli.main(
        ["lint", str(bad), "--baseline", str(baseline), "--write-baseline"]
    ) == 0
    assert cli.main(
        ["lint", str(bad), "--baseline", str(baseline), "--check"]
    ) == 0

    # The hazard is fixed: the baseline entry is now stale, which is a
    # warning normally but a config error (exit 2) under --check.
    bad.write_text("T0 = 1\n")
    capsys.readouterr()
    assert cli.main(["lint", str(bad), "--baseline", str(baseline)]) == 0
    assert "stale" in capsys.readouterr().out
    assert cli.main(
        ["lint", str(bad), "--baseline", str(baseline), "--check"]
    ) == 2


def test_cli_unknown_pragma_rule_exits_2(tmp_path):
    bad = tmp_path / "typo.py"
    bad.write_text("X = 1  # repro: allow[wall-clok]\n")
    assert cli.main(["lint", str(bad)]) == 2


def test_cli_json_output(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nT0 = time.time()\n")
    assert cli.main(["lint", str(bad), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "wall-clock"
