"""MLPerf-style loadgen tests."""

import pytest

from repro.android import Kernel
from repro.apps.loadgen import (
    MULTI_STREAM,
    OFFLINE,
    SERVER,
    SINGLE_STREAM,
    MlperfLoadgen,
)
from repro.sim import Simulator
from repro.soc import make_soc


def make_loadgen(seed=0, **kwargs):
    sim = Simulator(seed=seed)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    defaults = dict(model_key="mobilenet_v1", dtype="int8", target="cpu")
    defaults.update(kwargs)
    return MlperfLoadgen(kernel, **defaults)


def test_single_stream_reports_p90():
    result = make_loadgen().run(SINGLE_STREAM, queries=20)
    assert result.query_count == 20
    assert result.p90_latency_ms >= result.mean_latency_ms * 0.9
    assert result.scenario == SINGLE_STREAM
    assert result.throughput_qps > 0


def test_offline_throughput_consistent_with_latency():
    result = make_loadgen().run(OFFLINE, queries=20)
    implied_qps = 1000.0 / result.mean_latency_ms
    assert result.throughput_qps == pytest.approx(implied_qps, rel=0.2)


def test_unknown_scenario_raises():
    with pytest.raises(ValueError, match="unknown scenario"):
        make_loadgen().run("cloud", queries=5)


def test_offline_wall_excludes_prepare_and_warmup():
    # The offline denominator is the recorded offline window, which is
    # exactly the sum of the timed invokes — prepare and the untimed
    # warm-up must not inflate it.
    result = make_loadgen().run(OFFLINE, queries=10)
    implied_qps = 1000.0 / result.mean_latency_ms
    assert result.throughput_qps == pytest.approx(implied_qps, rel=1e-6)


def test_multi_stream_latency_covers_all_streams():
    single = make_loadgen().run(SINGLE_STREAM, queries=10)
    multi = make_loadgen().run(MULTI_STREAM, queries=10, streams=4)
    assert multi.scenario == MULTI_STREAM
    assert multi.query_count == 10
    # A 4-stream query serves 4 samples back to back.
    assert multi.mean_latency_ms > 2.0 * single.mean_latency_ms


def test_server_goodput_tracks_slo():
    strict = make_loadgen().run(
        SERVER, queries=20, target_qps=30.0, slo_ms=0.001, seed=3
    )
    assert strict.scenario == SERVER
    assert strict.goodput_qps == 0.0
    assert strict.slo_miss_rate == 1.0
    loose = make_loadgen().run(
        SERVER, queries=20, target_qps=30.0, slo_ms=None, seed=3
    )
    # No SLO: every completion is good, so goodput equals throughput.
    assert loose.goodput_qps == pytest.approx(loose.throughput_qps)
    assert loose.slo_miss_rate == 0.0


def test_server_queueing_shows_in_latency():
    # Offered load far above capacity: arrivals pile up behind the
    # single device and the open-loop latency includes the queue wait.
    slow = make_loadgen().run(
        SERVER, queries=15, target_qps=2000.0, slo_ms=50.0, seed=1
    )
    paced = make_loadgen().run(
        SERVER, queries=15, target_qps=5.0, slo_ms=50.0, seed=1
    )
    assert slow.p90_latency_ms > paced.p90_latency_ms


def test_server_same_seed_replays_identically():
    a = make_loadgen().run(SERVER, queries=12, target_qps=40.0, seed=9)
    b = make_loadgen().run(SERVER, queries=12, target_qps=40.0, seed=9)
    assert a == b


def test_dsp_target_beats_cpu_on_p90():
    cpu = make_loadgen(target="cpu").run(SINGLE_STREAM, queries=15)
    dsp = make_loadgen(target="hexagon").run(SINGLE_STREAM, queries=15)
    assert dsp.p90_latency_ms < cpu.p90_latency_ms


def test_mlperf_gap_experiment():
    from repro.experiments import run_experiment

    result = run_experiment("mlperf_gap", queries=15, runs=8)
    rows = {row[0]: row[1] for row in result.rows}
    assert rows["app/benchmark latency gap"] > 1.5
    assert 0.3 < rows["AI tax hidden by the benchmark"] < 0.95
    assert rows["app inference-only ms"] == pytest.approx(
        rows["single-stream mean latency ms"], rel=0.5
    )


def test_driver_versions_fix_the_fig5_bug():
    from repro.experiments import run_experiment

    result = run_experiment("driver_versions", invokes=5)
    rows = result.row_map("feature level")
    assert rows[1.1][2] is True  # reference fallback on 1.1
    assert rows[1.2][2] is False
    assert rows[1.3][2] is False
    assert rows[1.2][1] < rows[1.1][1] / 10  # bug fixed: >10x faster
    assert rows[1.2][3] == 1.0
