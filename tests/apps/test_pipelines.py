"""App pipeline tests: packagings, harness, background load."""

import pytest

from repro.android import Kernel
from repro.apps import (
    AndroidApp,
    BenchmarkApp,
    BenchmarkCli,
    PipelineConfig,
    make_session,
    run_pipeline,
    start_background_inferences,
)
from repro.core import breakdown
from repro.sim import Simulator
from repro.soc import make_soc


def make_rig(seed=0):
    sim = Simulator(seed=seed)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    return sim, kernel


def test_make_session_targets():
    sim, kernel = make_rig()
    from repro.models import load_model

    model = load_model("mobilenet_v1", "int8")
    for target in ("cpu", "cpu1", "nnapi", "hexagon", "snpe-dsp"):
        session = make_session(kernel, model, target=target)
        assert session is not None
    with pytest.raises(ValueError, match="unknown target"):
        make_session(kernel, model, target="tpu")


def test_cli_benchmark_records_stages():
    sim, kernel = make_rig()
    bench = BenchmarkCli(kernel, "mobilenet_v1", dtype="fp32", target="cpu")
    records = bench.execute(runs=4)
    assert len(records) == 4
    for run in records:
        assert run.inference_us > 0
        assert run.capture_us > 0  # random generation
        assert run.other_us == 0  # no UI


def test_benchmark_app_adds_ui_work():
    sim, kernel = make_rig()
    bench = BenchmarkApp(kernel, "mobilenet_v1", dtype="fp32", target="cpu")
    records = bench.execute(runs=3)
    assert all(run.other_us > 0 for run in records)


def test_android_app_full_pipeline():
    sim, kernel = make_rig()
    app = AndroidApp(kernel, "mobilenet_v1", dtype="int8", target="hexagon")
    records = app.execute(runs=4)
    assert len(records) == 4
    for run in records:
        assert run.capture_us > 0
        assert run.pre_us > 0
        assert run.inference_us > 0
        assert run.post_us > 0
        assert run.other_us > 0


def test_android_app_bert_has_no_camera():
    sim, kernel = make_rig()
    app = AndroidApp(kernel, "mobile_bert", dtype="fp32", target="cpu")
    assert app.camera is None
    records = app.execute(runs=2)
    assert all(run.capture_us > 0 for run in records)  # text arrival IPC


def test_first_run_includes_warmup_effects():
    config = PipelineConfig(
        model_key="mobilenet_v1", dtype="int8", context="app",
        target="hexagon", runs=5,
    )
    records = run_pipeline(config)
    warm = records.drop_warmup(1)
    assert records.runs[0].inference_us > warm.mean_us("inference_us")


def test_run_pipeline_contexts_ordering():
    totals = {}
    for context in ("cli", "bench_app", "app"):
        config = PipelineConfig(
            model_key="mobilenet_v1", dtype="fp32", context=context,
            target="cpu", runs=6,
        )
        totals[context] = breakdown(run_pipeline(config)).total_ms
    assert totals["app"] > totals["cli"]
    assert totals["bench_app"] >= totals["cli"]


def test_bad_context_rejected():
    with pytest.raises(ValueError, match="unknown context"):
        PipelineConfig(context="daemon")


def test_background_jobs_contend_for_dsp():
    inference = {}
    for count in (0, 3):
        config = PipelineConfig(
            model_key="mobilenet_v1", dtype="int8", context="app",
            target="nnapi", runs=6,
            background=(count, "nnapi") if count else None,
        )
        inference[count] = breakdown(run_pipeline(config)).inference_ms
    assert inference[3] > 1.8 * inference[0]


def test_background_jobs_on_cpu_leave_dsp_alone():
    config = PipelineConfig(
        model_key="mobilenet_v1", dtype="int8", context="app",
        target="nnapi", runs=6, background=(3, "cpu"),
        background_dtype="fp32", background_threads=4,
    )
    loaded = breakdown(run_pipeline(config))
    config_idle = PipelineConfig(
        model_key="mobilenet_v1", dtype="int8", context="app",
        target="nnapi", runs=6,
    )
    idle = breakdown(run_pipeline(config_idle))
    assert loaded.inference_ms < 1.6 * idle.inference_ms


def test_negative_background_count_rejected():
    sim, kernel = make_rig()
    with pytest.raises(ValueError):
        start_background_inferences(kernel, -1)


def test_background_finite_iterations():
    sim, kernel = make_rig()
    threads = start_background_inferences(
        kernel, 2, target="cpu", dtype="fp32", iterations=2
    )
    sim.run(until=sim.all_of([thread.done for thread in threads]))
    assert all(thread.done.triggered for thread in threads)


def test_deterministic_pipeline_given_seed():
    config = PipelineConfig(
        model_key="mobilenet_v1", dtype="fp32", context="app",
        target="cpu", runs=5, seed=11,
    )
    first = run_pipeline(config).mean_us()
    second = run_pipeline(config).mean_us()
    assert first == second


def test_different_seeds_vary_app_latency():
    means = set()
    for seed in (1, 2, 3):
        config = PipelineConfig(
            model_key="mobilenet_v1", dtype="fp32", context="app",
            target="cpu", runs=5, seed=seed,
        )
        means.add(round(run_pipeline(config).mean_us(), 3))
    assert len(means) > 1
