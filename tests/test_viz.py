"""Terminal visualization tests."""

from repro.viz import (
    bar_chart,
    grouped_bars,
    histogram,
    line_series,
    profile_strips,
    timeline_strip,
)


def test_bar_chart_scales_to_max():
    chart = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
    lines = chart.splitlines()
    assert lines[0].count("█") == 10
    assert lines[1].count("█") == 5
    assert "10.00 ms" in lines[0]


def test_bar_chart_title_and_empty():
    assert bar_chart([], title="t") == "(no data)"
    chart = bar_chart([("x", 1.0)], title="My Chart")
    assert chart.splitlines()[0] == "My Chart"


def test_grouped_bars_stack_and_legend():
    chart = grouped_bars(
        [("run", [5.0, 5.0])], stages=("pre", "infer"), width=10
    )
    lines = chart.splitlines()
    assert "pre" in lines[0] and "infer" in lines[0]
    assert "█" in lines[1] and "▓" in lines[1]
    assert "10.00" in lines[1]


def test_histogram_counts_every_sample():
    values = [1.0] * 5 + [2.0] * 3 + [9.0]
    chart = histogram(values, bins=4, width=10)
    counted = sum(
        int(line.rsplit(" ", 1)[-1]) for line in chart.splitlines()
    )
    assert counted == len(values)


def test_histogram_degenerate():
    assert "all 3 samples" in histogram([2.0, 2.0, 2.0])
    assert histogram([]) == "(no data)"


def test_timeline_strip_shading():
    strip = timeline_strip([0.0, 0.5, 1.0], label="cpu0")
    assert strip.startswith("  cpu0 |")
    body = strip.split("|")[1]
    assert body[0] == " "
    assert body[-1] == "█"


def test_timeline_strip_downsamples():
    strip = timeline_strip([1.0] * 100, width=10)
    assert len(strip.split("|")[1]) == 10


def test_profile_strips_order():
    text = profile_strips(
        {"cpu0": [1.0], "cdsp": [0.0]}, order=["cdsp", "cpu0"]
    )
    lines = text.splitlines()
    assert lines[0].strip().startswith("cdsp")
    assert lines[1].strip().startswith("cpu0")


def test_line_series_plots_extremes():
    text = line_series([1, 2, 3], [1.0, 2.0, 3.0], width=12, height=5)
    lines = text.splitlines()
    assert "o" in lines[0]  # max y at top
    assert "o" in lines[4]  # min y at bottom


def test_line_series_empty():
    assert line_series([], []) == "(no data)"
