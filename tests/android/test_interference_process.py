"""Interference daemons, app processes, GC, and binder tests."""

import pytest

from repro.android import AppProcess, Kernel
from repro.android.interference import (
    APP_DAEMONS,
    BENCHMARK_DAEMONS,
    InterferenceProfile,
    start_interference,
)
from repro.android.thread import Work
from repro.sim import Simulator
from repro.soc import make_soc


def make_rig(seed=0):
    sim = Simulator(seed=seed)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    return sim, soc, kernel


def test_profiles():
    app = InterferenceProfile.app()
    assert app.daemons == APP_DAEMONS
    bench = InterferenceProfile.benchmark()
    assert bench.daemons == BENCHMARK_DAEMONS
    assert len(app.daemons) > len(bench.daemons)
    none = InterferenceProfile.none()
    assert none.intensity == 0.0


def test_none_profile_spawns_nothing():
    sim, soc, kernel = make_rig()
    threads = start_interference(kernel, InterferenceProfile.none())
    assert threads == []


def test_daemons_consume_cpu_over_time():
    sim, soc, kernel = make_rig()
    threads = start_interference(kernel, InterferenceProfile.app())
    assert len(threads) == len(APP_DAEMONS)
    sim.run(until=1_000_000)
    consumed = sum(thread.stats.cpu_time_us for thread in threads)
    # Over one second the daemon population burns some milliseconds.
    assert consumed > 2_000
    # ... but nowhere near a full core.
    assert consumed < 300_000


def test_app_interference_heavier_than_benchmark():
    consumed = {}
    for name, profile in (
        ("app", InterferenceProfile.app()),
        ("bench", InterferenceProfile.benchmark()),
    ):
        sim, soc, kernel = make_rig()
        threads = start_interference(kernel, profile)
        sim.run(until=1_000_000)
        consumed[name] = sum(t.stats.cpu_time_us for t in threads)
    assert consumed["app"] > 3 * consumed["bench"]


def test_intensity_scales_bursts():
    consumed = {}
    for intensity in (0.5, 2.0):
        sim, soc, kernel = make_rig()
        threads = start_interference(
            kernel, InterferenceProfile("x", APP_DAEMONS, intensity)
        )
        sim.run(until=1_000_000)
        consumed[intensity] = sum(t.stats.cpu_time_us for t in threads)
    assert consumed[2.0] > 2 * consumed[0.5]


def test_app_process_has_gc_thread():
    sim, soc, kernel = make_rig()
    managed = AppProcess(kernel, "managed", managed_runtime=True)
    unmanaged = AppProcess(kernel, "native", managed_runtime=False)
    assert managed._gc_thread is not None
    assert unmanaged._gc_thread is None
    assert managed.pid != unmanaged.pid


def test_gc_steals_cpu_from_app():
    sim, soc, kernel = make_rig()
    process = AppProcess(kernel, "app", managed_runtime=True)
    sim.run(until=3_000_000)
    assert process._gc_thread.stats.cpu_time_us > 0


def test_process_spawn_names_threads():
    sim, soc, kernel = make_rig()
    process = AppProcess(kernel, "myapp")

    def body():
        yield Work(100)

    thread = process.spawn(body(), "worker")
    assert thread.name == "myapp:worker"
    assert thread.process is process
    assert thread in process.threads
    sim.run(until=thread.done)


def test_binder_call_charges_caller():
    sim, soc, kernel = make_rig()
    timeline = {}

    def body():
        start = kernel.now
        yield from kernel.binder_call(service_work_us=5_000)
        timeline["elapsed"] = kernel.now - start

    thread = kernel.spawn_on_big(body(), name="caller")
    sim.run(until=thread.done)
    # Transaction overhead + blocked on remote service work.
    assert timeline["elapsed"] > 5_000
    assert thread.stats.cpu_time_us < 1_000  # service work not on caller


def test_fastrpc_channel_per_process():
    sim, soc, kernel = make_rig()
    first = AppProcess(kernel, "a")
    second = AppProcess(kernel, "b")
    assert first.fastrpc.process_id == first.pid
    assert first.fastrpc is not second.fastrpc
