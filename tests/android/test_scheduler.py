"""Scheduler behaviour tests: fairness, affinity, contention, migration."""

import pytest

from repro.android import Kernel, Sleep, WaitFor, Work
from repro.sim import Simulator
from repro.soc import make_soc


def make_kernel(seed=0, trace=False, governor="performance", enable_dvfs=False):
    sim = Simulator(seed=seed, trace=trace)
    soc = make_soc(sim, "sd845", governor_mode=governor)
    kernel = Kernel(sim, soc, enable_dvfs=enable_dvfs)
    return sim, soc, kernel


def burn(amount, label="burn"):
    yield Work(amount, label=label)


def test_single_thread_runs_to_completion():
    sim, soc, kernel = make_kernel()
    thread = kernel.spawn(burn(10_000), name="worker")
    sim.run(until=thread.done)
    assert thread.stats.cpu_time_us == pytest.approx(10_000, rel=0.01)


def test_work_on_little_core_takes_longer():
    sim, soc, kernel = make_kernel()
    big = {core.core_id for core in soc.big_cores}
    little = {core.core_id for core in soc.little_cores}
    fast = kernel.spawn(burn(20_000), name="fast", affinity=big)
    slow = kernel.spawn(burn(20_000), name="slow", affinity=little)
    sim.run(until=sim.all_of([fast.done, slow.done]))
    # Little cores on sd845 have perf_index 0.35 vs 1.0.
    ratio = slow.stats.cpu_time_us / fast.stats.cpu_time_us
    assert ratio == pytest.approx(1.0 / 0.35, rel=0.05)


def test_two_threads_one_core_share_fairly():
    sim, soc, kernel = make_kernel()
    core = soc.big_cores[0].core_id
    first = kernel.spawn(burn(30_000), name="a", affinity={core})
    second = kernel.spawn(burn(30_000), name="b", affinity={core})
    done = sim.all_of([first.done, second.done])
    sim.run(until=done)
    # Serialized on one core: total wall ~ sum of work + switch costs.
    assert sim.now >= 60_000
    # Fair sharing: both finish near the end (neither starves).
    assert first.done.value is None and second.done.value is None
    assert abs(first.stats.cpu_time_us - second.stats.cpu_time_us) < 4_000


def test_four_threads_four_cores_run_parallel():
    sim, soc, kernel = make_kernel()
    big = {core.core_id for core in soc.big_cores}
    threads = [
        kernel.spawn(burn(10_000), name=f"t{i}", affinity=big) for i in range(4)
    ]
    sim.run(until=sim.all_of([thread.done for thread in threads]))
    # All four fit on the big cluster simultaneously.
    assert sim.now < 12_000


def test_contention_slows_wall_clock_linearly():
    durations = []
    for extra in (0, 4):
        sim, soc, kernel = make_kernel()
        big = {core.core_id for core in soc.big_cores}
        for index in range(extra):
            kernel.spawn(burn(1_000_000), name=f"bg{index}", affinity=big)
        subject = kernel.spawn(burn(40_000), name="subject", affinity=big)
        sim.run(until=subject.done)
        durations.append(sim.now)
    # With 4 background hogs on the 4 big cores the subject gets ~4/5 of
    # a core (5 threads over 4 cores), so its wall time stretches ~1.25x.
    assert durations[1] > durations[0] * 1.2


def test_nice_weight_biases_cpu_share():
    sim, soc, kernel = make_kernel()
    core = soc.big_cores[0].core_id
    favored = kernel.spawn(burn(200_000), name="hi", affinity={core}, nice=-5)
    starved = kernel.spawn(burn(200_000), name="lo", affinity={core}, nice=5)
    sim.run(until=200_000)
    assert favored.stats.cpu_time_us > starved.stats.cpu_time_us * 2


def test_sleep_releases_core():
    sim, soc, kernel = make_kernel()
    core = soc.big_cores[0].core_id

    def sleeper():
        yield Work(1_000)
        yield Sleep(50_000)
        yield Work(1_000)

    def worker():
        yield Work(40_000)

    sleepy = kernel.spawn(sleeper(), name="sleepy", affinity={core})
    busy = kernel.spawn(worker(), name="busy", affinity={core})
    sim.run(until=sim.all_of([sleepy.done, busy.done]))
    # The worker must have run during the sleep window, so total wall is
    # far less than strict serialization of sleep + work.
    assert sim.now < 60_000


def test_migrations_counted_and_penalized():
    sim, soc, kernel = make_kernel(trace=True)
    big = list(soc.big_cores)

    def hopper():
        for _ in range(20):
            yield Work(500)
            yield Sleep(1_000)

    # Movable background hogs keep all big cores busy; the hopper rewakes
    # onto whichever core's timeslice ends first, hopping between them.
    big_ids = {core.core_id for core in big}
    for index in range(4):
        kernel.spawn(burn(400_000), name=f"bg{index}", affinity=big_ids)
    thread = kernel.spawn(hopper(), name="hopper", affinity=big_ids)
    sim.run(until=thread.done)
    assert thread.stats.migrations >= 1
    assert sim.trace.counter_total("migration") >= thread.stats.migrations


def test_context_switches_counted():
    sim, soc, kernel = make_kernel(trace=True)
    core = soc.big_cores[0].core_id
    first = kernel.spawn(burn(30_000), name="a", affinity={core})
    second = kernel.spawn(burn(30_000), name="b", affinity={core})
    sim.run(until=sim.all_of([first.done, second.done]))
    # Alternating timeslices on one core -> many switches.
    assert sim.trace.counter_total("ctx_switch") >= 10


def test_waitfor_resumes_with_event_value():
    sim, soc, kernel = make_kernel()
    gate = sim.event()
    results = []

    def waiter():
        value = yield WaitFor(gate)
        results.append(value)
        yield Work(100)

    def opener():
        yield Sleep(5_000)
        gate.succeed("payload")

    thread = kernel.spawn(waiter(), name="waiter")
    kernel.spawn(opener(), name="opener")
    sim.run(until=thread.done)
    assert results == ["payload"]
    assert sim.now > 5_000


def test_thread_done_returns_body_value():
    sim, soc, kernel = make_kernel()

    def body():
        yield Work(100)
        return "finished"

    thread = kernel.spawn(body(), name="returner")
    assert sim.run(until=thread.done) == "finished"


def test_spawn_on_big_sets_affinity():
    sim, soc, kernel = make_kernel()
    thread = kernel.spawn_on_big(burn(1_000), name="bigonly")
    sim.run(until=thread.done)
    big_ids = {core.core_id for core in soc.big_cores}
    assert thread.stats.cores_used <= big_ids


def test_dvfs_ramps_down_when_idle():
    sim, soc, kernel = make_kernel(governor="schedutil", enable_dvfs=True)
    big = soc.big_cluster

    def bursty():
        yield Work(30_000)
        yield Sleep(100_000)
        return big.governor.current_khz

    thread = kernel.spawn_on_big(bursty(), name="bursty")
    freq_after_idle = sim.run(until=thread.done)
    assert freq_after_idle < big.opp.max_khz


def test_performance_governor_stays_at_max():
    sim, soc, kernel = make_kernel(governor="performance", enable_dvfs=True)
    thread = kernel.spawn_on_big(burn(50_000), name="hot")
    sim.run(until=thread.done)
    assert soc.big_cluster.governor.current_khz == soc.big_cluster.opp.max_khz


def test_bad_yield_type_raises():
    sim, soc, kernel = make_kernel()

    def bad():
        yield "not a request"

    with pytest.raises(TypeError, match="expected"):
        kernel.spawn(bad(), name="bad")


def test_deterministic_given_seed():
    finish_times = []
    for _ in range(2):
        sim, soc, kernel = make_kernel(seed=42)
        big = {core.core_id for core in soc.big_cores}
        threads = [
            kernel.spawn(burn(5_000 + 1_000 * i), name=f"t{i}", affinity=big)
            for i in range(6)
        ]
        sim.run(until=sim.all_of([thread.done for thread in threads]))
        finish_times.append(sim.now)
    assert finish_times[0] == finish_times[1]
