"""Property-based scheduler invariants (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.android import Kernel
from repro.android.thread import Sleep, Work
from repro.sim import Simulator
from repro.soc import make_soc


def run_workload(seed, works, nices, use_little):
    sim = Simulator(seed=seed, trace=True)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    affinity = None
    if not use_little:
        affinity = {core.core_id for core in soc.big_cores}
    threads = []
    for index, (work, nice) in enumerate(zip(works, nices)):
        def body(amount=work):
            yield Work(amount)
            yield Sleep(100)
            yield Work(amount / 2)

        threads.append(
            kernel.spawn(body(), name=f"t{index}", nice=nice, affinity=affinity)
        )
    sim.run(until=sim.all_of([thread.done for thread in threads]))
    return sim, soc, kernel, threads


workloads = st.lists(
    st.floats(100.0, 20_000.0), min_size=1, max_size=8
)
nice_levels = st.lists(st.integers(-5, 10), min_size=8, max_size=8)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100), works=workloads, nices=nice_levels,
       use_little=st.booleans())
def test_all_threads_complete(seed, works, nices, use_little):
    """Every thread finishes: no starvation, no lost wakeups."""
    _sim, _soc, _kernel, threads = run_workload(seed, works, nices, use_little)
    assert all(thread.done.triggered for thread in threads)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100), works=workloads, nices=nice_levels)
def test_cpu_time_at_least_work_issued(seed, works, nices):
    """Wall CPU time >= reference work (cores never run faster than 1x)."""
    _sim, _soc, _kernel, threads = run_workload(seed, works, nices, False)
    for thread, work in zip(threads, works):
        issued = work * 1.5  # body runs work + work/2
        assert thread.stats.cpu_time_us >= issued * 0.999


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100), works=workloads, nices=nice_levels)
def test_no_core_runs_two_threads_at_once(seed, works, nices):
    """Trace spans on each core track never overlap."""
    sim, soc, _kernel, _threads = run_workload(seed, works, nices, False)
    for core in soc.cores:
        spans = sorted(
            (span.start, span.end)
            for span in sim.trace.spans_on(core.name)
            if span.closed
        )
        for (start_a, end_a), (start_b, _end_b) in zip(spans, spans[1:]):
            assert end_a <= start_b + 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100), works=workloads, nices=nice_levels)
def test_busy_accounting_consistent(seed, works, nices):
    """Sum of per-core busy time equals sum of per-thread CPU time."""
    _sim, soc, kernel, threads = run_workload(seed, works, nices, False)
    core_busy = sum(core.busy_us for core in soc.cores)
    thread_cpu = sum(thread.stats.cpu_time_us for thread in kernel.threads)
    assert core_busy == pytest.approx(thread_cpu, rel=1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 50), works=workloads)
def test_affinity_respected(seed, works):
    """Threads never run on cores outside their affinity mask."""
    sim = Simulator(seed=seed)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    mask = {soc.big_cores[0].core_id, soc.little_cores[0].core_id}
    threads = [
        kernel.spawn(_work_body(work), name=f"t{index}", affinity=mask)
        for index, work in enumerate(works)
    ]
    sim.run(until=sim.all_of([thread.done for thread in threads]))
    for thread in threads:
        assert thread.stats.cores_used <= mask


def _work_body(amount):
    yield Work(amount)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 50), work=st.floats(5_000, 50_000))
def test_energy_scales_with_work(seed, work):
    """CPU energy grows with work and is positive whenever work ran."""
    sim = Simulator(seed=seed)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    thread = kernel.spawn_on_big(_work_body(work), name="w")
    sim.run(until=thread.done)
    assert soc.energy.cpu_uj > 0
    assert soc.energy.cpu_uj == pytest.approx(1.9 * work, rel=0.05)
