"""FastRPC offload channel tests (paper Figs. 7 and 8 mechanisms)."""

import pytest

from repro.android import Kernel, FastRpcChannel
from repro.android.fastrpc import call_flow_stages
from repro.sim import Simulator
from repro.soc import make_soc


def make_channel(seed=0, trace=False, coupling="loose"):
    sim = Simulator(seed=seed, trace=trace)
    soc = make_soc(sim, "sd845", governor_mode="performance", dsp_coupling=coupling)
    kernel = Kernel(sim, soc, enable_dvfs=False)
    channel = FastRpcChannel(kernel, process_id=1234)
    return sim, soc, kernel, channel


def run_invokes(sim, kernel, channel, count, dsp_us=5_000, nbytes=150_528):
    durations = []

    def body():
        for _ in range(count):
            duration = yield from channel.invoke(nbytes, 1_001, dsp_us)
            durations.append(duration)

    thread = kernel.spawn_on_big(body(), name="caller")
    sim.run(until=thread.done)
    return durations


def test_first_invoke_pays_session_open():
    sim, soc, kernel, channel = make_channel()
    durations = run_invokes(sim, kernel, channel, count=3)
    assert channel.stats.session_opens == 1
    # Cold start dominated by the one-time process mapping.
    assert durations[0] > durations[1] + 10_000
    assert durations[1] == pytest.approx(durations[2], rel=0.05)


def test_overhead_amortizes_over_consecutive_inferences():
    sim, soc, kernel, channel = make_channel()
    durations = run_invokes(sim, kernel, channel, count=50, dsp_us=4_000)
    total = sum(durations)
    overhead_fraction = channel.stats.offload_overhead_us / total
    compute_fraction = channel.stats.dsp_compute_us / total
    assert compute_fraction > 0.7
    assert overhead_fraction < 0.3
    # But for the first call alone, overhead dominates.
    assert durations[0] > 2 * 4_000


def test_invoke_counts_and_compute_accounting():
    sim, soc, kernel, channel = make_channel()
    run_invokes(sim, kernel, channel, count=5, dsp_us=2_000)
    assert channel.stats.calls == 5
    assert channel.stats.dsp_compute_us == pytest.approx(10_000)


def test_cache_flush_scales_with_buffer_size():
    _, _, kernel_small, small = make_channel()
    run_invokes(small.kernel.sim, kernel_small, small, count=2, nbytes=10_000)
    _, _, kernel_large, large = make_channel()
    run_invokes(large.kernel.sim, kernel_large, large, count=2, nbytes=2_000_000)
    assert large.stats.cache_flush_us > small.stats.cache_flush_us * 5


def test_tight_coupling_skips_flush_and_transfer():
    sim, soc, kernel, channel = make_channel(coupling="tight")
    run_invokes(sim, kernel, channel, count=3)
    assert channel.stats.cache_flush_us == 0.0
    assert channel.stats.transfer_us == 0.0


def test_concurrent_clients_queue_on_dsp():
    sim = Simulator(seed=1)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    channels = [FastRpcChannel(kernel, process_id=pid) for pid in (1, 2, 3)]
    queue_waits = []

    def client(channel):
        yield from channel.open_session()
        yield from channel.invoke(100_000, 1_000, dsp_compute_us=10_000)
        queue_waits.append(channel.stats.dsp_queue_us)

    threads = [
        kernel.spawn_on_big(client(ch), name=f"client{i}")
        for i, ch in enumerate(channels)
    ]
    sim.run(until=sim.all_of([t.done for t in threads]))
    # Capacity-1 DSP: at least one client waited roughly a full compute
    # slot behind another.
    assert max(queue_waits) > 8_000


def test_dsp_busy_span_recorded_in_trace():
    sim, soc, kernel, channel = make_channel(trace=True)
    run_invokes(sim, kernel, channel, count=2, dsp_us=3_000)
    spans = sim.trace.spans_on("cdsp")
    assert len(spans) == 2
    assert all(span.duration >= 3_000 for span in spans)


def test_axi_traffic_recorded():
    sim, soc, kernel, channel = make_channel()
    run_invokes(sim, kernel, channel, count=2, nbytes=500_000)
    moved = soc.memory.axi_bytes_between(0, sim.now)
    assert moved >= 2 * 500_000


def test_call_flow_lists_fig7_stages():
    stages = call_flow_stages()
    assert stages[0] == "user:marshal"
    assert "dsp:dispatch_compute" in stages
    assert len(stages) == 11


def test_close_unmaps_process():
    sim, soc, kernel, channel = make_channel()
    run_invokes(sim, kernel, channel, count=1)
    assert 1234 in soc.dsp.mapped_processes
    channel.close()
    assert 1234 not in soc.dsp.mapped_processes


def test_queue_timeout_raises_and_recovers():
    """A wedged DSP surfaces as FastRpcTimeout; the queue stays sane."""
    from repro.android.fastrpc import FastRpcTimeout

    sim = Simulator(seed=2)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    hog = FastRpcChannel(kernel, process_id=1)
    victim = FastRpcChannel(kernel, process_id=2, queue_timeout_us=2_000)
    outcomes = []

    def hog_body():
        yield from hog.invoke(10_000, 1_000, dsp_compute_us=50_000)

    def victim_body():
        from repro.android.thread import Sleep as _Sleep

        yield from victim.open_session()
        # Let the hog win the DSP first (session setup races at t=0).
        yield _Sleep(15_000)
        try:
            yield from victim.invoke(10_000, 1_000, dsp_compute_us=100)
        except FastRpcTimeout as exc:
            outcomes.append(("timeout", str(exc)))
        # Back off past the hog's 50 ms hold; the retry then succeeds.
        from repro.android.thread import Sleep

        yield Sleep(80_000)
        yield from victim.invoke(10_000, 1_000, dsp_compute_us=100)
        outcomes.append(("retried", None))

    hog_thread = kernel.spawn_on_big(hog_body(), name="hog")
    victim_thread = kernel.spawn_on_big(victim_body(), name="victim")
    sim.run(until=sim.all_of([hog_thread.done, victim_thread.done]))
    assert outcomes[0][0] == "timeout"
    assert "DSP busy" in outcomes[0][1]
    assert outcomes[-1][0] == "retried"
    # No stuck queue entries remain.
    assert soc.dsp.resource.queue_length == 0
    assert soc.dsp.resource.in_use == 0


def test_no_timeout_by_default():
    sim, soc, kernel, channel = make_channel()
    assert channel.queue_timeout_us is None
    durations = run_invokes(sim, kernel, channel, count=1)
    assert durations[0] > 0
