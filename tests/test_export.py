"""Export tests: Chrome trace JSON and CSV/JSON results."""

import csv
import io
import json

import pytest

from repro.core.export import (
    experiment_to_csv,
    experiment_to_dict,
    experiment_to_json,
    runs_to_csv,
    runs_to_rows,
)
from repro.core.measurement import PipelineRun, RunCollection
from repro.experiments.base import ExperimentResult
from repro.sim import Simulator
from repro.observability import to_chrome_trace, write_chrome_trace


def make_collection():
    collection = RunCollection(name="x")
    collection.add(PipelineRun(capture_us=1000, pre_us=500,
                               inference_us=2000, post_us=100, other_us=400))
    collection.add(PipelineRun(capture_us=1100, pre_us=450,
                               inference_us=2100, post_us=90, other_us=410))
    return collection


def make_trace():
    sim = Simulator(trace=True)
    sim.trace.record("cpu0", "work", 0.0, 100.0, tid=7)
    sim.trace.record("cdsp", "infer", 50.0, 250.0)
    sim.trace.count("ctx_switch")
    sim.trace.mark("probe", detail="x")
    # Leave one span open: it must be skipped, not crash.
    sim.trace.begin("cpu1", "dangling")
    return sim.trace


def test_runs_to_rows_units():
    rows = runs_to_rows(make_collection())
    assert rows[0]["total_ms"] == pytest.approx(4.0)
    assert rows[0]["tax_fraction"] == pytest.approx(0.5)
    assert rows[1]["index"] == 1


def test_runs_to_csv_roundtrip(tmp_path):
    path = tmp_path / "runs.csv"
    text = runs_to_csv(make_collection(), path=path)
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert len(parsed) == 2
    assert float(parsed[0]["inference_ms"]) == pytest.approx(2.0)
    assert path.read_bytes().decode() == text


def make_result():
    return ExperimentResult(
        experiment_id="figX",
        title="Demo",
        headers=("a", "b"),
        rows=[(1, 2.5), (3, 4.5)],
        series={"s": [1, 2, 3]},
        notes=["note"],
    )


def test_experiment_to_dict_and_json(tmp_path):
    payload = experiment_to_dict(make_result())
    assert payload["experiment_id"] == "figX"
    assert payload["rows"] == [[1, 2.5], [3, 4.5]]
    path = tmp_path / "result.json"
    text = experiment_to_json(make_result(), path=path)
    assert json.loads(path.read_text()) == json.loads(text)


def test_experiment_to_csv():
    text = experiment_to_csv(make_result())
    lines = text.strip().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,2.5"


def test_chrome_trace_structure():
    payload = to_chrome_trace(make_trace())
    events = payload["traceEvents"]
    kinds = {event["ph"] for event in events}
    assert {"M", "X", "C", "i"} <= kinds
    complete = [event for event in events if event["ph"] == "X"]
    assert len(complete) == 2  # dangling span skipped
    span = next(event for event in complete if event["cat"] == "cpu0")
    assert span["dur"] == pytest.approx(100.0)
    assert span["args"]["tid"] == 7
    # Thread-name metadata exists for every track with spans.
    names = {
        event["args"]["name"]
        for event in events
        if event["name"] == "thread_name"
    }
    assert {"cpu0", "cdsp", "cpu1"} <= names


def test_write_chrome_trace(tmp_path):
    path = tmp_path / "trace.json"
    count = write_chrome_trace(make_trace(), path)
    payload = json.loads(path.read_text())
    assert len(payload["traceEvents"]) == count
    assert payload["displayTimeUnit"] == "ms"


def test_chrome_trace_from_real_simulation(tmp_path):
    """End-to-end: profile a pipeline and export the trace."""
    from repro.apps import PipelineConfig
    from repro.apps.harness import run_pipeline_with_rig

    config = PipelineConfig(
        model_key="mobilenet_v1", dtype="int8", context="cli",
        target="hexagon", runs=2, trace=True,
    )
    _records, sim, _soc, _kernel, _packaging = run_pipeline_with_rig(config)
    payload = to_chrome_trace(sim.trace)
    categories = {
        event.get("cat") for event in payload["traceEvents"]
    }
    assert "cdsp" in categories  # DSP inference visible in the trace


def test_runs_csv_roundtrip_through_loader(tmp_path):
    from repro.core.export import runs_from_csv, runs_to_csv

    original = make_collection()
    path = tmp_path / "runs.csv"
    runs_to_csv(original, path=path)
    loaded = runs_from_csv(path, name="x")
    assert len(loaded) == len(original)
    assert loaded.mean_us() == pytest.approx(original.mean_us())
    # Also accepts raw CSV text.
    text_loaded = runs_from_csv(runs_to_csv(original))
    assert text_loaded.mean_us() == pytest.approx(original.mean_us())


def test_compare_experiments_flags_drift():
    from repro.core.export import compare_experiments, experiment_to_dict

    baseline = experiment_to_dict(make_result())
    current = experiment_to_dict(make_result())
    assert compare_experiments(baseline, current) == []
    current["rows"][0][1] = 99.0  # drift far beyond tolerance
    findings = compare_experiments(baseline, current)
    assert findings == [(1, "b", 2.5, 99.0)]


def test_compare_experiments_validates_identity():
    from repro.core.export import compare_experiments, experiment_to_dict

    baseline = experiment_to_dict(make_result())
    other = experiment_to_dict(make_result())
    other["experiment_id"] = "figY"
    with pytest.raises(ValueError, match="experiment mismatch"):
        compare_experiments(baseline, other)


def test_compare_experiments_real_runs_are_stable():
    """Same seed, same config: zero drift findings."""
    from repro.core.export import compare_experiments, experiment_to_dict
    from repro.experiments import run_experiment

    first = experiment_to_dict(run_experiment("fig5", runs=4))
    second = experiment_to_dict(run_experiment("fig5", runs=4))
    assert compare_experiments(first, second, rel_tolerance=0.001) == []
