"""Experiment harness tests: every table/figure reproduces its shape.

These are the repository's acceptance tests: each asserts the
*qualitative* claim the paper makes for that table or figure.
"""

import pytest

from repro.experiments import REGISTRY, run_experiment

SMALL = {"runs": 6}


def test_registry_covers_every_table_and_figure():
    expected = {
        "table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7",
        "fig8", "fig9", "fig10", "fig11",
        "ablation_snpe", "ablation_probe", "ablation_coupling",
        "ablation_stdlib",
    }
    assert expected <= set(REGISTRY)


def test_unknown_experiment_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        run_experiment("fig99")


def test_table1_lists_all_models():
    result = run_experiment("table1")
    assert len(result.rows) == 11
    by_model = result.row_map("Model")
    alexnet = by_model["AlexNet"]
    assert alexnet[5] is False  # NNAPI-fp32 = N
    assert alexnet[7] is True  # CPU-fp32 = Y
    with pytest.raises(KeyError):
        result.column("Latency")


def test_table2_lists_all_platforms():
    result = run_experiment("table2")
    assert len(result.rows) == 4
    assert any("Pixel 3" in row[0] for row in result.rows)
    assert "render" in dir(result)
    assert "[table2]" in result.render()


def test_fig3_app_slower_than_benchmarks():
    result = run_experiment("fig3", runs=6)
    for row in result.rows:
        _model, _dtype, cli_ms, bench_app_ms, app_ms, ratio = row
        assert app_ms > cli_ms
        assert bench_app_ms >= cli_ms * 0.98
        assert ratio > 1.0


def test_fig4_quantized_mobilenet_capture_pre_dominates():
    result = run_experiment(
        "fig4", runs=6, models=(("mobilenet_v1", "int8"), ("inception_v3", "fp32")),
    )
    rows = {(row[0], row[1], row[2]): row for row in result.rows}
    mobile_app = rows[("mobilenet_v1", "int8", "app")]
    assert mobile_app[6] > 1.4  # (capture+pre)/inference well above 1
    inception_app = rows[("inception_v3", "fp32", "app")]
    assert inception_app[6] < 0.4  # inference dominates
    mobile_bench = rows[("mobilenet_v1", "int8", "benchmark")]
    assert mobile_bench[3] > 0  # random generation counted as capture


def test_fig5_nnapi_degradation():
    result = run_experiment("fig5", runs=6)
    latency = dict(zip(result.column("Target"), result.column("inference ms")))
    assert latency["hexagon"] < latency["cpu"] < latency["cpu1"]
    ratio = latency["nnapi"] / latency["cpu1"]
    assert 4.0 < ratio < 11.0  # paper: ~7x


def test_fig6_profiles_match_annotations():
    result = run_experiment("fig6", runs=5)
    rows = result.row_map("Target")
    cpu = rows["cpu"]
    hexagon = rows["hexagon"]
    nnapi = rows["nnapi"]
    # (1) CPU run: big cores heavily utilized, no DSP.
    assert cpu[1] > 0.5 and cpu[3] == 0.0
    # (2) Hexagon: DSP busy, AXI traffic flowing, CPU mostly idle.
    assert hexagon[3] > 0.2 and hexagon[7] > 0
    assert hexagon[1] < cpu[1]
    # (3) NNAPI: an initial cDSP probe only, then CPU execution.
    assert nnapi[4] >= 1
    assert nnapi[3] < 0.05
    # single-threaded: busiest core saturated, cluster average low.
    assert nnapi[2] > 0.8 and nnapi[1] < 0.6
    # (4) Frequent migrations vs the pinned CPU run.
    assert nnapi[5] > cpu[5]
    # Wall clock: nnapi run is dramatically longer.
    assert nnapi[8] > 3 * cpu[8]


def test_fig7_decomposition_covers_flow():
    result = run_experiment("fig7")
    stages = result.column("Stage")
    assert "dsp compute" in stages
    assert "cache flush/invalidate" in stages
    shares = result.column("share")
    assert sum(shares) == pytest.approx(1.0, abs=0.01)
    durations = result.series["durations_us"]
    assert durations[0] > durations[1]  # cold > warm


def test_fig8_overhead_amortizes():
    result = run_experiment("fig8", counts=(1, 5, 20, 100))
    shares = result.series["offload_share"]
    assert all(a >= b for a, b in zip(shares, shares[1:]))
    assert shares[0] > 0.4
    assert shares[-1] < 0.1
    means = result.series["mean_ms"]
    assert means[0] > 1.5 * means[-1]


def test_fig9_inference_grows_with_dsp_contention():
    result = run_experiment("fig9", runs=6, counts=(0, 2, 4))
    inference = result.series["inference_ms"]
    assert inference[1] > 1.5 * inference[0]
    assert inference[2] > 2.5 * inference[0]
    cpu_side = result.series["capture_plus_pre_ms"]
    # capture+pre approximately constant (within 2x while inference 4x+).
    assert max(cpu_side) < 2.0 * min(cpu_side)


def test_fig10_cpu_side_grows_inference_constant():
    result = run_experiment("fig10", runs=6, counts=(0, 4))
    inference = result.series["inference_ms"]
    cpu_side = result.series["capture_plus_pre_ms"]
    assert inference[1] < 1.6 * inference[0]
    assert cpu_side[1] > 1.1 * cpu_side[0]


def test_fig11_app_distribution_wider():
    result = run_experiment("fig11", runs=60)
    rows = result.row_map("context")
    app = rows["app"]
    benchmark = rows["benchmark"]
    assert app[5] >= benchmark[5]  # std
    assert app[8] > benchmark[8]  # CV
    assert app[2] > benchmark[2]  # mean latency higher in app
    histogram = result.series["app_histogram"]
    assert sum(count for _lo, _hi, count in histogram) == app[1]


def test_ablation_snpe_dsp_wins():
    result = run_experiment("ablation_snpe", runs=5)
    latency = dict(zip(result.column("Runtime"), result.column("inference ms")))
    assert latency["snpe-dsp"] < latency["cpu"]
    assert latency["snpe-dsp"] < latency["nnapi"]
    assert latency["snpe-dsp"] <= latency["hexagon"]


def test_ablation_probe_in_band():
    result = run_experiment("ablation_probe", runs=5)
    rows = {row[0]: row for row in result.rows}
    assert 0.04 <= rows["hexagon [int8]"][3] <= 0.07
    assert rows["cpu [fp32]"][3] == 0.0


def test_ablation_coupling_loose_pays_flush():
    result = run_experiment("ablation_coupling", invokes=10)
    rows = result.row_map("Coupling")
    assert rows["loose"][2] > 0
    assert rows["tight"][2] == 0
    assert rows["loose"][1] >= rows["tight"][1]


def test_ablation_stdlib_inversion():
    result = run_experiment("ablation_stdlib")
    rows = result.row_map("stdlib")
    assert rows["libc++"][3] > 2.0  # ints slower than floats
    assert rows["libstdc++"][3] < 0.5  # floats slower than ints
