"""Chart renderer tests."""

from repro.experiments import run_experiment
from repro.experiments.base import ExperimentResult
from repro.experiments.charts import chartable_experiments, render_chart


def test_unchartable_returns_none():
    result = ExperimentResult("table1", "t", ("a",), [(1,)])
    assert render_chart(result) is None
    assert "fig5" in chartable_experiments()


def test_fig5_chart_is_bar_chart():
    result = run_experiment("fig5", runs=4)
    chart = render_chart(result)
    assert "nnapi" in chart
    assert "█" in chart


def test_fig4_chart_stacks_stages():
    result = run_experiment(
        "fig4", runs=4, models=(("mobilenet_v1", "int8"),)
    )
    chart = render_chart(result)
    assert "capture" in chart and "inference" in chart
    assert "mobilenet_v1:int8:app" in chart


def test_fig6_chart_has_three_sections():
    result = run_experiment("fig6", runs=4)
    chart = render_chart(result)
    assert "-- cpu --" in chart
    assert "-- hexagon --" in chart
    assert "-- nnapi --" in chart
    assert "cdsp" in chart


def test_fig8_chart_is_line_plot():
    result = run_experiment("fig8", counts=(1, 5, 20))
    chart = render_chart(result)
    assert "o" in chart
    assert "offload share" in chart


def test_fig11_chart_has_both_histograms():
    result = run_experiment("fig11", runs=40)
    chart = render_chart(result)
    assert "benchmark latency distribution" in chart
    assert "app latency distribution" in chart


def test_fig9_and_fig10_charts():
    for experiment_id in ("fig9", "fig10"):
        result = run_experiment(experiment_id, runs=4, counts=(0, 2))
        chart = render_chart(result)
        assert "jobs" in chart


def test_fig3_chart_pairs_contexts():
    result = run_experiment(
        "fig3", runs=4, models=(("mobilenet_v1", "fp32"),)
    )
    chart = render_chart(result)
    assert "cli" in chart and "app" in chart


def test_cli_chart_flag(capsys):
    from repro.cli import main

    assert main(["experiment", "fig5", "--runs", "4", "--chart"]) == 0
    out = capsys.readouterr().out
    assert "█" in out


def test_cli_chart_flag_no_chart(capsys):
    from repro.cli import main

    assert main(["experiment", "table2", "--chart"]) == 0
    out = capsys.readouterr().out
    assert "no chart defined" in out


def test_cli_json_flag(tmp_path, capsys):
    import json

    from repro.cli import main

    path = tmp_path / "fig5.json"
    assert main([
        "experiment", "fig5", "--runs", "4", "--json", str(path)
    ]) == 0
    payload = json.loads(path.read_text())
    assert payload["experiment_id"] == "fig5"
