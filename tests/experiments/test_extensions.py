"""Extension experiment tests (energy, preferences, thermal, sweep, fps)."""

import pytest

from repro.experiments import run_experiment


def test_energy_dsp_order_of_magnitude_cheaper():
    result = run_experiment("energy", invokes=10)
    energy = dict(zip(result.column("Placement"), result.column("mJ/inf")))
    assert energy["hexagon [int8]"] < energy["cpu x4 [int8]"] / 8
    assert energy["snpe-dsp [int8]"] <= energy["hexagon [int8]"]
    # fp32 CPU costs more energy than int8 CPU (more work per MAC).
    assert energy["cpu x4 [fp32]"] > energy["cpu x4 [int8]"]
    # EDP ranks the DSP far ahead.
    edp = dict(zip(result.column("Placement"), result.column("EDP (mJ*ms)")))
    assert edp["hexagon [int8]"] < edp["cpu x4 [int8]"] / 20


def test_preferences_tradeoff():
    result = run_experiment("preferences", invokes=5)
    rows = result.row_map("Preference")
    fast = rows["fast_single_answer"]
    sustained = rows["sustained_speed"]
    low_power = rows["low_power"]
    # LOW_POWER: slowest but lower energy than FAST.
    assert low_power[1] > fast[1]
    assert low_power[2] < fast[2]
    # SUSTAINED: between FAST and LOW_POWER on latency.
    assert fast[1] <= sustained[1] <= low_power[1]


def test_thermal_drift_without_cooldown():
    result = run_experiment("thermal", invokes=80)
    rows = {row[0]: row[1] for row in result.rows}
    assert rows["throttle-induced slowdown"] > 1.2
    assert rows["is throttling"] is True
    assert rows["final die temperature C"] > 70.0
    assert rows["cooldown needed (s)"] > 1.0
    series = result.series["latency_ms"]
    # Latency trends upward over the sustained run.
    head = sum(series[:10]) / 10
    tail = sum(series[-10:]) / 10
    assert tail > head


def test_soc_sweep_inference_shrinks_tax_grows():
    result = run_experiment("soc_sweep", runs=6)
    inference = result.column("inference ms")
    tax = result.column("AI tax fraction")
    # Inference latency falls monotonically with newer DSPs.
    assert all(a > b for a, b in zip(inference, inference[1:]))
    # The AI-tax share grows as inference shrinks.
    assert tax[-1] > tax[0]
    assert tax[-1] > 0.8


def test_streaming_fps_capped_by_camera():
    result = run_experiment("streaming", runs=10)
    rows = result.row_map("Model")
    mobilenet = rows["mobilenet_v1"]
    inception = rows["inception_v3"]
    assert mobilenet[3] == pytest.approx(30.0, abs=1.0)
    assert inception[3] < 5.0
    assert inception[4] > mobilenet[4]  # slow model drops frames


def test_memory_footprint_int8_shrinks_4x():
    result = run_experiment("memory_footprint")
    rows = result.row_map("Model")
    assert rows["mobilenet_v1"][5] == pytest.approx(4.0, rel=0.01)
    # DeepLab's dense 513x513 output dominates its arena.
    assert rows["deeplab_v3"][2] > rows["deeplab_v3"][1]
    # AlexNet's footprint is weights-dominated (huge FC layers).
    assert rows["alexnet"][1] > 50 * rows["alexnet"][2]


def test_model_scaling_quadratic():
    result = run_experiment("model_scaling", resolutions=(128, 224))
    flops = result.column("GFLOPs")
    inference = result.column("inference ms (cpu x4)")
    area_ratio = (224 / 128) ** 2
    assert flops[1] / flops[0] == pytest.approx(area_ratio, rel=0.15)
    assert inference[1] / inference[0] == pytest.approx(area_ratio, rel=0.3)
