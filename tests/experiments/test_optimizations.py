"""Optimization experiment tests (pipelining, FastCV pre-processing)."""

from repro.android import Kernel
from repro.apps.pipelined import PipelinedApp
from repro.experiments import run_experiment
from repro.sim import Simulator
from repro.soc import make_soc


def test_pipelining_improves_throughput():
    result = run_experiment("pipelining", frames=15)
    rows = result.row_map("Mode")
    sequential = rows["sequential"]
    pipelined = rows["pipelined"]
    # Throughput up...
    assert pipelined[5] > sequential[5] * 1.05
    # ... at the cost of per-frame latency (queueing between stages).
    assert pipelined[4] > sequential[4]


def test_pipelined_app_records_all_frames():
    sim = Simulator(seed=0)
    soc = make_soc(sim, "sd845")
    kernel = Kernel(sim, soc)
    app = PipelinedApp(kernel, "mobilenet_v1", dtype="int8", target="hexagon")
    records = app.execute(frames=8)
    assert len(records) == 8
    assert all(run.meta["pipelined"] for run in records)
    assert all(run.meta["throughput_fps"] > 0 for run in records)
    # Producer and consumer ran as separate threads of one process.
    assert app.producer_thread.stats.cpu_time_us > 0


def test_fastcv_dsp_preprocessing_faster_when_dsp_free():
    result = run_experiment("ablation_fastcv", runs=8)
    rows = {(row[0], row[1]): row for row in result.rows}
    cpu_pre = rows[("cpu (Java)", "cpu")]
    dsp_pre = rows[("dsp (FastCV)", "cpu")]
    # With inference on the CPU, FastCV pre-processing wins outright.
    assert dsp_pre[2] < cpu_pre[2] * 0.6


def test_fastcv_serializes_with_dsp_inference():
    result = run_experiment("ablation_fastcv", runs=8)
    rows = {(row[0], row[1]): row for row in result.rows}
    both_on_dsp = rows[("dsp (FastCV)", "hexagon")]
    java_with_dsp_inference = rows[("cpu (Java)", "hexagon")]
    # Still beneficial overall here (the frame is idle DSP time), but
    # inference latency must not *improve* from sharing the device.
    assert both_on_dsp[3] >= java_with_dsp_inference[3] * 0.99
    assert both_on_dsp[4] < java_with_dsp_inference[4]


def test_arvr_split_beats_single_device():
    from repro.experiments import run_experiment

    result = run_experiment("arvr_multimodel", frames=8)
    rows = result.row_map("placement")
    split_fps = rows["split dsp+gpu+cpu"][2]
    all_dsp_fps = rows["all-dsp"][2]
    all_cpu_fps = rows["all-cpu"][2]
    assert split_fps > all_dsp_fps
    assert all_dsp_fps > all_cpu_fps


def test_arvr_all_dsp_serializes_models():
    from repro.experiments import run_experiment

    result = run_experiment("arvr_multimodel", frames=8)
    rows = result.row_map("placement")
    # On the capacity-1 DSP every model observes the whole serialized
    # round, so per-model latencies converge to the frame time.
    per_model = [float(x) for x in rows["all-dsp"][3].split(", ")]
    assert max(per_model) - min(per_model) < 2.0
