"""Event-queue semantics the optimized run loops must preserve.

The engine's inlined drain loops, lazy cancellation, and lazily-rendered
event names (see ``docs/performance.md``) are all required to be
*observably free*: same popped-event stream, same timestamps, same
labels. These tests pin the semantics the optimizations lean on.
"""

import gc

import pytest

from repro.analysis.engine_bench import fleet_replay_digest
from repro.sim import Simulator
from repro.sim.events import Event, Timeout


def _pop_order(sim):
    order = []
    while True:
        before = sim.events_processed
        if not sim.step():
            return order
        assert sim.events_processed == before + 1


# -- ordering -----------------------------------------------------------


def test_same_time_orders_by_priority_then_sequence():
    sim = Simulator(seed=0)
    order = []
    normal_a = sim.event(name="normal_a")
    normal_a.callbacks.append(lambda e: order.append(e.name))
    normal_a.succeed()
    urgent = sim.event(name="urgent")
    urgent.callbacks.append(lambda e: order.append(e.name))
    urgent._state = "triggered"
    sim._schedule(urgent, priority=sim.PRIORITY_URGENT)
    normal_b = sim.event(name="normal_b")
    normal_b.callbacks.append(lambda e: order.append(e.name))
    normal_b.succeed()
    sim.run()
    # Urgent first despite being scheduled second; equal (time, priority)
    # resolves by schedule order (sequence), not creation order.
    assert order == ["urgent", "normal_a", "normal_b"]


def test_sequence_assigned_at_schedule_time_not_creation_time():
    sim = Simulator(seed=0)
    order = []
    late = sim.event(name="created_first_scheduled_last")
    early = sim.event(name="created_last_scheduled_first")
    early.callbacks.append(lambda e: order.append(e.name))
    late.callbacks.append(lambda e: order.append(e.name))
    early.succeed()
    late.succeed()
    sim.run()
    assert order == [
        "created_last_scheduled_first", "created_first_scheduled_last",
    ]


def test_timeouts_fire_in_time_order_with_fifo_ties():
    sim = Simulator(seed=0)
    fired = []
    for index, delay in enumerate((30.0, 10.0, 10.0, 20.0)):
        sim.schedule_callback(
            delay, (lambda i: lambda _e: fired.append(i))(index)
        )
    sim.run()
    assert fired == [1, 2, 3, 0]
    assert sim.now == 30.0


# -- lazy cancellation --------------------------------------------------


def test_cancel_is_lazy_and_skipped_by_every_loop():
    sim = Simulator(seed=0)
    fired = []
    keep = sim.schedule_callback(10.0, lambda _e: fired.append("keep"))
    drop = sim.schedule_callback(5.0, lambda _e: fired.append("drop"))
    assert len(sim._queue) == 2
    sim.cancel(drop)
    # Tombstoned, not removed: the heap still holds the entry.
    assert len(sim._queue) == 2
    assert sim.peek() == 10.0  # peek discards the cancelled head
    sim.run()
    assert fired == ["keep"]
    # The cancelled event never advanced the clock past the survivor...
    assert sim.now == 10.0
    # ...never counted as processed, and never ran callbacks.
    assert sim.events_processed == 1
    assert drop._state != "processed"
    assert keep._state == "processed"


def test_cancelled_event_is_invisible_to_run_until_event():
    sim = Simulator(seed=0)
    fired = []
    doomed = sim.schedule_callback(1.0, lambda _e: fired.append("doomed"))
    target = sim.schedule_callback(2.0, lambda _e: fired.append("target"))
    sim.cancel(doomed)
    sim.run(until=target)
    assert fired == ["target"]


def test_cancel_processed_event_raises():
    sim = Simulator(seed=0)
    timeout = sim.timeout(1.0)
    sim.run()
    with pytest.raises(RuntimeError):
        sim.cancel(timeout)


# -- lazy default names -------------------------------------------------


def test_timeout_default_name_renders_lazily_and_byte_identically():
    sim = Simulator(seed=0)
    timeout = Timeout(sim, 3000.0)
    # No string has been rendered yet...
    assert timeout._name is None
    # ...and the lazy rendering is byte-identical to the eager form the
    # replay digest was built on.
    assert timeout.name == f"timeout({3000.0})"
    assert timeout.name == "timeout(3000.0)"


def test_timeout_explicit_name_wins_over_default():
    sim = Simulator(seed=0)
    assert Timeout(sim, 5.0, name="slice").name == "slice"


def test_plain_event_default_name_is_none():
    sim = Simulator(seed=0)
    assert Event(sim).name is None


# -- run-loop housekeeping ----------------------------------------------


def test_run_restores_gc_state_even_on_callback_error():
    assert gc.isenabled()
    sim = Simulator(seed=0)

    def boom(_event):
        assert not gc.isenabled(), "drain loop should pause cyclic GC"
        raise ValueError("boom")

    sim.schedule_callback(1.0, boom)
    with pytest.raises(ValueError):
        sim.run()
    assert gc.isenabled()


def test_run_leaves_disabled_gc_disabled():
    sim = Simulator(seed=0)
    sim.timeout(1.0)
    gc.disable()
    try:
        sim.run()
        assert not gc.isenabled()
    finally:
        gc.enable()


def test_processed_event_drops_callback_list():
    sim = Simulator(seed=0)
    timeout = sim.timeout(1.0)
    sim.run()
    assert timeout.callbacks is None
    # A late append is a loud error, not a silent no-op.
    with pytest.raises(AttributeError):
        timeout.callbacks.append(lambda _e: None)


def test_events_processed_counts_every_pop():
    sim = Simulator(seed=0)
    for delay in (1.0, 2.0, 3.0):
        sim.timeout(delay)
    sim.run()
    assert sim.events_processed == 3


# -- determinism under the sanitizer ------------------------------------


def test_seeded_fleet_dual_run_digest_is_stable():
    """The PR-4 sanitizer sees identical popped-event streams twice.

    ``fleet_replay_digest`` itself runs the workload twice and raises
    on divergence; calling it twice additionally pins that the digest
    is stable across repeated in-process measurements (no leaked
    global state between fleets).
    """
    first = fleet_replay_digest(sessions=3, runs=2, seed=0)
    second = fleet_replay_digest(sessions=3, runs=2, seed=0)
    assert first == second
    assert first["events"] > 0
