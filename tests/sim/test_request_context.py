"""Runtime behaviour of the ``with resource.request()`` pattern.

The static side (semcheck's ``resource-leak`` rule) flags request/release
pairings whose release is unreachable on some path; these tests pin the
runtime contract that makes the with-block the fix: release on normal
exit, release on interrupt delivered at a yield inside the block, and
idempotent ``release()`` so an early explicit release composes.
"""

import pytest

from repro.sim import Resource, Simulator
from repro.sim.events import Interrupted


def test_with_block_releases_on_normal_exit():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def holder(name):
        with res.request() as request:
            yield request
            log.append((name, "acquired", sim.now))
            yield sim.timeout(10)
        log.append((name, "released", sim.now))

    sim.process(holder("a"))
    sim.process(holder("b"))
    sim.run()
    acquired = [(n, t) for n, kind, t in log if kind == "acquired"]
    assert acquired == [("a", 0), ("b", 10)]
    assert res.in_use == 0 and res.queue_length == 0


def test_interrupt_inside_with_block_releases_the_slot():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def holder():
        with res.request() as request:
            yield request
            yield sim.timeout(100)
        log.append(("holder-done", sim.now))

    def victim():
        try:
            with res.request() as request:
                yield request
                log.append(("victim-acquired", sim.now))
                yield sim.timeout(100)
        except Interrupted:
            log.append(("victim-interrupted", sim.now))

    sim.process(holder())
    victim_proc = sim.process(victim())

    def interrupter():
        # The victim is still queued behind the holder at t=5: the
        # with-block must withdraw the pending request, not leak it.
        yield sim.timeout(5)
        assert res.queue_length == 1
        victim_proc.interrupt("preempted")
        yield sim.timeout(1)
        assert res.queue_length == 0

    sim.process(interrupter())
    sim.run()
    assert ("victim-interrupted", 5) in log
    # The holder's slot was never disturbed by the withdrawal.
    assert ("holder-done", 100) in log
    assert res.in_use == 0


def test_interrupt_while_holding_releases_the_slot():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def victim():
        try:
            with res.request() as request:
                yield request
                yield sim.timeout(100)
        except Interrupted:
            log.append(("interrupted", sim.now))

    def successor():
        with res.request() as request:
            yield request
            log.append(("successor-acquired", sim.now))

    victim_proc = sim.process(victim())
    sim.process(successor())

    def interrupter():
        yield sim.timeout(5)
        victim_proc.interrupt("preempted")

    sim.process(interrupter())
    sim.run()
    # The interrupt freed the slot immediately: the successor got it at
    # the same tick instead of t=100.
    assert log == [("interrupted", 5), ("successor-acquired", 5)]
    assert res.in_use == 0


def test_release_is_idempotent():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def body():
        with res.request() as request:
            yield request
            # Early explicit release (the fastrpc timeout-withdrawal
            # pattern) must compose with the with-block exit.
            request.release()
        request.release()  # and further calls stay no-ops

    sim.process(body())
    sim.run()
    assert res.in_use == 0 and res.queue_length == 0


def test_release_of_foreign_request_still_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    other = Resource(sim, capacity=1)

    def body():
        request = other.request()
        yield request
        with pytest.raises(ValueError):
            res.release(request)
        request.release()

    sim.process(body())
    sim.run()
