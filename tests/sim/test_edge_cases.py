"""Edge-case tests for the simulation kernel."""

import pytest

from repro.sim import PriorityResource, Simulator


def test_run_until_event_drained_queue_raises():
    sim = Simulator()
    never = sim.event("never")
    with pytest.raises(RuntimeError, match="drained"):
        sim.run(until=never)


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_event_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(RuntimeError, match="not been triggered"):
        event.value


def test_event_value_after_fail_reraises():
    sim = Simulator()
    event = sim.event()
    event.fail(ValueError("boom"))
    sim.run()
    with pytest.raises(ValueError, match="boom"):
        event.value


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError, match="generator"):
        sim.process(lambda: None)


def test_resource_release_of_foreign_request_raises():
    sim = Simulator()
    first = PriorityResource(sim, capacity=1)
    second = PriorityResource(sim, capacity=1)
    request = first.request()
    sim.run()
    with pytest.raises(ValueError, match="never granted"):
        second.release(request)


def test_priority_resource_cancel_waiting_request():
    """Releasing a not-yet-granted request withdraws it from the queue."""
    sim = Simulator()
    resource = PriorityResource(sim, capacity=1)
    holder = resource.request()
    waiter = resource.request(priority=5)
    sim.run()
    assert resource.queue_length == 1
    waiter.release()  # cancel while still queued
    assert resource.queue_length == 0
    holder.release()
    # The stale heap entry must not be granted.
    assert resource.in_use == 0


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        PriorityResource(sim, capacity=0)


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()

    def body():
        result = yield sim.all_of([])
        return result

    assert sim.run(until=sim.process(body())) == {}


def test_all_of_propagates_child_failure():
    sim = Simulator()
    bad = sim.event()

    def body():
        with pytest.raises(RuntimeError, match="child"):
            yield sim.all_of([sim.timeout(5), bad])
        return "survived"

    def failer():
        yield sim.timeout(1)
        bad.fail(RuntimeError("child"))

    proc = sim.process(body())
    sim.process(failer())
    assert sim.run(until=proc) == "survived"


def test_timeout_carries_value():
    sim = Simulator()

    def body():
        value = yield sim.timeout(3, value="payload")
        return value

    assert sim.run(until=sim.process(body())) == "payload"


def test_trace_open_span_has_nan_end():
    sim = Simulator(trace=True)
    span = sim.trace.begin("x", "open")
    assert not span.closed
    sim.trace.end(span)
    assert span.closed
