"""Tests for resources, stores, RNG streams, and traces."""

from repro.sim import Simulator, Resource, PriorityResource, Store, RngStreams


def make_holder(sim, resource, log, name, hold, results=None, priority=None):
    def body():
        if priority is None:
            request = resource.request()
        else:
            request = resource.request(priority=priority)
        yield request
        log.append((name, "acquired", sim.now))
        yield sim.timeout(hold)
        request.release()
        log.append((name, "released", sim.now))

    return sim.process(body())


def test_capacity_one_serializes_users():
    sim = Simulator()
    dsp = Resource(sim, capacity=1, name="dsp")
    log = []
    for name in ("a", "b", "c"):
        make_holder(sim, dsp, log, name, hold=10)
    sim.run()
    acquired = [(n, t) for n, kind, t in log if kind == "acquired"]
    assert acquired == [("a", 0), ("b", 10), ("c", 20)]


def test_capacity_two_allows_overlap():
    sim = Simulator()
    pool = Resource(sim, capacity=2)
    log = []
    for name in ("a", "b", "c"):
        make_holder(sim, pool, log, name, hold=10)
    sim.run()
    acquired = [(n, t) for n, kind, t in log if kind == "acquired"]
    assert acquired == [("a", 0), ("b", 0), ("c", 10)]


def test_queue_length_tracks_waiters():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []
    for name in ("a", "b", "c"):
        make_holder(sim, res, log, name, hold=10)

    def probe():
        yield sim.timeout(5)
        return res.queue_length, res.in_use

    assert sim.run(until=sim.process(probe())) == (2, 1)


def test_priority_resource_grants_lowest_priority_first():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    log = []
    make_holder(sim, res, log, "first", hold=10, priority=5)

    def late_arrivals():
        yield sim.timeout(1)
        make_holder(sim, res, log, "low", hold=5, priority=9)
        make_holder(sim, res, log, "high", hold=5, priority=0)

    sim.process(late_arrivals())
    sim.run()
    acquired = [n for n, kind, _t in log if kind == "acquired"]
    assert acquired == ["first", "high", "low"]


def test_store_fifo_and_blocking_get():
    sim = Simulator()
    store = Store(sim)
    seen = []

    def consumer():
        for _ in range(2):
            item = yield store.get()
            seen.append((sim.now, item))

    def producer():
        yield sim.timeout(3)
        store.put("frame0")
        yield sim.timeout(3)
        store.put("frame1")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert seen == [(3, "frame0"), (6, "frame1")]


def test_store_capacity_drops_oldest():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.put("a") == 0
    assert store.put("b") == 0
    assert store.put("c") == 1
    assert store.items == ["b", "c"]


def test_rng_streams_are_independent_and_reproducible():
    streams_one = RngStreams(seed=7)
    streams_two = RngStreams(seed=7)
    a1 = streams_one["alpha"].random(4).tolist()
    # Interleave another stream: must not perturb alpha's draws.
    streams_two["beta"].random(100)
    a2 = streams_two["alpha"].random(4).tolist()
    assert a1 == a2


def test_rng_streams_differ_across_seeds_and_names():
    streams = RngStreams(seed=7)
    other = RngStreams(seed=8)
    assert streams["x"].random(4).tolist() != other["x"].random(4).tolist()
    fresh = RngStreams(seed=7)
    assert fresh["x"].random(4).tolist() != fresh["y"].random(4).tolist()


def test_rng_spawn_deterministic_and_independent():
    parent = RngStreams(seed=7)
    child_a = parent.spawn(0)
    child_b = parent.spawn(1)
    again = RngStreams(seed=7).spawn(0)
    # Same (seed, session_id) -> identical child; siblings differ.
    assert child_a.seed == again.seed
    assert child_a.seed != child_b.seed
    assert child_a["x"].random(4).tolist() == again["x"].random(4).tolist()
    assert child_a["x"].random(4).tolist() != child_b["x"].random(4).tolist()
    # Spawning never perturbs the parent's own named streams.
    untouched = RngStreams(seed=7)
    assert parent["x"].random(4).tolist() == untouched["x"].random(4).tolist()


def test_rng_spawn_handles_negative_parent_seed_and_rejects_bad_ids():
    import pytest

    assert RngStreams(seed=-3).spawn(2).seed == RngStreams(seed=-3).spawn(2).seed
    with pytest.raises(ValueError):
        RngStreams(seed=0).spawn(-1)


def test_span_closed_handles_nan_end():
    """Regression: Span.closed must flag NaN-ended (open) spans."""
    from repro.sim.trace import Span

    open_span = Span(track="cpu0", label="work", start=1.0)
    assert not open_span.closed
    closed_span = Span(track="cpu0", label="work", start=1.0, end=4.0)
    assert closed_span.closed
    zero_length = Span(track="cpu0", label="tick", start=2.0, end=2.0)
    assert zero_length.closed


def test_trace_utilization_merges_overlaps():
    sim = Simulator(trace=True)
    trace = sim.trace
    trace.record("cpu0", "a", 0, 50)
    trace.record("cpu0", "b", 25, 75)
    sim.run(until=100)
    assert trace.utilization("cpu0", 0, 100) == 0.75


def test_trace_timeline_buckets():
    sim = Simulator(trace=True)
    sim.trace.record("cpu0", "busy", 0, 10)
    sim.run(until=40)
    assert sim.trace.timeline("cpu0", 10) == [1.0, 0.0, 0.0, 0.0]


def test_trace_begin_end_spans():
    sim = Simulator(trace=True)

    def body():
        span = sim.trace.begin("dsp", "infer")
        yield sim.timeout(30)
        sim.trace.end(span)

    sim.process(body())
    sim.run()
    spans = sim.trace.spans_on("dsp")
    assert len(spans) == 1
    assert spans[0].duration == 30


def test_trace_counters_total():
    sim = Simulator(trace=True)
    sim.trace.count("ctx_switch")
    sim.trace.count("ctx_switch", 2)
    assert sim.trace.counter_total("ctx_switch") == 3
    assert sim.trace.counter_total("missing") == 0
