"""TraceRecorder span-stack behaviour, including the identity-pop fix."""

from repro.sim.trace import TraceRecorder


class _Clock:
    def __init__(self):
        self.now = 0.0


def _recorder():
    return TraceRecorder(_Clock())


def test_end_pops_the_exact_handle_not_a_value_equal_twin():
    """Nested same-track spans with identical fields must close by
    identity; ``list.remove`` would pop the outer (first value-equal)
    span and leave the inner one dangling open."""
    trace = _recorder()
    outer = trace.begin("t", "retry")
    inner = trace.begin("t", "retry")  # value-equal to outer
    assert outer == inner and outer is not inner

    trace.sim.now = 5.0
    trace.end(inner)
    assert trace.open_spans("t") == [outer]
    assert inner.closed and not outer.closed

    trace.sim.now = 9.0
    trace.end(outer)
    assert trace.open_spans("t") == []
    assert outer.end == 9.0
    assert inner.end == 5.0


def test_out_of_order_closure_of_nested_spans():
    trace = _recorder()
    outer = trace.begin("t", "a")
    inner = trace.begin("t", "a")
    trace.sim.now = 3.0
    trace.end(outer)  # outer closed first — unusual but legal
    assert trace.open_spans("t") == [inner]
    trace.sim.now = 4.0
    trace.end(inner)
    assert trace.open_spans("t") == []
    assert (outer.end, inner.end) == (3.0, 4.0)


def test_ending_an_unknown_span_is_harmless():
    trace = _recorder()
    kept = trace.begin("t", "kept")
    stray = trace.record("t", "stray", 0.0, 1.0)
    trace.sim.now = 2.0
    trace.end(stray)  # never on the open stack
    assert trace.open_spans("t") == [kept]


def test_open_spans_returns_a_copy_outermost_first():
    trace = _recorder()
    outer = trace.begin("t", "outer")
    trace.sim.now = 1.0
    inner = trace.begin("t", "inner")
    snapshot = trace.open_spans("t")
    assert snapshot == [outer, inner]
    snapshot.clear()  # mutating the copy must not touch the stack
    assert trace.open_spans("t") == [outer, inner]
    assert trace.open_spans("elsewhere") == []


def test_spans_list_keeps_begin_order_after_closure():
    trace = _recorder()
    first = trace.begin("t", "first")
    trace.sim.now = 1.0
    second = trace.begin("t", "second")
    trace.sim.now = 2.0
    trace.end(second)
    trace.sim.now = 3.0
    trace.end(first)
    assert trace.spans == [first, second]
    assert all(span.closed for span in trace.spans)
