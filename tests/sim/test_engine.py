"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator, Interrupted


def test_timeout_advances_clock():
    sim = Simulator()

    def body():
        yield sim.timeout(50)
        return sim.now

    proc = sim.process(body())
    result = sim.run(until=proc)
    assert result == 50
    assert sim.now == 50


def test_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def worker(name, delay):
        yield sim.timeout(delay)
        order.append((name, sim.now))

    sim.process(worker("a", 30))
    sim.process(worker("b", 10))
    sim.process(worker("c", 20))
    sim.run()
    assert order == [("b", 10), ("c", 20), ("a", 30)]


def test_simultaneous_events_run_in_schedule_order():
    sim = Simulator()
    order = []

    def worker(name):
        yield sim.timeout(5)
        order.append(name)

    for name in "abcd":
        sim.process(worker(name))
    sim.run()
    assert order == list("abcd")


def test_process_return_value_propagates():
    sim = Simulator()

    def inner():
        yield sim.timeout(1)
        return 42

    def outer():
        value = yield sim.process(inner())
        return value + 1

    assert sim.run(until=sim.process(outer())) == 43


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def ticker():
        while True:
            yield sim.timeout(10)

    sim.process(ticker())
    sim.run(until=95)
    assert sim.now == 95


def test_run_until_past_time_raises():
    sim = Simulator()
    sim.run(until=10)
    with pytest.raises(ValueError):
        sim.run(until=5)


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event("gate")
    seen = []

    def waiter():
        value = yield gate
        seen.append((sim.now, value))

    def opener():
        yield sim.timeout(7)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert seen == [(7, "open")]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        with pytest.raises(RuntimeError, match="boom"):
            yield gate
        return "handled"

    def opener():
        yield sim.timeout(1)
        gate.fail(RuntimeError("boom"))

    proc = sim.process(waiter())
    sim.process(opener())
    assert sim.run(until=proc) == "handled"


def test_double_trigger_raises():
    sim = Simulator()
    gate = sim.event()
    gate.succeed(1)
    with pytest.raises(RuntimeError):
        gate.succeed(2)


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def body():
        result = yield sim.all_of([sim.timeout(5, value="x"), sim.timeout(9, value="y")])
        return (sim.now, sorted(result.values()))

    assert sim.run(until=sim.process(body())) == (9, ["x", "y"])


def test_any_of_returns_at_first_event():
    sim = Simulator()

    def body():
        yield sim.any_of([sim.timeout(5), sim.timeout(9)])
        return sim.now

    assert sim.run(until=sim.process(body())) == 5


def test_interrupt_raises_inside_process():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100)
        except Interrupted as exc:
            log.append((sim.now, exc.cause))
        return "done"

    def attacker(proc):
        yield sim.timeout(20)
        proc.interrupt(cause="preempt")

    proc = sim.process(victim())
    sim.process(attacker(proc))
    assert sim.run(until=proc) == "done"
    assert log == [(20, "preempt")]


def test_yielding_non_event_raises():
    sim = Simulator()

    def bad():
        yield 5

    sim.process(bad())
    with pytest.raises(TypeError, match="expected an Event"):
        sim.run()


def test_waiting_on_already_processed_event_resumes_at_now():
    sim = Simulator()
    gate = sim.event()
    gate.succeed("v")
    sim.run()  # process the event

    def late():
        value = yield gate
        return (sim.now, value)

    assert sim.run(until=sim.process(late())) == (0.0, "v")


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(33)
    assert sim.peek() == 33
