"""Graceful degradation above the channel: NNAPI recovers, SNPE dies."""

import pytest

from repro.android import Kernel
from repro.android.fastrpc import FastRpcSessionDeath, FastRpcTimeout
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.faults.plan import FAULT_SSR, FAULT_TIMEOUT
from repro.frameworks import NnapiSession, SnpeSession
from repro.models import load_model
from repro.sim import Simulator
from repro.soc import make_soc


def make_rig(seed=0, trace=False):
    sim = Simulator(seed=seed, trace=trace)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    return sim, soc, kernel


def run_session(sim, kernel, session, invokes):
    durations = []

    def body():
        yield from session.prepare()
        for _ in range(invokes):
            duration = yield from session.invoke()
            durations.append(duration)

    thread = kernel.spawn_on_big(body(), name="app")
    sim.run(until=thread.done)
    return durations


def test_nnapi_completes_every_invoke_under_sampled_faults():
    sim, soc, kernel = make_rig(seed=3)
    injector = FaultInjector(FaultPlan.sampled(rate=0.35, seed=3))
    session = NnapiSession(
        kernel, load_model("mobilenet_v1", "int8"), fault_injector=injector
    )
    durations = run_session(sim, kernel, session, invokes=10)
    # The acceptance bar: no uncaught FastRPC exception, all invokes done.
    assert len(durations) == 10
    assert all(duration > 0 for duration in durations)
    assert injector.total_injected > 0
    # ...and the degradation report accounts for 100% of injected faults.
    assert session.degradation.accounts_for(injector)
    summary = session.degradation.summary()
    assert sum(summary["faults"].values()) == injector.total_injected


def test_nnapi_runtime_fallback_reruns_partition_on_cpu():
    sim, soc, kernel = make_rig(trace=True)
    # Burn the probe-free calls: every DSP attempt from call 1 onward
    # faults, so retries exhaust and the partition re-runs on the CPU.
    injector = FaultInjector(FaultPlan(specs=tuple(
        FaultSpec(FAULT_TIMEOUT, at_call=index) for index in range(1, 12)
    )))
    session = NnapiSession(
        kernel, load_model("mobilenet_v1", "int8"), fault_injector=injector
    )
    durations = run_session(sim, kernel, session, invokes=2)
    assert len(durations) == 2
    report = session.degradation
    assert report.total_fallbacks >= 1
    assert report.fallback_us > 0
    assert report.accounts_for(injector)
    spans = sim.trace.spans_on("nnapi")
    assert any(span.label == "runtime_fallback" for span in spans)


def test_nnapi_compile_probe_failure_falls_back_to_reference():
    sim, soc, kernel = make_rig()
    # Calls 0..2 are the driver probe and its retries: prepare() cannot
    # reach the DSP at all and compiles the whole model for the CPU
    # reference path.
    injector = FaultInjector(FaultPlan(specs=tuple(
        FaultSpec(FAULT_SSR, at_call=index) for index in range(3)
    )))
    session = NnapiSession(
        kernel, load_model("mobilenet_v1", "int8"), fault_injector=injector
    )
    durations = run_session(sim, kernel, session, invokes=3)
    assert len(durations) == 3
    assert session.reference_fallback
    assert session.degradation.compile_fallback
    assert [p.device for p in session.partitions] == ["cpu-reference"]
    assert session.degradation.accounts_for(injector)


def test_nnapi_degradation_report_indexes_every_invoke():
    sim, soc, kernel = make_rig(seed=1)
    injector = FaultInjector(FaultPlan.sampled(rate=0.3, seed=1))
    session = NnapiSession(
        kernel, load_model("mobilenet_v1", "int8"), fault_injector=injector
    )
    run_session(sim, kernel, session, invokes=6)
    indexes = [entry.index for entry in session.degradation.invokes]
    # Compile-time probe faults land on a pseudo-invoke at index -1;
    # every real invoke then gets exactly one ledger entry, in order.
    assert [i for i in indexes if i >= 0] == list(range(6))
    assert all(i == -1 for i in indexes if i < 0)


def test_snpe_does_not_recover():
    sim, soc, kernel = make_rig()
    injector = FaultInjector(FaultPlan(specs=(
        FaultSpec(FAULT_TIMEOUT, at_call=1),
    )))
    session = SnpeSession(
        kernel, load_model("mobilenet_v1", "int8"), runtime="dsp",
        fault_injector=injector,
    )
    failures = []

    def body():
        yield from session.prepare()
        yield from session.invoke()
        try:
            yield from session.invoke()
        except FastRpcTimeout:
            failures.append("timeout")

    thread = kernel.spawn_on_big(body(), name="app")
    sim.run(until=thread.done)
    # Vendor runtime: no retry, no fallback — the error reaches the app.
    assert failures == ["timeout"]
    assert session._channel.stats.retries == 0
    assert session.degradation.total_fallbacks == 0
    # The observed fault is still on the ledger.
    assert session.degradation.faults_by_kind == {"timeout": 1}


def test_nnapi_fault_recovery_is_deterministic():
    def run_once():
        sim, soc, kernel = make_rig(seed=9)
        injector = FaultInjector(FaultPlan.sampled(rate=0.35, seed=9))
        session = NnapiSession(
            kernel, load_model("mobilenet_v1", "int8"),
            fault_injector=injector,
        )
        durations = run_session(sim, kernel, session, invokes=8)
        return durations, session.degradation.summary()

    durations_a, summary_a = run_once()
    durations_b, summary_b = run_once()
    assert durations_a == durations_b
    assert summary_a == summary_b
