"""Fault injection through the FastRPC channel and runtime recovery."""

import pytest

from repro.android import Kernel
from repro.android.fastrpc import (
    FastRpcChannel,
    FastRpcSessionDeath,
    FastRpcTimeout,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.faults.plan import (
    FAULT_SESSION_DEATH,
    FAULT_SSR,
    FAULT_THERMAL,
    FAULT_TIMEOUT,
)
from repro.sim import Simulator
from repro.soc import make_soc


def make_rig(seed=0, trace=False):
    sim = Simulator(seed=seed, trace=trace)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    return sim, soc, kernel


def run_body(sim, kernel, body):
    thread = kernel.spawn_on_big(body, name="caller")
    sim.run(until=thread.done)


def channel_with(kernel, specs, process_id=77, retry_policy=None):
    injector = FaultInjector(FaultPlan(specs=tuple(specs)))
    return FastRpcChannel(
        kernel, process_id=process_id,
        fault_injector=injector, retry_policy=retry_policy,
    )


def test_injected_timeout_raises_and_counts():
    sim, soc, kernel = make_rig()
    channel = channel_with(kernel, [FaultSpec(FAULT_TIMEOUT, at_call=0)])
    outcomes = []

    def body():
        try:
            yield from channel.invoke(10_000, 1_000, dsp_compute_us=500)
        except FastRpcTimeout as exc:
            outcomes.append(str(exc))
        # The session survives a timeout; the next call completes.
        yield from channel.invoke(10_000, 1_000, dsp_compute_us=500)

    run_body(sim, kernel, body())
    assert outcomes and "injected" in outcomes[0]
    assert channel.stats.timeouts == 1
    assert channel.stats.failed_calls == 1
    assert channel.stats.calls == 1  # only the completed call counts
    assert soc.dsp.resource.queue_length == 0
    assert soc.dsp.resource.in_use == 0


def test_injected_ssr_drops_all_mappings_and_reopen_pays_remap():
    sim, soc, kernel = make_rig()
    channel = channel_with(kernel, [FaultSpec(FAULT_SSR, at_call=1)])
    bystander = FastRpcChannel(kernel, process_id=88)
    outcomes = []

    def body():
        yield from bystander.open_session()
        yield from channel.invoke(10_000, 1_000, dsp_compute_us=500)
        try:
            yield from channel.invoke(10_000, 1_000, dsp_compute_us=500)
        except FastRpcSessionDeath:
            outcomes.append("ssr")
        # The restart unmapped everyone, the bystander included.
        assert 88 not in soc.dsp.mapped_processes
        # Recovery: the next invoke re-opens and completes.
        yield from channel.invoke(10_000, 1_000, dsp_compute_us=500)

    run_body(sim, kernel, body())
    assert outcomes == ["ssr"]
    assert channel.stats.ssr_events == 1
    assert channel.stats.session_opens == 2  # initial + post-SSR remap
    assert 77 in soc.dsp.mapped_processes


def test_ssr_invalidates_other_channels_stale_handles():
    sim, soc, kernel = make_rig()
    faulty = channel_with(kernel, [FaultSpec(FAULT_SSR, at_call=0)],
                          process_id=1)
    victim = FastRpcChannel(kernel, process_id=2)
    outcomes = []

    def body():
        yield from victim.invoke(10_000, 1_000, dsp_compute_us=500)
        try:
            yield from faulty.invoke(10_000, 1_000, dsp_compute_us=500)
        except FastRpcSessionDeath:
            outcomes.append("ssr")
        # The victim's handle is now stale: its next call fails fast at
        # the ioctl, without touching the DSP.
        try:
            yield from victim.invoke(10_000, 1_000, dsp_compute_us=500)
        except FastRpcSessionDeath:
            outcomes.append("stale")
        # ...and the call after that remaps and completes.
        yield from victim.invoke(10_000, 1_000, dsp_compute_us=500)

    run_body(sim, kernel, body())
    assert outcomes == ["ssr", "stale"]
    assert victim.stats.stale_handles == 1
    assert victim.stats.session_opens == 2


def test_injected_session_death_kills_only_this_channel():
    sim, soc, kernel = make_rig()
    channel = channel_with(kernel,
                           [FaultSpec(FAULT_SESSION_DEATH, at_call=0)])
    bystander = FastRpcChannel(kernel, process_id=88)

    def body():
        yield from bystander.open_session()
        with pytest.raises(FastRpcSessionDeath):
            yield from channel.invoke(10_000, 1_000, dsp_compute_us=500)
        assert 88 in soc.dsp.mapped_processes  # untouched
        yield from channel.invoke(10_000, 1_000, dsp_compute_us=500)

    run_body(sim, kernel, body())
    assert channel.stats.session_deaths == 1
    assert channel.stats.calls == 1


def test_thermal_fault_degrades_without_raising():
    sim, soc, kernel = make_rig()
    channel = channel_with(
        kernel,
        [FaultSpec(FAULT_THERMAL, at_call=0, magnitude=20.0)],
    )
    start_temp = soc.thermal.temperature
    durations = []

    def body():
        for _ in range(2):
            duration = yield from channel.invoke(
                10_000, 1_000, dsp_compute_us=500
            )
            durations.append(duration)

    run_body(sim, kernel, body())
    assert channel.stats.thermal_events == 1
    assert channel.stats.failed_calls == 0
    assert channel.stats.calls == 2  # both calls completed
    assert soc.thermal.temperature > start_temp


def test_invoke_retrying_recovers_within_policy():
    sim, soc, kernel = make_rig()
    channel = channel_with(
        kernel,
        [FaultSpec(FAULT_TIMEOUT, at_call=0),
         FaultSpec(FAULT_SSR, at_call=1)],
        retry_policy=RetryPolicy(max_retries=2, backoff_us=100.0),
    )
    durations = []

    def body():
        duration = yield from channel.invoke_retrying(
            10_000, 1_000, dsp_compute_us=500
        )
        durations.append(duration)

    run_body(sim, kernel, body())
    assert durations and durations[0] > 0
    assert channel.stats.retries == 2
    assert channel.stats.backoff_us == pytest.approx(100.0 + 200.0)
    assert channel.stats.timeouts == 1
    assert channel.stats.ssr_events == 1
    assert channel.stats.calls == 1


def test_invoke_retrying_exhausts_policy_and_raises():
    sim, soc, kernel = make_rig()
    channel = channel_with(
        kernel,
        [FaultSpec(FAULT_TIMEOUT, at_call=index) for index in range(5)],
        retry_policy=RetryPolicy(max_retries=1, backoff_us=50.0),
    )

    def body():
        with pytest.raises(FastRpcTimeout):
            yield from channel.invoke_retrying(
                10_000, 1_000, dsp_compute_us=500
            )

    run_body(sim, kernel, body())
    assert channel.stats.retries == 1
    assert channel.stats.timeouts == 2  # initial attempt + one retry
    assert channel.stats.calls == 0


def test_fault_spans_and_instants_land_on_the_trace():
    sim, soc, kernel = make_rig(trace=True)
    channel = channel_with(
        kernel,
        [FaultSpec(FAULT_TIMEOUT, at_call=0)],
        retry_policy=RetryPolicy(max_retries=1, backoff_us=100.0),
    )

    def body():
        yield from channel.invoke_retrying(10_000, 1_000, dsp_compute_us=500)

    run_body(sim, kernel, body())
    spans = sim.trace.spans_on("fastrpc")
    statuses = [s.meta.get("status") for s in spans
                if s.label.startswith("invoke:")]
    assert "timeout" in statuses
    assert any(s.label.startswith("retry:") for s in spans)
    marks = [m for m in sim.trace.marks if m[1] == "fault:timeout"]
    assert len(marks) == 1


def test_faulty_channel_timeline_is_deterministic():
    def run_once():
        sim, soc, kernel = make_rig(seed=5)
        channel = FastRpcChannel(
            kernel, process_id=9,
            fault_injector=FaultInjector(FaultPlan.sampled(0.4, seed=5)),
            retry_policy=RetryPolicy(max_retries=2, backoff_us=100.0),
        )
        durations = []

        def body():
            for _ in range(8):
                try:
                    duration = yield from channel.invoke_retrying(
                        10_000, 1_000, dsp_compute_us=500
                    )
                    durations.append(duration)
                except (FastRpcTimeout, FastRpcSessionDeath):
                    durations.append(None)

        run_body(sim, kernel, body())
        return durations, channel.stats

    durations_a, stats_a = run_once()
    durations_b, stats_b = run_once()
    assert durations_a == durations_b
    assert stats_a == stats_b
