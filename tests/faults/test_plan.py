"""FaultPlan/FaultInjector: deterministic, order-independent scheduling."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    FAULT_SESSION_DEATH,
    FAULT_SSR,
    FAULT_THERMAL,
    FAULT_TIMEOUT,
    RAISING_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)


def test_spec_requires_exactly_one_trigger():
    FaultSpec(FAULT_TIMEOUT, at_call=3)
    FaultSpec(FAULT_SSR, at_time_us=1_000.0)
    with pytest.raises(ValueError):
        FaultSpec(FAULT_TIMEOUT)
    with pytest.raises(ValueError):
        FaultSpec(FAULT_TIMEOUT, at_call=1, at_time_us=5.0)


def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultSpec("meltdown", at_call=0)


def test_plan_validates_rate_and_kinds():
    with pytest.raises(ValueError):
        FaultPlan(rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(rate=0.1, kinds=())
    with pytest.raises(ValueError):
        FaultPlan(rate=0.1, kinds=("meltdown",))
    with pytest.raises(TypeError):
        FaultPlan(specs=("not-a-spec",))


def test_plan_truthiness():
    assert not FaultPlan()
    assert FaultPlan(rate=0.1)
    assert FaultPlan(specs=(FaultSpec(FAULT_TIMEOUT, at_call=0),))


def test_explicit_spec_pins_to_call_index():
    spec = FaultSpec(FAULT_SSR, at_call=4)
    plan = FaultPlan(specs=(spec,))
    assert plan.fault_for_call(4) is spec
    assert all(plan.fault_for_call(i) is None for i in range(10) if i != 4)


def test_sampling_is_stateless_and_order_independent():
    plan = FaultPlan.sampled(rate=0.3, seed=42)
    forward = [plan.fault_for_call(i) for i in range(200)]
    backward = [plan.fault_for_call(i) for i in reversed(range(200))]
    assert forward == list(reversed(backward))
    # A fresh equal plan answers identically: no hidden state anywhere.
    again = FaultPlan.sampled(rate=0.3, seed=42)
    assert [again.fault_for_call(i) for i in range(200)] == forward


def test_sampling_rate_is_roughly_honoured():
    plan = FaultPlan.sampled(rate=0.25, seed=7)
    hits = sum(plan.fault_for_call(i) is not None for i in range(2_000))
    assert 0.20 < hits / 2_000 < 0.30


def test_sampled_kinds_all_occur_and_stay_within_the_menu():
    plan = FaultPlan.sampled(rate=0.5, seed=3)
    kinds = {
        plan.fault_for_call(i).kind
        for i in range(500)
        if plan.fault_for_call(i) is not None
    }
    assert kinds == set(RAISING_KINDS)
    thermal_only = FaultPlan.sampled(rate=0.5, seed=3, kinds=(FAULT_THERMAL,))
    kinds = {
        thermal_only.fault_for_call(i).kind
        for i in range(100)
        if thermal_only.fault_for_call(i) is not None
    }
    assert kinds == {FAULT_THERMAL}


def test_different_seeds_give_different_schedules():
    a = FaultPlan.sampled(rate=0.2, seed=1)
    b = FaultPlan.sampled(rate=0.2, seed=2)
    fire_a = [a.fault_for_call(i) is not None for i in range(300)]
    fire_b = [b.fault_for_call(i) is not None for i in range(300)]
    assert fire_a != fire_b


def test_timed_specs_sorted_soonest_first():
    late = FaultSpec(FAULT_TIMEOUT, at_time_us=9_000.0)
    early = FaultSpec(FAULT_SSR, at_time_us=1_000.0)
    by_call = FaultSpec(FAULT_SESSION_DEATH, at_call=0)
    plan = FaultPlan(specs=(late, by_call, early))
    assert plan.timed_specs() == [early, late]


def test_injector_numbers_attempts_and_counts_injections():
    plan = FaultPlan(specs=(
        FaultSpec(FAULT_TIMEOUT, at_call=1),
        FaultSpec(FAULT_TIMEOUT, at_call=2),
        FaultSpec(FAULT_SSR, at_call=4),
    ))
    injector = FaultInjector(plan)
    drawn = [injector.draw(now=float(i)) for i in range(6)]
    assert [d.kind if d else None for d in drawn] == [
        None, FAULT_TIMEOUT, FAULT_TIMEOUT, None, FAULT_SSR, None,
    ]
    assert injector.injected == {FAULT_TIMEOUT: 2, FAULT_SSR: 1}
    assert injector.total_injected == 3
    assert injector.call_index == 6


def test_injector_fires_timed_spec_on_first_attempt_at_or_after():
    plan = FaultPlan(specs=(FaultSpec(FAULT_SSR, at_time_us=5_000.0),))
    injector = FaultInjector(plan)
    assert injector.draw(now=0.0) is None
    assert injector.draw(now=4_999.9) is None
    fired = injector.draw(now=6_000.0)
    assert fired.kind == FAULT_SSR
    # Fires exactly once.
    assert injector.draw(now=7_000.0) is None
    assert injector.injected == {FAULT_SSR: 1}


def test_injector_with_none_plan_never_faults():
    injector = FaultInjector(None)
    assert all(injector.draw(now=float(i)) is None for i in range(20))
    assert injector.total_injected == 0


def test_kind_constants_are_consistent():
    assert set(RAISING_KINDS) < set(FAULT_KINDS)
    assert FAULT_THERMAL in FAULT_KINDS
    assert FAULT_THERMAL not in RAISING_KINDS
