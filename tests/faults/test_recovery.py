"""RetryPolicy and DegradationReport accounting."""

import pytest

from repro.faults import (
    NO_RETRY,
    DegradationReport,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    fault_counters,
)
from repro.faults.plan import FAULT_SSR, FAULT_TIMEOUT


def test_retry_policy_exponential_backoff():
    policy = RetryPolicy(max_retries=3, backoff_us=100.0,
                         backoff_multiplier=2.0)
    assert policy.backoff_for(0) == 100.0
    assert policy.backoff_for(1) == 200.0
    assert policy.backoff_for(2) == 400.0


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_us=-5.0)


def test_no_retry_policy():
    assert NO_RETRY.max_retries == 0


def test_fault_counters_reads_stats():
    from repro.android.fastrpc import FastRpcStats

    stats = FastRpcStats(timeouts=2, ssr_events=1, session_deaths=3,
                         thermal_events=4)
    assert fault_counters(stats) == {
        "timeout": 2, "ssr": 1, "session_death": 3, "thermal": 4,
    }


def test_record_invoke_stores_counter_delta_only():
    report = DegradationReport()
    before = {"timeout": 1, "ssr": 0, "session_death": 0, "thermal": 2}
    after = {"timeout": 3, "ssr": 0, "session_death": 1, "thermal": 2}
    entry = report.record_invoke(0, before, after, retries=2)
    assert entry.faults == {"timeout": 2, "session_death": 1}
    assert entry.degraded
    clean = report.record_invoke(1, after, after)
    assert clean.faults == {}
    assert not clean.degraded


def test_record_invoke_tolerates_missing_before_keys():
    # The channel may not exist at snapshot time (lazy creation): the
    # "before" snapshot is then empty and every "after" count is new.
    report = DegradationReport()
    entry = report.record_invoke(0, {}, {"timeout": 1, "ssr": 0,
                                         "session_death": 0, "thermal": 0})
    assert entry.faults == {"timeout": 1}


def test_totals_roll_up_across_invokes():
    report = DegradationReport()
    zero = {"timeout": 0, "ssr": 0, "session_death": 0, "thermal": 0}
    report.record_invoke(0, zero, {**zero, "timeout": 1}, retries=1)
    report.record_invoke(1, zero, zero)
    report.record_invoke(2, zero, {**zero, "ssr": 1}, retries=1,
                         fallbacks=1, fallback_us=250.0)
    assert report.faults_by_kind == {"timeout": 1, "ssr": 1}
    assert report.total_faults == 2
    assert report.total_retries == 2
    assert report.total_fallbacks == 1
    assert report.fallback_us == 250.0
    assert report.degraded_invokes == 2
    summary = report.summary()
    assert summary["faults"] == {"timeout": 1, "ssr": 1}
    assert summary["invokes"] == 3
    assert summary["compile_fallback"] is False


def test_accounts_for_matches_injector_exactly():
    plan = FaultPlan(specs=(
        FaultSpec(FAULT_TIMEOUT, at_call=0),
        FaultSpec(FAULT_SSR, at_call=1),
    ))
    injector = FaultInjector(plan)
    injector.draw(0.0)
    injector.draw(1.0)
    report = DegradationReport()
    zero = {"timeout": 0, "ssr": 0, "session_death": 0, "thermal": 0}
    report.record_invoke(0, zero, {**zero, "timeout": 1})
    assert not report.accounts_for(injector)  # ssr still unaccounted
    report.record_invoke(1, zero, {**zero, "ssr": 1})
    assert report.accounts_for(injector)
