"""Smoke tests: every shipped example runs and prints its key output."""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_example(monkeypatch, capsys, name, argv=()):
    monkeypatch.setattr(sys, "argv", [f"{EXAMPLES}/{name}.py", *argv])
    runpy.run_path(f"{EXAMPLES}/{name}.py", run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart")
    assert "AI tax" in out
    assert "data_capture" in out
    assert "capture+pre vs inference" in out


def test_classification_pipeline(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "classification_pipeline")
    assert "Top-5 predictions" in out
    assert "bitmap_convert" in out
    assert "Simulated cost" in out


def test_framework_shootout(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "framework_shootout")
    assert "REFERENCE-KERNEL FALLBACK" in out
    assert "snpe-dsp" in out
    assert "100% accelerated" in out


def test_multitenancy_study(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "multitenancy_study")
    assert "Fig. 9" in out
    assert "Fig. 10" in out


def test_question_answering(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "question_answering")
    assert "WordPiece tokens" in out
    assert "Best answer spans" in out
    assert "AI tax" in out


def test_dashcam_detection(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "dashcam_detection")
    assert "confirmed tracks" in out
    assert "AI tax" in out


@pytest.mark.slow
def test_paper_report_fast(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "paper_report", argv=["--fast"])
    assert "experiments regenerated" in out
    assert "[fig5]" in out
    assert "[takeaways]" in out


def test_profile_trace(monkeypatch, capsys, tmp_path):
    out = run_example(monkeypatch, capsys, "profile_trace", argv=[str(tmp_path)])
    assert "-- nnapi" in out
    assert "chrome://tracing" in out
    assert (tmp_path / "trace_cpu.json").exists()


def test_battery_life(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "battery_life")
    assert "battery hours" in out
    assert "hexagon [int8]" in out
    # The DSP placements must beat the fp32 CPU placement clearly.
    assert "motivation, in hours" in out
