"""Disabled probes must be allocation-free (ISSUE #7 satellite).

The old API took span metadata as ``**kwargs``, which made CPython
allocate a fresh dict on *every* probe call — including the ~tens of
thousands per simulated session where tracing is off and the dict was
immediately thrown away. The current API takes an optional positional
dict; these tests pin the disabled path to zero allocations and the
enabled path to unchanged span content.
"""

import sys

from repro.observability.probes import _NULL, counter, instant, probe
from repro.sim import Simulator


def test_disabled_probe_returns_shared_singleton():
    sim = Simulator(seed=0, trace=False)
    first = probe(sim, "track", "label")
    second = probe(sim, "track", "label", {"static": 1})
    assert first is _NULL
    assert second is _NULL


def test_disabled_probe_allocates_nothing():
    """Net allocated blocks across many disabled probes is zero.

    ``sys.getallocatedblocks`` counts live pymalloc blocks; a probe
    path that allocated *and retained* anything (span, meta dict,
    per-call context manager) would grow the count. Temporaries that
    are freed same-call are additionally ruled out by the singleton
    identity test above — there is no per-call object to free.
    """
    sim = Simulator(seed=0, trace=False)
    static_meta = {"process": 7}

    def exercise(n):
        for _ in range(n):
            with probe(sim, "fastrpc", "invoke") as span:
                if span is not None:  # pragma: no cover - tracing off
                    span.meta["dynamic"] = 1
            with probe(sim, "fastrpc", "open_session", static_meta):
                pass
            instant(sim, "mark")
            counter(sim, "count", 1)

    exercise(1000)  # warm up interpreter caches and freelists
    # The bookkeeping ints of the measurement itself can add a block
    # on any single round, so take the min over a few: a real per-call
    # leak would show up as ~15k blocks on every round, not 0-or-1.
    deltas = []
    for _ in range(3):
        before = sys.getallocatedblocks()
        exercise(5000)
        deltas.append(sys.getallocatedblocks() - before)
    assert min(deltas) == 0, deltas


def test_enabled_probe_records_meta_from_both_styles():
    sim = Simulator(seed=0, trace=True)
    with probe(sim, "t", "static", {"model": "mobilenet_v1"}):
        pass
    with probe(sim, "t", "dynamic") as span:
        assert span is not None
        span.meta["iteration"] = 3
    static_span, dynamic_span = sim.trace.spans
    assert static_span.meta == {"model": "mobilenet_v1"}
    assert dynamic_span.meta == {"iteration": 3}


def test_enabled_probe_copies_shared_meta_dict():
    """Per-session constant dicts must never be aliased by spans —
    the error tag written on exception would leak into every later
    span sharing the dict."""
    sim = Simulator(seed=0, trace=True)
    shared = {"process": 1}
    try:
        with probe(sim, "t", "failing", shared):
            raise ValueError("boom")
    except ValueError:
        pass
    with probe(sim, "t", "ok", shared):
        pass
    failing, ok = sim.trace.spans
    assert failing.meta == {"process": 1, "error": "ValueError"}
    assert ok.meta == {"process": 1}
    assert shared == {"process": 1}


def test_enabled_instant_meta_dict():
    sim = Simulator(seed=0, trace=True)
    instant(sim, "fault:thermal", {"jump_c": 10.0})
    (mark,) = sim.trace.marks
    assert mark[1] == "fault:thermal"
    assert mark[2] == {"jump_c": 10.0}
