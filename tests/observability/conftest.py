import pytest

from repro.observability import record_trace


@pytest.fixture(scope="package")
def quickstart_session():
    """One recorded quickstart run shared by the schema/summary tests."""
    return record_trace("quickstart", runs=4)


@pytest.fixture(scope="package")
def quickstart_trace(quickstart_session):
    return quickstart_session.sim.trace
