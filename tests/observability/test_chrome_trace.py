"""Chrome trace-event schema round-trip on a full scenario run."""

import json

from repro.observability import (
    to_chrome_trace,
    track_sort_key,
    write_chrome_trace,
)

_REQUIRED = {
    "M": {"name", "ph", "pid", "args"},
    "X": {"name", "cat", "ph", "pid", "tid", "ts", "dur", "args"},
    "C": {"name", "ph", "pid", "ts", "args"},
    "i": {"name", "ph", "s", "pid", "ts", "args"},
}


def _events(trace, **kwargs):
    return to_chrome_trace(trace, **kwargs)["traceEvents"]


def test_every_event_has_its_phase_required_keys(quickstart_trace):
    events = _events(quickstart_trace)
    assert events, "quickstart produced an empty trace"
    for event in events:
        required = _REQUIRED[event["ph"]]
        missing = required - set(event)
        assert not missing, (event["ph"], missing)


def test_durations_are_non_negative(quickstart_trace):
    for event in _events(quickstart_trace):
        if event["ph"] == "X":
            assert event["dur"] >= 0.0


def test_non_metadata_timestamps_are_monotonic(quickstart_trace):
    timestamps = [
        event["ts"]
        for event in _events(quickstart_trace)
        if event["ph"] != "M"
    ]
    assert timestamps == sorted(timestamps)
    assert timestamps[0] >= 0.0


def test_expected_tracks_and_counters_present(quickstart_trace):
    events = _events(quickstart_trace)
    tracks = {e["cat"] for e in events if e["ph"] == "X"}
    counters = {e["name"] for e in events if e["ph"] == "C"}
    assert {"cdsp", "fastrpc", "nnapi", "pipeline"} <= tracks
    assert any(track.startswith("cpu") for track in tracks)
    assert {"freq:big", "freq:little", "temp_c", "runqueue"} <= counters


def test_thread_metadata_names_every_span_track(quickstart_trace):
    events = _events(quickstart_trace)
    named = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    span_tracks = {e["cat"] for e in events if e["ph"] == "X"}
    assert span_tracks <= named
    tids = {
        e["args"]["name"]: e["tid"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    for event in events:
        if event["ph"] == "X":
            assert event["tid"] == tids[event["cat"]]


def test_track_filter_restricts_spans_only(quickstart_trace):
    events = _events(quickstart_trace, tracks=("pipeline",))
    assert {e["cat"] for e in events if e["ph"] == "X"} == {"pipeline"}
    # counters are track-less and survive the filter
    assert any(e["ph"] == "C" for e in events)


def test_min_dur_and_toggles(quickstart_trace):
    events = _events(
        quickstart_trace,
        min_dur_us=1e12,
        include_counters=False,
        include_marks=False,
    )
    assert all(event["ph"] == "M" for event in events)


def test_write_round_trips_through_json(quickstart_trace, tmp_path):
    path = tmp_path / "trace.json"
    count = write_chrome_trace(quickstart_trace, path, process_name="t")
    with open(path) as handle:
        payload = json.load(handle)
    assert len(payload["traceEvents"]) == count
    assert payload["displayTimeUnit"] == "ms"
    process = [
        e for e in payload["traceEvents"] if e["name"] == "process_name"
    ]
    assert process[0]["args"]["name"] == "t"


def test_track_sort_key_orders_swimlanes():
    tracks = ["pipeline", "cpu10", "zzz", "cdsp", "cpu2", "gpu", "fastrpc"]
    assert sorted(tracks, key=track_sort_key) == [
        "cpu2", "cpu10", "gpu", "cdsp", "fastrpc", "pipeline", "zzz",
    ]
