"""Probe context managers: owner resolution, no-op mode, error capture."""

from types import SimpleNamespace

import pytest

from repro.observability import counter, instant, probe
from repro.observability.probes import _NULL
from repro.sim import Simulator


def test_null_probe_is_shared_when_tracing_off():
    sim = Simulator(seed=0, trace=False)
    assert probe(sim, "t", "l") is _NULL
    assert probe(None, "t", "l") is _NULL
    # and the null context is harmless
    with probe(None, "t", "l") as span:
        assert span is None


def test_instant_and_counter_are_noops_when_tracing_off():
    sim = Simulator(seed=0, trace=False)
    instant(sim, "nothing")  # must not raise
    counter(sim, "nothing", 3)


def test_owner_resolution_variants():
    sim = Simulator(seed=0, trace=True)
    kernel_like = SimpleNamespace(sim=sim)
    for owner in (sim, sim.trace, kernel_like):
        with probe(owner, "t", "l"):
            pass
    assert len(sim.trace.spans) == 3
    assert all(span.closed for span in sim.trace.spans)


def test_probe_records_span_with_meta_and_simulated_time():
    sim = Simulator(seed=0, trace=True)

    def body():
        with probe(sim, "mytrack", "phase", {"detail": 42}):
            yield sim.timeout(100.0)

    sim.process(body())
    sim.run()
    (span,) = sim.trace.spans
    assert span.track == "mytrack"
    assert span.label == "phase"
    assert span.meta["detail"] == 42
    assert span.closed
    assert span.duration > 0.0


def test_probe_adds_no_simulated_time():
    def body(sim, traced):
        if traced:
            with probe(sim, "t", "l"):
                yield sim.timeout(50.0)
        else:
            yield sim.timeout(50.0)

    times = []
    for traced in (True, False):
        sim = Simulator(seed=0, trace=traced)
        sim.process(body(sim, traced))
        sim.run()
        times.append(sim.now)
    assert times[0] == times[1]


def test_probe_closes_span_and_tags_error_on_exception():
    sim = Simulator(seed=0, trace=True)
    with pytest.raises(ValueError):
        with probe(sim, "t", "failing"):
            raise ValueError("boom")
    (span,) = sim.trace.spans
    assert span.closed
    assert span.meta["error"] == "ValueError"


def test_instant_and_counter_record_when_tracing_on():
    sim = Simulator(seed=0, trace=True)
    instant(sim, "tick", {"detail": 1})
    counter(sim, "widgets", 3)
    assert sim.trace.marks[0][1] == "tick"
    assert sim.trace.counters["widgets"] == [(0.0, 3)]
