"""Self-time rollup: the exclusive-time invariant and synthetic nesting."""

import pytest

from repro.observability import summarize_trace
from repro.sim.trace import TraceRecorder


class _Clock:
    def __init__(self):
        self.now = 0.0


def _recorder():
    return TraceRecorder(_Clock())


def test_exclusive_times_sum_to_busy_time_per_track(quickstart_trace):
    summary = summarize_trace(quickstart_trace)
    assert summary.tracks, "no tracks summarized"
    for track in summary.tracks:
        busy = summary.track_busy_us[track]
        assert summary.track_exclusive_us(track) == pytest.approx(
            busy, rel=1e-9
        ), track


def test_inclusive_is_at_least_exclusive(quickstart_trace):
    for row in summarize_trace(quickstart_trace).rows:
        assert row.inclusive_us >= row.exclusive_us - 1e-9


def test_fastrpc_invoke_time_is_attributed_to_stages(quickstart_trace):
    rows = {
        row.label: row
        for row in summarize_trace(quickstart_trace).rows_on("fastrpc")
    }
    invokes = [rows[label] for label in rows if label.startswith("invoke:")]
    assert invokes, "no fastrpc invoke spans recorded"
    # nearly all invoke time belongs to the nested Fig.-7 stages
    inclusive = sum(row.inclusive_us for row in invokes)
    exclusive = sum(row.exclusive_us for row in invokes)
    assert exclusive < 0.05 * inclusive


def test_synthetic_nesting():
    trace = _recorder()
    trace.record("t", "parent", 0.0, 100.0)
    trace.record("t", "child", 10.0, 30.0)
    trace.record("t", "grandchild", 12.0, 20.0)
    trace.record("t", "child", 30.0, 60.0)
    summary = summarize_trace(trace)
    rows = {row.label: row for row in summary.rows_on("t")}
    assert rows["parent"].inclusive_us == 100.0
    assert rows["parent"].exclusive_us == pytest.approx(50.0)
    assert rows["child"].count == 2
    assert rows["child"].inclusive_us == pytest.approx(50.0)
    assert rows["child"].exclusive_us == pytest.approx(42.0)
    assert rows["grandchild"].exclusive_us == pytest.approx(8.0)
    assert summary.track_busy_us["t"] == pytest.approx(100.0)
    assert summary.track_exclusive_us("t") == pytest.approx(100.0)


def test_disjoint_spans_have_full_self_time():
    trace = _recorder()
    trace.record("t", "a", 0.0, 10.0)
    trace.record("t", "b", 20.0, 35.0)
    summary = summarize_trace(trace)
    rows = {row.label: row for row in summary.rows_on("t")}
    assert rows["a"].exclusive_us == pytest.approx(10.0)
    assert rows["b"].exclusive_us == pytest.approx(15.0)
    assert summary.track_busy_us["t"] == pytest.approx(25.0)
    # extent spans the gap; busy time does not
    assert summary.total_us == pytest.approx(35.0)


def test_unclosed_spans_are_ignored():
    trace = _recorder()
    trace.record("t", "done", 0.0, 5.0)
    trace.begin("t", "dangling")
    summary = summarize_trace(trace)
    assert [row.label for row in summary.rows_on("t")] == ["done"]


def test_tracks_filter():
    trace = _recorder()
    trace.record("a", "x", 0.0, 1.0)
    trace.record("b", "y", 0.0, 1.0)
    summary = summarize_trace(trace, tracks=("b",))
    assert summary.tracks == ["b"]


def test_render_mentions_tracks_and_labels(quickstart_trace):
    text = summarize_trace(quickstart_trace).render(top=3)
    assert "[pipeline]" in text
    assert "data_capture" in text
    # top=3 caps each section at header + 3 label rows
    section = text.split("[pipeline]")[1]
    label_rows = [
        line for line in section.splitlines() if line.count("|") >= 4
    ]
    assert len(label_rows) <= 4  # header row + top 3
