"""Deterministic open-loop arrival processes."""

import pytest

from repro.service.arrivals import (
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)


def test_poisson_same_seed_replays_identically():
    a = PoissonArrivals(rate_rps=200.0, seed=7)
    b = PoissonArrivals(rate_rps=200.0, seed=7)
    assert a.times_us(duration_us=500_000) == b.times_us(
        duration_us=500_000
    )
    # The process is a pure function of (params, seed): asking again on
    # the same instance replays too — no hidden stream state.
    assert a.times_us(count=50) == a.times_us(count=50)


def test_poisson_seed_changes_timeline():
    a = PoissonArrivals(rate_rps=200.0, seed=0)
    b = PoissonArrivals(rate_rps=200.0, seed=1)
    assert a.times_us(count=50) != b.times_us(count=50)


def test_poisson_rate_matches_long_run_mean():
    times = PoissonArrivals(rate_rps=500.0, seed=3).times_us(count=4000)
    mean_gap_us = times[-1] / (len(times) - 1)
    assert mean_gap_us == pytest.approx(2000.0, rel=0.1)


def test_diurnal_same_seed_replays_identically():
    a = DiurnalArrivals(rate_rps=300.0, amplitude=0.5, period_s=0.2, seed=9)
    b = DiurnalArrivals(rate_rps=300.0, amplitude=0.5, period_s=0.2, seed=9)
    assert a.times_us(duration_us=400_000) == b.times_us(
        duration_us=400_000
    )


def test_diurnal_peak_clusters_arrivals():
    arrivals = DiurnalArrivals(
        rate_rps=400.0, amplitude=0.9, period_s=1.0, seed=2
    )
    times = arrivals.times_us(duration_us=1_000_000)
    # rate_at peaks in the first half-period and troughs in the second.
    first_half = sum(1 for t in times if t < 500_000)
    second_half = len(times) - first_half
    assert first_half > 2 * second_half


def test_times_us_requires_exactly_one_bound():
    arrivals = PoissonArrivals(rate_rps=100.0, seed=0)
    with pytest.raises(ValueError):
        arrivals.times_us()
    with pytest.raises(ValueError):
        arrivals.times_us(duration_us=1000, count=5)


def test_make_arrivals_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown arrival"):
        make_arrivals("bursty", 100.0, seed=0)


def test_invalid_parameters_raise():
    with pytest.raises(ValueError):
        PoissonArrivals(rate_rps=0.0, seed=0)
    with pytest.raises(ValueError):
        DiurnalArrivals(rate_rps=100.0, amplitude=1.5, seed=0)
    with pytest.raises(ValueError):
        DiurnalArrivals(rate_rps=100.0, period_s=0.0, seed=0)
