"""Dynamic batcher flush policy (pure bookkeeping, no engine)."""

import math

import pytest

from repro.service.batcher import DynamicBatcher
from repro.service.request import Request


def make_request(request_id=0):
    return Request(request_id=request_id, arrival_us=0.0)


def test_empty_batcher_is_idle():
    batcher = DynamicBatcher(max_batch=4, max_delay_us=5000.0)
    assert len(batcher) == 0
    assert batcher.deadline_us() == math.inf
    assert not batcher.ready(now_us=1e9)
    with pytest.raises(ValueError, match="empty batcher"):
        batcher.take()


def test_flushes_when_full():
    batcher = DynamicBatcher(max_batch=2, max_delay_us=5000.0)
    batcher.push(make_request(0), now_us=100.0)
    assert not batcher.ready(now_us=100.0)
    batcher.push(make_request(1), now_us=101.0)
    # Full batch flushes immediately, long before the delay deadline.
    assert batcher.ready(now_us=101.0)
    assert [r.request_id for r in batcher.take()] == [0, 1]
    assert len(batcher) == 0


def test_single_request_flushes_at_max_delay():
    batcher = DynamicBatcher(max_batch=8, max_delay_us=5000.0)
    batcher.push(make_request(0), now_us=1000.0)
    assert batcher.deadline_us() == 6000.0
    assert not batcher.ready(now_us=5999.0)
    # A lone request must not wait for company forever: the max-delay
    # deadline flushes a partial batch of one.
    assert batcher.ready(now_us=6000.0)
    assert [r.request_id for r in batcher.take()] == [0]


def test_deadline_tracks_oldest_pending():
    batcher = DynamicBatcher(max_batch=8, max_delay_us=1000.0)
    batcher.push(make_request(0), now_us=0.0)
    batcher.push(make_request(1), now_us=900.0)
    assert batcher.deadline_us() == 1000.0
    assert batcher.ready(now_us=1000.0)
    assert len(batcher.take()) == 2
    # The queue drained; a new push restarts the clock from its time.
    batcher.push(make_request(2), now_us=5000.0)
    assert batcher.deadline_us() == 6000.0


def test_take_pops_at_most_max_batch_fifo():
    batcher = DynamicBatcher(max_batch=2, max_delay_us=0.0)
    for index in range(5):
        batcher.push(make_request(index), now_us=float(index))
    assert [r.request_id for r in batcher.take()] == [0, 1]
    assert [r.request_id for r in batcher.take()] == [2, 3]
    assert [r.request_id for r in batcher.take()] == [4]


def test_invalid_configuration_raises():
    with pytest.raises(ValueError):
        DynamicBatcher(max_batch=0, max_delay_us=100.0)
    with pytest.raises(ValueError):
        DynamicBatcher(max_batch=1, max_delay_us=-1.0)
