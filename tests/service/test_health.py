"""Backend health: breaker state machine, ejection, brownout, storms."""

import pytest

from repro.service import run_service
from repro.service.health import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerConfig,
    BrownoutController,
    CircuitBreaker,
)
from repro.service.request import OUTCOME_FAILED, Request


def _breaker(**overrides):
    config = dict(
        failure_threshold=2, recovery_us=100.0, half_open_probes=1
    )
    config.update(overrides)
    return CircuitBreaker(BreakerConfig(**config))


def test_breaker_trips_after_threshold_consecutive_failures():
    breaker = _breaker()
    assert breaker.state == STATE_CLOSED
    breaker.record_failure(0.0)
    assert breaker.state == STATE_CLOSED
    # A success resets the streak — failures must be consecutive.
    breaker.record_success(1.0)
    breaker.record_failure(2.0)
    assert breaker.state == STATE_CLOSED
    breaker.record_failure(3.0)
    assert breaker.state == STATE_OPEN
    assert breaker.opens == 1


def test_open_breaker_rejects_until_recovery_then_probes():
    breaker = _breaker()
    breaker.record_failure(0.0)
    breaker.record_failure(0.0)
    assert not breaker.allow(50.0)
    assert not breaker.allow(99.0)
    # The recovery window elapsed: half-open, one probe admitted.
    assert breaker.allow(100.0)
    assert breaker.state == STATE_HALF_OPEN
    breaker.note_dispatch(100.0)
    assert not breaker.allow(101.0)  # probe budget spent
    breaker.record_success(110.0)
    assert breaker.state == STATE_CLOSED
    assert breaker.allow(111.0)


def test_half_open_failure_reopens_with_fresh_window():
    breaker = _breaker()
    breaker.record_failure(0.0)
    breaker.record_failure(0.0)
    assert breaker.allow(100.0)
    breaker.note_dispatch(100.0)
    breaker.record_failure(120.0)
    assert breaker.state == STATE_OPEN
    assert breaker.opens == 2
    assert not breaker.allow(219.0)
    assert breaker.allow(220.0)


def test_breaker_accounts_ejected_time():
    breaker = _breaker()
    breaker.record_failure(0.0)
    breaker.record_failure(0.0)
    assert breaker.allow(150.0)  # open for 150 us before half-open
    breaker.record_success(160.0)
    assert breaker.to_dict()["ejected_ms"] == pytest.approx(0.150)


def test_breaker_config_validation():
    with pytest.raises(ValueError):
        BreakerConfig(failure_threshold=0)
    with pytest.raises(ValueError):
        BreakerConfig(recovery_us=0)
    with pytest.raises(ValueError):
        BreakerConfig(half_open_probes=0)


def test_brownout_hysteresis_and_degradation():
    brownout = BrownoutController(high=10, low=4)
    assert not brownout.update(9)
    assert brownout.update(10)
    assert brownout.episodes == 1
    # Between the watermarks: stays in brownout (hysteresis).
    assert brownout.update(7)
    request = Request(request_id=0, arrival_us=0.0)
    brownout.degrade(request)
    brownout.degrade(request)  # idempotent per request
    assert request.degraded
    assert brownout.degraded_requests == 1
    assert not brownout.update(4)
    assert brownout.update(10)
    assert brownout.episodes == 2


def test_brownout_validation():
    with pytest.raises(ValueError):
        BrownoutController(high=0)
    with pytest.raises(ValueError):
        BrownoutController(high=5, low=5)
    # low defaults to half of high.
    assert BrownoutController(high=10).low == 5


# -- integration through run_service ------------------------------------

_STORM = dict(
    rate_rps=70.0, duration_s=0.8, slo_ms=100.0, devices=2, seed=3,
    ssr_storm_ms=300.0, ssr_storm_backends=1, ssr_recovery_ms=250.0,
    breaker_recovery_ms=250.0,
)


def test_ssr_storm_opens_breaker_and_ejects_backend():
    result = run_service(**_STORM)
    assert len(result.health) == 2
    stormed = result.health[0]
    assert stormed["backend_id"] == 0
    assert stormed["opens"] >= 1
    assert stormed["failures"] >= 1
    assert stormed["ejected_ms"] > 0.0
    # The failed batch's requests were re-routed, none terminally lost.
    assert result.redispatched >= 1
    assert result.failed == 0
    assert result.offered == (
        result.completed + result.failed
        + result.dropped + result.rejected
    )


def test_ssr_storm_is_deterministic():
    assert run_service(**_STORM).digest() == run_service(**_STORM).digest()


def test_breakers_off_disables_health_ledger():
    result = run_service(breakers=False, **_STORM)
    assert result.health == []
    # Faults still happen and redispatch still works without breakers.
    assert result.redispatched >= 1


def test_fault_free_run_has_no_health_machinery():
    result = run_service(
        rate_rps=100.0, duration_s=0.4, devices=2, seed=3
    )
    assert result.health == []
    assert result.brownout is None
    assert result.failed == 0
    assert result.redispatched == 0


def test_redispatch_budget_exhaustion_fails_requests():
    result = run_service(
        rate_rps=70.0, duration_s=0.8, slo_ms=100.0, devices=2, seed=3,
        backend_fault_rate=0.6, redispatch_limit=0, breakers=False,
    )
    assert result.failed > 0
    # Failed requests carry the terminal outcome in the accounting:
    # every offered request is completed, failed, or turned away.
    assert result.offered == (
        result.completed + result.failed
        + result.dropped + result.rejected
    )
    # Failures never count toward throughput or goodput.
    assert result.completed < result.offered


def test_brownout_engages_under_overload():
    result = run_service(
        rate_rps=300.0, duration_s=0.6, slo_ms=100.0, devices=2, seed=3,
        backend_fault_rate=0.05, brownout_high=16, brownout_low=6,
    )
    assert result.brownout is not None
    assert result.brownout["episodes"] >= 1
    assert result.brownout["degraded_requests"] > 0


def test_config_validation():
    with pytest.raises(ValueError):
        run_service(rate_rps=50, duration_s=0.1, backend_fault_rate=1.5)
    with pytest.raises(ValueError):
        run_service(rate_rps=50, duration_s=0.1, ssr_storm_backends=0)
    with pytest.raises(ValueError):
        run_service(rate_rps=50, duration_s=0.1, redispatch_limit=-1)
    with pytest.raises(ValueError):
        run_service(rate_rps=50, duration_s=0.1, brownout_low=3)


def test_failed_outcome_round_trips_request_dict():
    request = Request(request_id=7, arrival_us=0.0)
    request.outcome = OUTCOME_FAILED
    request.redispatches = 3
    payload = request.to_dict()
    assert payload["outcome"] == "failed"
    assert payload["redispatches"] == 3
    assert payload["latency_ms"] is None
