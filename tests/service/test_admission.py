"""Bounded admission-queue policies."""

import pytest

from repro.service.admission import (
    ADMIT,
    ADMIT_DEGRADED,
    TURN_AWAY,
    AdmissionQueue,
)
from repro.service.request import (
    OUTCOME_DROPPED,
    OUTCOME_PENDING,
    OUTCOME_REJECTED,
    Request,
)


def make_request(request_id=0):
    return Request(request_id=request_id, arrival_us=0.0)


def test_under_capacity_admits():
    queue = AdmissionQueue(capacity=2, policy="reject")
    request = make_request()
    assert queue.admit(request, outstanding=1) == ADMIT
    assert request.outcome == OUTCOME_PENDING
    assert queue.counters() == {
        "admitted": 1, "dropped": 0, "rejected": 0, "shed": 0,
    }


def test_full_queue_reject_marks_request():
    queue = AdmissionQueue(capacity=2, policy="reject")
    request = make_request()
    assert queue.admit(request, outstanding=2) == TURN_AWAY
    assert request.outcome == OUTCOME_REJECTED
    assert queue.counters()["rejected"] == 1
    assert queue.counters()["admitted"] == 0


def test_full_queue_drop_marks_request():
    queue = AdmissionQueue(capacity=2, policy="drop")
    request = make_request()
    assert queue.admit(request, outstanding=5) == TURN_AWAY
    assert request.outcome == OUTCOME_DROPPED
    assert queue.counters()["dropped"] == 1


def test_full_queue_shed_admits_degraded():
    queue = AdmissionQueue(capacity=1, policy="shed")
    request = make_request()
    assert queue.admit(request, outstanding=1) == ADMIT_DEGRADED
    # Shed requests stay pending (they will be served) but degraded.
    assert request.degraded is True
    assert request.outcome == OUTCOME_PENDING
    assert queue.counters() == {
        "admitted": 1, "dropped": 0, "rejected": 0, "shed": 1,
    }


def test_boundary_exactly_at_capacity_turns_away():
    queue = AdmissionQueue(capacity=3, policy="reject")
    assert queue.admit(make_request(0), outstanding=2) == ADMIT
    assert queue.admit(make_request(1), outstanding=3) == TURN_AWAY


def test_double_decision_raises():
    queue = AdmissionQueue(capacity=1, policy="reject")
    request = make_request()
    queue.admit(request, outstanding=9)
    with pytest.raises(ValueError, match="already decided"):
        queue.admit(request, outstanding=0)


def test_invalid_configuration_raises():
    with pytest.raises(ValueError):
        AdmissionQueue(capacity=0)
    with pytest.raises(ValueError, match="unknown admission policy"):
        AdmissionQueue(capacity=1, policy="tailshed")
