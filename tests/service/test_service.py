"""End-to-end service runs over synthetic and calibrated pools."""

import pytest

from repro.service import (
    BackendProfile,
    ServiceConfig,
    build_pool,
    pool_capacity_rps,
    run_service,
)


def synthetic_pool(backends=2, inference_us=8000.0, tax_us=2000.0):
    """A hand-built pool: service dynamics without device calibration."""
    return [
        BackendProfile(
            backend_id=index,
            name=f"synthetic#{index}",
            inference_us=inference_us,
            tax_us=tax_us,
        )
        for index in range(backends)
    ]


def run_synthetic(**overrides):
    defaults = dict(rate_rps=150.0, duration_s=0.5, seed=0)
    defaults.update(overrides)
    return run_service(
        ServiceConfig(**defaults), profiles=synthetic_pool()
    )


def test_infinite_slo_makes_goodput_equal_throughput():
    result = run_synthetic(slo_ms=None)
    assert result.completed == result.offered
    assert result.goodput_rps == pytest.approx(result.throughput_rps)
    assert result.slo_miss_rate == 0.0
    assert result.miss_attribution == {
        "queueing": 0, "inference": 0, "ai_tax": 0,
    }


def test_same_seed_exports_byte_identically():
    a = run_synthetic(slo_ms=20.0)
    b = run_synthetic(slo_ms=20.0)
    assert a.to_json() == b.to_json()
    assert a.digest() == b.digest()


def test_different_seed_changes_the_run():
    a = run_synthetic(seed=0)
    b = run_synthetic(seed=1)
    assert a.to_json() != b.to_json()


def test_overload_rejects_and_goodput_collapses():
    capacity = pool_capacity_rps(synthetic_pool(), 4)
    paced = run_synthetic(
        rate_rps=0.5 * capacity, slo_ms=50.0, queue_capacity=32
    )
    swamped = run_synthetic(
        rate_rps=3.0 * capacity, slo_ms=50.0, queue_capacity=32
    )
    assert swamped.rejected > 0
    assert paced.rejected == 0
    # Throughput saturates near capacity; goodput collapses under the
    # queueing delay the open-loop overload builds up.
    assert swamped.goodput_rps < paced.goodput_rps
    assert swamped.slo_miss_rate > paced.slo_miss_rate
    assert swamped.p99_ms > paced.p99_ms
    assert swamped.miss_attribution["queueing"] > 0


def test_shed_policy_serves_degraded_instead_of_rejecting():
    capacity = pool_capacity_rps(synthetic_pool(), 4)
    shed = run_synthetic(
        rate_rps=3.0 * capacity, slo_ms=50.0, queue_capacity=8,
        policy="shed",
    )
    assert shed.rejected == 0
    assert shed.dropped == 0
    assert shed.shed > 0
    # Shed requests are still served (by the degraded variant).
    assert shed.completed == shed.offered


def test_drop_policy_accounts_every_arrival():
    capacity = pool_capacity_rps(synthetic_pool(), 4)
    result = run_synthetic(
        rate_rps=3.0 * capacity, slo_ms=50.0, queue_capacity=8,
        policy="drop",
    )
    assert result.dropped > 0
    assert result.completed + result.dropped == result.offered


def test_diurnal_traffic_runs_and_replays():
    a = run_synthetic(arrivals="diurnal", slo_ms=40.0)
    b = run_synthetic(arrivals="diurnal", slo_ms=40.0)
    assert a.offered > 0
    assert a.to_json() == b.to_json()


def test_depth_series_is_time_ordered():
    result = run_synthetic()
    times = [sample[0] for sample in result.depth_series]
    assert times == sorted(times)
    assert all(sample[1] >= 0 for sample in result.depth_series)


def test_latency_components_sum_to_latency():
    # White-box: drive the loop directly to inspect request records.
    from repro.service.admission import AdmissionQueue
    from repro.service.batcher import DynamicBatcher
    from repro.service.request import Request
    from repro.service.router import Backend, Router
    from repro.sim import Simulator, units

    sim = Simulator(seed=0)
    done = []
    backend = Backend(
        sim,
        synthetic_pool(backends=1)[0],
        DynamicBatcher(max_batch=4, max_delay_us=units.ms(2.0)),
        done.append,
    )
    router = Router(sim, [backend])
    AdmissionQueue(capacity=16)
    requests = [
        Request(request_id=index, arrival_us=0.0, slo_us=units.ms(50.0))
        for index in range(3)
    ]
    for request in requests:
        router.dispatch(request)
    sim.run()
    assert len(done) == 3
    for request in done:
        assert request.latency_us == pytest.approx(
            request.queue_us + request.inference_us + request.tax_us
        )


def test_config_validation():
    with pytest.raises(ValueError):
        ServiceConfig(rate_rps=0.0)
    with pytest.raises(ValueError):
        ServiceConfig(arrivals="bursty")
    with pytest.raises(ValueError):
        ServiceConfig(policy="tailshed")
    with pytest.raises(ValueError):
        ServiceConfig(slo_ms=-1.0)
    with pytest.raises(TypeError):
        run_service(ServiceConfig(), rate_rps=10.0)


def test_calibrated_pool_runs_end_to_end():
    result = run_service(
        rate_rps=80.0, duration_s=0.25, devices=2, calibration_runs=2,
        seed=0,
    )
    assert len(result.backends) == 2
    assert result.pool_failures == []
    assert result.completed > 0
    for backend in result.backends:
        assert backend["profile"]["inference_ms"] > 0
        assert backend["profile"]["tax_ms"] >= 0


def test_chaos_faults_shrink_the_pool():
    from repro.fleet.population import chaos_population

    population = chaos_population()
    # Seed 5's expansion puts snpe-dsp (no fault recovery) in the first
    # two devices' slice at index 1/3 — see the chaos experiment.
    healthy, healthy_failures = build_pool(
        population=population, devices=4, seed=5, runs=2, fault_rate=0.0
    )
    faulty, faulty_failures = build_pool(
        population=population, devices=4, seed=5, runs=2, fault_rate=0.9
    )
    assert healthy_failures == []
    assert len(faulty) < len(healthy)
    assert faulty_failures
    for failure in faulty_failures:
        assert failure["target"] == "snpe-dsp"
        assert failure["error"]
