"""IoU tracker tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.processing.tracking import IouTracker, tracking_cost_us


def box(y, x, size=1.0):
    return [y, x, y + size, x + size]


def test_new_detections_open_tracks():
    tracker = IouTracker()
    tracks = tracker.update([box(0, 0), box(5, 5)], [0.9, 0.8])
    assert len(tracks) == 2
    assert {track.track_id for track in tracks} == {1, 2}
    assert not any(track.confirmed for track in tracks)


def test_moving_object_keeps_its_id():
    tracker = IouTracker()
    tracker.update([box(0, 0)], [0.9])
    for step in range(1, 5):
        tracks = tracker.update([box(0, step * 0.2)], [0.9])
    assert len(tracks) == 1
    assert tracks[0].track_id == 1
    assert tracks[0].hits == 5
    assert tracks[0].confirmed
    assert len(tracks[0].history) == 4


def test_disjoint_detection_opens_second_track():
    tracker = IouTracker()
    tracker.update([box(0, 0)], [0.9])
    tracks = tracker.update([box(0, 0.1), box(50, 50)], [0.9, 0.7])
    assert len(tracks) == 2
    ids = sorted(track.track_id for track in tracks)
    assert ids == [1, 2]


def test_track_retired_after_max_misses():
    tracker = IouTracker(max_misses=2)
    tracker.update([box(0, 0)], [0.9])
    for _ in range(2):
        tracker.update(np.zeros((0, 4)), np.zeros(0))
    assert len(tracker.tracks) == 1  # 2 misses: still alive
    tracker.update(np.zeros((0, 4)), np.zeros(0))
    assert tracker.tracks == []  # 3rd miss: retired


def test_reappearing_object_recovers_track():
    tracker = IouTracker(max_misses=3)
    tracker.update([box(0, 0)], [0.9])
    tracker.update(np.zeros((0, 4)), np.zeros(0))
    tracks = tracker.update([box(0, 0.05)], [0.8])
    assert tracks[0].track_id == 1
    assert tracks[0].misses == 0


def test_input_validation():
    with pytest.raises(ValueError):
        IouTracker(iou_threshold=0.0)
    tracker = IouTracker()
    with pytest.raises(ValueError, match="disagree"):
        tracker.update([box(0, 0)], [0.9, 0.8])


def test_tracking_cost_grows_with_objects():
    assert tracking_cost_us(10, 10) > tracking_cost_us(2, 2)
    assert tracking_cost_us(0, 0) > 0


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 1000),
    frames=st.integers(1, 8),
    objects=st.integers(0, 6),
)
def test_track_count_bounded_property(seed, frames, objects):
    """Tracks never exceed cumulative detections; ids never recycle."""
    rng = np.random.default_rng(seed)
    tracker = IouTracker()
    total_detections = 0
    seen_ids = set()
    for _ in range(frames):
        count = int(rng.integers(0, objects + 1))
        total_detections += count
        boxes = np.stack(
            [
                np.array(box(float(rng.uniform(0, 50)),
                             float(rng.uniform(0, 50))))
                for _ in range(count)
            ]
        ) if count else np.zeros((0, 4))
        tracks = tracker.update(boxes, rng.uniform(0.1, 1.0, size=count))
        assert len(tracks) <= total_detections
        for track in tracks:
            seen_ids.add(track.track_id)
    assert len(seen_ids) <= total_detections
