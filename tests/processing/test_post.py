"""Post-processing kernel tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.processing import (
    QuantParams,
    decode_boxes,
    decode_keypoints,
    dequantize,
    flatten_mask,
    non_max_suppression,
    quantize,
    top_k,
)


def test_top_k_orders_descending():
    scores = np.array([0.1, 0.9, 0.5, 0.7])
    result = top_k(scores, k=3)
    assert [index for index, _ in result] == [1, 3, 2]
    assert result[0][1] == pytest.approx(0.9)


def test_top_k_with_labels():
    result = top_k(np.array([0.2, 0.8]), k=1, labels=["cat", "dog"])
    assert result == [("dog", pytest.approx(0.8))]


def test_top_k_k_larger_than_classes():
    assert len(top_k(np.array([1.0, 2.0]), k=10)) == 2


def test_top_k_rejects_bad_k():
    with pytest.raises(ValueError):
        top_k(np.array([1.0]), k=0)


def test_flatten_mask_argmax():
    logits = np.zeros((2, 2, 3))
    logits[0, 0, 2] = 5
    logits[1, 1, 1] = 5
    mask = flatten_mask(logits)
    assert mask.tolist() == [2, 0, 0, 1]
    assert mask.dtype == np.int32


def test_flatten_mask_bad_rank():
    with pytest.raises(ValueError):
        flatten_mask(np.zeros((4, 4)))


def test_decode_keypoints_maps_to_image_coordinates():
    grid_h, grid_w, keypoints = 3, 3, 2
    heatmaps = np.zeros((grid_h, grid_w, keypoints))
    heatmaps[1, 2, 0] = 0.9
    heatmaps[2, 0, 1] = 0.8
    offsets = np.zeros((grid_h, grid_w, 2 * keypoints))
    offsets[1, 2, 0] = 3.0  # dy for keypoint 0
    offsets[1, 2, 2] = -1.0  # dx for keypoint 0
    result = decode_keypoints(heatmaps, offsets, output_stride=16)
    assert result[0].tolist() == [16 + 3.0, 32 - 1.0, pytest.approx(0.9)]
    assert result[1][2] == pytest.approx(0.8)


def test_decode_keypoints_shape_mismatch():
    with pytest.raises(ValueError):
        decode_keypoints(np.zeros((3, 3, 2)), np.zeros((3, 3, 3)))


def test_decode_boxes_identity_for_zero_encoding():
    anchors = np.array([[0.5, 0.5, 0.2, 0.4]])
    boxes = decode_boxes(np.zeros((1, 4)), anchors)
    assert boxes[0] == pytest.approx([0.4, 0.3, 0.6, 0.7])


def test_decode_boxes_shape_check():
    with pytest.raises(ValueError):
        decode_boxes(np.zeros((2, 4)), np.zeros((3, 4)))


def test_nms_suppresses_overlapping():
    boxes = np.array(
        [
            [0.0, 0.0, 1.0, 1.0],
            [0.05, 0.05, 1.0, 1.0],  # heavy overlap with box 0
            [2.0, 2.0, 3.0, 3.0],  # disjoint
        ]
    )
    scores = np.array([0.9, 0.8, 0.7])
    keep = non_max_suppression(boxes, scores, iou_threshold=0.5)
    assert keep == [0, 2]


def test_nms_respects_max_detections():
    boxes = np.array([[i, i, i + 0.5, i + 0.5] for i in range(20)])
    scores = np.linspace(1, 0.1, 20)
    keep = non_max_suppression(boxes, scores, max_detections=5)
    assert len(keep) == 5
    assert keep == [0, 1, 2, 3, 4]


def test_quant_roundtrip_exact_at_gridpoints():
    params = QuantParams(scale=0.5, zero_point=10)
    values = np.array([-5.0, 0.0, 2.5, 100.0])
    assert dequantize(quantize(values, params), params) == pytest.approx(values)


def test_quant_params_validation():
    with pytest.raises(ValueError):
        QuantParams(scale=0.0, zero_point=0)
    with pytest.raises(ValueError):
        QuantParams(scale=1.0, zero_point=400)
    params = QuantParams.from_range(-1.0, 1.0)
    assert params.zero_point == 128 or params.zero_point == 127
    with pytest.raises(ValueError):
        QuantParams.from_range(1.0, 1.0)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.floats(-10, 10), min_size=1, max_size=40),
    low=st.floats(-20, -1),
    high=st.floats(1, 20),
)
def test_quantization_error_bounded_property(values, low, high):
    """Round-trip error is at most half a quantization step."""
    params = QuantParams.from_range(low, high)
    array = np.clip(np.array(values, dtype=np.float32), low, high)
    recovered = dequantize(quantize(array, params), params)
    assert np.all(np.abs(recovered - array) <= params.scale * 0.51 + 1e-6)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 10))
def test_top_k_matches_full_sort_property(seed, k):
    rng = np.random.default_rng(seed)
    scores = rng.random(50)
    expected = sorted(enumerate(scores), key=lambda p: -p[1])[:k]
    actual = top_k(scores, k=k)
    assert [i for i, _ in actual] == [i for i, _ in expected]


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_nms_keeps_disjoint_boxes_property(seed):
    """Boxes with zero mutual IoU are never suppressed."""
    rng = np.random.default_rng(seed)
    n = 8
    # Disjoint unit boxes on a diagonal grid.
    boxes = np.array([[3 * i, 3 * i, 3 * i + 1, 3 * i + 1] for i in range(n)])
    scores = rng.random(n)
    keep = non_max_suppression(boxes, scores, max_detections=n)
    assert sorted(keep) == list(range(n))
