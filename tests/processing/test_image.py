"""Image pre-processing kernel tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.processing import (
    bilinear_resize,
    center_crop,
    normalize,
    quantize_to_uint8,
    rotate90,
    to_float,
    yuv_nv21_to_argb,
)


def make_nv21(height, width, y=128, u=128, v=128):
    luma = np.full(height * width, y, dtype=np.uint8)
    chroma = np.empty(height * width // 2, dtype=np.uint8)
    chroma[0::2] = v
    chroma[1::2] = u
    return np.concatenate([luma, chroma])


def test_yuv_grey_frame_converts_to_grey_rgb():
    rgb = yuv_nv21_to_argb(make_nv21(4, 6), 4, 6)
    assert rgb.shape == (4, 6, 3)
    assert rgb.dtype == np.uint8
    # Neutral chroma: R == G == B == Y.
    assert np.all(rgb == 128)


def test_yuv_red_push():
    # V > 128 pushes red up and green down.
    rgb = yuv_nv21_to_argb(make_nv21(4, 4, y=100, v=200), 4, 4)
    assert rgb[0, 0, 0] > 100
    assert rgb[0, 0, 1] < 100
    assert rgb[0, 0, 2] == 100  # blue unaffected by V


def test_yuv_wrong_size_raises():
    with pytest.raises(ValueError, match="NV21"):
        yuv_nv21_to_argb(np.zeros(10, dtype=np.uint8), 4, 4)


def test_resize_identity():
    image = np.arange(48, dtype=np.uint8).reshape(4, 4, 3)
    out = bilinear_resize(image, (4, 4))
    assert np.allclose(out, image)


def test_resize_constant_image_stays_constant():
    image = np.full((10, 8, 3), 77, dtype=np.uint8)
    out = bilinear_resize(image, (23, 17))
    assert out.shape == (23, 17, 3)
    assert np.allclose(out, 77)


def test_resize_preserves_linear_gradient():
    gradient = np.linspace(0, 100, 64)[None, :, None] * np.ones((8, 1, 1))
    out = bilinear_resize(gradient, (8, 32))
    diffs = np.diff(out[0, :, 0])
    assert np.all(diffs >= -1e-5)  # monotone
    assert out.min() >= 0 and out.max() <= 100


def test_resize_downscale_averages():
    image = np.zeros((2, 2, 1), dtype=np.float32)
    image[0, 0] = 100
    out = bilinear_resize(image, (1, 1))
    assert 0 < out[0, 0, 0] < 100


def test_resize_rejects_bad_size():
    with pytest.raises(ValueError):
        bilinear_resize(np.zeros((4, 4, 3)), (0, 4))


def test_center_crop_extracts_middle():
    image = np.zeros((6, 6), dtype=np.uint8)
    image[2:4, 2:4] = 9
    out = center_crop(image, (2, 2))
    assert np.all(out == 9)


def test_center_crop_too_large_raises():
    with pytest.raises(ValueError, match="crop"):
        center_crop(np.zeros((4, 4)), (5, 5))


def test_normalize_zero_mean_unit_range():
    image = np.array([0, 127.5, 255], dtype=np.float32)
    out = normalize(image)
    assert out == pytest.approx([-1.0, 0.0, 1.0])


def test_normalize_zero_std_raises():
    with pytest.raises(ValueError):
        normalize(np.zeros(3), std=0)


def test_rotate90_cycles():
    image = np.arange(12).reshape(3, 4)
    once = rotate90(image, 1)
    assert once.shape == (4, 3)
    assert np.array_equal(rotate90(image, 4), image)
    # One clockwise turn: first row becomes last column.
    assert np.array_equal(once[:, -1], image[0])


def test_to_float_scales_bytes():
    out = to_float(np.array([0, 255], dtype=np.uint8))
    assert out == pytest.approx([0.0, 1.0])


def test_quantize_to_uint8_clips():
    out = quantize_to_uint8(np.array([-5.0, 100.0, 300.0]))
    assert out.dtype == np.uint8
    assert list(out) == [0, 100, 255]


@settings(max_examples=25, deadline=None)
@given(
    in_h=st.integers(2, 24),
    in_w=st.integers(2, 24),
    out_h=st.integers(1, 32),
    out_w=st.integers(1, 32),
)
def test_resize_bounds_property(in_h, in_w, out_h, out_w):
    """Bilinear output values never exceed the input value range."""
    rng = np.random.default_rng(in_h * 1000 + in_w * 100 + out_h * 10 + out_w)
    image = rng.integers(0, 256, size=(in_h, in_w, 3)).astype(np.uint8)
    out = bilinear_resize(image, (out_h, out_w))
    assert out.shape == (out_h, out_w, 3)
    assert out.min() >= image.min() - 1e-4
    assert out.max() <= image.max() + 1e-4


@settings(max_examples=25, deadline=None)
@given(h=st.integers(1, 16), w=st.integers(1, 16), turns=st.integers(0, 7))
def test_rotate_preserves_multiset(h, w, turns):
    rng = np.random.default_rng(h * 100 + w * 10 + turns)
    image = rng.integers(0, 256, size=(h, w)).astype(np.uint8)
    out = rotate90(image, turns)
    assert sorted(out.reshape(-1)) == sorted(image.reshape(-1))
