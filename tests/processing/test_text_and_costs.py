"""Tokenizer, logits post-processing, cost models, and plan builders."""

import numpy as np
import pytest

from repro.models import load_model, model_card
from repro.processing import (
    IMPL_JAVA,
    IMPL_NATIVE,
    bitmap_convert_cost_us,
    build_postprocess_plan,
    build_preprocessor,
    compute_logits,
    normalize_cost_us,
    random_input_cost_us,
    resize_cost_us,
    rotate_cost_us,
    wordpiece_tokenize,
)
from repro.processing.text import default_vocab


# -- tokenizer ----------------------------------------------------------


def test_tokenize_wraps_with_cls_sep():
    vocab = default_vocab()
    ids = wordpiece_tokenize("the mobile phone", max_len=16)
    assert ids[0] == vocab["[CLS]"]
    assert ids[1] == vocab["the"]
    assert vocab["[SEP]"] in ids
    assert ids.dtype == np.int32
    assert len(ids) == 16


def test_tokenize_splits_into_wordpieces():
    vocab = default_vocab()
    ids = wordpiece_tokenize("runs", max_len=8).tolist()
    # "run" + "##s" via greedy longest-match.
    assert vocab["run"] in ids
    assert vocab["##s"] in ids


def test_tokenize_unknown_word_maps_to_unk():
    vocab = default_vocab()
    ids = wordpiece_tokenize("@@@@", max_len=8).tolist()
    # Punctuation is stripped; empty words skipped entirely.
    assert vocab["[UNK]"] not in ids[:1]
    ids = wordpiece_tokenize("Ω", max_len=8).tolist()
    assert ids[0] == vocab["[CLS]"]


def test_tokenize_respects_max_len():
    ids = wordpiece_tokenize("the " * 500, max_len=32)
    assert len(ids) == 32


def test_compute_logits_selects_best_span():
    start = np.zeros(20)
    end = np.zeros(20)
    start[5] = 10.0
    end[8] = 9.0
    spans = compute_logits(start, end)
    assert spans[0][:2] == (5, 8)
    assert spans[0][2] == pytest.approx(19.0)


def test_compute_logits_rejects_reversed_span():
    start = np.zeros(10)
    end = np.zeros(10)
    start[8] = 5.0
    end[2] = 5.0  # before start: invalid span
    spans = compute_logits(start, end, top_k=1)
    assert all(s <= e for s, e, _ in spans)


def test_compute_logits_length_mismatch():
    with pytest.raises(ValueError):
        compute_logits(np.zeros(5), np.zeros(6))


# -- cost models ---------------------------------------------------------


def test_java_costs_exceed_native():
    assert bitmap_convert_cost_us(640, 480, IMPL_JAVA) > bitmap_convert_cost_us(
        640, 480, IMPL_NATIVE
    )
    assert resize_cost_us((224, 224), impl=IMPL_JAVA) > resize_cost_us(
        (224, 224), impl=IMPL_NATIVE
    )


def test_costs_scale_with_size():
    assert rotate_cost_us((513, 513)) > rotate_cost_us((224, 224)) * 3
    assert normalize_cost_us((448, 448)) > normalize_cost_us((224, 224))


def test_random_generation_stdlib_asymmetry():
    """libc++ is fast for reals, slow for ints; libstdc++ the opposite."""
    elements = 224 * 224 * 3
    libcpp_float = random_input_cost_us(elements, "fp32", "libc++")
    libcpp_int = random_input_cost_us(elements, "int8", "libc++")
    gnu_float = random_input_cost_us(elements, "fp32", "libstdc++")
    gnu_int = random_input_cost_us(elements, "int8", "libstdc++")
    assert libcpp_int > libcpp_float * 3
    assert gnu_float > gnu_int * 2
    with pytest.raises(ValueError):
        random_input_cost_us(10, "fp32", "msvc")


# -- plan builders --------------------------------------------------------


def test_app_preprocessor_includes_bitmap_conversion():
    card = model_card("mobilenet_v1")
    model = load_model("mobilenet_v1")
    plan = build_preprocessor(card, model, context="app")
    assert plan.step_names() == ["bitmap_convert", "scale", "crop", "normalize"]
    assert plan.cost_us > 5_000  # managed-code loops are expensive


def test_benchmark_preprocessor_is_minimal():
    card = model_card("mobilenet_v1")
    model = load_model("mobilenet_v1")
    plan = build_preprocessor(card, model, context="benchmark")
    assert "bitmap_convert" not in plan.step_names()
    assert plan.cost_us < 500


def test_quantized_model_gets_type_conversion():
    card = model_card("mobilenet_v1")
    model = load_model("mobilenet_v1", "int8")
    plan = build_preprocessor(card, model, context="app")
    assert "type_conversion" in plan.step_names()
    assert "normalize" not in plan.step_names()


def test_posenet_preprocessor_rotates():
    card = model_card("posenet")
    model = load_model("posenet")
    plan = build_preprocessor(card, model, context="app")
    assert "rotate" in plan.step_names()
    assert plan.rotate_turns == 1


def test_bert_preprocessor_tokenizes_only():
    card = model_card("mobile_bert")
    model = load_model("mobile_bert")
    plan = build_preprocessor(card, model, context="app")
    assert plan.step_names() == ["tokenization"]


def test_preprocessor_run_produces_model_input():
    card = model_card("mobilenet_v1")
    model = load_model("mobilenet_v1")
    plan = build_preprocessor(card, model, context="app")
    frame = np.random.default_rng(0).integers(
        0, 256, size=(480, 640, 3)
    ).astype(np.uint8)
    out = plan.run(frame)
    assert out.shape == (224, 224, 3)
    assert out.dtype == np.float32
    assert -1.01 <= out.min() and out.max() <= 1.01


def test_preprocessor_run_quantized_output():
    card = model_card("mobilenet_v1")
    model = load_model("mobilenet_v1", "int8")
    plan = build_preprocessor(card, model, context="app")
    frame = np.zeros((480, 640, 3), dtype=np.uint8)
    out = plan.run(frame)
    assert out.dtype == np.uint8
    assert out.shape == (224, 224, 3)


def test_postprocess_classification_fp32_vs_int8():
    card = model_card("mobilenet_v1")
    fp32 = build_postprocess_plan(card, load_model("mobilenet_v1"))
    int8 = build_postprocess_plan(card, load_model("mobilenet_v1", "int8"))
    assert fp32.step_names() == ["topK"]
    assert int8.step_names() == ["topK", "dequantization"]


def test_postprocess_segmentation_dominates_classification():
    deeplab = build_postprocess_plan(
        model_card("deeplab_v3"), load_model("deeplab_v3")
    )
    mobilenet = build_postprocess_plan(
        model_card("mobilenet_v1"), load_model("mobilenet_v1")
    )
    assert "mask_flattening" in deeplab.step_names()
    assert deeplab.cost_us > 100 * mobilenet.cost_us


def test_postprocess_detection_app_adds_nms():
    card = model_card("ssd_mobilenet_v2")
    model = load_model("ssd_mobilenet_v2")
    app = build_postprocess_plan(card, model, context="app")
    benchmark = build_postprocess_plan(card, model, context="benchmark")
    assert "box_decode_nms" in app.step_names()
    assert "box_decode_nms" not in benchmark.step_names()


def test_postprocess_posenet_keypoints():
    plan = build_postprocess_plan(model_card("posenet"), load_model("posenet"))
    assert plan.step_names() == ["calculate_keypoints"]


def test_bad_context_raises():
    with pytest.raises(ValueError):
        build_preprocessor(
            model_card("mobilenet_v1"), load_model("mobilenet_v1"), context="cli"
        )
