"""Calibration harness tests (host timings are machine-dependent: loose)."""

from repro.processing.calibrate import compare_with_model, measure_host_kernels


def test_measures_all_modelled_kernels():
    rows = measure_host_kernels(height=96, width=128, out_side=64)
    names = {name for name, *_rest in rows}
    assert names == {
        "bitmap_convert", "resize", "crop", "normalize", "rotate", "quantize",
    }
    for _name, elements, elapsed_us, ns_per_elem in rows:
        assert elements > 0
        assert elapsed_us > 0
        assert ns_per_elem > 0


def test_comparison_pairs_measured_with_model():
    rows = measure_host_kernels(height=96, width=128, out_side=64)
    comparison = compare_with_model(rows)
    for name, measured_ns, model_ns in comparison:
        assert model_ns is not None, name
        # Same order of magnitude band (host numpy vs NEON): generous.
        assert measured_ns < model_ns * 1000
        assert measured_ns > model_ns / 1000
