"""Partitioner invariants across the whole zoo (property-style)."""

import pytest

from repro.android import Kernel
from repro.frameworks import NnapiSession
from repro.models import MODEL_CARDS, load_model
from repro.sim import Simulator
from repro.soc import make_soc


def make_kernel():
    sim = Simulator(seed=0)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    return Kernel(sim, soc, enable_dvfs=False)


def all_cases():
    for key, card in MODEL_CARDS.items():
        yield key, "fp32"
        if card.nnapi_int8 or card.cpu_int8:
            yield key, "int8"


@pytest.mark.parametrize("model_key,dtype", list(all_cases()))
@pytest.mark.parametrize("feature_level", [1.1, 1.2, 1.3])
def test_partitions_cover_graph_exactly_once(model_key, dtype, feature_level):
    """Every op appears exactly once, in the original execution order."""
    kernel = make_kernel()
    model = load_model(model_key, dtype)
    session = NnapiSession(kernel, model, feature_level=feature_level)
    partitions = session.plan_partitions()
    flattened = [op for partition in partitions for op in partition.ops]
    assert flattened == list(model.ops)


@pytest.mark.parametrize("model_key,dtype", list(all_cases()))
def test_no_adjacent_same_device_partitions(model_key, dtype):
    """Merging leaves no two neighbouring partitions on one device."""
    kernel = make_kernel()
    session = NnapiSession(kernel, load_model(model_key, dtype))
    partitions = session.plan_partitions()
    for left, right in zip(partitions, partitions[1:]):
        assert left.device != right.device


@pytest.mark.parametrize("model_key,dtype", list(all_cases()))
def test_accelerated_fraction_bounds(model_key, dtype):
    kernel = make_kernel()
    session = NnapiSession(kernel, load_model(model_key, dtype))
    fraction = session.accelerated_fraction()
    assert 0.0 <= fraction <= 1.0
    if session.reference_fallback:
        assert fraction == 0.0


def test_feature_level_monotonically_improves_delegation():
    """Raising the driver feature level never reduces acceleration."""
    kernel = make_kernel()
    for model_key, dtype in all_cases():
        fractions = []
        for level in (1.1, 1.2, 1.3):
            session = NnapiSession(
                kernel, load_model(model_key, dtype), feature_level=level
            )
            fractions.append(session.accelerated_fraction())
        assert fractions[0] <= fractions[1] <= fractions[2], model_key
