"""NNAPI partitioning/fallback and SNPE tests — paper Fig. 5 / §IV-B."""

import pytest

from repro.frameworks import (
    NnapiSession,
    SnpeSession,
    TfliteInterpreter,
    UnsupportedModelError,
    supported_fraction,
    supports_op,
)
from repro.models import load_model

from tests.frameworks.conftest import drive_session


# -- op support matrix ---------------------------------------------------


def test_nnapi_dsp_lacks_large_depthwise_int8():
    model = load_model("efficientnet_lite0", "int8")
    dw5 = [
        op
        for op in model.ops
        if op.kind == "DEPTHWISE_CONV_2D" and op.attrs["kernel"] == 5
    ]
    assert dw5, "EfficientNet-Lite0 should contain 5x5 depthwise stages"
    assert all(not supports_op("nnapi-dsp", op, "int8") for op in dw5)


def test_nnapi_lacks_asymmetric_convs():
    model = load_model("inception_v3")
    asym = [
        op
        for op in model.ops
        if op.kind == "CONV_2D" and op.attrs["kernel"][0] != op.attrs["kernel"][1]
    ]
    assert asym
    assert all(not supports_op("nnapi-gpu", op, "fp32") for op in asym)
    assert all(supports_op("cpu", op, "fp32") for op in asym)


def test_hexagon_delegate_full_mobilenet_coverage():
    model = load_model("mobilenet_v1", "int8")
    assert supported_fraction("hexagon-delegate", model.ops, "int8") == 1.0


def test_unknown_backend_raises():
    model = load_model("mobilenet_v1")
    with pytest.raises(KeyError):
        supports_op("cuda", model.ops[0], "fp32")


# -- partitioning ---------------------------------------------------------


def make_session(rig, key, dtype, **kwargs):
    _, _, kernel = rig
    return NnapiSession(kernel, load_model(key, dtype), **kwargs)


def test_mobilenet_int8_fully_delegated(rig):
    session = make_session(rig, "mobilenet_v1", "int8")
    partitions = session.plan_partitions()
    assert len(partitions) == 1
    assert partitions[0].device == "dsp"
    assert session.accelerated_fraction() == 1.0


def test_efficientnet_int8_falls_back_to_reference(rig):
    session = make_session(rig, "efficientnet_lite0", "int8")
    partitions = session.plan_partitions()
    assert session.reference_fallback
    assert [p.device for p in partitions] == ["cpu-reference"]
    assert session.accelerated_fraction() == 0.0


def test_efficientnet_fp32_does_not_fall_back(rig):
    """The paper: 'this does not occur in the floating-point model'."""
    session = make_session(rig, "efficientnet_lite0", "fp32")
    session.plan_partitions()
    assert not session.reference_fallback
    assert session.accelerated_fraction() == 1.0


def test_inception_partially_offloaded(rig):
    """Paper §IV-A: Inception runs about half its inference on the CPU."""
    session = make_session(rig, "inception_v3", "fp32")
    partitions = session.plan_partitions()
    assert len(partitions) > 5
    assert not session.reference_fallback
    assert 0.4 < session.accelerated_fraction() < 0.9
    assert "cpu" in session.describe_plan()


def test_fig5_shape_nnapi_7x_slower_than_cpu1(rig):
    sim, soc, kernel = rig
    model = load_model("efficientnet_lite0", "int8")
    nnapi = NnapiSession(kernel, model)
    nnapi_durations = drive_session(sim, kernel, nnapi, invokes=3)
    cpu1 = TfliteInterpreter(kernel, model, threads=1)
    cpu1_durations = drive_session(sim, kernel, cpu1, invokes=3)
    ratio = nnapi_durations[-1] / cpu1_durations[-1]
    assert 4.0 < ratio < 11.0


def test_nnapi_compile_probes_dsp_for_quantized(rig):
    sim, soc, kernel = rig
    session = make_session(rig, "efficientnet_lite0", "int8")
    drive_session(sim, kernel, session, invokes=1)
    # The compilation probe shows up as cDSP activity even though the
    # whole execution fell back to the CPU (paper Fig. 6).
    dsp_spans = sim.trace.spans_on("cdsp")
    assert any(span.label == "nnapi:probe" for span in dsp_spans)
    assert session.stats.compile_us > 0


def test_nnapi_crossings_counted(rig):
    sim, soc, kernel = rig
    session = make_session(rig, "inception_v3", "fp32")
    drive_session(sim, kernel, session, invokes=2)
    assert session.stats.partition_crossings > 5


def test_nnapi_rejects_bad_preference(rig):
    _, _, kernel = rig
    with pytest.raises(ValueError):
        NnapiSession(kernel, load_model("mobilenet_v1"), preference="turbo")


def test_nnapi_invoke_before_prepare(rig):
    sim, _, kernel = rig
    session = make_session(rig, "mobilenet_v1", "int8")
    with pytest.raises(RuntimeError, match="prepare"):
        kernel.spawn_on_big(session.invoke(), name="bad")
        sim.run()


# -- SNPE -----------------------------------------------------------------


def test_snpe_dsp_beats_nnapi_and_cpu(rig):
    """Paper §IV-B: under SNPE the DSP outperforms the CPU as expected."""
    sim, soc, kernel = rig
    model = load_model("efficientnet_lite0", "int8")
    snpe = SnpeSession(kernel, model, runtime="dsp")
    snpe_durations = drive_session(sim, kernel, snpe, invokes=3)
    cpu4 = TfliteInterpreter(kernel, model, threads=4)
    cpu_durations = drive_session(sim, kernel, cpu4, invokes=3)
    assert snpe_durations[-1] < cpu_durations[-1]


def test_snpe_requires_quantized_for_dsp(rig):
    sim, _, kernel = rig
    session = SnpeSession(kernel, load_model("mobilenet_v1"), runtime="dsp")
    with pytest.raises(UnsupportedModelError):
        thread = kernel.spawn_on_big(session.prepare(), name="prep")
        sim.run(until=thread.done)


def test_snpe_rejects_bert_on_dsp(rig):
    sim, _, kernel = rig
    session = SnpeSession(kernel, load_model("mobile_bert", "int8"), runtime="dsp")
    with pytest.raises(UnsupportedModelError, match="lacks ops"):
        thread = kernel.spawn_on_big(session.prepare(), name="prep")
        sim.run(until=thread.done)


def test_snpe_cpu_runtime_works_for_float(rig):
    sim, _, kernel = rig
    session = SnpeSession(kernel, load_model("mobilenet_v1"), runtime="cpu")
    durations = drive_session(sim, kernel, session, invokes=2)
    assert durations[-1] > 0
    assert session.describe_plan().endswith("snpe-cpu")


def test_snpe_unknown_runtime(rig):
    _, _, kernel = rig
    with pytest.raises(ValueError):
        SnpeSession(kernel, load_model("mobilenet_v1"), runtime="npu")
