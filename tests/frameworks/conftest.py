"""Shared fixtures for framework tests."""

import pytest

from repro.android import Kernel
from repro.sim import Simulator
from repro.soc import make_soc


@pytest.fixture
def rig():
    """(sim, soc, kernel) on a performance-governed SD845."""
    sim = Simulator(seed=0, trace=True)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    return sim, soc, kernel


def drive_session(sim, kernel, session, invokes=3):
    """Prepare a session and run ``invokes`` inferences; returns durations."""
    durations = []

    def body():
        yield from session.prepare()
        for _ in range(invokes):
            duration = yield from session.invoke()
            durations.append(duration)

    thread = kernel.spawn_on_big(body(), name="driver")
    sim.run(until=thread.done)
    return durations
