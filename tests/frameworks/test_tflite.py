"""TFLite interpreter + delegate tests."""

import pytest

from repro.frameworks import (
    GpuDelegate,
    HexagonDelegate,
    TfliteInterpreter,
    UnsupportedModelError,
    graph_cpu_work_us,
    op_cpu_work_us,
    parallel_efficiency,
)
from repro.models import conv2d, load_model

from tests.frameworks.conftest import drive_session


def test_cpu_kernel_rates_ordering():
    op = conv2d("c", (56, 56), 64, 64, 3)
    tuned_fp32 = op_cpu_work_us(op, "fp32", "tuned")
    tuned_int8 = op_cpu_work_us(op, "int8", "tuned")
    reference_int8 = op_cpu_work_us(op, "int8", "reference")
    assert tuned_int8 < tuned_fp32
    assert reference_int8 > 4 * tuned_fp32
    with pytest.raises(ValueError):
        op_cpu_work_us(op, "fp32", "jit")


def test_parallel_efficiency_interpolates_and_clamps():
    assert parallel_efficiency(1) == 1.0
    assert parallel_efficiency(4) == 0.80
    assert 0.80 < parallel_efficiency(3) < 0.92
    assert parallel_efficiency(16) == parallel_efficiency(8)


def test_invoke_before_prepare_raises(rig):
    sim, soc, kernel = rig
    session = TfliteInterpreter(kernel, load_model("mobilenet_v1"))
    with pytest.raises(RuntimeError, match="prepare"):
        kernel.spawn_on_big(session.invoke(), name="bad")
        sim.run()


def test_cpu_four_threads_faster_than_one(rig):
    sim, soc, kernel = rig
    model = load_model("mobilenet_v1")
    fast = TfliteInterpreter(kernel, model, threads=4)
    durations4 = drive_session(sim, kernel, fast, invokes=2)
    slow = TfliteInterpreter(kernel, model, threads=1)
    durations1 = drive_session(sim, kernel, slow, invokes=2)
    assert durations1[-1] > 2.5 * durations4[-1]


def test_interpreter_init_scales_with_model_size(rig):
    sim, soc, kernel = rig
    small = TfliteInterpreter(kernel, load_model("mobilenet_v1"))
    drive_session(sim, kernel, small, invokes=1)
    large = TfliteInterpreter(kernel, load_model("inception_v4"))
    drive_session(sim, kernel, large, invokes=1)
    assert large.stats.init_us > small.stats.init_us


def test_hexagon_delegate_runs_quantized(rig):
    sim, soc, kernel = rig
    model = load_model("mobilenet_v1", "int8")
    session = TfliteInterpreter(kernel, model, delegate=HexagonDelegate(kernel))
    durations = drive_session(sim, kernel, session, invokes=3)
    # Warm inferences are faster than 4-thread CPU for this model.
    cpu = TfliteInterpreter(kernel, model, threads=4)
    cpu_durations = drive_session(sim, kernel, cpu, invokes=3)
    assert durations[-1] < cpu_durations[-1]
    assert "hexagon" in session.stats.framework


def test_hexagon_delegate_rejects_float(rig):
    sim, soc, kernel = rig
    model = load_model("mobilenet_v1")
    session = TfliteInterpreter(kernel, model, delegate=HexagonDelegate(kernel))
    thread = kernel.spawn_on_big(session.prepare(), name="prep")
    with pytest.raises(UnsupportedModelError):
        sim.run(until=thread.done)


def test_gpu_delegate_rejects_quantized_and_bert(rig):
    sim, soc, kernel = rig
    delegate = GpuDelegate(kernel)
    assert not delegate.covers(load_model("mobilenet_v1", "int8"))
    assert not delegate.covers(load_model("mobile_bert"))
    assert delegate.covers(load_model("mobilenet_v1"))
    with pytest.raises(ValueError):
        GpuDelegate(kernel, precision="int4")


def test_gpu_delegate_init_pays_shader_compile(rig):
    sim, soc, kernel = rig
    model = load_model("mobilenet_v1")
    session = TfliteInterpreter(kernel, model, delegate=GpuDelegate(kernel))
    drive_session(sim, kernel, session, invokes=2)
    assert session.stats.init_us > soc.gpu.init_time_us * 0.9


def test_gpu_fp16_faster_than_fp32(rig):
    sim, soc, kernel = rig
    model = load_model("inception_v3")
    fp16 = TfliteInterpreter(kernel, model, delegate=GpuDelegate(kernel, "fp16"))
    d16 = drive_session(sim, kernel, fp16, invokes=2)
    fp32 = TfliteInterpreter(kernel, model, delegate=GpuDelegate(kernel, "fp32"))
    d32 = drive_session(sim, kernel, fp32, invokes=2)
    assert d16[-1] < d32[-1]


def test_stats_track_invocations(rig):
    sim, soc, kernel = rig
    session = TfliteInterpreter(kernel, load_model("squeezenet"), threads=4)
    durations = drive_session(sim, kernel, session, invokes=4)
    assert session.stats.invocations == 4
    assert session.stats.mean_invoke_us == pytest.approx(
        sum(durations) / 4, rel=1e-6
    )
    assert session.describe_plan().startswith("all")


def test_graph_cpu_work_additive():
    model = load_model("squeezenet")
    total = graph_cpu_work_us(model.ops, "fp32")
    assert total == pytest.approx(
        sum(op_cpu_work_us(op, "fp32") for op in model.ops)
    )
