"""CLI tests."""

import pytest

from repro.cli import build_parser, main


def test_models_command(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "MobileNet 1.0 v1" in out
    assert "Mobile BERT" in out


def test_socs_command(capsys):
    assert main(["socs"]) == 0
    out = capsys.readouterr().out
    assert "Google Pixel 3" in out


def test_run_command(capsys):
    assert main([
        "run", "--model", "mobilenet_v1", "--dtype", "int8",
        "--context", "cli", "--target", "cpu", "--runs", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "ai_tax" in out
    assert "AI tax fraction" in out
    assert "median" in out


def test_experiment_command(capsys):
    assert main(["experiment", "fig5", "--runs", "4"]) == 0
    out = capsys.readouterr().out
    assert "[fig5]" in out
    assert "nnapi" in out


def test_experiment_rejects_unknown_id():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_run_rejects_bad_target():
    with pytest.raises(SystemExit):
        main(["run", "--target", "tpu"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_with_config_file(tmp_path, capsys):
    import json

    config_path = tmp_path / "config.json"
    config_path.write_text(json.dumps({
        "model_key": "mobilenet_v1", "dtype": "int8", "context": "cli",
        "target": "cpu", "runs": 3,
    }))
    assert main(["run", "--config", str(config_path)]) == 0
    out = capsys.readouterr().out
    assert "ai_tax" in out


def test_config_dict_roundtrip():
    from repro.apps import PipelineConfig
    from repro.apps.harness import config_from_dict, config_to_dict

    config = PipelineConfig(model_key="posenet", source_hw=(240, 320))
    rebuilt = config_from_dict(config_to_dict(config))
    assert rebuilt == config


def test_config_unknown_key_rejected():
    import pytest as _pytest

    from repro.apps.harness import config_from_dict

    with _pytest.raises(ValueError, match="unknown config keys"):
        config_from_dict({"model": "mobilenet_v1"})


def test_fleet_command(tmp_path, capsys):
    cache_dir = str(tmp_path / "fleet-cache")
    argv = [
        "fleet", "--sessions", "8", "--workers", "2", "--seed", "0",
        "--runs", "3", "--cache-dir", cache_dir,
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "[fleet_percentiles]" in out
    assert "simulated: 8" in out
    # Warm cache: the second invocation simulates nothing.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "simulated: 0" in out
    assert "cache hits: 8" in out


def test_trace_command(tmp_path, capsys):
    import json

    out_path = tmp_path / "trace.json"
    argv = [
        "trace", "quickstart", "--out", str(out_path), "--runs", "3",
        "--top", "2",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "[pipeline]" in out
    assert "data_capture" in out
    assert f"wrote {out_path}" in out
    with open(out_path) as handle:
        payload = json.load(handle)
    tracks = {
        event["cat"]
        for event in payload["traceEvents"]
        if event["ph"] == "X"
    }
    assert {"fastrpc", "pipeline"} <= tracks


def test_trace_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace", "no-such-scenario"])


def test_summary_command(capsys):
    assert main(["summary"]) == 0
    out = capsys.readouterr().out
    assert "all takeaways hold:       yes" in out
    assert "registered experiments" in out


def test_chaos_command(capsys):
    assert main([
        "chaos", "--sessions", "6", "--runs", "2", "--seed", "5",
        "--fault-rate", "0.25",
    ]) == 0
    out = capsys.readouterr().out
    assert "[chaos]" in out
    assert "fault rate" in out
    assert "failed sessions: 1" in out
    assert "died without recovery" in out


def test_serve_command_exports_identically(tmp_path, capsys):
    argv = [
        "serve", "--rate", "120", "--duration", "0.3", "--devices", "2",
        "--seed", "0",
    ]
    path_a = tmp_path / "a.json"
    path_b = tmp_path / "b.json"
    assert main(argv + ["--export", str(path_a)]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "goodput" in out
    assert "slo misses:" in out
    assert main(argv + ["--export", str(path_b)]) == 0
    # Same config and seed: the canonical export is byte-identical.
    assert path_a.read_bytes() == path_b.read_bytes()


def test_serve_rejects_bad_policy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve", "--policy", "tailshed"])
