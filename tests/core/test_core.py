"""AI-tax core tests: taxonomy, measurement, analysis, variability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CATEGORY_ALGORITHMS,
    PipelineRun,
    ProbeEffect,
    RunCollection,
    STAGE_CAPTURE,
    STAGE_INFERENCE,
    Taxonomy,
    VariabilityStats,
    ai_tax_fraction,
    breakdown,
    compare_contexts,
    render_table,
    stage_category,
)
from repro.core.report import render_breakdown
from repro.core.variability import histogram_of


def make_collection(name, totals, inference_fraction=0.5):
    collection = RunCollection(name=name)
    for total in totals:
        inference = total * inference_fraction
        rest = total - inference
        collection.add(
            PipelineRun(
                capture_us=rest * 0.5,
                pre_us=rest * 0.3,
                inference_us=inference,
                post_us=rest * 0.1,
                other_us=rest * 0.1,
            )
        )
    return collection


def test_taxonomy_categories_and_sources():
    assert stage_category(STAGE_CAPTURE) == CATEGORY_ALGORITHMS
    with pytest.raises(ValueError):
        stage_category(STAGE_INFERENCE)
    with pytest.raises(KeyError):
        stage_category("rendering")
    assert "multitenancy" in Taxonomy.sources("hardware")
    assert "drivers" in Taxonomy.sources("frameworks")
    with pytest.raises(KeyError):
        Taxonomy.sources("networks")
    assert "algorithms" in Taxonomy.describe()


def test_pipeline_run_totals_and_tax():
    run = PipelineRun(
        capture_us=10, pre_us=20, inference_us=50, post_us=15, other_us=5
    )
    assert run.total_us == 100
    assert run.tax_us == 50
    assert run.tax_fraction == 0.5
    assert run.stage_us(STAGE_CAPTURE) == 10
    with pytest.raises(KeyError):
        run.stage_us("gpu")
    ms = run.as_ms()
    assert ms["total"] == pytest.approx(0.1)


def test_collection_statistics():
    collection = make_collection("x", [10_000, 20_000, 30_000])
    assert collection.mean_us() == pytest.approx(20_000)
    assert collection.median_us() == pytest.approx(20_000)
    assert collection.std_us() == pytest.approx(10_000)
    assert collection.percentile_us(0.0) == 10_000
    assert collection.percentile_us(1.0) == 30_000
    with pytest.raises(ValueError):
        collection.percentile_us(1.5)
    assert len(collection.drop_warmup(1)) == 2


def test_breakdown_drops_warmup():
    collection = make_collection("warm", [100_000, 10_000, 10_000])
    result = breakdown(collection, drop_warmup=1)
    assert result.total_ms == pytest.approx(10.0)
    assert result.n == 2
    raw = breakdown(collection, drop_warmup=0)
    assert raw.total_ms > result.total_ms


def test_breakdown_rows_sum_to_one():
    collection = make_collection("rows", [10_000] * 4)
    result = breakdown(collection)
    fractions = [fraction for _stage, _ms, fraction in result.rows()]
    assert sum(fractions) == pytest.approx(1.0)
    assert result.capture_plus_pre_over_inference == pytest.approx(
        (result.capture_ms + result.pre_ms) / result.inference_ms
    )


def test_ai_tax_fraction():
    collection = make_collection("tax", [10_000] * 3, inference_fraction=0.5)
    assert ai_tax_fraction(collection) == pytest.approx(0.5)


def test_compare_contexts_ratio():
    bench = make_collection("bench", [10_000] * 3)
    app = make_collection("app", [15_000] * 3)
    result = compare_contexts(bench, app)
    assert result["app_over_benchmark"] == pytest.approx(1.5)
    assert result["app_tax_fraction"] == pytest.approx(0.5)


def test_variability_stats():
    collection = make_collection("var", [10_000, 10_000, 10_000, 13_000, 9_000])
    stats = VariabilityStats.from_collection(collection, drop_warmup=0)
    assert stats.n == 5
    assert stats.median_ms == pytest.approx(10.0)
    assert stats.max_deviation_from_median == pytest.approx(0.3)
    assert stats.cv > 0
    assert stats.min_ms == 9.0 and stats.max_ms == 13.0


def test_variability_empty_raises():
    with pytest.raises(ValueError):
        VariabilityStats.from_collection(RunCollection("empty"), drop_warmup=0)


def test_histogram_bins_cover_all_runs():
    collection = make_collection("hist", list(range(10_000, 20_000, 1_000)))
    bins = histogram_of(collection, bins=5, drop_warmup=0)
    assert sum(count for _lo, _hi, count in bins) == 10
    assert bins[0][0] == pytest.approx(10.0)


def test_probe_effect_band():
    probe = ProbeEffect()
    assert probe.within_paper_band()
    assert probe.apply(100.0, accelerated=True) == pytest.approx(105.5)
    assert probe.apply(100.0, accelerated=False) == 100.0
    with pytest.raises(ValueError):
        ProbeEffect(accelerated_overhead=1.5)


def test_render_table_alignment():
    text = render_table(("a", "bb"), [(1.2345, "x"), (10.0, "yy")])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "1.23" in lines[2]
    assert lines[1].count("+") == 1


def test_render_breakdown_includes_tax():
    collection = make_collection("rb", [10_000] * 3)
    text = render_breakdown(breakdown(collection))
    assert "ai_tax" in text
    assert "inference" in text


@settings(max_examples=40, deadline=None)
@given(
    totals=st.lists(st.floats(1_000, 1_000_000), min_size=2, max_size=30),
    fraction=st.floats(0.05, 0.95),
)
def test_tax_fraction_bounds_property(totals, fraction):
    collection = make_collection("prop", totals, inference_fraction=fraction)
    result = breakdown(collection, drop_warmup=0)
    assert 0.0 <= result.tax_fraction <= 1.0
    assert result.tax_fraction == pytest.approx(1.0 - fraction, rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(totals=st.lists(st.floats(1_000, 100_000), min_size=2, max_size=30))
def test_percentiles_ordered_property(totals):
    collection = make_collection("ordered", totals)
    p10 = collection.percentile_us(0.1)
    p50 = collection.percentile_us(0.5)
    p90 = collection.percentile_us(0.9)
    assert p10 <= p50 <= p90
    assert collection.percentile_us(0.0) <= p10
    assert p90 <= collection.percentile_us(1.0)
