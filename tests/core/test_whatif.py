"""What-if analysis tests."""

import pytest

from repro.core.analysis import StageBreakdown
from repro.core.whatif import (
    accelerator_upgrade_ceiling,
    optimization_priorities,
    stage_speedup_impact,
)


def make_breakdown():
    return StageBreakdown(
        name="x", n=10, capture_ms=10.0, pre_ms=5.0, inference_ms=10.0,
        post_ms=1.0, other_ms=4.0,
    )  # total 30


def test_stage_speedup_impact_math():
    impact = stage_speedup_impact(make_breakdown(), "inference", factor=2.0)
    assert impact.stage_ms == 10.0
    assert impact.new_total_ms == pytest.approx(25.0)
    assert impact.end_to_end_speedup == pytest.approx(30.0 / 25.0)
    assert impact.stage_share == pytest.approx(1.0 / 3.0)


def test_infinite_factor_eliminates_stage():
    impact = stage_speedup_impact(
        make_breakdown(), "data_capture", factor=float("inf")
    )
    assert impact.new_total_ms == pytest.approx(20.0)


def test_validation():
    with pytest.raises(KeyError, match="unknown stage"):
        stage_speedup_impact(make_breakdown(), "rendering")
    with pytest.raises(ValueError):
        stage_speedup_impact(make_breakdown(), "inference", factor=0)


def test_priorities_ranked_by_payoff():
    impacts = optimization_priorities(make_breakdown(), factor=2.0)
    speedups = [impact.end_to_end_speedup for impact in impacts]
    assert speedups == sorted(speedups, reverse=True)
    # Capture and inference tie at 10 ms each; both outrank pre.
    top_stages = {impacts[0].stage, impacts[1].stage}
    assert top_stages == {"data_capture", "inference"}


def test_accelerator_ceiling_is_inverse_tax():
    b = make_breakdown()
    ceiling = accelerator_upgrade_ceiling(b)
    assert ceiling == pytest.approx(30.0 / 20.0)
    assert ceiling == pytest.approx(1.0 / b.tax_fraction)


def test_whatif_experiment_prioritizes_capture():
    from repro.experiments import run_experiment

    result = run_experiment("whatif", runs=8)
    assert result.rows[0][0] == "data_capture"
    ceiling = result.series["accelerator_ceiling"][0]
    assert ceiling < 2.0  # AI tax caps inference-only silicon gains


def test_resolution_sweep_capture_grows():
    from repro.experiments import run_experiment

    result = run_experiment("resolution_sweep", runs=6)
    capture = result.column("capture ms")
    inference = result.column("inference ms")
    assert capture[-1] > 2 * capture[0]  # 1080p >> QVGA
    assert max(inference) < 1.2 * min(inference)  # resolution-independent


def test_takeaways_all_hold():
    from repro.experiments import run_experiment

    result = run_experiment("takeaways", runs=8)
    assert all(row[3] for row in result.rows)
    assert len(result.rows) == 4
