#!/usr/bin/env python
"""Generate docs/api.md from the package's docstrings.

Walks ``repro``'s subpackages, extracts module docstrings and the
signatures + first docstring paragraphs of public classes and functions,
and writes a browsable markdown API reference.

The output is deterministic — modules, members, and methods are emitted
in sorted order and memory addresses are scrubbed from reprs — so CI
can diff a fresh run against the committed file. The script is
self-locating (it puts ``src/`` on ``sys.path`` itself), needs no
display, network, or installed package, and must keep working on a bare
``python docs/generate_api.py``.

Run:   python docs/generate_api.py
Check: python docs/generate_api.py --check   (exit 1 when api.md is stale)

CI runs ``--check`` on the Python version pinned in the ``docs`` job of
``.github/workflows/ci.yml`` (signature reprs can drift across minor
versions); regenerate with that version when the check disagrees with
your local run.
"""

import argparse
import importlib
import inspect
import pathlib
import pkgutil
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import repro  # noqa: E402  (needs the sys.path insert above)

SKIP_MODULES = {"repro.__main__"}

#: Default-value reprs that embed a memory address (`<object at 0x...>`)
#: would differ run to run; scrub the address, keep the type.
_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+")


def _scrub(text):
    return _ADDRESS.sub("", text)


def first_paragraph(obj):
    doc = inspect.getdoc(obj)
    if not doc:
        return ""
    return _scrub(doc.split("\n\n")[0].replace("\n", " "))


def describe_callable(name, obj):
    try:
        signature = _scrub(str(inspect.signature(obj)))
    except (TypeError, ValueError):
        signature = "(...)"
    summary = first_paragraph(obj)
    return f"- **`{name}{signature}`** — {summary}" if summary else (
        f"- **`{name}{signature}`**"
    )


def describe_class(name, cls):
    lines = [f"### `{name}`", "", first_paragraph(cls) or "", ""]
    for method_name, method in sorted(vars(cls).items()):
        if method_name.startswith("_"):
            continue
        if isinstance(method, property):
            summary = first_paragraph(method)
            lines.append(f"- *property* **`{method_name}`** — {summary}")
        elif callable(method):
            lines.append(describe_callable(f"{method_name}", method))
    lines.append("")
    return lines


def iter_modules():
    seen = set()
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro.", onerror=_walk_error
    ):
        if info.name in SKIP_MODULES or info.name in seen:
            continue
        seen.add(info.name)
        yield info.name


def _walk_error(name):
    raise ImportError(f"failed to import {name} while walking repro.*")


def generate():
    lines = [
        "# API reference",
        "",
        "Generated from docstrings by `docs/generate_api.py`; do not edit.",
        "",
    ]
    for module_name in sorted(iter_modules()):
        module = importlib.import_module(module_name)
        lines.append(f"## `{module_name}`")
        lines.append("")
        summary = first_paragraph(module)
        if summary:
            lines.append(summary)
            lines.append("")
        public = [
            (name, obj)
            for name, obj in sorted(vars(module).items())
            if not name.startswith("_")
            and getattr(obj, "__module__", None) == module_name
        ]
        for name, obj in public:
            if inspect.isclass(obj):
                lines.extend(describe_class(name, obj))
            elif inspect.isfunction(obj):
                lines.append(describe_callable(name, obj))
        lines.append("")
    return "\n".join(lines) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if docs/api.md differs from a fresh generation",
    )
    args = parser.parse_args(argv)
    output = pathlib.Path(__file__).resolve().parent / "api.md"
    text = generate()
    if args.check:
        current = output.read_text() if output.exists() else ""
        if current != text:
            print(
                f"{output} is stale: regenerate it with "
                "`python docs/generate_api.py` and commit the result",
                file=sys.stderr,
            )
            return 1
        print(f"{output} is up to date")
        return 0
    output.write_text(text, newline="\n")
    print(f"wrote {output} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
