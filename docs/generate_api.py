#!/usr/bin/env python
"""Generate docs/api.md from the package's docstrings.

Walks ``repro``'s subpackages, extracts module docstrings and the
signatures + first docstring paragraphs of public classes and functions,
and writes a browsable markdown API reference.

Run:  python docs/generate_api.py
"""

import importlib
import inspect
import pathlib
import pkgutil

import repro

SKIP_MODULES = {"repro.__main__"}


def first_paragraph(obj):
    doc = inspect.getdoc(obj)
    if not doc:
        return ""
    return doc.split("\n\n")[0].replace("\n", " ")


def describe_callable(name, obj):
    try:
        signature = str(inspect.signature(obj))
    except (TypeError, ValueError):
        signature = "(...)"
    summary = first_paragraph(obj)
    return f"- **`{name}{signature}`** — {summary}" if summary else (
        f"- **`{name}{signature}`**"
    )


def describe_class(name, cls):
    lines = [f"### `{name}`", "", first_paragraph(cls) or "", ""]
    for method_name, method in sorted(vars(cls).items()):
        if method_name.startswith("_"):
            continue
        if isinstance(method, property):
            summary = first_paragraph(method)
            lines.append(f"- *property* **`{method_name}`** — {summary}")
        elif callable(method):
            lines.append(describe_callable(f"{method_name}", method))
    lines.append("")
    return lines


def iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        yield info.name


def generate():
    lines = [
        "# API reference",
        "",
        "Generated from docstrings by `docs/generate_api.py`; do not edit.",
        "",
    ]
    for module_name in sorted(iter_modules()):
        module = importlib.import_module(module_name)
        lines.append(f"## `{module_name}`")
        lines.append("")
        summary = first_paragraph(module)
        if summary:
            lines.append(summary)
            lines.append("")
        public = [
            (name, obj)
            for name, obj in sorted(vars(module).items())
            if not name.startswith("_")
            and getattr(obj, "__module__", None) == module_name
        ]
        for name, obj in public:
            if inspect.isclass(obj):
                lines.extend(describe_class(name, obj))
            elif inspect.isfunction(obj):
                lines.append(describe_callable(name, obj))
        lines.append("")
    return "\n".join(lines)


def main():
    output = pathlib.Path(__file__).resolve().parent / "api.md"
    text = generate()
    output.write_text(text)
    print(f"wrote {output} ({len(text.splitlines())} lines)")


if __name__ == "__main__":
    main()
