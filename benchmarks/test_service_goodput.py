"""Bench: service-tier goodput, batching tradeoff, overload sweep.

Besides the rendered table, this test leaves
``results/BENCH_service_goodput.json`` behind — a small metrics
snapshot (goodput, p99, simulated requests per wall-second) so later
changes to the service tier inherit a perf trajectory to compare
against.
"""

import json

from repro.experiments import run_experiment

from .conftest import RESULTS_DIR


def test_service_goodput(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("service_goodput",),
        kwargs={"devices": 4, "seed": 0},
        rounds=1, iterations=1,
    )
    save_result(result)

    factors = result.series["load_factor"]
    goodputs = result.series["load_goodput_rps"]
    throughputs = result.series["load_throughput_rps"]
    peak_goodput = max(goodputs)
    peak_goodput_factor = factors[goodputs.index(peak_goodput)]
    peak_throughput_factor = factors[
        throughputs.index(max(throughputs))
    ]
    # The service headline: goodput peaks at (or before) the offered
    # load where raw throughput saturates ...
    assert peak_goodput_factor <= peak_throughput_factor
    # ... and collapses under overload while throughput merely flattens.
    overload_goodput = goodputs[factors.index(max(factors))]
    overload_throughput = throughputs[factors.index(max(factors))]
    assert overload_goodput < 0.5 * peak_goodput
    assert overload_throughput > 0.6 * max(throughputs)

    # Batching buys throughput and, off the batch=1 queueing cliff,
    # latency too; past the knee extra batch size stops paying.
    batch_p99 = result.series["batch_p99_ms"]
    batch_throughput = result.series["batch_throughput_rps"]
    assert batch_throughput[1] > batch_throughput[0]
    assert batch_p99[1] < batch_p99[0]

    wall_s = benchmark.stats.stats.total
    served = sum(int(row[2]) for row in result.rows)
    metrics = {
        "peak_goodput_rps": peak_goodput,
        "peak_goodput_load_factor": peak_goodput_factor,
        "overload_goodput_rps": overload_goodput,
        "overload_throughput_rps": overload_throughput,
        "p99_ms_at_peak": result.series["load_p99_ms"][
            goodputs.index(peak_goodput)
        ],
        "sessions_per_sec": served / wall_s if wall_s else 0.0,
        "wall_s": wall_s,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "BENCH_service_goodput.json", "w") as handle:
        json.dump(metrics, handle, indent=2, sort_keys=True)
        handle.write("\n")
    benchmark.extra_info.update(metrics)
