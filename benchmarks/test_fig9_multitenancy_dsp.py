"""Bench: regenerate Fig. 9 (background inferences contending for DSP)."""

from repro.experiments import run_experiment


def test_fig9_multitenancy_dsp(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig9",), kwargs={"runs": 8},
        rounds=1, iterations=1,
    )
    save_result(result)
    inference = result.series["inference_ms"]
    assert inference[-1] > 2.5 * inference[0]
    cpu_side = result.series["capture_plus_pre_ms"]
    assert max(cpu_side) < 2.0 * min(cpu_side)
    benchmark.extra_info["inference_growth"] = inference[-1] / inference[0]
