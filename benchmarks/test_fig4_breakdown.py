"""Bench: regenerate Fig. 4 (capture/pre/inference, benchmark vs app)."""

from repro.experiments import run_experiment


def test_fig4_breakdown(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig4",), kwargs={"runs": 8},
        rounds=1, iterations=1,
    )
    save_result(result)
    rows = {(row[0], row[1], row[2]): row for row in result.rows}
    # Quantized MobileNet app: capture+pre well above inference.
    assert rows[("mobilenet_v1", "int8", "app")][6] > 1.4
    # Inception: inference dominates even in the app.
    assert rows[("inception_v3", "fp32", "app")][6] < 0.4
    benchmark.extra_info["mobilenet_int8_ratio"] = rows[
        ("mobilenet_v1", "int8", "app")
    ][6]
