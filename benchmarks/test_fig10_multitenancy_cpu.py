"""Bench: regenerate Fig. 10 (background inferences on the CPU)."""

from repro.experiments import run_experiment


def test_fig10_multitenancy_cpu(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig10",), kwargs={"runs": 8},
        rounds=1, iterations=1,
    )
    save_result(result)
    inference = result.series["inference_ms"]
    cpu_side = result.series["capture_plus_pre_ms"]
    assert inference[-1] < 1.6 * inference[0]
    assert cpu_side[-1] > 1.1 * cpu_side[0]
    benchmark.extra_info["cpu_side_growth"] = cpu_side[-1] / cpu_side[0]
