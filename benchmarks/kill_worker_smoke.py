"""CI smoke: SIGKILL a fleet worker mid-run; nothing may change.

The supervision contract (docs/faults.md) is that crash recovery is
*scheduling only* — a fleet run that loses a worker to the OOM killer
must still assemble bit-identical session results. This script enforces
that end to end:

1. recompute the ``fleet_percentiles`` experiment fingerprint and
   require it to match the committed golden
   (``results/ENGINE_golden_digests.json``) — the undisturbed engine is
   byte-stable on this machine;
2. run the same fleet workload undisturbed (single process) as the
   reference;
3. run it again with ``workers=2`` and SIGKILL one pool worker the
   moment the first session completes;
4. require the supervisor to have survived (pool respawned) and the
   killed run's per-session payloads to equal the reference exactly.

Usage: PYTHONPATH=src python benchmarks/kill_worker_smoke.py
"""

import json
import multiprocessing
import os
import pathlib
import signal
import sys

RESULTS = pathlib.Path(__file__).resolve().parent / "results"
GOLDEN = RESULTS / "ENGINE_golden_digests.json"

#: Must match the FINGERPRINT_EXPERIMENTS entry for fleet_percentiles.
WORKLOAD = {"sessions": 12, "runs": 4, "seed": 0}


def main():
    from repro.analysis.engine_bench import experiment_fingerprint
    from repro.fleet import run_fleet

    golden = json.loads(GOLDEN.read_text())
    fresh = experiment_fingerprint("fleet_percentiles", **WORKLOAD)
    pinned = golden["experiments"]["fleet_percentiles"]
    if fresh != pinned:
        print(f"fleet_percentiles fingerprint drifted: {fresh} != {pinned}")
        return 1
    print(f"golden fingerprint intact: {fresh[:16]}...")

    reference = run_fleet(workers=1, **WORKLOAD)
    reference_payloads = [result.to_dict() for result in reference]

    state = {"killed": False}

    def kill_one_worker(_spec, _payload):
        if state["killed"]:
            return
        state["killed"] = True
        victims = sorted(
            child.pid for child in multiprocessing.active_children()
        )
        if not victims:
            return
        print(f"SIGKILL worker pid {victims[0]} (of {len(victims)})")
        os.kill(victims[0], signal.SIGKILL)

    disturbed = run_fleet(
        workers=2, on_session=kill_one_worker, backoff_base_s=0.01,
        **WORKLOAD,
    )
    print(f"supervision: {disturbed.supervision}")
    if not state["killed"]:
        print("smoke never killed a worker — nothing was tested")
        return 1
    if disturbed.supervision.get("respawns", 0) < 1:
        print("worker was killed but the supervisor never respawned")
        return 1

    disturbed_payloads = [result.to_dict() for result in disturbed]
    if disturbed_payloads != reference_payloads:
        print("killed run diverged from the undisturbed reference")
        return 1
    print(
        f"ok: {len(disturbed_payloads)} sessions bit-identical across "
        "a mid-run worker SIGKILL"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
