"""Shared helpers for the benchmark suite.

Each ``test_<id>_*.py`` regenerates one of the paper's tables/figures
under pytest-benchmark timing and writes its rendered output to
``results/<id>.txt`` so a run leaves the full set of regenerated
artifacts behind.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture
def save_result():
    """Write an ExperimentResult's rendering to results/<id>.txt."""

    def save(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n")
        return path

    return save
