"""Bench: fleet-level AI-tax percentiles over a device population."""

from repro.experiments import run_experiment


def test_fleet_percentiles(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("fleet_percentiles",),
        kwargs={"sessions": 64, "runs": 6, "seed": 0},
        rounds=1, iterations=1,
    )
    save_result(result)
    # Fig 11 at scale: the app packaging's run-to-run tail is heavier
    # than the benchmark packaging's.
    app_tail = result.series["app_tail_ratio"][0]
    benchmark_tail = result.series["benchmark_tail_ratio"][0]
    assert app_tail > benchmark_tail
    # Takeaway 1: quantized accelerated apps spend ~half their
    # end-to-end time in capture+pre+post.
    quantized = result.series["quantized_app_tax_fraction"][0]
    assert 0.35 <= quantized <= 0.80
    benchmark.extra_info["app_tail_ratio"] = app_tail
    benchmark.extra_info["benchmark_tail_ratio"] = benchmark_tail
    benchmark.extra_info["quantized_app_tax_fraction"] = quantized
