"""Bench: the ablation studies (SNPE, probe effect, coupling, stdlib)."""

from repro.experiments import run_experiment


def test_ablation_snpe(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("ablation_snpe",), kwargs={"runs": 6},
        rounds=1, iterations=1,
    )
    save_result(result)
    latency = dict(zip(result.column("Runtime"), result.column("inference ms")))
    assert latency["snpe-dsp"] < min(latency["cpu"], latency["nnapi"])


def test_ablation_probe(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("ablation_probe",), kwargs={"runs": 6},
        rounds=1, iterations=1,
    )
    save_result(result)
    rows = {row[0]: row for row in result.rows}
    assert 0.04 <= rows["hexagon [int8]"][3] <= 0.07


def test_ablation_coupling(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("ablation_coupling",),
        rounds=1, iterations=1,
    )
    save_result(result)
    rows = result.row_map("Coupling")
    assert rows["loose"][2] > rows["tight"][2]


def test_ablation_stdlib(benchmark, save_result):
    result = benchmark(run_experiment, "ablation_stdlib")
    save_result(result)
    rows = result.row_map("stdlib")
    assert rows["libc++"][3] > 1.0 > rows["libstdc++"][3]
