"""Bench: regenerate Fig. 3 (benchmark vs benchmark app vs real app)."""

from repro.experiments import run_experiment


def test_fig3_packaging(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig3",), kwargs={"runs": 8},
        rounds=1, iterations=1,
    )
    save_result(result)
    for row in result.rows:
        _model, _dtype, cli_ms, _bench_app_ms, app_ms, _ratio = row
        assert app_ms > cli_ms
    gaps = [row[4] / row[2] for row in result.rows]
    benchmark.extra_info["mean_app_over_cli"] = sum(gaps) / len(gaps)
