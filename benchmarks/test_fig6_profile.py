"""Bench: regenerate Fig. 6 (execution profiles under three targets)."""

from repro.experiments import run_experiment


def test_fig6_profile(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig6",), kwargs={"runs": 6},
        rounds=1, iterations=1,
    )
    save_result(result)
    rows = result.row_map("Target")
    assert rows["cpu"][1] > 0.5
    assert rows["hexagon"][3] > 0.2
    assert rows["nnapi"][2] > 0.8  # single hot thread
    assert rows["nnapi"][5] > rows["cpu"][5]  # more migrations
    benchmark.extra_info["nnapi_migrations"] = rows["nnapi"][5]
