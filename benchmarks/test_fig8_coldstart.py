"""Bench: regenerate Fig. 8 (offload amortization over inferences)."""

from repro.experiments import run_experiment


def test_fig8_coldstart(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig8",), rounds=1, iterations=1,
    )
    save_result(result)
    shares = result.series["offload_share"]
    assert all(a >= b for a, b in zip(shares, shares[1:]))
    assert shares[0] > 0.4 > shares[-1]
    benchmark.extra_info["first_share"] = shares[0]
    benchmark.extra_info["steady_share"] = shares[-1]
