"""Bench: regenerate Fig. 7 (FastRPC call-flow decomposition)."""

from repro.experiments import run_experiment


def test_fig7_fastrpc(benchmark, save_result):
    result = benchmark(run_experiment, "fig7")
    save_result(result)
    durations = result.series["durations_us"]
    assert durations[0] > durations[1]
    benchmark.extra_info["cold_over_warm"] = durations[0] / durations[1]
