"""Bench: the extension experiments (beyond the paper's figures)."""

from repro.experiments import run_experiment


def test_energy(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("energy",), kwargs={"invokes": 10},
        rounds=1, iterations=1,
    )
    save_result(result)
    energy = dict(zip(result.column("Placement"), result.column("mJ/inf")))
    assert energy["hexagon [int8]"] < energy["cpu x4 [int8]"] / 8
    benchmark.extra_info["dsp_vs_cpu_energy"] = (
        energy["cpu x4 [int8]"] / energy["hexagon [int8]"]
    )


def test_preferences(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("preferences",), kwargs={"invokes": 5},
        rounds=1, iterations=1,
    )
    save_result(result)
    rows = result.row_map("Preference")
    assert rows["low_power"][2] < rows["fast_single_answer"][2]


def test_thermal(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("thermal",), kwargs={"invokes": 80},
        rounds=1, iterations=1,
    )
    save_result(result)
    rows = {row[0]: row[1] for row in result.rows}
    assert rows["throttle-induced slowdown"] > 1.2


def test_soc_sweep(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("soc_sweep",), kwargs={"runs": 6},
        rounds=1, iterations=1,
    )
    save_result(result)
    tax = result.column("AI tax fraction")
    assert tax[-1] > tax[0]


def test_streaming(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("streaming",), kwargs={"runs": 12},
        rounds=1, iterations=1,
    )
    save_result(result)


def test_init_time(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("init_time",), rounds=1, iterations=1,
    )
    save_result(result)
    gpu_rows = [row for row in result.rows if row[1] == "gpu"]
    assert gpu_rows and gpu_rows[0][2] > 50  # GPU shader compile


def test_pipelining(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("pipelining",), kwargs={"frames": 15},
        rounds=1, iterations=1,
    )
    save_result(result)
    rows = result.row_map("Mode")
    assert rows["pipelined"][5] > rows["sequential"][5]


def test_fastcv(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("ablation_fastcv",), kwargs={"runs": 8},
        rounds=1, iterations=1,
    )
    save_result(result)


def test_driver_versions(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("driver_versions",), kwargs={"invokes": 6},
        rounds=1, iterations=1,
    )
    save_result(result)
    rows = result.row_map("feature level")
    assert rows[1.1][2] and not rows[1.2][2]


def test_mlperf_gap(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("mlperf_gap",),
        kwargs={"queries": 20, "runs": 10},
        rounds=1, iterations=1,
    )
    save_result(result)
    rows = {row[0]: row[1] for row in result.rows}
    assert rows["app/benchmark latency gap"] > 1.5


def test_resolution_sweep(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("resolution_sweep",), kwargs={"runs": 6},
        rounds=1, iterations=1,
    )
    save_result(result)
    capture = result.column("capture ms")
    assert capture[-1] > capture[0]


def test_whatif(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("whatif",), kwargs={"runs": 8},
        rounds=1, iterations=1,
    )
    save_result(result)
    assert result.series["accelerator_ceiling"][0] < 2.5


def test_takeaways(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("takeaways",), kwargs={"runs": 8},
        rounds=1, iterations=1,
    )
    save_result(result)
    assert all(row[3] for row in result.rows)


def test_arvr_multimodel(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("arvr_multimodel",), kwargs={"frames": 8},
        rounds=1, iterations=1,
    )
    save_result(result)
    rows = result.row_map("placement")
    assert rows["split dsp+gpu+cpu"][2] > rows["all-cpu"][2]
