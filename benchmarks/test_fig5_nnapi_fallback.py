"""Bench: regenerate Fig. 5 (EfficientNet-Lite0 int8 across targets)."""

from repro.experiments import run_experiment


def test_fig5_nnapi_fallback(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig5",), kwargs={"runs": 8},
        rounds=1, iterations=1,
    )
    save_result(result)
    latency = dict(zip(result.column("Target"), result.column("inference ms")))
    assert latency["hexagon"] < latency["cpu"] < latency["cpu1"]
    ratio = latency["nnapi"] / latency["cpu1"]
    assert 4.0 < ratio < 11.0
    benchmark.extra_info["nnapi_over_cpu1"] = ratio
