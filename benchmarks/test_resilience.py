"""Bench: circuit breakers and brownout under an SSR storm.

The resilience experiment replays the same deterministic incident — a
subsystem restart takes a backend out mid-run — with the health
machinery off and on. The assertions pin the claims the machinery is
sold on: breakers recover goodput lost to routing-behind-the-reboot,
and brownout recovers more by degrading instead of queueing. A metrics
snapshot lands in ``results/BENCH_resilience.json``.
"""

import json

from repro.experiments import run_experiment

from .conftest import RESULTS_DIR


def test_resilience(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("resilience",),
        rounds=1, iterations=1,
    )
    save_result(result)

    modes = result.series["storm_mode"]
    goodputs = dict(zip(modes, result.series["storm_goodput_rps"]))
    # The headline: under a correlated outage, ejecting the rebooting
    # backend beats queueing behind it ...
    assert goodputs["breakers"] > goodputs["off"]
    # ... and degrading under the resulting backlog beats neither.
    assert goodputs["breakers+brownout"] >= goodputs["breakers"]
    # The incident actually exercised the machinery.
    breakers_row = next(
        row for row in result.rows if row[1] == "breakers"
    )
    assert breakers_row[8] >= 1  # breaker opens
    # No request may vanish: offered == completed + failed + turned
    # away is enforced inside run_service; here we just require the
    # storm never drove requests into terminal failure (the redispatch
    # budget covers one reboot).
    assert all(
        failed == 0 for failed in result.series["storm_failed"]
    )

    wall_s = benchmark.stats.stats.total
    metrics = {
        "storm_goodput_off_rps": goodputs["off"],
        "storm_goodput_breakers_rps": goodputs["breakers"],
        "storm_goodput_brownout_rps": goodputs["breakers+brownout"],
        "breaker_goodput_lift": (
            goodputs["breakers"] / goodputs["off"]
            if goodputs["off"] else 0.0
        ),
        "wall_s": wall_s,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "BENCH_resilience.json", "w") as handle:
        json.dump(metrics, handle, indent=2, sort_keys=True)
        handle.write("\n")
    benchmark.extra_info.update(metrics)
