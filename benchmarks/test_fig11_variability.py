"""Bench: regenerate Fig. 11 (run-to-run latency distributions)."""

from repro.experiments import run_experiment


def test_fig11_variability(benchmark, save_result):
    result = benchmark.pedantic(
        run_experiment, args=("fig11",), kwargs={"runs": 120},
        rounds=1, iterations=1,
    )
    save_result(result)
    rows = result.row_map("context")
    assert rows["app"][8] > rows["benchmark"][8]  # CV
    assert rows["app"][7] >= rows["benchmark"][7]  # max deviation
    benchmark.extra_info["app_max_dev"] = rows["app"][7]
    benchmark.extra_info["bench_max_dev"] = rows["benchmark"][7]
