"""Gate: engine throughput must stay within 20% of the snapshot.

Compares a fresh measurement against the committed
``results/BENCH_engine_throughput.json``. Two modes:

* ``--fresh PATH`` — compare against an already-written snapshot (the
  CI job runs the pytest benchmark first, then points this at its
  output, so the fleet is only simulated once).
* no ``--fresh`` — measure fleet throughput in-process right here.

Either way the committed snapshot's schema is validated first: a
malformed or hand-trimmed snapshot fails before any number is read.
Exit status 1 on schema or regression failure.

Absolute sessions/sec is host-dependent, so the gate is relative —
fresh must reach at least ``1 - THRESHOLD`` of the snapshot measured
on the *same* host/checkout pair. See docs/performance.md.
"""

import argparse
import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
SNAPSHOT_PATH = RESULTS_DIR / "BENCH_engine_throughput.json"

#: Fractional drop in fleet sessions/sec that fails the gate.
THRESHOLD = 0.20

#: Top-level keys every BENCH_engine_throughput.json must carry.
SCHEMA_KEYS = frozenset({
    "baseline_sessions_per_sec",
    "fleet",
    "session_events",
    "experiment_p50_wall_s",
    "speedup_vs_baseline",
})

FLEET_KEYS = frozenset({
    "sessions", "runs_per_session", "wall_s", "wall_s_all",
    "sessions_per_sec",
})


def validate_schema(metrics, source):
    missing = SCHEMA_KEYS - metrics.keys()
    if missing:
        raise SystemExit(
            f"{source}: missing keys {sorted(missing)} "
            f"(expected {sorted(SCHEMA_KEYS)})"
        )
    missing = FLEET_KEYS - metrics["fleet"].keys()
    if missing:
        raise SystemExit(f"{source}: fleet block missing {sorted(missing)}")
    if metrics["fleet"]["sessions_per_sec"] <= 0:
        raise SystemExit(f"{source}: non-positive sessions_per_sec")


def load_metrics(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"{path}: {exc}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--snapshot", type=pathlib.Path, default=SNAPSHOT_PATH,
        help="committed metrics snapshot (default: %(default)s)",
    )
    parser.add_argument(
        "--fresh", type=pathlib.Path, default=None,
        help="freshly measured snapshot; omit to measure in-process",
    )
    args = parser.parse_args(argv)

    snapshot = load_metrics(args.snapshot)
    validate_schema(snapshot, str(args.snapshot))

    if args.fresh is not None:
        fresh_metrics = load_metrics(args.fresh)
        validate_schema(fresh_metrics, str(args.fresh))
        fresh = fresh_metrics["fleet"]
    else:
        from repro.analysis.engine_bench import measure_fleet_throughput

        fresh = measure_fleet_throughput(
            sessions=snapshot["fleet"]["sessions"],
            runs=snapshot["fleet"]["runs_per_session"],
        )

    old = snapshot["fleet"]["sessions_per_sec"]
    new = fresh["sessions_per_sec"]
    floor = (1.0 - THRESHOLD) * old
    verdict = "ok" if new >= floor else "REGRESSION"
    print(
        f"engine-bench: snapshot {old:.1f} sessions/s, "
        f"fresh {new:.1f} sessions/s, floor {floor:.1f} -> {verdict}"
    )
    return 0 if new >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
