"""Gate: engine throughput must stay within 20% of the snapshot.

Compares a fresh measurement against the committed
``results/BENCH_engine_throughput.json``. Two modes:

* ``--fresh PATH`` — compare against an already-written snapshot (the
  CI job runs the pytest benchmark first, then points this at its
  output, so the fleet is only simulated once).
* no ``--fresh`` — measure in-process right here.

Two metrics gate independently, and the failure message diffs which
one regressed:

* ``fleet.sessions_per_sec`` — end-to-end fleet throughput, the
  headline number.
* ``session_events.events_per_sec`` — raw event-loop retirement rate
  of one representative session; catches engine-core regressions that
  fleet-level batching can hide.

Either way the committed snapshot's schema is validated first: a
malformed or hand-trimmed snapshot fails before any number is read.
Exit status 1 on schema or regression failure.

Absolute rates are host-dependent, so the gate is relative — fresh
must reach at least ``1 - THRESHOLD`` of the snapshot measured on the
*same* host/checkout pair. See docs/performance.md.
"""

import argparse
import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
SNAPSHOT_PATH = RESULTS_DIR / "BENCH_engine_throughput.json"

#: Fractional drop in either gated rate that fails the gate.
THRESHOLD = 0.20

#: (snapshot block, key, display name) for every gated metric.
GATED_METRICS = (
    ("fleet", "sessions_per_sec", "sessions/s"),
    ("session_events", "events_per_sec", "events/s"),
)

#: Top-level keys every BENCH_engine_throughput.json must carry.
SCHEMA_KEYS = frozenset({
    "baseline_sessions_per_sec",
    "fleet",
    "session_events",
    "experiment_p50_wall_s",
    "speedup_vs_baseline",
})

FLEET_KEYS = frozenset({
    "sessions", "runs_per_session", "wall_s", "wall_s_all",
    "sessions_per_sec",
})

SESSION_EVENT_KEYS = frozenset({
    "model", "dtype", "context", "target", "events", "wall_s",
    "events_per_sec",
})


def validate_schema(metrics, source):
    missing = SCHEMA_KEYS - metrics.keys()
    if missing:
        raise SystemExit(
            f"{source}: missing keys {sorted(missing)} "
            f"(expected {sorted(SCHEMA_KEYS)})"
        )
    missing = FLEET_KEYS - metrics["fleet"].keys()
    if missing:
        raise SystemExit(f"{source}: fleet block missing {sorted(missing)}")
    missing = SESSION_EVENT_KEYS - metrics["session_events"].keys()
    if missing:
        raise SystemExit(
            f"{source}: session_events block missing {sorted(missing)}"
        )
    for block, key, _label in GATED_METRICS:
        if metrics[block][key] <= 0:
            raise SystemExit(f"{source}: non-positive {block}.{key}")


def load_metrics(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"{path}: {exc}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--snapshot", type=pathlib.Path, default=SNAPSHOT_PATH,
        help="committed metrics snapshot (default: %(default)s)",
    )
    parser.add_argument(
        "--fresh", type=pathlib.Path, default=None,
        help="freshly measured snapshot; omit to measure in-process",
    )
    args = parser.parse_args(argv)

    snapshot = load_metrics(args.snapshot)
    validate_schema(snapshot, str(args.snapshot))

    if args.fresh is not None:
        fresh = load_metrics(args.fresh)
        validate_schema(fresh, str(args.fresh))
    else:
        from repro.analysis.engine_bench import (
            measure_fleet_throughput,
            measure_session_events,
        )

        events_block = snapshot["session_events"]
        # The single-session walk is sub-10ms, so one sample is noise;
        # take the best of a few, same spirit as the fleet's repeats.
        session_events = max(
            (
                measure_session_events(
                    model_key=events_block["model"],
                    dtype=events_block["dtype"],
                    context=events_block["context"],
                    target=events_block["target"],
                )
                for _ in range(3)
            ),
            key=lambda sample: sample["events_per_sec"],
        )
        fresh = {
            "fleet": measure_fleet_throughput(
                sessions=snapshot["fleet"]["sessions"],
                runs=snapshot["fleet"]["runs_per_session"],
            ),
            "session_events": session_events,
        }

    regressed = []
    for block, key, label in GATED_METRICS:
        old = snapshot[block][key]
        new = fresh[block][key]
        floor = (1.0 - THRESHOLD) * old
        verdict = "ok" if new >= floor else "REGRESSION"
        print(
            f"engine-bench: {label} snapshot {old:.1f}, "
            f"fresh {new:.1f}, floor {floor:.1f} -> {verdict}"
        )
        if new < floor:
            regressed.append((label, new, floor))
    if regressed:
        healthy = [
            label for _block, _key, label in GATED_METRICS
            if label not in {row[0] for row in regressed}
        ]
        diff = "; ".join(
            f"{label} fresh {new:.1f} < floor {floor:.1f}"
            for label, new, floor in regressed
        )
        suffix = f" ({', '.join(healthy)} ok)" if healthy else ""
        print(f"engine-bench: REGRESSION in {diff}{suffix}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
