"""Bench: regenerate Table I (model zoo construction + accounting)."""

from repro.experiments import run_experiment
from repro.models import load_model


def test_table1_models(benchmark, save_result):
    load_model.cache_clear()  # time real graph construction
    result = benchmark(run_experiment, "table1")
    save_result(result)
    assert len(result.rows) == 11
    benchmark.extra_info["models"] = len(result.rows)
