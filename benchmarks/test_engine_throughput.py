"""Bench: engine hot-path throughput, guarded by byte-identical replay.

Two jobs in one file:

1. **The guard.** Before any number is trusted, every figure-experiment
   fingerprint and the dual-run fleet replay digest must equal the
   goldens in ``results/ENGINE_golden_digests.json`` — captured before
   the hot-path work started. An optimization that shifts a single
   event time, priority, sequence, or label fails here, not in a
   figure three PRs later.

2. **The trajectory.** ``results/BENCH_engine_throughput.json`` records
   fleet sessions/sec, single-session events/sec, and p50 walls for the
   fingerprinted experiments, next to the pre-optimization baseline.
   ``check_engine_regression.py`` (and the ``engine-bench`` CI job)
   compare future runs against this snapshot.

See ``docs/performance.md`` for how to read and extend the snapshot.
"""

import json

from repro.analysis.engine_bench import (
    FINGERPRINT_EXPERIMENTS,
    engine_fingerprints,
    measure_experiment_wall,
    measure_fleet_throughput,
    measure_session_events,
)

from .conftest import RESULTS_DIR

#: Best-of-3 fleet sessions/sec on the pre-optimization engine
#: (commit 9a855d0, same workload: 64 sessions x 6 runs, seed 0),
#: measured on the machine that captured the golden digests. Absolute
#: walls are host-dependent; the ratio is still the honest trajectory.
BASELINE_SESSIONS_PER_SEC = 47.2366

GOLDEN_PATH = RESULTS_DIR / "ENGINE_golden_digests.json"


def test_optimizations_are_observably_free():
    """Whole-dict equality with the pre-optimization goldens.

    Compare the full structure, not per-key: a missing experiment or a
    changed replay workload must fail as loudly as a changed digest.
    """
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    assert engine_fingerprints() == golden


def test_engine_throughput(benchmark):
    fleet = benchmark.pedantic(
        measure_fleet_throughput, kwargs={"repeats": 3},
        rounds=1, iterations=1,
    )
    events = measure_session_events()
    walls = {
        experiment_id: measure_experiment_wall(experiment_id, **kwargs)
        for experiment_id, kwargs in FINGERPRINT_EXPERIMENTS
    }

    # Sanity floors only — the >20% regression gate against the
    # committed snapshot lives in check_engine_regression.py, where a
    # same-host comparison makes the number meaningful.
    assert fleet["sessions_per_sec"] > 0
    assert events["events_per_sec"] > 0

    metrics = {
        "baseline_sessions_per_sec": BASELINE_SESSIONS_PER_SEC,
        "fleet": fleet,
        "session_events": events,
        "experiment_p50_wall_s": {
            experiment_id: wall["p50_wall_s"]
            for experiment_id, wall in walls.items()
        },
        "speedup_vs_baseline": (
            fleet["sessions_per_sec"] / BASELINE_SESSIONS_PER_SEC
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "BENCH_engine_throughput.json", "w") as handle:
        json.dump(metrics, handle, indent=2, sort_keys=True)
        handle.write("\n")
    benchmark.extra_info.update(
        sessions_per_sec=fleet["sessions_per_sec"],
        events_per_sec=events["events_per_sec"],
        speedup_vs_baseline=metrics["speedup_vs_baseline"],
    )
