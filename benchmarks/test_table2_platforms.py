"""Bench: regenerate Table II (platform catalog)."""

from repro.experiments import run_experiment


def test_table2_platforms(benchmark, save_result):
    result = benchmark(run_experiment, "table2")
    save_result(result)
    assert len(result.rows) == 4
