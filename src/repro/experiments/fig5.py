"""Fig. 5: quantized EfficientNet-Lite0 across four TFLite targets.

The paper's headline framework pitfall: NNAPI's automatic device
assignment degrades this model ~7x versus a single-threaded CPU because
lagging quantized-op driver support pushes the whole graph onto the
runtime's reference kernels.
"""

from repro.apps import PipelineConfig, run_pipeline
from repro.core import breakdown
from repro.experiments.base import ExperimentResult, experiment

TARGETS = ("hexagon", "cpu", "cpu1", "nnapi")


@experiment("fig5")
def run(runs=10, seed=0, model_key="efficientnet_lite0", dtype="int8"):
    headers = ("Target", "inference ms", "slowdown vs cpu1")
    latencies = {}
    for target in TARGETS:
        config = PipelineConfig(
            model_key=model_key,
            dtype=dtype,
            context="cli",
            target=target,
            runs=runs,
            seed=seed,
        )
        latencies[target] = breakdown(run_pipeline(config)).inference_ms
    rows = [
        (target, latencies[target], latencies[target] / latencies["cpu1"])
        for target in TARGETS
    ]
    return ExperimentResult(
        experiment_id="fig5",
        title=f"{model_key} [{dtype}]: TFLite target comparison",
        headers=headers,
        rows=rows,
        series={"latency_ms": [latencies[t] for t in TARGETS]},
        notes=[
            "paper: NNAPI ~7x slower than single-threaded CPU",
            "expected order: hexagon < cpu(4T) < cpu1 << nnapi",
        ],
    )
