"""Ablations for design choices the paper calls out in prose.

* ``ablation_snpe`` — §IV-B: vendor SNPE vs NNAPI vs CPU on the DSP.
* ``ablation_probe`` — §III-D: the 4-7% instrumentation probe effect.
* ``ablation_coupling`` — §II-D: loosely vs tightly coupled DSP.
* ``ablation_stdlib`` — §IV-A: libc++ vs libstdc++ random generation.
"""

from repro.android import FastRpcChannel, Kernel
from repro.apps import PipelineConfig, run_pipeline
from repro.core import ProbeEffect, breakdown
from repro.experiments.base import ExperimentResult, experiment
from repro.models import load_model
from repro.processing.costs import random_input_cost_us
from repro.sim import Simulator
from repro.sim import units
from repro.soc import make_soc


@experiment("ablation_snpe")
def run_snpe(runs=10, seed=0, model_key="efficientnet_lite0", dtype="int8"):
    """SNPE DSP vs NNAPI vs tuned CPU for a quantized model."""
    headers = ("Runtime", "inference ms", "vs snpe-dsp")
    targets = ("snpe-dsp", "nnapi", "cpu", "hexagon")
    latencies = {}
    for target in targets:
        config = PipelineConfig(
            model_key=model_key, dtype=dtype, context="cli",
            target=target, runs=runs, seed=seed,
        )
        latencies[target] = breakdown(run_pipeline(config)).inference_ms
    # Row order restates the explicit targets tuple rather than relying
    # on dict insertion order to reach the rendered table.
    rows = [
        (target, latencies[target], latencies[target] / latencies["snpe-dsp"])
        for target in targets
    ]
    return ExperimentResult(
        experiment_id="ablation_snpe",
        title=f"{model_key} [{dtype}]: vendor runtime vs NNAPI vs CPU",
        headers=headers,
        rows=rows,
        notes=["paper §IV-B: under SNPE the DSP outperforms the CPU"],
    )


@experiment("ablation_probe")
def run_probe(runs=10, seed=0, model_key="mobilenet_v1"):
    """Instrumentation overhead: accelerated runs slow 4-7%, CPU runs 0%."""
    probe = ProbeEffect()
    headers = (
        "Configuration", "raw inference ms", "instrumented ms", "overhead",
    )
    rows = []
    for target, dtype, accelerated in (
        ("hexagon", "int8", True),
        ("cpu", "fp32", False),
    ):
        config = PipelineConfig(
            model_key=model_key, dtype=dtype, context="cli",
            target=target, runs=runs, seed=seed,
        )
        raw_ms = breakdown(run_pipeline(config)).inference_ms
        instrumented_ms = probe.apply(raw_ms, accelerated)
        rows.append(
            (
                f"{target} [{dtype}]",
                raw_ms,
                instrumented_ms,
                probe.overhead_fraction(accelerated),
            )
        )
    return ExperimentResult(
        experiment_id="ablation_probe",
        title="Driver instrumentation probe effect",
        headers=headers,
        rows=rows,
        notes=[
            "paper §III-D: 4-7% with acceleration, none on CPU; "
            f"model within band: {probe.within_paper_band()}",
        ],
    )


@experiment("ablation_coupling")
def run_coupling(seed=0, model_key="mobilenet_v1", invokes=20):
    """Loosely vs tightly coupled accelerator integration (§II-D)."""
    headers = ("Coupling", "mean invoke ms", "flush+transfer us/call")
    rows = []
    for coupling in ("loose", "tight"):
        sim = Simulator(seed=seed)
        soc = make_soc(
            sim, "sd845", governor_mode="performance", dsp_coupling=coupling
        )
        kernel = Kernel(sim, soc, enable_dvfs=False)
        channel = FastRpcChannel(kernel, process_id=7)
        model = load_model(model_key, "int8")
        compute_us = soc.dsp.graph_time_us(model.ops, "int8")
        durations = []

        def body():
            for _ in range(invokes):
                duration = yield from channel.invoke(
                    model.input_spec.numel, model.output_bytes, compute_us
                )
                durations.append(duration)

        thread = kernel.spawn_on_big(body(), name="coupling")
        sim.run(until=thread.done)
        per_call = (
            channel.stats.cache_flush_us + channel.stats.transfer_us
        ) / invokes
        rows.append(
            (coupling, units.to_ms(sum(durations[1:]) / (invokes - 1)), per_call)
        )
    return ExperimentResult(
        experiment_id="ablation_coupling",
        title="DSP integration style: loose vs tight coupling",
        headers=headers,
        rows=rows,
        notes=[
            "loose coupling pays cache maintenance + AXI transfers per "
            "call (paper §II-D / Fig. 7)",
        ],
    )


@experiment("ablation_stdlib")
def run_stdlib(model_key="mobilenet_v1"):
    """Random-input generation cost: libc++ vs libstdc++ (§IV-A)."""
    model_fp32 = load_model(model_key)
    elements = model_fp32.input_spec.numel
    headers = ("stdlib", "fp32 gen ms", "int8 gen ms", "int8/fp32")
    rows = []
    for stdlib in ("libc++", "libstdc++"):
        fp32_ms = units.to_ms(random_input_cost_us(elements, "fp32", stdlib))
        int8_ms = units.to_ms(random_input_cost_us(elements, "int8", stdlib))
        rows.append((stdlib, fp32_ms, int8_ms, int8_ms / fp32_ms))
    return ExperimentResult(
        experiment_id="ablation_stdlib",
        title="Benchmark 'data capture' (random generation) by stdlib",
        headers=headers,
        rows=rows,
        notes=[
            "paper §IV-A: libc++ generates reals faster than integers; "
            "libstdc++ shows the exact opposite",
        ],
    )
