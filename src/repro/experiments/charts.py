"""Figure-shaped terminal charts for experiment results.

Maps each experiment id to the chart type that best matches the paper's
original figure: bars for target comparisons, stacked stage bars for
breakdowns, histograms for distributions, utilization strips for the
profiler view, a line plot for the amortization curve.
"""

from repro import viz


def _fig3_chart(result):
    groups = [
        (f"{row[0]}:{row[1]}", [row[2], row[3], row[4]])
        for row in result.rows
    ]
    # Side-by-side bars read poorly stacked; chart app vs cli directly.
    flat = []
    for label, (cli_ms, bench_ms, app_ms) in groups:
        flat.append((f"{label} cli", cli_ms))
        flat.append((f"{label} app", app_ms))
    return viz.bar_chart(flat, title="End-to-end latency (ms): cli vs app")


def _stage_chart(result, title):
    key_count = len(result.headers) - 5  # leading key columns
    groups = []
    for row in result.rows:
        label = ":".join(str(part) for part in row[:key_count])
        groups.append((label, [row[key_count], row[key_count + 1],
                               row[key_count + 2]]))
    return viz.grouped_bars(
        groups, stages=("capture", "pre", "inference"), title=title
    )


def _fig4_chart(result):
    groups = [
        (f"{row[0]}:{row[1]}:{row[2]}", [row[3], row[4], row[5]])
        for row in result.rows
    ]
    return viz.grouped_bars(
        groups, stages=("capture", "pre", "inference"),
        title="Per-stage latency (ms)",
    )


def _target_bar_chart(result):
    return viz.bar_chart(
        list(zip(result.column(result.headers[0]),
                 result.column(result.headers[1]))),
        title=result.title,
    )


def _fig6_chart(result):
    sections = []
    for target in ("cpu", "hexagon", "nnapi"):
        timelines = {
            key.split(":", 1)[1]: series
            for key, series in sorted(result.series.items())
            if key.startswith(f"{target}:")
        }
        if not timelines:
            continue
        order = sorted(t for t in timelines if t.startswith("cpu"))
        order += [t for t in ("cdsp",) if t in timelines]
        sections.append(
            f"-- {target} --\n" + viz.profile_strips(timelines, order=order)
        )
    return "\n".join(sections)


def _fig8_chart(result):
    return viz.line_series(
        result.series["counts"],
        result.series["offload_share"],
        title="Offload share vs consecutive inferences",
        x_label="inferences",
        y_label="offload share",
    )


def _fig9_like_chart(result, title):
    groups = [
        (f"{row[0]} jobs", [row[1], row[2], row[3]]) for row in result.rows
    ]
    return viz.grouped_bars(
        groups, stages=("capture", "pre", "inference"), title=title
    )


def _fig11_chart(result):
    parts = []
    for label in ("benchmark", "app"):
        series = result.series.get(f"{label}_latencies_ms")
        if series:
            parts.append(
                viz.histogram(series, title=f"{label} latency distribution")
            )
    return "\n\n".join(parts)


_RENDERERS = {
    "fig3": _fig3_chart,
    "fig4": _fig4_chart,
    "fig5": lambda result: _target_bar_chart(result),
    "fig6": _fig6_chart,
    "fig8": _fig8_chart,
    "fig9": lambda result: _fig9_like_chart(
        result, "Background jobs on the DSP"
    ),
    "fig10": lambda result: _fig9_like_chart(
        result, "Background jobs on the CPU"
    ),
    "fig11": _fig11_chart,
    "ablation_snpe": _target_bar_chart,
}


def render_chart(result):
    """Chart text for a result, or None when no chart is defined."""
    renderer = _RENDERERS.get(result.experiment_id)
    if renderer is None:
        return None
    return renderer(result)


def chartable_experiments():
    return sorted(_RENDERERS)
