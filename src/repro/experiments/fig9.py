"""Fig. 9: multi-tenancy — background inferences contending for the DSP.

An image-classification app offloads to the DSP while K background jobs
schedule inferences through the NNAPI Hexagon path. There is one DSP:
the app's inference latency grows ~linearly with K (queueing), while
its capture and pre-processing stay approximately constant because the
CPU is untouched.
"""

from repro.apps import PipelineConfig, run_pipeline
from repro.core import breakdown
from repro.experiments.base import ExperimentResult, experiment

BACKGROUND_COUNTS = (0, 1, 2, 3, 4)


def _measure(background_count, background_target, runs, seed,
             model_key, dtype):
    # Background CPU jobs use TFLite's default 4 threads (as the paper's
    # benchmark utility does); DSP jobs serialize on the device anyway.
    config = PipelineConfig(
        model_key=model_key,
        dtype=dtype,
        context="app",
        target="nnapi",
        runs=runs,
        seed=seed,
        background=(background_count, background_target)
        if background_count
        else None,
        background_model="mobilenet_v1",
        background_dtype="int8" if background_target != "cpu" else "fp32",
        background_threads=4 if background_target == "cpu" else 1,
    )
    return breakdown(run_pipeline(config))


@experiment("fig9")
def run(runs=10, seed=0, model_key="mobilenet_v1", dtype="int8",
        counts=BACKGROUND_COUNTS, background_target="nnapi"):
    headers = (
        "background jobs", "capture ms", "pre ms", "inference ms",
        "post ms", "total ms",
    )
    rows = []
    inference_series = []
    cpu_side_series = []
    for count in counts:
        b = _measure(count, background_target, runs, seed, model_key, dtype)
        rows.append(
            (count, b.capture_ms, b.pre_ms, b.inference_ms, b.post_ms,
             b.total_ms)
        )
        inference_series.append(b.inference_ms)
        cpu_side_series.append(b.capture_ms + b.pre_ms)
    return ExperimentResult(
        experiment_id="fig9",
        title="App latency vs background inferences on the DSP",
        headers=headers,
        rows=rows,
        series={
            "counts": list(counts),
            "inference_ms": inference_series,
            "capture_plus_pre_ms": cpu_side_series,
        },
        notes=[
            "inference grows ~linearly with background jobs (single DSP)",
            "capture + pre-processing stay ~constant (CPU unaffected)",
            "capture includes waiting for the next camera frame, so its "
            "absolute value shifts with the loop period (phase effect)",
        ],
    )
