"""Fig. 8: offload overhead amortization over consecutive inferences.

MobileNet v1 through the NNAPI Hexagon path: for a handful of
inferences the offload cost (session setup, kernel crossings, flushes)
dominates; as the count grows the one-time setup amortizes and the
offload share of total time falls.
"""

from repro.android import Kernel
from repro.apps.sessions import make_session
from repro.experiments.base import ExperimentResult, experiment
from repro.models import load_model
from repro.sim import Simulator
from repro.sim import units
from repro.soc import make_soc

COUNTS = (1, 2, 5, 10, 20, 50, 100, 200, 500)


def _measure(count, seed, model_key, dtype, target):
    sim = Simulator(seed=seed)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    model = load_model(model_key, dtype)
    session = make_session(kernel, model, target=target)
    compute_us = soc.dsp.graph_time_us(model.ops, "int8")

    def body():
        yield from session.prepare()
        for _ in range(count):
            yield from session.invoke()

    thread = kernel.spawn_on_big(body(), name="offload")
    start_setup = 0.0
    sim.run(until=thread.done)
    total_us = sim.now - start_setup
    pure_compute_us = compute_us * count
    return total_us, pure_compute_us


@experiment("fig8")
def run(seed=0, model_key="mobilenet_v1", dtype="int8", target="nnapi",
        counts=COUNTS):
    headers = (
        "inferences", "total ms", "mean ms/inf",
        "offload+setup ms", "offload share",
    )
    rows = []
    mean_series = []
    share_series = []
    for count in counts:
        total_us, compute_us = _measure(count, seed, model_key, dtype, target)
        overhead_us = total_us - compute_us
        share = overhead_us / total_us if total_us else 0.0
        rows.append(
            (
                count,
                units.to_ms(total_us),
                units.to_ms(total_us / count),
                units.to_ms(overhead_us),
                share,
            )
        )
        mean_series.append(units.to_ms(total_us / count))
        share_series.append(share)
    return ExperimentResult(
        experiment_id="fig8",
        title=f"{model_key} [{dtype}] via {target}: cold-start amortization",
        headers=headers,
        rows=rows,
        series={"mean_ms": mean_series, "offload_share": share_series,
                "counts": list(counts)},
        notes=[
            "offload share falls monotonically as the DSP session setup "
            "and model preparation amortize (paper: 'the DSP initial "
            "setup is done once')",
        ],
    )
