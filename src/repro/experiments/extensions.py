"""Extension experiments beyond the paper's figures.

These quantify claims the paper makes in prose but does not plot:

* ``energy`` — §I: "AI processing on general-purpose mobile processors
  is inefficient in terms of energy and power" — joules per inference
  across placements.
* ``preferences`` — §II-D: NNAPI execution preferences
  (FAST_SINGLE_ANSWER vs LOW_POWER) trade latency for energy.
* ``thermal`` — §III-D: what happens *without* the authors' cooldown
  protocol — sustained load heats the die past the throttle trip point
  and latency drifts upward run over run.
* ``soc_sweep`` — §III-C: "trends are representative across the other
  chipsets" — the same app breakdown on all four Table-II platforms.
* ``streaming`` — end-user experience: achieved frame rate and dropped
  camera frames per model.
"""

from repro.android import Kernel
from repro.apps import PipelineConfig, run_pipeline
from repro.apps.harness import run_pipeline_with_rig
from repro.apps.sessions import make_session
from repro.core import breakdown
from repro.experiments.base import ExperimentResult, experiment
from repro.frameworks import FAST_SINGLE_ANSWER, LOW_POWER, SUSTAINED_SPEED
from repro.models import load_model
from repro.sim import Simulator
from repro.sim import units
from repro.soc import make_soc


def _session_rig(seed=0, soc_key="sd845", governor="schedutil",
                 enable_thermal=False):
    sim = Simulator(seed=seed)
    soc = make_soc(sim, soc_key, governor_mode=governor)
    kernel = Kernel(
        sim, soc, enable_dvfs=(governor == "schedutil"),
        enable_thermal=enable_thermal,
    )
    return sim, soc, kernel


def _drive(sim, kernel, session, invokes):
    durations = []

    def body():
        yield from session.prepare()
        for _ in range(invokes):
            duration = yield from session.invoke()
            durations.append(duration)

    thread = kernel.spawn_on_big(body(), name="driver")
    sim.run(until=thread.done)
    return durations


@experiment("energy")
def run_energy(seed=0, model_key="mobilenet_v1", invokes=20):
    """Joules per inference across placements.

    The DSP should beat the CPU by roughly an order of magnitude on
    energy for quantized models — the reason NPUs exist at all.
    """
    configurations = (
        ("cpu x4 [int8]", "int8", "cpu"),
        ("cpu x1 [int8]", "int8", "cpu1"),
        ("hexagon [int8]", "int8", "hexagon"),
        ("snpe-dsp [int8]", "int8", "snpe-dsp"),
        ("gpu [fp16]", "fp32", "gpu"),
        ("cpu x4 [fp32]", "fp32", "cpu"),
    )
    headers = (
        "Placement", "ms/inf", "mJ/inf", "mJ cpu", "mJ accel", "mJ dram",
        "EDP (mJ*ms)",
    )
    rows = []
    for label, dtype, target in configurations:
        sim, soc, kernel = _session_rig(seed=seed)
        model = load_model(model_key, dtype)
        session = make_session(kernel, model, target=target)
        _drive(sim, kernel, session, 2)  # warm up + settle
        snapshot = soc.energy.snapshot()
        durations = _drive(sim, kernel, session, invokes)
        delta = soc.energy.since(snapshot)
        mean_ms = units.to_ms(sum(durations) / len(durations))
        mj_per_inf = units.to_mj(delta["total_uj"] / invokes)
        rows.append(
            (
                label,
                mean_ms,
                mj_per_inf,
                units.to_mj(delta["cpu_uj"] / invokes),
                units.to_mj((delta["gpu_uj"] + delta["dsp_uj"]) / invokes),
                units.to_mj(delta["dram_uj"] / invokes),
                mj_per_inf * mean_ms,
            )
        )
    return ExperimentResult(
        experiment_id="energy",
        title=f"{model_key}: energy per inference by placement",
        headers=headers,
        rows=rows,
        notes=[
            "paper §I motivation: general-purpose cores are energy-"
            "inefficient for AI; the DSP wins on both axes",
        ],
    )


@experiment("preferences")
def run_preferences(seed=0, model_key="inception_v3", dtype="fp32",
                    invokes=8):
    """NNAPI execution preference: latency vs energy.

    Uses a partially-offloaded model so the CPU partitions (whose
    placement the preference steers) actually matter.
    """
    headers = ("Preference", "ms/inf", "mJ/inf")
    rows = []
    for preference in (FAST_SINGLE_ANSWER, SUSTAINED_SPEED, LOW_POWER):
        sim, soc, kernel = _session_rig(seed=seed)
        model = load_model(model_key, dtype)
        session = make_session(
            kernel, model, target="nnapi", preference=preference
        )
        _drive(sim, kernel, session, 1)
        snapshot = soc.energy.snapshot()
        durations = _drive(sim, kernel, session, invokes)
        delta = soc.energy.since(snapshot)
        rows.append(
            (
                preference,
                units.to_ms(sum(durations) / len(durations)),
                units.to_mj(delta["total_uj"] / invokes),
            )
        )
    return ExperimentResult(
        experiment_id="preferences",
        title=f"{model_key} [{dtype}] via NNAPI: execution preferences",
        headers=headers,
        rows=rows,
        notes=["LOW_POWER runs CPU partitions on the little cluster: "
               "slower, cheaper"],
    )


@experiment("thermal")
def run_thermal(seed=0, model_key="inception_v3", dtype="fp32",
                invokes=120, time_constant_s=6.0):
    """Sustained load without the paper's cooldown protocol.

    A shortened thermal time constant compresses minutes of sustained
    load into a tractable simulation; the dynamics are unchanged.
    """
    sim, soc, kernel = _session_rig(seed=seed, enable_thermal=True)
    soc.thermal.time_constant_s = time_constant_s
    model = load_model(model_key, dtype)
    session = make_session(kernel, model, target="cpu")
    durations = _drive(sim, kernel, session, invokes)
    warm = durations[1:]
    head = warm[: len(warm) // 5]
    tail = warm[-len(warm) // 5:]
    head_ms = units.to_ms(sum(head) / len(head))
    tail_ms = units.to_ms(sum(tail) / len(tail))
    cooldown_us = soc.thermal.cooldown_time_us()
    headers = (
        "Metric", "value",
    )
    rows = [
        ("first-quintile mean ms", head_ms),
        ("last-quintile mean ms", tail_ms),
        ("throttle-induced slowdown", tail_ms / head_ms),
        ("final die temperature C", soc.thermal.temperature),
        ("is throttling", soc.thermal.is_throttling),
        ("cooldown needed (s)", cooldown_us / 1e6),
    ]
    return ExperimentResult(
        experiment_id="thermal",
        title=f"{model_key} [{dtype}] sustained CPU load: thermal drift",
        headers=headers,
        rows=rows,
        series={"latency_ms": [units.to_ms(d) for d in warm]},
        notes=[
            "paper §III-D cools to ~33C before each run precisely to "
            "avoid this drift contaminating measurements",
        ],
    )


@experiment("soc_sweep")
def run_soc_sweep(runs=8, seed=0, model_key="mobilenet_v1", dtype="int8"):
    """The Fig.-4 app breakdown across all four Table-II platforms."""
    headers = (
        "SoC", "capture ms", "pre ms", "inference ms", "total ms",
        "AI tax fraction",
    )
    rows = []
    series = {}
    for soc_key in ("sd835", "sd845", "sd855", "sd865"):
        config = PipelineConfig(
            model_key=model_key, dtype=dtype, context="app",
            target="nnapi", runs=runs, seed=seed, soc=soc_key,
        )
        b = breakdown(run_pipeline(config))
        rows.append(
            (
                soc_key, b.capture_ms, b.pre_ms, b.inference_ms,
                b.total_ms, b.tax_fraction,
            )
        )
        series[soc_key] = [b.capture_ms, b.pre_ms, b.inference_ms]
    return ExperimentResult(
        experiment_id="soc_sweep",
        title=f"{model_key} [{dtype}] app breakdown across platforms",
        headers=headers,
        rows=rows,
        series=series,
        notes=[
            "newer DSPs shrink inference faster than CPUs shrink pre-"
            "processing, so the AI-tax fraction *grows* with newer SoCs",
        ],
    )


@experiment("memory_footprint")
def run_memory_footprint():
    """Model memory: weights + activation arena, fp32 vs int8.

    Quantization's second benefit besides DSP eligibility (§II-B "less
    memory is required to store weights and activations"): a 4x smaller
    resident footprint, which also shrinks load time and offload
    transfer volume.
    """
    from repro.models import MODEL_CARDS

    headers = (
        "Model", "fp32 weights MB", "fp32 peak act MB", "fp32 total MB",
        "int8 total MB", "shrink",
    )
    rows = []
    for key, card in sorted(MODEL_CARDS.items()):
        fp32 = load_model(key, "fp32")
        fp32_total = fp32.memory_footprint_bytes / 1e6
        if card.cpu_int8 or card.nnapi_int8:
            int8_total = load_model(key, "int8").memory_footprint_bytes / 1e6
            shrink = fp32_total / int8_total
        else:
            int8_total = float("nan")
            shrink = float("nan")
        rows.append(
            (
                key,
                fp32.weight_bytes / 1e6,
                fp32.peak_activation_bytes / 1e6,
                fp32_total,
                int8_total,
                shrink,
            )
        )
    return ExperimentResult(
        experiment_id="memory_footprint",
        title="Model memory footprint: weights + activation arena",
        headers=headers,
        rows=rows,
        notes=["int8 shrinks the footprint ~4x where supported"],
    )


@experiment("model_scaling")
def run_model_scaling(runs=6, seed=0, resolutions=(128, 160, 192, 224)):
    """Input resolution vs inference and pre-processing cost (§II-B).

    "A model is trained on images of fixed dimensions, and the input
    dimensions determine a network's architecture" — both inference
    FLOPs and pre-processing scale ~quadratically with the input side.
    """
    from repro.frameworks import TfliteInterpreter
    from repro.models.architectures import build_mobilenet_v1
    from repro.processing.costs import resize_cost_us

    headers = (
        "input", "GFLOPs", "inference ms (cpu x4)", "resize cost ms",
    )
    rows = []
    for resolution in resolutions:
        graph = build_mobilenet_v1(resolution=resolution)
        sim, soc, kernel = _session_rig(seed=seed, governor="performance")
        session = TfliteInterpreter(kernel, graph, threads=4)
        durations = _drive(sim, kernel, session, 4)
        warm_ms = units.to_ms(sum(durations[1:]) / 3)
        rows.append(
            (
                f"{resolution}x{resolution}",
                graph.total_flops / 1e9,
                warm_ms,
                units.to_ms(resize_cost_us((resolution, resolution), impl="java")),
            )
        )
    return ExperimentResult(
        experiment_id="model_scaling",
        title="MobileNet v1: input resolution scaling",
        headers=headers,
        rows=rows,
        notes=[
            "FLOPs, inference, and resize all scale ~quadratically with "
            "the input side (paper §II-B)",
        ],
    )


@experiment("resolution_sweep")
def run_resolution_sweep(runs=8, seed=0, model_key="mobilenet_v1",
                         dtype="int8"):
    """Capture resolution vs pipeline cost (paper §II-A).

    "An incorrect choice of image resolution can cause non-linear
    performance drops": bitmap conversion scales with *source* pixels
    even though the model input stays 224x224.
    """
    headers = (
        "source", "megapixels", "capture ms", "pre ms", "inference ms",
        "total ms",
    )
    rows = []
    for label, source_hw in (
        ("320x240", (240, 320)),
        ("640x480", (480, 640)),
        ("1280x720", (720, 1280)),
        ("1920x1080", (1080, 1920)),
    ):
        config = PipelineConfig(
            model_key=model_key, dtype=dtype, context="app",
            target="nnapi", runs=runs, seed=seed, source_hw=source_hw,
        )
        b = breakdown(run_pipeline(config))
        megapixels = source_hw[0] * source_hw[1] / 1e6
        rows.append(
            (label, megapixels, b.capture_ms, b.pre_ms, b.inference_ms,
             b.total_ms)
        )
    return ExperimentResult(
        experiment_id="resolution_sweep",
        title=f"{model_key} [{dtype}]: capture resolution vs pipeline cost",
        headers=headers,
        rows=rows,
        notes=[
            "inference is resolution-independent (fixed 224x224 input); "
            "capture-side cost scales with source pixels",
        ],
    )


@experiment("whatif")
def run_whatif(runs=12, seed=0, model_key="mobilenet_v1", dtype="int8",
               factor=2.0):
    """Optimization priorities from the measured breakdown.

    Answers the question the paper poses to each audience: where does a
    2x stage speedup pay off most, and what is the Amdahl ceiling of an
    inference-only accelerator upgrade?
    """
    from repro.core.whatif import (
        accelerator_upgrade_ceiling,
        optimization_priorities,
    )

    config = PipelineConfig(
        model_key=model_key, dtype=dtype, context="app",
        target="nnapi", runs=runs, seed=seed,
    )
    b = breakdown(run_pipeline(config))
    headers = (
        "stage", "stage ms", "share", f"{factor}x speedup -> e2e gain",
    )
    rows = [
        (impact.stage, impact.stage_ms, impact.stage_share,
         impact.end_to_end_speedup)
        for impact in optimization_priorities(b, factor=factor)
    ]
    ceiling = accelerator_upgrade_ceiling(b)
    return ExperimentResult(
        experiment_id="whatif",
        title=f"{model_key} [{dtype}] app: optimization priorities",
        headers=headers,
        rows=rows,
        series={"accelerator_ceiling": [ceiling]},
        notes=[
            f"infinitely fast NPU ceiling: {ceiling:.2f}x end-to-end "
            "(Amdahl over the AI tax)",
            "paper: 'obsessing about ML-only performance can lead us to "
            "miss the forest for the trees'",
        ],
    )


@experiment("init_time")
def run_init_time(seed=0, switches=5):
    """Model initialization and switching cost (§IV-C).

    "The TFlite benchmark tool breaks down model initialization time,
    which is good to measure if an application switches between models
    or frequently reloads them." This experiment measures init
    (load + compile + delegate setup) per (model, target), and the cost
    of an app alternating between two models versus keeping both warm.
    """
    headers = ("Model", "target", "init ms", "warm invoke ms",
               "invokes to amortize init")
    rows = []
    for model_key, dtype, target in (
        ("mobilenet_v1", "int8", "hexagon"),
        ("mobilenet_v1", "int8", "nnapi"),
        ("mobilenet_v1", "fp32", "gpu"),
        ("mobilenet_v1", "fp32", "cpu"),
        ("inception_v3", "fp32", "cpu"),
    ):
        sim, soc, kernel = _session_rig(seed=seed, governor="performance")
        model = load_model(model_key, dtype)
        session = make_session(kernel, model, target=target)
        durations = _drive(sim, kernel, session, 4)
        warm_ms = units.to_ms(sum(durations[1:]) / 3)
        init_ms = units.to_ms(session.stats.init_us)
        rows.append(
            (
                f"{model_key} [{dtype}]",
                target,
                init_ms,
                warm_ms,
                init_ms / warm_ms if warm_ms else float("inf"),
            )
        )

    # Model switching: alternate two models, reloading each time, vs
    # keeping two prepared sessions resident.
    def _switching(resident):
        sim, soc, kernel = _session_rig(seed=seed, governor="performance")
        models = [
            load_model("mobilenet_v1", "int8"),
            load_model("efficientnet_lite0", "int8"),
        ]
        start_done = {}

        def body():
            if resident:
                sessions = [
                    make_session(kernel, model, target="hexagon")
                    for model in models
                ]
                for session in sessions:
                    yield from session.prepare()
                for index in range(2 * switches):
                    yield from sessions[index % 2].invoke()
            else:
                for index in range(2 * switches):
                    session = make_session(
                        kernel, models[index % 2], target="hexagon"
                    )
                    yield from session.prepare()
                    yield from session.invoke()
            start_done["t"] = kernel.now

        thread = kernel.spawn_on_big(body(), name="switcher")
        sim.run(until=thread.done)
        return units.to_ms(start_done["t"])

    reload_ms = _switching(resident=False)
    resident_ms = _switching(resident=True)
    rows.append(("switching 2 models x" + str(switches), "reload each time",
                 reload_ms, resident_ms, reload_ms / resident_ms))
    return ExperimentResult(
        experiment_id="init_time",
        title="Model initialization and switching cost",
        headers=headers,
        rows=rows,
        notes=[
            "last row: total ms reloading-per-switch vs resident sessions",
            "GPU delegate init (shader compile) dominates its column",
        ],
    )


@experiment("streaming")
def run_streaming(runs=20, seed=0):
    """Achieved frame rate and camera drops per model (app context)."""
    headers = (
        "Model", "dtype", "mean frame ms", "achieved fps", "frames dropped",
    )
    rows = []
    for model_key, dtype in (
        ("mobilenet_v1", "int8"),
        ("efficientnet_lite0", "fp32"),
        ("posenet", "fp32"),
        ("inception_v3", "fp32"),
    ):
        config = PipelineConfig(
            model_key=model_key, dtype=dtype, context="app",
            target="nnapi", runs=runs, seed=seed,
        )
        records, sim, soc, kernel, packaging = run_pipeline_with_rig(config)
        mean_ms = breakdown(records).total_ms
        fps = units.fps_from_ms(mean_ms) if mean_ms else 0.0
        dropped = packaging.camera.frames_dropped if packaging.camera else 0
        rows.append((model_key, dtype, mean_ms, min(fps, config.fps), dropped))
    return ExperimentResult(
        experiment_id="streaming",
        title="End-user experience: achieved FPS per model",
        headers=headers,
        rows=rows,
        notes=["frames dropped = camera buffers recycled unconsumed"],
    )
