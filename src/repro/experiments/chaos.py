"""Chaos sweep: AI-tax inflation under injected DSP-offload faults.

The paper measures the offload stack on healthy hardware; production
fleets also see the unhealthy days — FastRPC ``-ETIMEDOUT``, DSP
subsystem restarts, driver-killed sessions. This experiment sweeps the
per-call fault probability over the chaos population (the paper mix
plus a vendor-runtime slice) and reports, per rate, the fleet's
end-to-end p50/p99 and their inflation over the fault-free baseline,
alongside the recovery ledger: faults absorbed, retries burned, runtime
CPU fallbacks taken, and sessions that died outright (the vendor
runtime does not recover — see docs/faults.md).

The 0.0 rate is always included as the baseline, so the inflation
columns are well-defined whatever rates the caller asks for.
"""

from repro.experiments.base import experiment

#: Default fault probabilities swept (0.0 is forced in regardless).
DEFAULT_RATES = (0.0, 0.05, 0.2)


def _recovery_ledger(results):
    """Summed degradation counters over completed sessions."""
    faults = retries = fallbacks = 0
    for result in results:
        if not result.degradation:
            continue
        faults += sum(result.degradation["faults"].values())
        retries += result.degradation["retries"]
        fallbacks += result.degradation["fallbacks"]
    return faults, retries, fallbacks


@experiment("chaos")
def run(sessions=16, runs=4, workers=1, seed=0, fault_rates=DEFAULT_RATES,
        cache_dir=None):
    # Lazy import: repro.fleet renders through repro.experiments.base.
    from repro.experiments.base import ExperimentResult
    from repro.fleet import aggregate_fleet, chaos_population, run_fleet

    rates = sorted({0.0} | {float(rate) for rate in fault_rates})
    population = chaos_population()
    rows = []
    series = {
        "fault_rate": [], "p50_ms": [], "p99_ms": [],
        "p50_inflation": [], "p99_inflation": [],
        "failed_sessions": [],
    }
    notes = []
    baseline = None
    for rate in rates:
        fleet = run_fleet(
            population=population,
            sessions=sessions,
            workers=workers,
            seed=seed,
            runs=runs,
            fault_rate=rate,
            cache_dir=cache_dir,
        )
        ok = fleet.ok_results
        failed = fleet.failures
        faults, retries, fallbacks = _recovery_ledger(ok)
        if ok:
            overall = aggregate_fleet(fleet).overall
            p50, p99 = overall.p50_ms, overall.p99_ms
        else:
            p50 = p99 = 0.0
            notes.append(
                f"rate {rate:.2f}: every session failed; no percentiles"
            )
        if baseline is None:
            baseline = (p50, p99)
        p50_x = p50 / baseline[0] if baseline[0] > 0 else 0.0
        p99_x = p99 / baseline[1] if baseline[1] > 0 else 0.0
        rows.append((
            f"{rate:.2f}", len(fleet), len(ok), len(failed),
            p50, p99, p50_x, p99_x, faults, retries, fallbacks,
        ))
        series["fault_rate"].append(rate)
        series["p50_ms"].append(p50)
        series["p99_ms"].append(p99)
        series["p50_inflation"].append(p50_x)
        series["p99_inflation"].append(p99_x)
        series["failed_sessions"].append(len(failed))
        if failed:
            by_type = {}
            for result in failed:
                by_type[result.error["type"]] = (
                    by_type.get(result.error["type"], 0) + 1
                )
            detail = ", ".join(
                f"{count}x {name}" for name, count in sorted(by_type.items())
            )
            notes.append(
                f"rate {rate:.2f}: {len(failed)} sessions died without "
                f"recovery ({detail}) — vendor-runtime slice, no retry, "
                "no CPU fallback"
            )
    notes.append(
        "inflation columns are relative to the fault-free baseline row; "
        "failed sessions are excluded from the percentiles"
    )
    return ExperimentResult(
        experiment_id="chaos",
        title=(
            f"fault-rate sweep over {sessions} chaos-population sessions "
            f"(seed {seed}): end-to-end percentiles and recovery ledger"
        ),
        headers=(
            "fault rate", "sessions", "ok", "failed",
            "p50 ms", "p99 ms", "p50 x", "p99 x",
            "faults", "retries", "fallbacks",
        ),
        rows=rows,
        series=series,
        notes=notes,
    )
