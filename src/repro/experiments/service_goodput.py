"""Service-tier experiments: goodput under batching, overload, faults.

Two registered experiments exercise :mod:`repro.service` end to end:

``service_goodput``
    One calibrated backend pool, two sweeps. The *batch* sweep holds
    offered load fixed and varies the dynamic batcher's ``max_batch``,
    tracing the throughput-vs-latency tradeoff (batching amortizes the
    inference compute but not the per-request AI tax, and batch
    formation spends latency budget). The *load* sweep holds the
    batcher fixed and varies offered load from 0.5x to 2x the pool's
    saturation rate: throughput plateaus at capacity while goodput
    peaks earlier and collapses — the canonical open-loop overload
    curve.

``service_chaos``
    The same service under injected DSP-offload faults
    (:mod:`repro.faults`), calibrated over the chaos population. Faults
    shrink the pool (un-recovered vendor-runtime sessions produce no
    backend) and slow the survivors (retries, CPU fallbacks), so the
    identical offered load meets a smaller, slower fleet; the rows
    report goodput collapse and SLO-miss inflation against the
    fault-free baseline.
"""

from repro.experiments.base import ExperimentResult, experiment

#: Batch sizes swept at fixed offered load.
DEFAULT_BATCH_SIZES = (1, 2, 4, 8)
#: Offered load factors swept at fixed batching, x pool capacity.
DEFAULT_LOAD_FACTORS = (0.5, 0.75, 1.0, 1.25, 1.5, 2.0)
#: Fraction of pool capacity offered during the batch sweep.
BATCH_SWEEP_LOAD = 0.7
#: Fault rates swept by the chaos variant (0.0 forced in as baseline).
DEFAULT_FAULT_RATES = (0.0, 0.2, 0.4)


def _service_row(kind, knob, result):
    misses = result.miss_attribution
    return (
        kind, knob, result.offered,
        result.throughput_rps, result.goodput_rps,
        result.p50_ms, result.p99_ms,
        misses["queueing"], misses["inference"], misses["ai_tax"],
        result.turned_away + result.shed,
    )


@experiment("service_goodput")
def run(devices=4, duration_s=1.0, seed=0, slo_ms=50.0,
        batch_sizes=DEFAULT_BATCH_SIZES, load_factors=DEFAULT_LOAD_FACTORS,
        max_batch=4, max_delay_ms=5.0, queue_capacity=128,
        policy="reject", calibration_runs=3):
    from repro.service import (
        ServiceConfig,
        build_pool,
        pool_capacity_rps,
        run_service,
    )

    profiles, _failures = build_pool(
        devices=devices, seed=seed, runs=calibration_runs
    )
    capacity_rps = pool_capacity_rps(profiles, max_batch)

    rows = []
    series = {
        "batch_size": [], "batch_throughput_rps": [], "batch_p99_ms": [],
        "batch_goodput_rps": [],
        "load_factor": [], "load_throughput_rps": [],
        "load_goodput_rps": [], "load_p99_ms": [],
    }

    for batch in batch_sizes:
        result = run_service(
            ServiceConfig(
                rate_rps=BATCH_SWEEP_LOAD * capacity_rps,
                duration_s=duration_s,
                slo_ms=slo_ms,
                queue_capacity=queue_capacity,
                policy=policy,
                max_batch=batch,
                max_delay_ms=max_delay_ms,
                devices=devices,
                seed=seed,
            ),
            profiles=profiles,
        )
        rows.append(_service_row("batch", f"max_batch={batch}", result))
        series["batch_size"].append(batch)
        series["batch_throughput_rps"].append(result.throughput_rps)
        series["batch_goodput_rps"].append(result.goodput_rps)
        series["batch_p99_ms"].append(result.p99_ms)

    for factor in load_factors:
        result = run_service(
            ServiceConfig(
                rate_rps=factor * capacity_rps,
                duration_s=duration_s,
                slo_ms=slo_ms,
                queue_capacity=queue_capacity,
                policy=policy,
                max_batch=max_batch,
                max_delay_ms=max_delay_ms,
                devices=devices,
                seed=seed,
            ),
            profiles=profiles,
        )
        rows.append(_service_row("load", f"{factor:.2f}x", result))
        series["load_factor"].append(factor)
        series["load_throughput_rps"].append(result.throughput_rps)
        series["load_goodput_rps"].append(result.goodput_rps)
        series["load_p99_ms"].append(result.p99_ms)

    goodputs = series["load_goodput_rps"]
    throughputs = series["load_throughput_rps"]
    peak_goodput_factor = load_factors[goodputs.index(max(goodputs))]
    peak_throughput_factor = load_factors[
        throughputs.index(max(throughputs))
    ]
    notes = [
        f"pool capacity at max_batch={max_batch}: "
        f"{capacity_rps:.1f} rps over {len(profiles)} backends",
        f"batch sweep offered {BATCH_SWEEP_LOAD:.0%} of capacity; "
        f"load sweep used max_batch={max_batch}",
        f"goodput peaks at {peak_goodput_factor:.2f}x offered load; "
        f"throughput saturates at {peak_throughput_factor:.2f}x — "
        "past the peak, every extra offered request only adds queueing "
        "delay and SLO misses",
    ]
    return ExperimentResult(
        experiment_id="service_goodput",
        title=(
            f"inference service over {len(profiles)} fleet backends "
            f"(seed {seed}): batching tradeoff and overload sweep, "
            f"{slo_ms:g} ms SLO"
        ),
        headers=(
            "sweep", "knob", "offered",
            "throughput rps", "goodput rps", "p50 ms", "p99 ms",
            "miss:queue", "miss:infer", "miss:tax", "not served",
        ),
        rows=rows,
        series=series,
        notes=notes,
    )


@experiment("service_chaos")
# The default seed/devices pair must expand to a pool containing
# snpe-dsp sessions — the slice with no fault recovery — or injected
# faults cannot kill any backend (seed 5 x 12 devices includes four).
def run_chaos(devices=12, duration_s=1.0, seed=5, slo_ms=50.0,
              fault_rates=DEFAULT_FAULT_RATES, max_batch=4,
              max_delay_ms=5.0, queue_capacity=128, policy="reject",
              calibration_runs=3, load_factor=0.5):
    from repro.fleet import chaos_population
    from repro.service import (
        ServiceConfig,
        build_pool,
        pool_capacity_rps,
        run_service,
    )

    rates = sorted({0.0} | {float(rate) for rate in fault_rates})
    population = chaos_population()
    rows = []
    series = {
        "fault_rate": [], "backends": [], "goodput_rps": [],
        "throughput_rps": [], "slo_miss_rate": [], "p99_ms": [],
    }
    notes = []
    baseline_goodput = None
    offered_rps = None
    for rate in rates:
        profiles, failures = build_pool(
            population=population, devices=devices, seed=seed,
            runs=calibration_runs, fault_rate=rate,
        )
        if offered_rps is None:
            # The offered load is fixed by the *fault-free* pool: users
            # do not slow down because the fleet is having a bad day.
            offered_rps = load_factor * pool_capacity_rps(
                profiles, max_batch
            )
        result = run_service(
            ServiceConfig(
                rate_rps=offered_rps,
                duration_s=duration_s,
                slo_ms=slo_ms,
                queue_capacity=queue_capacity,
                policy=policy,
                max_batch=max_batch,
                max_delay_ms=max_delay_ms,
                devices=devices,
                seed=seed,
                fault_rate=rate,
            ),
            profiles=profiles,
        )
        if baseline_goodput is None:
            baseline_goodput = result.goodput_rps
        collapse = (
            result.goodput_rps / baseline_goodput
            if baseline_goodput > 0 else 0.0
        )
        rows.append((
            f"{rate:.2f}", len(profiles), len(failures), result.offered,
            result.throughput_rps, result.goodput_rps, collapse,
            result.p99_ms, result.slo_miss_rate,
        ))
        series["fault_rate"].append(rate)
        series["backends"].append(len(profiles))
        series["goodput_rps"].append(result.goodput_rps)
        series["throughput_rps"].append(result.throughput_rps)
        series["slo_miss_rate"].append(result.slo_miss_rate)
        series["p99_ms"].append(result.p99_ms)
        if failures:
            notes.append(
                f"rate {rate:.2f}: {len(failures)} calibration sessions "
                "died without recovery (vendor-runtime slice) — the "
                "pool served the same offered load short-handed"
            )
    notes.append(
        "offered load is fixed at the fault-free pool's "
        f"{load_factor:.0%}-capacity point; goodput x is relative to "
        "the 0.00 baseline row"
    )
    return ExperimentResult(
        experiment_id="service_chaos",
        title=(
            f"service goodput under DSP-offload fault injection "
            f"({devices} chaos-population devices, seed {seed})"
        ),
        headers=(
            "fault rate", "backends", "dead", "offered",
            "throughput rps", "goodput rps", "goodput x", "p99 ms",
            "slo miss rate",
        ),
        rows=rows,
        series=series,
        notes=notes,
    )
