"""Table I: the benchmark list with processing tasks and support matrix."""

from repro.experiments.base import ExperimentResult, experiment
from repro.models import MODEL_CARDS, load_model


@experiment("table1")
def run():
    """Regenerate Table I, extended with measured graph statistics."""
    headers = (
        "Task", "Model", "Resolution", "Pre-processing", "Post-processing",
        "NNAPI-fp32", "NNAPI-int8", "CPU-fp32", "CPU-int8",
        "MMACs", "MParams", "Ops",
    )
    rows = []
    for card in MODEL_CARDS.values():
        graph = load_model(card.key)
        rows.append(
            (
                card.task.replace("_", " ").title(),
                card.display_name,
                card.resolution,
                ", ".join(card.pre_tasks),
                ", ".join(card.post_tasks),
                card.nnapi_fp32,
                card.nnapi_int8,
                card.cpu_fp32,
                card.cpu_int8,
                graph.total_macs / 1e6,
                graph.total_params / 1e6,
                graph.op_count,
            )
        )
    return ExperimentResult(
        experiment_id="table1",
        title="Benchmarks: models, processing tasks, and support matrix",
        headers=headers,
        rows=rows,
        notes=[
            "dequantization post-processing applies to quantized models only",
            "MMACs/MParams/Ops are measured from the reproduction's graphs",
        ],
    )
