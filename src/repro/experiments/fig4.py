"""Fig. 4: data capture + pre-processing vs inference, benchmark vs app.

(a) absolute per-stage latency; (b) capture and pre-processing relative
to inference. Both run the models through NNAPI as in the paper. Key
shapes: quantized MobileNet/SSD spend ~2x as long acquiring and
processing data as inferring; PoseNet pre-processing ~10% of runtime,
DeepLab ~1%; Inception is the only model where inference dominates.
"""

from repro.apps import PipelineConfig, run_pipeline
from repro.core import breakdown
from repro.experiments.base import ExperimentResult, experiment

MODELS = (
    ("mobilenet_v1", "int8"),
    ("mobilenet_v1", "fp32"),
    ("efficientnet_lite0", "fp32"),
    ("ssd_mobilenet_v2", "int8"),
    ("posenet", "fp32"),
    ("deeplab_v3", "fp32"),
    ("inception_v3", "fp32"),
    ("inception_v3", "int8"),
)


@experiment("fig4")
def run(runs=10, seed=0, models=MODELS):
    headers = (
        "Model", "dtype", "context",
        "capture ms", "pre ms", "inference ms",
        "(capture+pre)/inference", "pre share",
    )
    rows = []
    series = {}
    for model_key, dtype in models:
        for context in ("cli", "app"):
            config = PipelineConfig(
                model_key=model_key,
                dtype=dtype,
                context=context,
                target="nnapi",
                runs=runs,
                seed=seed,
            )
            b = breakdown(run_pipeline(config))
            rows.append(
                (
                    model_key,
                    dtype,
                    "benchmark" if context == "cli" else "app",
                    b.capture_ms,
                    b.pre_ms,
                    b.inference_ms,
                    b.capture_plus_pre_over_inference,
                    b.pre_ms / b.total_ms if b.total_ms else 0.0,
                )
            )
            series[f"{model_key}:{dtype}:{context}"] = [
                b.capture_ms, b.pre_ms, b.inference_ms,
            ]
    return ExperimentResult(
        experiment_id="fig4",
        title="Capture + pre-processing vs inference (NNAPI), benchmark vs app",
        headers=headers,
        rows=rows,
        series=series,
        notes=[
            "4a = the absolute columns; 4b = the relative column",
            "quantized MobileNet/SSD apps: capture+pre ~2x inference",
            "Inception: inference dominates even in the app",
        ],
    )
