"""Fig. 10: multi-tenancy with the background load on the CPU instead.

Same setup as Fig. 9 except the K background inference jobs run on CPU
threads. Now the app's DSP inference latency stays ~constant (no DSP
contention) while capture and pre-processing — CPU work — stretch with
the added load.
"""

from repro.experiments.base import ExperimentResult, experiment
from repro.experiments.fig9 import BACKGROUND_COUNTS, _measure


@experiment("fig10")
def run(runs=10, seed=0, model_key="mobilenet_v1", dtype="int8",
        counts=BACKGROUND_COUNTS):
    headers = (
        "background jobs", "capture ms", "pre ms", "inference ms",
        "post ms", "total ms",
    )
    rows = []
    inference_series = []
    cpu_side_series = []
    for count in counts:
        b = _measure(count, "cpu", runs, seed, model_key, dtype)
        rows.append(
            (count, b.capture_ms, b.pre_ms, b.inference_ms, b.post_ms,
             b.total_ms)
        )
        inference_series.append(b.inference_ms)
        cpu_side_series.append(b.capture_ms + b.pre_ms)
    return ExperimentResult(
        experiment_id="fig10",
        title="App latency vs background inferences on the CPU",
        headers=headers,
        rows=rows,
        series={
            "counts": list(counts),
            "inference_ms": inference_series,
            "capture_plus_pre_ms": cpu_side_series,
        },
        notes=[
            "capture + pre-processing grow with CPU contention",
            "inference stays ~constant (the DSP is uncontended)",
        ],
    )
