"""Experiment registry; the result container lives in repro.core."""

from repro.core.result import ExperimentResult  # noqa: F401 - re-export

REGISTRY = {}


def experiment(experiment_id):
    """Decorator registering an experiment ``run`` function."""

    def register(func):
        REGISTRY[experiment_id] = func
        func.experiment_id = experiment_id
        return func

    return register


def run_experiment(experiment_id, **kwargs):
    """Run a registered experiment by its paper id (e.g. ``fig5``)."""
    try:
        func = REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(REGISTRY)}"
        ) from None
    return func(**kwargs)
