"""Experiment result container and registry."""

from dataclasses import dataclass, field

from repro.core.report import render_table

REGISTRY = {}


@dataclass
class ExperimentResult:
    """Tabular output of one experiment plus free-form extras."""

    experiment_id: str
    title: str
    headers: tuple
    rows: list
    #: Named latency series for figure-style outputs (x -> [values]).
    series: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)

    def render(self):
        text = render_table(
            self.headers, self.rows,
            title=f"[{self.experiment_id}] {self.title}",
        )
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text

    def column(self, header):
        """Extract one column as a list (headers matched exactly)."""
        try:
            index = list(self.headers).index(header)
        except ValueError:
            raise KeyError(
                f"no column {header!r}; have {self.headers}"
            ) from None
        return [row[index] for row in self.rows]

    def row_map(self, key_header):
        """Dict of key-column value -> row."""
        index = list(self.headers).index(key_header)
        return {row[index]: row for row in self.rows}


def experiment(experiment_id):
    """Decorator registering an experiment ``run`` function."""

    def register(func):
        REGISTRY[experiment_id] = func
        func.experiment_id = experiment_id
        return func

    return register


def run_experiment(experiment_id, **kwargs):
    """Run a registered experiment by its paper id (e.g. ``fig5``)."""
    try:
        func = REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(REGISTRY)}"
        ) from None
    return func(**kwargs)
