"""The paper's takeaway boxes, each validated by measurement.

Section IV closes each subsection with a boxed takeaway. This module
re-measures the evidence for every sentence and reports pass/fail —
the reproduction's self-check, and the experiment behind the summary
table in EXPERIMENTS.md.
"""

from repro.apps import PipelineConfig, run_pipeline
from repro.core import breakdown
from repro.experiments.base import ExperimentResult, experiment
from repro.experiments.fig5 import run as run_fig5
from repro.experiments.fig8 import run as run_fig8
from repro.experiments.fig11 import run as run_fig11


def _algorithms_takeaway(runs, seed):
    """Capture + pre/post can reach ~50% of total execution time."""
    config = PipelineConfig(
        model_key="mobilenet_v1", dtype="int8", context="app",
        target="nnapi", runs=runs, seed=seed,
    )
    result = breakdown(run_pipeline(config))
    algo_share = (
        result.capture_ms + result.pre_ms + result.post_ms
    ) / result.total_ms
    return (
        "algorithms",
        "capture + pre/post-processing can be ~50% of execution time",
        f"measured {algo_share:.0%} for the quantized MobileNet app",
        algo_share >= 0.4,
    )


def _frameworks_takeaway(runs, seed):
    """Poorly supported models fall back and lose to the plain CPU."""
    result = run_fig5(runs=runs, seed=seed)
    latency = dict(zip(result.column("Target"), result.column("inference ms")))
    ratio = latency["nnapi"] / latency["cpu1"]
    return (
        "frameworks",
        "framework fallback makes the accelerator path slower than CPU",
        f"NNAPI {ratio:.1f}x slower than single-thread CPU (paper ~7x)",
        ratio > 3.0,
    )


def _coldstart_takeaway(seed):
    """Cold-start penalties are real and amortize."""
    result = run_fig8(seed=seed, counts=(1, 50))
    shares = result.series["offload_share"]
    return (
        "hardware/cold start",
        "cold-start penalty dominates few-inference uses",
        f"offload share {shares[0]:.0%} at n=1 vs {shares[-1]:.0%} at n=50",
        shares[0] > 0.4 and shares[-1] < 0.15,
    )


def _variability_takeaway(runs, seed):
    """Run-to-run variability matters and is app-specific."""
    result = run_fig11(runs=max(runs * 6, 60), seed=seed)
    rows = result.row_map("context")
    app_cv = rows["app"][8]
    bench_cv = rows["benchmark"][8]
    return (
        "hardware/variability",
        "apps vary run-to-run far more than benchmark loops",
        f"CV: app {app_cv:.1%} vs benchmark {bench_cv:.1%}",
        app_cv > bench_cv,
    )


@experiment("takeaways")
def run(runs=10, seed=0):
    """Re-validate every boxed takeaway; one row per claim."""
    rows = [
        _algorithms_takeaway(runs, seed),
        _frameworks_takeaway(runs, seed),
        _coldstart_takeaway(seed),
        _variability_takeaway(runs, seed),
    ]
    headers = ("takeaway", "paper claim", "measured evidence", "holds")
    return ExperimentResult(
        experiment_id="takeaways",
        title="Paper takeaways, re-validated on the simulated substrate",
        headers=headers,
        rows=rows,
        notes=[
            "every row should read Y; a N means a calibration regression",
        ],
    )
