"""Fig. 11: run-to-run latency distribution, app vs benchmark.

MobileNet v1 on the CPU, hundreds of iterations: the benchmark's
distribution is tight while the app's spreads up to ~30% from its
median — scheduling, sensor interrupt timing, GC, and DVFS all live in
the app's pipeline and not in the benchmark loop.
"""

from repro.apps import PipelineConfig, run_pipeline
from repro.core.variability import VariabilityStats, histogram_of
from repro.experiments.base import ExperimentResult, experiment
from repro.sim import units


@experiment("fig11")
def run(runs=150, seed=0, model_key="mobilenet_v1", dtype="fp32",
        target="cpu"):
    headers = (
        "context", "n", "mean ms", "median ms", "std ms",
        "p5 ms", "p95 ms", "max |dev| from median", "CV",
    )
    rows = []
    series = {}
    for context in ("cli", "app"):
        config = PipelineConfig(
            model_key=model_key,
            dtype=dtype,
            context=context,
            target=target,
            runs=runs,
            seed=seed,
        )
        records = run_pipeline(config)
        stats = VariabilityStats.from_collection(records)
        label = "benchmark" if context == "cli" else "app"
        rows.append(
            (
                label,
                stats.n,
                stats.mean_ms,
                stats.median_ms,
                stats.std_ms,
                stats.p5_ms,
                stats.p95_ms,
                stats.max_deviation_from_median,
                stats.cv,
            )
        )
        series[f"{label}_histogram"] = histogram_of(records, bins=12)
        series[f"{label}_latencies_ms"] = [
            units.to_ms(run.total_us) for run in records.drop_warmup(1)
        ]
    return ExperimentResult(
        experiment_id="fig11",
        title=f"{model_key} [{dtype}] on {target}: latency distributions",
        headers=headers,
        rows=rows,
        series=series,
        notes=[
            "paper: app deviates up to ~30% from median; benchmark tight",
        ],
    )
