"""Fleet percentiles: the paper's findings at device-population scale.

Expands the default paper population into N sessions, simulates them
(optionally across a worker pool, optionally against a result cache),
and reports fleet-level p50/p90/p99 end-to-end latency per packaging,
SoC, and model slice plus the cold-start/steady-state split. The two
headline shapes it must reproduce: the app packaging's p99/p50 tail
exceeds the benchmark packaging's (Fig. 11 at scale), and the quantized
app slice spends roughly half its end-to-end time in capture + pre- +
post-processing (Takeaway 1).
"""

from repro.experiments.base import experiment


@experiment("fleet_percentiles")
def run(sessions=64, runs=6, workers=1, seed=0, cache_dir=None):
    # Imported lazily: repro.fleet renders through repro.experiments.base,
    # so a top-level import here would be circular.
    from repro.fleet import aggregate_fleet, run_fleet

    fleet = run_fleet(
        sessions=sessions,
        workers=workers,
        seed=seed,
        cache_dir=cache_dir,
        runs=runs,
    )
    result = aggregate_fleet(fleet).to_experiment_result()
    result.notes.append(
        f"simulated {fleet.simulated} sessions, "
        f"{fleet.cache_hits} served from cache, workers={fleet.workers}"
    )
    return result
