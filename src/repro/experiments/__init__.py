"""Experiment harnesses: one module per paper table/figure.

Every module exposes ``run(**kwargs) -> ExperimentResult`` and is
registered here by its paper id. ``repro.experiments.run_experiment``
is the single entry point used by the benchmark suite, the examples,
and EXPERIMENTS.md generation.
"""

from repro.experiments.base import ExperimentResult, run_experiment, REGISTRY
from repro.experiments import (  # noqa: F401  (registration side effects)
    ablations,
    chaos,
    extensions,
    optimizations,
    takeaways,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fleet,
    resilience,
    service_goodput,
    table1,
    table2,
)

__all__ = ["ExperimentResult", "run_experiment", "REGISTRY"]
