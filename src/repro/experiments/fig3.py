"""Fig. 3: benchmark vs benchmark-app vs real-app end-to-end latency.

The paper runs the same models on the CPU in three packagings and shows
that both benchmark utilities mask the data-capture and pre-processing
penalties of real applications (e.g. Inception v3 fp32: ~250 ms in the
benchmark vs ~350 ms in the app).
"""

from repro.apps import PipelineConfig, run_pipeline
from repro.core import breakdown
from repro.experiments.base import ExperimentResult, experiment

#: The model set shown in the figure (CPU-runnable variants).
MODELS = (
    ("mobilenet_v1", "fp32"),
    ("mobilenet_v1", "int8"),
    ("efficientnet_lite0", "fp32"),
    ("squeezenet", "fp32"),
    ("inception_v3", "fp32"),
    ("ssd_mobilenet_v2", "fp32"),
)

CONTEXTS = ("cli", "bench_app", "app")


@experiment("fig3")
def run(runs=10, seed=0, models=MODELS):
    """End-to-end CPU latency per model across the three packagings."""
    headers = (
        "Model", "dtype", "cli ms", "bench_app ms", "app ms", "app/cli",
    )
    rows = []
    series = {}
    for model_key, dtype in models:
        totals = {}
        for context in CONTEXTS:
            config = PipelineConfig(
                model_key=model_key,
                dtype=dtype,
                context=context,
                target="cpu",
                runs=runs,
                seed=seed,
            )
            totals[context] = breakdown(run_pipeline(config)).total_ms
        rows.append(
            (
                model_key,
                dtype,
                totals["cli"],
                totals["bench_app"],
                totals["app"],
                totals["app"] / totals["cli"],
            )
        )
        series[f"{model_key}:{dtype}"] = [totals[c] for c in CONTEXTS]
    return ExperimentResult(
        experiment_id="fig3",
        title="End-to-end CPU latency: benchmark vs benchmark app vs app",
        headers=headers,
        rows=rows,
        series=series,
        notes=[
            "expected shape: app > bench_app >= cli for every model",
            "paper anchor: Inception v3 fp32 app ~100 ms above benchmark",
        ],
    )
