"""Resilience experiment: does backend health machinery pay for itself?

One calibrated backend pool is driven through the same SSR-storm
incident — a subsystem restart takes out part of the pool mid-run while
open-loop traffic keeps arriving — under three supervision modes:

``off``
    No breakers: join-shortest-queue keeps routing to the rebooting
    backend (a failed batch hands its requests back, so the dead
    backend's queue looks attractively short), and every request parked
    behind the reboot blows its SLO.
``breakers``
    Per-backend circuit breakers (:mod:`repro.service.health`): the
    first failed batch trips the breaker, the backend is ejected from
    routing for the reboot window, and half-open probes re-admit it.
``breakers+brownout``
    Breakers plus brownout: while the shrunken pool's backlog is above
    the high watermark, dispatched requests are served by the degraded
    (cheaper) model variant, trading answer quality for latency.

A second sweep holds the mode fixed and varies a steady per-batch
backend fault rate, comparing goodput with breakers on vs off.
Everything is deterministic — same seed, same incident, byte-identical
results — so the goodput deltas are attributable to the health
machinery alone.
"""

from repro.experiments.base import ExperimentResult, experiment

#: Fraction of pool capacity offered during the incident.
STORM_LOAD = 0.6
#: When the storm hits (ms into the run) and how long the reboot lasts.
STORM_AT_MS = 300.0
STORM_RECOVERY_MS = 400.0
#: Steady per-batch fault rates swept with breakers on vs off.
DEFAULT_FAULT_RATES = (0.1, 0.2)


def _row(sweep, knob, result):
    opens = sum(entry["opens"] for entry in result.health)
    return (
        sweep, knob, result.offered,
        result.throughput_rps, result.goodput_rps,
        result.p99_ms, result.failed, result.redispatched, opens,
        result.brownout["degraded_requests"] if result.brownout else 0,
    )


@experiment("resilience")
def run(devices=2, duration_s=1.2, seed=3, slo_ms=100.0,
        fault_rates=DEFAULT_FAULT_RATES, max_batch=4, max_delay_ms=5.0,
        queue_capacity=128, policy="reject", calibration_runs=3,
        brownout_high=16, brownout_low=6):
    from repro.service import (
        ServiceConfig,
        build_pool,
        pool_capacity_rps,
        run_service,
    )

    profiles, _failures = build_pool(
        devices=devices, seed=seed, runs=calibration_runs
    )
    capacity_rps = pool_capacity_rps(profiles, max_batch)
    rate_rps = STORM_LOAD * capacity_rps

    def serve(**health_knobs):
        return run_service(
            ServiceConfig(
                rate_rps=rate_rps,
                duration_s=duration_s,
                slo_ms=slo_ms,
                queue_capacity=queue_capacity,
                policy=policy,
                max_batch=max_batch,
                max_delay_ms=max_delay_ms,
                devices=devices,
                seed=seed,
                **health_knobs,
            ),
            profiles=profiles,
        )

    storm = dict(
        ssr_storm_ms=STORM_AT_MS,
        ssr_storm_backends=1,
        ssr_recovery_ms=STORM_RECOVERY_MS,
        breaker_recovery_ms=STORM_RECOVERY_MS,
    )
    modes = (
        ("off", dict(storm, breakers=False)),
        ("breakers", dict(storm)),
        ("breakers+brownout", dict(
            storm, brownout_high=brownout_high, brownout_low=brownout_low,
        )),
    )

    rows = []
    series = {
        "storm_mode": [], "storm_goodput_rps": [], "storm_p99_ms": [],
        "storm_failed": [],
        "fault_rate": [], "rate_goodput_off_rps": [],
        "rate_goodput_on_rps": [],
    }
    for mode, knobs in modes:
        result = serve(**knobs)
        rows.append(_row("storm", mode, result))
        series["storm_mode"].append(mode)
        series["storm_goodput_rps"].append(result.goodput_rps)
        series["storm_p99_ms"].append(result.p99_ms)
        series["storm_failed"].append(result.failed)

    for rate in fault_rates:
        off = serve(backend_fault_rate=rate, breakers=False)
        on = serve(backend_fault_rate=rate)
        rows.append(_row("fault-rate", f"{rate:.2f} off", off))
        rows.append(_row("fault-rate", f"{rate:.2f} on", on))
        series["fault_rate"].append(rate)
        series["rate_goodput_off_rps"].append(off.goodput_rps)
        series["rate_goodput_on_rps"].append(on.goodput_rps)

    goodput_off = series["storm_goodput_rps"][0]
    goodput_on = series["storm_goodput_rps"][1]
    lift = (
        goodput_on / goodput_off if goodput_off > 0 else float("inf")
    )
    notes = [
        f"incident: SSR takes 1 of {len(profiles)} backends down for "
        f"{STORM_RECOVERY_MS:g} ms at t={STORM_AT_MS:g} ms, under "
        f"{STORM_LOAD:.0%}-capacity load ({rate_rps:.1f} rps)",
        f"breakers lift storm goodput {lift:.2f}x (from "
        f"{goodput_off:.1f} to {goodput_on:.1f} rps) by ejecting the "
        "rebooting backend instead of queueing behind it",
        "brownout additionally serves the backlog with the degraded "
        "model variant while outstanding work is above the high "
        "watermark",
        "the fault-rate sweep shows the flip side: under *memoryless* "
        "per-batch faults an eager breaker misfires — each random "
        "failure ejects a healthy backend and the lost capacity costs "
        "more than the avoided failures; breakers pay off for "
        "correlated outages (the storm), not white-noise ones",
    ]
    return ExperimentResult(
        experiment_id="resilience",
        title=(
            f"service resilience: SSR storm and backend faults over "
            f"{len(profiles)} backends (seed {seed}), {slo_ms:g} ms SLO"
        ),
        headers=(
            "sweep", "mode", "offered", "throughput rps", "goodput rps",
            "p99 ms", "failed", "redispatched", "breaker opens",
            "degraded",
        ),
        rows=rows,
        series=series,
        notes=notes,
    )
