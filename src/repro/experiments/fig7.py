"""Fig. 7: the FastRPC call flow and where its time goes.

The paper draws the CPU -> kernel -> DSP round trip, noting the cache
flush required for coherency on the loosely coupled DSP. This
experiment performs one instrumented offload and reports the per-stage
cost decomposition of the channel.
"""

from repro.android import FastRpcChannel, Kernel
from repro.android.fastrpc import call_flow_stages
from repro.experiments.base import ExperimentResult, experiment
from repro.models import load_model
from repro.sim import Simulator
from repro.soc import make_soc


@experiment("fig7")
def run(seed=0, model_key="mobilenet_v1", payload_frames=1):
    sim = Simulator(seed=seed, trace=True)
    soc = make_soc(sim, "sd845", governor_mode="performance")
    kernel = Kernel(sim, soc, enable_dvfs=False)
    channel = FastRpcChannel(kernel, process_id=42)
    model = load_model(model_key, "int8")
    input_bytes = model.input_spec.numel * payload_frames
    compute_us = soc.dsp.graph_time_us(model.ops, "int8")
    durations = []

    def body():
        for _ in range(2):  # cold then warm
            duration = yield from channel.invoke(
                input_bytes, model.output_bytes, compute_us
            )
            durations.append(duration)

    thread = kernel.spawn_on_big(body(), name="offloader")
    sim.run(until=thread.done)

    stats = channel.stats
    stage_costs = [
        ("session_open (cold only)", stats.session_open_us),
        ("user:marshal", stats.marshal_us),
        ("kernel:ioctl round trips", stats.kernel_us),
        ("cache flush/invalidate", stats.cache_flush_us),
        ("driver signalling", stats.signal_us),
        ("dsp queue wait", stats.dsp_queue_us),
        ("axi transfers", stats.transfer_us),
        ("dsp compute", stats.dsp_compute_us),
    ]
    total = sum(cost for _stage, cost in stage_costs)
    rows = [
        (stage, cost / 2.0, cost / total if total else 0.0)
        for stage, cost in stage_costs
    ]
    return ExperimentResult(
        experiment_id="fig7",
        title="FastRPC offload: per-stage cost decomposition (2 calls)",
        headers=("Stage", "mean us/call", "share"),
        rows=rows,
        series={"call_flow": list(call_flow_stages()),
                "durations_us": durations},
        notes=[
            "cold call pays the one-time DSP process mapping",
            f"cold={durations[0]:.0f}us vs warm={durations[1]:.0f}us",
        ],
    )
