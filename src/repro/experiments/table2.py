"""Table II: hardware platforms."""

from repro.experiments.base import ExperimentResult, experiment
from repro.soc import SOC_SPECS


@experiment("table2")
def run():
    """Regenerate Table II from the simulated platform catalog."""
    headers = ("System", "SoC", "Accelerators", "Cores", "DSP int8 scale")
    rows = []
    for spec in SOC_SPECS.values():
        rows.append(
            (
                spec.system,
                spec.soc_name,
                f"{spec.gpu_name} GPU, {spec.dsp_name} DSP",
                spec.core_count,
                spec.dsp_scale,
            )
        )
    return ExperimentResult(
        experiment_id="table2",
        title="Platforms used in the characterization study",
        headers=headers,
        rows=rows,
        notes=["results elsewhere use sd845 (Pixel 3), as in the paper"],
    )
