"""Fig. 6: Snapdragon-Profiler-style execution profile.

The paper profiles quantized EfficientNet-Lite0 under three execution
modes and annotates: (1) cores 4-7 pinned at 100% for the 4-thread CPU
run, (2) cDSP at 100% + AXI traffic for the Hexagon delegate, (3) a
brief cDSP spike then single-threaded CPU execution for NNAPI, with
(4) frequent CPU migrations. This experiment regenerates the raw
profile: per-track utilization timelines plus counter totals.
"""

from repro.apps import PipelineConfig
from repro.apps.harness import run_pipeline_with_rig
from repro.experiments.base import ExperimentResult, experiment
from repro.sim import units

TARGETS = ("cpu", "hexagon", "nnapi")


def _profile(target, runs, seed, model_key, dtype, bucket_ms):
    config = PipelineConfig(
        model_key=model_key,
        dtype=dtype,
        context="cli",
        target=target,
        runs=runs,
        seed=seed,
        trace=True,
    )
    records, sim, soc, kernel, _packaging = run_pipeline_with_rig(config)
    trace = sim.trace
    big_tracks = [core.name for core in soc.big_cores]
    big_util = sum(trace.utilization(track) for track in big_tracks) / 4
    busiest = max(trace.utilization(track) for track in big_tracks)
    profile = {
        "target": target,
        "big_util": big_util,
        "busiest_core_util": busiest,
        "cdsp_util": trace.utilization("cdsp"),
        "cdsp_spans": len(trace.spans_on("cdsp")),
        "migrations": trace.counter_total("migration"),
        "ctx_switches": trace.counter_total("ctx_switch"),
        "axi_mb": trace.counter_total("axi_bytes") / 1e6,
        "wall_ms": units.to_ms(sim.now),
        "timelines": {
            track: trace.timeline(track, units.ms(bucket_ms))
            for track in big_tracks + ["cdsp"]
        },
    }
    # Inference thread core residency: how many distinct cores the
    # benchmark thread bounced across (annotation 3/4 of the figure).
    subject = [
        thread for thread in kernel.threads if thread.name.startswith("cli:")
    ]
    if subject:
        profile["subject_cores"] = len(subject[0].stats.cores_used)
        profile["subject_migrations"] = subject[0].stats.migrations
    return profile


@experiment("fig6")
def run(runs=8, seed=0, model_key="efficientnet_lite0", dtype="int8",
        bucket_ms=10.0):
    headers = (
        "Target", "big CPU util", "busiest core util", "cDSP util",
        "cDSP spans", "migrations", "ctx switches", "AXI MB", "wall ms",
    )
    rows = []
    series = {}
    for target in TARGETS:
        profile = _profile(target, runs, seed, model_key, dtype, bucket_ms)
        rows.append(
            (
                target,
                profile["big_util"],
                profile["busiest_core_util"],
                profile["cdsp_util"],
                profile["cdsp_spans"],
                profile["migrations"],
                profile["ctx_switches"],
                profile["axi_mb"],
                profile["wall_ms"],
            )
        )
        for track, timeline in sorted(profile["timelines"].items()):
            series[f"{target}:{track}"] = timeline
    return ExperimentResult(
        experiment_id="fig6",
        title="Execution profile: CPU vs Hexagon delegate vs NNAPI",
        headers=headers,
        rows=rows,
        series=series,
        notes=[
            "cpu: big cores busy, no cDSP activity",
            "hexagon: cDSP busy with AXI traffic, CPU mostly idle",
            "nnapi: brief cDSP probe spike, then single-threaded CPU "
            "with migrations (the paper's annotations 3 and 4)",
        ],
    )
