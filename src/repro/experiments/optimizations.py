"""Optimization studies the paper's discussion motivates.

* ``pipelining`` — overlap capture/pre-processing with inference
  (software pipelining): throughput tracks the slowest stage instead of
  the stage sum.
* ``ablation_fastcv`` — offload image pre-processing to the DSP
  (FastCV-style), the paper's suggestion that "a cheaper DSP that can
  also do pre-processing" may beat a bigger tensor accelerator. Includes
  the catch the paper warns about: when inference shares that DSP, the
  two serialize.
"""

from repro.android import Kernel
from repro.android.fastrpc import FastRpcChannel
from repro.android.thread import Work
from repro.apps import PipelineConfig, run_pipeline
from repro.apps.pipelined import PipelinedApp
from repro.apps.sessions import make_session
from repro.capture import CameraHal
from repro.core import breakdown
from repro.experiments.base import ExperimentResult, experiment
from repro.models import load_model, model_card
from repro.processing import build_preprocessor
from repro.sim import Simulator
from repro.sim import units
from repro.soc import make_soc

#: HVX speedup for vectorizable image kernels vs one big CPU core
#: (FastCV-class image processing on the DSP's vector units).
_DSP_IMAGE_SPEEDUP = 4.0


@experiment("pipelining")
def run_pipelining(frames=20, seed=0, model_key="efficientnet_lite0",
                   dtype="fp32", target="gpu"):
    """Sequential vs pipelined app: latency and throughput."""
    sequential = run_pipeline(
        PipelineConfig(
            model_key=model_key, dtype=dtype, context="app",
            target=target, runs=frames, seed=seed,
        )
    )
    seq = breakdown(sequential)
    seq_fps = units.fps_from_ms(seq.total_ms) if seq.total_ms else 0.0

    sim = Simulator(seed=seed)
    soc = make_soc(sim, "sd845")
    kernel = Kernel(sim, soc)
    app = PipelinedApp(kernel, model_key, dtype=dtype, target=target)
    piped_records = app.execute(frames=frames)
    piped = breakdown(piped_records)
    piped_fps = piped_records.runs[-1].meta["throughput_fps"]

    headers = (
        "Mode", "capture ms", "pre ms", "inference ms", "frame ms",
        "throughput fps",
    )
    rows = [
        ("sequential", seq.capture_ms, seq.pre_ms, seq.inference_ms,
         seq.total_ms, seq_fps),
        ("pipelined", piped.capture_ms, piped.pre_ms, piped.inference_ms,
         piped.total_ms, piped_fps),
    ]
    return ExperimentResult(
        experiment_id="pipelining",
        title=f"{model_key} [{dtype}] on {target}: sequential vs pipelined",
        headers=headers,
        rows=rows,
        notes=[
            "pipelined throughput tracks the slowest stage, not the sum",
            "per-frame latency includes queue wait (other) in pipelined mode",
        ],
    )


@experiment("arvr_multimodel")
def run_arvr_multimodel(frames=12, seed=0):
    """Concurrent multi-model execution — the paper's AR/VR use case.

    §IV-C: "an emerging use-case is the growing need to support
    multiple models running concurrently ... hand-tracking,
    depth-tracking, gesture recognition in AR/VR. Yet most hardware
    today supports the execution of one model at a time." Three models
    per frame (pose + detection + classification) under two placements:
    everything on the DSP (serializes on the capacity-1 device) versus
    spread across DSP + GPU + CPU (parallel across devices).
    """
    # Three concurrent tasks; each placement chooses (dtype, target)
    # per model. Quantized variants exist for all three, so "all-dsp"
    # genuinely stacks them onto the single Hexagon.
    models = ("ssd_mobilenet_v2", "mobilenet_v1", "efficientnet_lite0")
    # An explicit sequence, not a dict: row order is the story the
    # table tells (stacked -> split -> baseline), not insertion order.
    placements = (
        ("all-dsp", (("int8", "hexagon"), ("int8", "hexagon"),
                     ("int8", "hexagon"))),
        ("split dsp+gpu+cpu", (("int8", "hexagon"), ("fp32", "gpu"),
                               ("int8", "cpu"))),
        ("all-cpu", (("int8", "cpu"), ("int8", "cpu"), ("int8", "cpu"))),
    )
    headers = ("placement", "frame ms", "achieved fps", "per-model ms")
    rows = []
    for label, choices in placements:
        sim = Simulator(seed=seed)
        soc = make_soc(sim, "sd845")
        kernel = Kernel(sim, soc)
        sessions = [
            make_session(kernel, load_model(key, dtype), target=target,
                         threads=4)
            for key, (dtype, target) in zip(models, choices)
        ]
        frame_times = []
        model_times = [[] for _ in sessions]

        def frame_body(index):
            def body(session=sessions[index], slot=index):
                yield from session.prepare()
                while True:
                    start = kernel.now
                    yield from session.invoke()
                    model_times[slot].append(kernel.now - start)
                    done = frame_gates[slot]
                    frame_gates[slot] = kernel.sim.event()
                    done.succeed()
            return body()

        # Drive all three each frame; the frame completes when the
        # slowest model finishes (lockstep, as an AR/VR loop would).
        frame_gates = [kernel.sim.event() for _ in sessions]
        workers = [
            kernel.spawn(frame_body(index), name=f"model{index}")
            for index in range(len(sessions))
        ]

        def conductor():
            from repro.android.thread import WaitFor

            for _ in range(frames):
                start = kernel.now
                gates = list(frame_gates)
                for gate in gates:
                    yield WaitFor(gate)
                frame_times.append(kernel.now - start)

        thread = kernel.spawn(conductor(), name="conductor")
        # Workers loop forever; the run simply stops once the conductor
        # has observed the requested number of frames.
        sim.run(until=thread.done)
        del workers
        warm = frame_times[1:]
        frame_ms = units.to_ms(sum(warm) / len(warm))
        per_model = ", ".join(
            f"{units.to_ms(sum(times[1:]) / len(times[1:])):.1f}"
            for times in model_times
        )
        rows.append((label, frame_ms, units.fps_from_ms(frame_ms), per_model))
    return ExperimentResult(
        experiment_id="arvr_multimodel",
        title="Three concurrent models (AR/VR): placement comparison",
        headers=headers,
        rows=rows,
        notes=[
            "one DSP: co-locating quantized models serializes them",
            "spreading across DSP+GPU+CPU runs the frame in parallel",
        ],
    )


@experiment("mlperf_gap")
def run_mlperf_gap(queries=40, runs=15, seed=0, model_key="mobilenet_v1",
                   dtype="int8", target="nnapi"):
    """MLPerf scores vs app-experienced latency — the paper's thesis.

    A single-stream p90 score measures inference alone; the same model
    inside an app pays capture, pre/post-processing, and rendering on
    top. The ratio between the two is the AI tax a pure benchmark hides.
    """
    from repro.apps.loadgen import MlperfLoadgen, OFFLINE, SINGLE_STREAM

    sim = Simulator(seed=seed)
    soc = make_soc(sim, "sd845")
    kernel = Kernel(sim, soc)
    loadgen = MlperfLoadgen(kernel, model_key, dtype=dtype, target=target)
    single = loadgen.run(SINGLE_STREAM, queries=queries)

    sim = Simulator(seed=seed)
    soc = make_soc(sim, "sd845")
    kernel = Kernel(sim, soc)
    offline = MlperfLoadgen(
        kernel, model_key, dtype=dtype, target=target
    ).run(OFFLINE, queries=queries)

    app = breakdown(
        run_pipeline(
            PipelineConfig(
                model_key=model_key, dtype=dtype, context="app",
                target=target, runs=runs, seed=seed,
            )
        )
    )

    headers = ("Metric", "value")
    rows = [
        ("single-stream p90 latency ms", single.p90_latency_ms),
        ("single-stream mean latency ms", single.mean_latency_ms),
        ("offline throughput qps", offline.throughput_qps),
        ("app end-to-end latency ms", app.total_ms),
        ("app inference-only ms", app.inference_ms),
        ("app/benchmark latency gap", app.total_ms / single.mean_latency_ms),
        ("AI tax hidden by the benchmark", app.tax_fraction),
    ]
    return ExperimentResult(
        experiment_id="mlperf_gap",
        title=f"{model_key} [{dtype}]: MLPerf-style scores vs app reality",
        headers=headers,
        rows=rows,
        notes=[
            "the benchmark's score describes a fraction of what the "
            "user experiences (paper: 'missing the forest for the trees')",
        ],
    )


@experiment("driver_versions")
def run_driver_versions(invokes=8, seed=0, model_key="efficientnet_lite0",
                        dtype="int8"):
    """The Fig.-5 pathology across NNAPI driver feature levels.

    The paper predicts "future iterations may likely fix this
    performance bug": feature level 1.2 ships the quantized large-kernel
    depthwise ops, 1.3 the asymmetric convolutions. This sweep shows the
    fallback disappearing as drivers catch up.
    """
    from repro.frameworks import NnapiSession

    headers = (
        "feature level", "inference ms", "reference fallback",
        "accelerated FLOPs",
    )
    rows = []
    for level in (1.1, 1.2, 1.3):
        sim = Simulator(seed=seed)
        soc = make_soc(sim, "sd845", governor_mode="performance")
        kernel = Kernel(sim, soc, enable_dvfs=False)
        model = load_model(model_key, dtype)
        session = NnapiSession(kernel, model, feature_level=level)
        durations = []

        def body():
            yield from session.prepare()
            for _ in range(invokes):
                duration = yield from session.invoke()
                durations.append(duration)

        thread = kernel.spawn_on_big(body(), name="drv")
        sim.run(until=thread.done)
        warm = durations[1:]
        rows.append(
            (
                level,
                units.to_ms(sum(warm) / len(warm)),
                session.reference_fallback,
                session.accelerated_fraction(),
            )
        )
    return ExperimentResult(
        experiment_id="driver_versions",
        title=f"{model_key} [{dtype}] via NNAPI: driver feature levels",
        headers=headers,
        rows=rows,
        notes=[
            "1.1 = the paper's SD845 drivers (reference fallback, ~7x)",
            "1.2+ supports the missing quantized ops: full delegation",
        ],
    )


def _fastcv_app_run(sim, kernel, runs, model_key, dtype, pre_on_dsp,
                    inference_target):
    """One app loop with pre-processing optionally offloaded to the DSP."""
    soc = kernel.soc
    card = model_card(model_key)
    model = load_model(model_key, dtype)
    session = make_session(kernel, model, target=inference_target)
    plan = build_preprocessor(card, model, context="app")
    camera = CameraHal(kernel)
    camera.start()
    channel = FastRpcChannel(kernel, process_id=999)
    frame_bytes = 480 * 640 * 3 // 2
    stage_totals = {"pre": 0.0, "inference": 0.0}

    def body():
        yield from session.prepare()
        for _ in range(runs):
            yield from camera.capture()
            pre_start = kernel.now
            if pre_on_dsp:
                # FastCV path: ship the frame to the DSP, run the image
                # kernels on HVX, ship the model input back.
                dsp_work = plan.cost_us / _DSP_IMAGE_SPEEDUP
                yield from channel.invoke(
                    frame_bytes, model.input_bytes, dsp_work,
                    label="fastcv:pre",
                )
            else:
                yield Work(plan.cost_us, label="app:pre")
            stage_totals["pre"] += kernel.now - pre_start
            infer_start = kernel.now
            yield from session.invoke()
            stage_totals["inference"] += kernel.now - infer_start

    thread = kernel.spawn_on_big(body(), name="fastcv_app")
    sim.run(until=thread.done)
    return (
        units.to_ms(stage_totals["pre"] / runs),
        units.to_ms(stage_totals["inference"] / runs),
    )


@experiment("ablation_fastcv")
def run_fastcv(runs=10, seed=0, model_key="mobilenet_v1", dtype="int8"):
    """Pre-processing on CPU vs on the DSP, with inference on DSP or CPU."""
    headers = (
        "pre-processing", "inference on", "pre ms", "inference ms",
        "pre+inference ms",
    )
    rows = []
    for pre_on_dsp in (False, True):
        for inference_target in ("hexagon", "cpu"):
            sim = Simulator(seed=seed)
            soc = make_soc(sim, "sd845")
            kernel = Kernel(sim, soc)
            pre_ms, inference_ms = _fastcv_app_run(
                sim, kernel, runs, model_key, dtype, pre_on_dsp,
                inference_target,
            )
            rows.append(
                (
                    "dsp (FastCV)" if pre_on_dsp else "cpu (Java)",
                    inference_target,
                    pre_ms,
                    inference_ms,
                    pre_ms + inference_ms,
                )
            )
    return ExperimentResult(
        experiment_id="ablation_fastcv",
        title=f"{model_key} [{dtype}]: offloading pre-processing to the DSP",
        headers=headers,
        rows=rows,
        notes=[
            "paper discussion: a DSP that also does pre-processing can "
            "beat a pure tensor accelerator",
            "when inference shares the DSP the stages serialize on it",
        ],
    )
