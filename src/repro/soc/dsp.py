"""Hexagon-class DSP ("NPU") model.

The DSP is *loosely coupled*: it has its own memory subsystem (VTCM) and
is reached from the CPU over FastRPC through the kernel driver
(:mod:`repro.android.fastrpc`). It executes quantized graphs on HVX
vector units at high throughput but has only scalar floating-point
support, which is why frameworks refuse (or should refuse) to delegate
fp32 graphs to it.

The device is a capacity-1 resource: one resident model executes at a
time, so concurrent clients queue — the mechanism behind the linear
latency growth in the paper's Fig. 9.
"""

from repro.sim import units
from repro.sim import Resource
from repro.soc import params
from repro.soc.cost_tables import build_table, lookup_table


_RATE_BY_KIND = {
    "conv": params.DSP_CONV_GOPS,
    "depthwise": params.DSP_DEPTHWISE_GOPS,
    "fc": params.DSP_FC_GOPS,
    "elementwise": params.DSP_ELEMENTWISE_GOPS,
}


class Dsp:
    """A Hexagon-class DSP with HVX vector units."""

    #: Integration style (see paper §II-D). Loosely coupled devices pay
    #: cache flushes and kernel round trips per invocation; a tightly
    #: coupled device would share the CPU cache hierarchy.
    coupling = "loose"

    def __init__(self, sim, name, scale=1.0, coupling="loose"):
        self.sim = sim
        self.name = name
        self.scale = scale
        self.coupling = coupling
        self.resource = Resource(sim, capacity=1, name=f"dsp:{name}")
        #: Process handles mapped via FastRPC session setup.
        self.mapped_processes = set()

    def supports_dtype(self, dtype):
        """HVX executes int8 graphs; fp graphs only via scalar fallback."""
        return dtype == "int8"

    def op_time_us(self, op, dtype):
        if dtype == "int8":
            rate_gops = _RATE_BY_KIND[op.compute_class] * self.scale
            compute_us = op.flops / units.per_us_rate(rate_gops)
        else:
            # Scalar floating point crawl; frameworks should never pick this.
            compute_us = op.flops / units.per_us_rate(
                params.DSP_SCALAR_FP_GFLOPS
            )
        return compute_us + params.DSP_OP_DISPATCH_US

    def graph_time_us(self, ops, dtype):
        """Memoized per ``(scale, dtype, ops)``; bit-equal to the
        inline sum (see :mod:`repro.soc.cost_tables`)."""
        config = ("dsp", self.scale, dtype)
        table = lookup_table(config, ops)
        if table is None:
            table = build_table(
                config, ops, [self.op_time_us(op, dtype) for op in ops]
            )
        return table.total_us

    def map_process(self, process_id):
        """Record a FastRPC process mapping; True when newly created."""
        if process_id in self.mapped_processes:
            return False
        self.mapped_processes.add(process_id)
        return True

    def unmap_process(self, process_id):
        self.mapped_processes.discard(process_id)

    def restart(self):
        """Subsystem restart (SSR): drop every process mapping.

        Models the Hexagon watchdog rebooting the DSP: all FastRPC
        sessions die at once and each client must remap (paying the
        session-open cost again) before its next call. Returns the
        number of mappings dropped.
        """
        dropped = len(self.mapped_processes)
        self.mapped_processes.clear()
        return dropped
