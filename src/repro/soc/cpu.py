"""CPU cores and big.LITTLE clusters.

A :class:`CpuCore` executes work measured in *reference microseconds*
(see :mod:`repro.soc.params`): the instantaneous execution rate is
``perf_index * governor.speed_fraction * thermal_factor`` reference
seconds per wall second. Scheduling of threads onto cores lives in
:mod:`repro.android.scheduler`; this module only models capability.
"""

from dataclasses import dataclass, field

from repro.soc.frequency import DvfsGovernor, OppTable


@dataclass
class CpuCore:
    """One CPU core inside a cluster."""

    core_id: int
    cluster: "CpuCluster"
    #: Execution rate relative to the reference core at max frequency.
    perf_index: float

    #: Thread currently dispatched here (owned by the scheduler).
    current_thread: object = field(default=None, repr=False)
    #: Accumulated busy reference-us (for utilization accounting).
    busy_us: float = 0.0

    @property
    def name(self):
        return f"cpu{self.core_id}"

    @property
    def speed(self):
        """Reference-work-per-microsecond execution rate right now."""
        return (
            self.perf_index
            * self.cluster.governor.speed_fraction
            * self.cluster.thermal_factor
        )


@dataclass
class CpuCluster:
    """A homogeneous group of cores sharing an OPP table and governor."""

    name: str
    perf_index: float
    opp: OppTable
    core_count: int
    first_core_id: int = 0
    governor_mode: str = "schedutil"
    #: Multiplier applied by the thermal model when throttling (<= 1.0).
    thermal_factor: float = 1.0

    def __post_init__(self):
        self.governor = DvfsGovernor(self.opp, mode=self.governor_mode)
        self.cores = [
            CpuCore(core_id=self.first_core_id + i, cluster=self, perf_index=self.perf_index)
            for i in range(self.core_count)
        ]

    def set_governor_mode(self, mode):
        self.governor = DvfsGovernor(self.opp, mode=mode)

    def utilization(self, window_busy_us, window_us):
        """Average core utilization of the cluster over a window."""
        if window_us <= 0:
            return 0.0
        return min(1.0, window_busy_us / (window_us * self.core_count))
