"""Power and energy accounting.

The paper's opening motivation is that "AI processing on general-purpose
mobile processors is inefficient in terms of energy and power". This
module lets the reproduction quantify that: every component reports
power draw, the :class:`EnergyMeter` integrates it, and experiments can
compare joules-per-inference across CPU/GPU/DSP placements.

CPU dynamic power follows the classic ``P = C * V^2 * f`` with voltage
roughly proportional to frequency, i.e. ``P ~ (f/fmax)^3 * P_max`` per
busy core. Accelerators are modelled with flat busy powers — their DVFS
is much coarser. Numbers are representative of 2018-era 10 nm parts.
"""

from dataclasses import dataclass, field

from repro.sim import units

#: Dynamic power of one fully-busy core at the top OPP (watts).
BIG_CORE_BUSY_W = 1.9
LITTLE_CORE_BUSY_W = 0.35
#: Leakage + fabric share attributed per idle-but-online core.
CORE_IDLE_W = 0.015
#: Accelerator busy powers (watts).
GPU_BUSY_W = 2.4
DSP_BUSY_W = 0.75
#: DRAM energy per byte moved (picojoules) — LPDDR4X ballpark.
DRAM_PJ_PER_BYTE = 60.0


@dataclass
class EnergyMeter:
    """Cumulative per-component energy in microjoules.

    Components call the ``add_*`` hooks; analyses snapshot totals around
    a measured region and difference them.
    """

    cpu_uj: float = 0.0
    gpu_uj: float = 0.0
    dsp_uj: float = 0.0
    dram_uj: float = 0.0
    #: Per-thread-label attribution of CPU energy.
    by_label: dict = field(default_factory=dict)
    #: Busy-power class per core id; a core's cluster membership and
    #: perf index never change, so the little-vs-big test in
    #: :meth:`add_cpu_slice` is resolved once per core.
    _busy_w_by_core: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def total_uj(self):
        return self.cpu_uj + self.gpu_uj + self.dsp_uj + self.dram_uj

    # Watts * microseconds == microjoules (units.uj_from_w_us).

    def add_cpu_slice(self, core, duration_us, label=None, fraction=None):
        """Energy for one scheduler slice on ``core`` at its current OPP.

        ``fraction`` lets the scheduler pass the OPP speed fraction it
        already computed for the slice instead of re-deriving it here
        (the value is identical: ``current_khz / max_khz``).
        """
        if fraction is None:
            fraction = core.cluster.governor.speed_fraction
        busy_w = self._busy_w_by_core.get(core.core_id)
        if busy_w is None:
            if core.cluster.name == "little" or core.perf_index < 0.6:
                busy_w = LITTLE_CORE_BUSY_W
            else:
                busy_w = BIG_CORE_BUSY_W
            self._busy_w_by_core[core.core_id] = busy_w
        power_w = busy_w * fraction ** 3
        energy = units.uj_from_w_us(power_w, duration_us)
        self.cpu_uj += energy
        if label is not None:
            self.by_label[label] = self.by_label.get(label, 0.0) + energy
        return energy

    def add_gpu_busy(self, duration_us):
        energy = units.uj_from_w_us(GPU_BUSY_W, duration_us)
        self.gpu_uj += energy
        return energy

    def add_dsp_busy(self, duration_us):
        energy = units.uj_from_w_us(DSP_BUSY_W, duration_us)
        self.dsp_uj += energy
        return energy

    def add_dram_transfer(self, nbytes):
        energy = nbytes * DRAM_PJ_PER_BYTE / 1e6  # pJ -> uJ
        self.dram_uj += energy
        return energy

    def snapshot(self):
        """Immutable totals for differencing around a measured region."""
        return (self.cpu_uj, self.gpu_uj, self.dsp_uj, self.dram_uj)

    def since(self, snapshot):
        """Per-component deltas (uJ) since a :meth:`snapshot`."""
        cpu, gpu, dsp, dram = snapshot
        return {
            "cpu_uj": self.cpu_uj - cpu,
            "gpu_uj": self.gpu_uj - gpu,
            "dsp_uj": self.dsp_uj - dsp,
            "dram_uj": self.dram_uj - dram,
            "total_uj": self.total_uj - (cpu + gpu + dsp + dram),
        }


def idle_floor_uj(core_count, duration_us):
    """Baseline leakage for ``core_count`` online cores over a window."""
    return units.uj_from_w_us(CORE_IDLE_W * core_count, duration_us)
