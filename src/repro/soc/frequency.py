"""Operating performance points and DVFS governors.

Mobile CPU clusters change frequency under a kernel governor. The
schedutil-style governor here tracks recent cluster utilization and picks
the lowest OPP whose capacity covers ``util * headroom``. Frequency ramping
is one of the run-to-run variability sources the paper highlights: an app
that idles between camera frames keeps dropping to low OPPs and pays a
ramp-up penalty at each burst, while a tight benchmark loop stays pinned
at the top OPP.
"""

from bisect import bisect_left
from dataclasses import dataclass, field


@dataclass(frozen=True)
class OppTable:
    """An ordered table of operating points in kHz."""

    frequencies_khz: tuple

    def __post_init__(self):
        if not self.frequencies_khz:
            raise ValueError("OPP table must not be empty")
        if list(self.frequencies_khz) != sorted(self.frequencies_khz):
            raise ValueError("OPP table must be sorted ascending")
        # Governor lookups run every sampling window; cache the level
        # index so step_towards avoids a linear scan per update. The
        # table is frozen, hence object.__setattr__.
        index_by_khz = {}
        for index, freq in enumerate(self.frequencies_khz):
            # First occurrence wins, matching list.index on a table
            # with (pathological) duplicate levels.
            index_by_khz.setdefault(freq, index)
        object.__setattr__(self, "_index_by_khz", index_by_khz)

    @property
    def min_khz(self):
        return self.frequencies_khz[0]

    @property
    def max_khz(self):
        return self.frequencies_khz[-1]

    def for_capacity(self, fraction):
        """Lowest OPP providing at least ``fraction`` of max capacity."""
        levels = self.frequencies_khz
        target = max(0.0, min(1.0, fraction)) * levels[-1]
        # Binary search for the first level >= target; target never
        # exceeds the top OPP, so the index is always in range.
        return levels[bisect_left(levels, target)]

    def ceiling_for(self, fraction):
        """Highest OPP not exceeding ``fraction`` of max capacity."""
        limit = max(0.0, min(1.0, fraction)) * self.max_khz
        candidates = [f for f in self.frequencies_khz if f <= limit]
        return candidates[-1] if candidates else self.min_khz

    def step_towards(self, current, target):
        """Move one OPP step from ``current`` towards ``target``.

        Real governors slew over several scheduler ticks rather than
        jumping straight to the target frequency.
        """
        levels = self.frequencies_khz
        index = self._index_by_khz.get(current)
        if index is None:
            # Snap to the nearest level first.
            current = min(levels, key=lambda f: abs(f - current))
            index = self._index_by_khz[current]
        if target > current and index + 1 < len(levels):
            return levels[index + 1]
        if target < current and index > 0:
            return levels[index - 1]
        return current


@dataclass
class DvfsGovernor:
    """schedutil-style governor state for one cluster.

    ``update()`` is called periodically with the cluster's utilization over
    the last window; it returns the new frequency. ``performance`` mode
    pins the top OPP (the paper's benchmarks effectively run this way
    because their tight loops saturate the cluster).
    """

    opp: OppTable
    mode: str = "schedutil"
    headroom: float = 1.25
    #: Frequency ceiling as a fraction of the top OPP. NNAPI's
    #: SUSTAINED_SPEED preference caps boost to avoid throttle cycling.
    max_fraction: float = 1.0
    current_khz: int = field(default=None)

    def __post_init__(self):
        if self.mode not in ("schedutil", "performance", "powersave"):
            raise ValueError(f"unknown governor mode: {self.mode}")
        if self.current_khz is None:
            self.current_khz = (
                self.opp.max_khz if self.mode == "performance" else self.opp.min_khz
            )

    def update(self, utilization):
        """Advance governor state given window utilization in [0, 1]."""
        if self.mode == "performance":
            self.current_khz = self.opp.max_khz
        elif self.mode == "powersave":
            self.current_khz = self.opp.min_khz
        else:
            target = self.opp.for_capacity(utilization * self.headroom)
            self.current_khz = self.opp.step_towards(self.current_khz, target)
        if self.max_fraction < 1.0:
            self.current_khz = min(
                self.current_khz, self.opp.ceiling_for(self.max_fraction)
            )
        return self.current_khz

    @property
    def speed_fraction(self):
        """Current frequency as a fraction of the top OPP."""
        return self.current_khz / self.opp.max_khz
