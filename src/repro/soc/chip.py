"""The assembled SoC."""


class Soc:
    """A simulated system-on-chip: CPU clusters + GPU + DSP + memory.

    Built by :func:`repro.soc.catalog.make_soc`; holds no behaviour of its
    own beyond convenient lookups. Scheduling logic lives in
    :mod:`repro.android`, delegation logic in :mod:`repro.frameworks`.
    """

    def __init__(self, sim, spec, clusters, gpu, dsp, memory, thermal,
                 energy=None):
        from repro.soc.power import EnergyMeter

        self.sim = sim
        self.spec = spec
        self.clusters = clusters
        self.gpu = gpu
        self.dsp = dsp
        self.memory = memory
        self.thermal = thermal
        self.energy = energy if energy is not None else EnergyMeter()
        memory.energy = self.energy

    @property
    def cores(self):
        """All cores, little cluster first (Linux cpu numbering style)."""
        return [core for cluster in self.clusters for core in cluster.cores]

    @property
    def big_cluster(self):
        return max(self.clusters, key=lambda c: c.perf_index)

    @property
    def little_cluster(self):
        return min(self.clusters, key=lambda c: c.perf_index)

    @property
    def big_cores(self):
        return self.big_cluster.cores

    @property
    def little_cores(self):
        return self.little_cluster.cores

    def core(self, core_id):
        for candidate in self.cores:
            if candidate.core_id == core_id:
                return candidate
        raise KeyError(f"no core with id {core_id}")

    def accelerator(self, kind):
        """Look up an accelerator by kind: ``gpu`` or ``dsp``/``npu``."""
        if kind == "gpu":
            return self.gpu
        if kind in ("dsp", "npu", "hexagon"):
            return self.dsp
        raise KeyError(f"unknown accelerator kind {kind!r}")

    def __repr__(self):
        return (
            f"<Soc {self.spec.soc_name}: {len(self.cores)} cores, "
            f"{self.gpu.name}, {self.dsp.name}>"
        )
