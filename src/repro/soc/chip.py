"""The assembled SoC."""


class Soc:
    """A simulated system-on-chip: CPU clusters + GPU + DSP + memory.

    Built by :func:`repro.soc.catalog.make_soc`; holds no behaviour of its
    own beyond convenient lookups. Scheduling logic lives in
    :mod:`repro.android`, delegation logic in :mod:`repro.frameworks`.
    """

    def __init__(self, sim, spec, clusters, gpu, dsp, memory, thermal,
                 energy=None):
        from repro.soc.power import EnergyMeter

        self.sim = sim
        self.spec = spec
        self.clusters = clusters
        self.gpu = gpu
        self.dsp = dsp
        self.memory = memory
        self.thermal = thermal
        self.energy = energy if energy is not None else EnergyMeter()
        memory.energy = self.energy
        # Cluster membership is fixed at assembly; precompute the hot
        # lookups the scheduler performs on every slice (they were
        # rebuilt per call and showed up in self-time profiles).
        self._cores = [core for cluster in clusters for core in cluster.cores]
        self._core_by_id = {core.core_id: core for core in self._cores}
        self._big_cluster = max(clusters, key=lambda c: c.perf_index)
        self._little_cluster = min(clusters, key=lambda c: c.perf_index)

    @property
    def cores(self):
        """All cores, little cluster first (Linux cpu numbering style)."""
        return self._cores

    @property
    def big_cluster(self):
        return self._big_cluster

    @property
    def little_cluster(self):
        return self._little_cluster

    @property
    def big_cores(self):
        return self._big_cluster.cores

    @property
    def little_cores(self):
        return self._little_cluster.cores

    def core(self, core_id):
        try:
            return self._core_by_id[core_id]
        except KeyError:
            raise KeyError(f"no core with id {core_id}") from None

    def accelerator(self, kind):
        """Look up an accelerator by kind: ``gpu`` or ``dsp``/``npu``."""
        if kind == "gpu":
            return self.gpu
        if kind in ("dsp", "npu", "hexagon"):
            return self.dsp
        raise KeyError(f"unknown accelerator kind {kind!r}")

    def __repr__(self):
        return (
            f"<Soc {self.spec.soc_name}: {len(self.cores)} cores, "
            f"{self.gpu.name}, {self.dsp.name}>"
        )
