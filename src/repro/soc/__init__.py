"""Simulated mobile SoC hardware.

Models the hardware inventory of the paper's Table II platforms: Qualcomm
Snapdragon 835/845/855/865 SoCs with big.LITTLE CPU clusters, an
Adreno-class GPU, and a Hexagon-class DSP ("NPU"), connected by an AXI
fabric and DRAM, with DVFS and a thermal throttling model.

Throughput constants are *calibrated*, not measured: they are tuned so
that the qualitative shapes of the paper's figures reproduce (see
``DESIGN.md`` § Calibration anchors). Absolute latencies are plausible for
the 2020-era devices but are not claimed to match the authors' testbed.
"""

from repro.soc.catalog import SOC_SPECS, make_soc, soc_spec
from repro.soc.chip import Soc
from repro.soc.cpu import CpuCluster, CpuCore
from repro.soc.dsp import Dsp
from repro.soc.frequency import DvfsGovernor, OppTable
from repro.soc.gpu import Gpu
from repro.soc.memory import MemorySystem
from repro.soc.thermal import ThermalModel

__all__ = [
    "SOC_SPECS",
    "make_soc",
    "soc_spec",
    "Soc",
    "CpuCluster",
    "CpuCore",
    "Dsp",
    "DvfsGovernor",
    "OppTable",
    "Gpu",
    "MemorySystem",
    "ThermalModel",
]
