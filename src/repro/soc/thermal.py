"""Thermal model with throttling.

The paper's methodology section (III-D) notes that mobile SoCs are
"particularly susceptible to thermal throttling" and that benchmarks were
only started once the package cooled to its ~33 °C idle temperature. This
model reproduces that: sustained load raises die temperature along a
first-order (exponential) trajectory; above the throttle trip point the
big cluster's capacity is progressively reduced, and experiments can call
:meth:`wait_until_cool` to replicate the authors' protocol.
"""

import math

from repro.sim import units


class ThermalModel:
    """First-order thermal RC model driving cluster throttle factors."""

    def __init__(
        self,
        sim,
        clusters,
        idle_celsius=33.0,
        full_load_celsius=85.0,
        time_constant_s=25.0,
        throttle_trip_celsius=70.0,
        throttle_floor=0.6,
    ):
        self.sim = sim
        self.clusters = list(clusters)
        self.idle_celsius = idle_celsius
        self.full_load_celsius = full_load_celsius
        self.time_constant_s = time_constant_s
        self.throttle_trip_celsius = throttle_trip_celsius
        self.throttle_floor = throttle_floor
        self.temperature = idle_celsius
        self._last_update = sim.now

    def update(self, load_fraction):
        """Advance temperature given average load since the last update.

        ``load_fraction`` in [0, 1] selects the steady-state temperature
        the die is relaxing towards; the exponential step uses the elapsed
        simulated time.
        """
        now = self.sim.now
        dt_s = units.to_seconds(now - self._last_update)
        self._last_update = now
        if dt_s <= 0:
            return self.temperature
        target = self.idle_celsius + load_fraction * (
            self.full_load_celsius - self.idle_celsius
        )
        alpha = 1.0 - math.exp(-dt_s / self.time_constant_s)
        self.temperature += (target - self.temperature) * alpha
        self._apply_throttle()
        return self.temperature

    def _apply_throttle(self):
        """Linear capacity derate between trip point and max temperature."""
        if self.temperature <= self.throttle_trip_celsius:
            factor = 1.0
        else:
            over = self.temperature - self.throttle_trip_celsius
            span = self.full_load_celsius - self.throttle_trip_celsius
            derate = min(1.0, over / span)
            factor = 1.0 - derate * (1.0 - self.throttle_floor)
        for cluster in self.clusters:
            cluster.thermal_factor = factor
        if self.sim.trace is not None:
            self.sim.trace.count("soc_temperature", self.temperature)

    @property
    def is_throttling(self):
        return self.temperature > self.throttle_trip_celsius

    def cooldown_time_us(self, margin_celsius=1.0):
        """Idle time needed to relax to within ``margin`` of idle temp."""
        gap = self.temperature - self.idle_celsius
        if gap <= margin_celsius:
            return 0.0
        seconds = self.time_constant_s * math.log(gap / margin_celsius)
        return units.seconds(seconds)

    def wait_until_cool(self, margin_celsius=1.0):
        """Process body: idle the sim until the die is near idle temp.

        Mirrors the paper's protocol of starting each benchmark run at the
        ~33 °C idle temperature.
        """
        delay = self.cooldown_time_us(margin_celsius)
        if delay > 0:
            yield self.sim.timeout(delay)
            self.update(0.0)
