"""Calibrated hardware throughput constants.

All compute costs in the simulation are expressed in **reference
work-microseconds**: the time the work would take on one Snapdragon 845
big (Kryo 385 Gold) core running at its maximum frequency. A core's
actual execution rate is ``perf_index * (freq / max_freq)`` reference
seconds per second, so little cores and down-clocked cores take
proportionally longer.

The effective GFLOP/s numbers below are *achieved* throughputs of tuned
TFLite kernels, far below datasheet peaks — mobile inference kernels are
memory- and dispatch-bound for many layer shapes. They were chosen to hit
the paper's calibration anchors (DESIGN.md):

* Inception v3 fp32 (~11.4 GFLOPs) at ~250 ms on a 4-thread CPU implies
  ~11-12 effective GFLOP/s per big core for dense convolutions.
* The NNAPI CPU-fallback path runs *reference* (non-NEON-tuned) quantized
  kernels on a single thread; the paper measures a ~7x slowdown for
  EfficientNet-Lite0 int8 vs. the regular single-thread CPU path.
* The Hexagon DSP runs int8 at roughly 10-20x a single CPU core
  (HVX vector units), but cannot execute fp32 model graphs.
"""

# -- CPU (per big core at max frequency, reference = SD845 Kryo 385 Gold) --

#: Effective GFLOP/s for dense convolutions (im2col + GEMM kernels).
CPU_CONV_GFLOPS = 16.0
#: Depthwise convolutions have low arithmetic intensity; far lower rate.
CPU_DEPTHWISE_GFLOPS = 2.6
#: Fully-connected / GEMM layers (BERT matmuls included).
CPU_FC_GFLOPS = 10.0
#: Elementwise / pooling / softmax style ops (memory bound).
CPU_ELEMENTWISE_GFLOPS = 1.8

#: Speedup of tuned int8 kernels over fp32 on CPU (NEON dot products).
CPU_INT8_SPEEDUP = 1.5
#: Slowdown of *reference* quantized kernels (the NNAPI CPU fallback path)
#: relative to tuned fp32 kernels. Reference kernels do per-element
#: requantization with no vectorization.
CPU_REFERENCE_INT8_SLOWDOWN = 4.7

#: Fixed scheduling/dispatch overhead per op on the CPU interpreter.
CPU_OP_DISPATCH_US = 2.0

#: Parallel efficiency when splitting one op across N threads.
CPU_PARALLEL_EFFICIENCY = {1: 1.0, 2: 0.92, 4: 0.80, 8: 0.60}

# -- GPU (Adreno-class, per-op dispatched via command queue) --------------

GPU_CONV_GFLOPS = 36.0
GPU_DEPTHWISE_GFLOPS = 9.0
GPU_FC_GFLOPS = 18.0
GPU_ELEMENTWISE_GFLOPS = 6.0
#: fp16 runs ~1.8x fp32 on mobile GPUs; int8 gains little (no DP4A here).
GPU_FP16_SPEEDUP = 1.8
GPU_INT8_SPEEDUP = 1.1
#: Kernel launch + descriptor setup per op.
GPU_OP_DISPATCH_US = 18.0
#: One-time GL/CL context + shader compilation at delegate init.
GPU_DELEGATE_INIT_US = 95_000.0

# -- DSP (Hexagon-class HVX; "NPU" in Qualcomm marketing) -----------------

#: Effective int8 GOP/s for dense convolutions on the HVX vector units.
DSP_CONV_GOPS = 150.0
DSP_DEPTHWISE_GOPS = 55.0
DSP_FC_GOPS = 80.0
DSP_ELEMENTWISE_GOPS = 20.0
#: Per-op overhead once a graph is resident on the DSP (VLIW issue, DMA).
DSP_OP_DISPATCH_US = 4.0
#: The Hexagon delegate cannot run fp32 graphs; scalar fp fallback rate.
DSP_SCALAR_FP_GFLOPS = 0.8

# -- Memory system ---------------------------------------------------------

#: Effective DRAM bandwidth seen by a single-threaded memcpy (GB/s).
DRAM_BANDWIDTH_GBPS = 12.0
#: Bandwidth of the AXI path between CPU memory and the DSP's VTCM.
AXI_BANDWIDTH_GBPS = 8.0
#: Cache-flush rate for making CPU writes visible to the (non-coherent,
#: loosely coupled) DSP: clean+invalidate by VA over the buffer.
CACHE_FLUSH_GBPS = 20.0
#: Fixed cost of a cache maintenance operation (kernel entry included).
CACHE_FLUSH_BASE_US = 12.0

# -- Per-generation scaling -------------------------------------------------

#: Relative CPU perf of each SoC's big cluster vs the SD845 reference.
#: (Kryo 280 -> 385 -> 485 -> 585 generational uplifts.)
CPU_GENERATION_SCALE = {
    "sd835": 0.80,
    "sd845": 1.00,
    "sd855": 1.25,
    "sd865": 1.45,
}

#: Relative GPU perf (Adreno 540 -> 630 -> 640 -> 650).
GPU_GENERATION_SCALE = {
    "sd835": 0.70,
    "sd845": 1.00,
    "sd855": 1.20,
    "sd865": 1.50,
}

#: Relative DSP int8 perf (Hexagon 682 -> 685 -> 690 -> 698).
DSP_GENERATION_SCALE = {
    "sd835": 0.45,
    "sd845": 1.00,
    "sd855": 2.0,
    "sd865": 3.5,
}
