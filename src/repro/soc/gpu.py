"""Adreno-class mobile GPU model.

The GPU executes delegated op graphs one op at a time from a command
queue; each op pays a dispatch overhead on top of its roofline time.
Exclusive use is modelled with a capacity-1 resource — concurrent GL
contexts time-slice in reality, but ML delegates serialize command
buffers, which is the behaviour relevant to the paper.
"""

from repro.sim import units
from repro.sim import Resource
from repro.soc import params
from repro.soc.cost_tables import build_table, lookup_table


#: Map from op compute class to effective fp32 GFLOP/s on the reference GPU.
_RATE_BY_KIND = {
    "conv": params.GPU_CONV_GFLOPS,
    "depthwise": params.GPU_DEPTHWISE_GFLOPS,
    "fc": params.GPU_FC_GFLOPS,
    "elementwise": params.GPU_ELEMENTWISE_GFLOPS,
}


class Gpu:
    """A mobile GPU as seen by ML delegation frameworks."""

    def __init__(self, sim, name, scale=1.0):
        self.sim = sim
        self.name = name
        self.scale = scale
        self.resource = Resource(sim, capacity=1, name=f"gpu:{name}")

    def supports_dtype(self, dtype):
        return dtype in ("fp32", "fp16", "int8")

    def op_time_us(self, op, dtype):
        """Roofline time plus dispatch overhead for one op."""
        rate_gflops = _RATE_BY_KIND[op.compute_class] * self.scale
        if dtype == "fp16":
            rate_gflops *= params.GPU_FP16_SPEEDUP
        elif dtype == "int8":
            rate_gflops *= params.GPU_INT8_SPEEDUP
        compute_us = op.flops / units.per_us_rate(rate_gflops)
        return compute_us + params.GPU_OP_DISPATCH_US

    def graph_time_us(self, ops, dtype):
        """Total time to execute a delegated partition.

        Memoized per ``(scale, dtype, ops)`` — two GPUs with the same
        scale price identically, so the key is the pricing parameters,
        not the instance (see :mod:`repro.soc.cost_tables`).
        """
        config = ("gpu", self.scale, dtype)
        table = lookup_table(config, ops)
        if table is None:
            table = build_table(
                config, ops, [self.op_time_us(op, dtype) for op in ops]
            )
        return table.total_us

    @property
    def init_time_us(self):
        """One-time delegate initialization (context + shader compile)."""
        return params.GPU_DELEGATE_INIT_US
