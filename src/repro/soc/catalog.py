"""The platform catalog — the paper's Table II.

| System              | SoC            | Accelerators                        |
|---------------------|----------------|-------------------------------------|
| Open-Q 835 uSOM     | Snapdragon 835 | Adreno 540 GPU, Hexagon 682 DSP     |
| Google Pixel 3      | Snapdragon 845 | Adreno 630 GPU, Hexagon 685 DSP     |
| Snapdragon 855 HDK  | Snapdragon 855 | Adreno 640 GPU, Hexagon 690 DSP     |
| Snapdragon 865 HDK  | Snapdragon 865 | Adreno 650 GPU, Hexagon 698 DSP     |

The paper presents results on the Pixel 3 (SD845) and reports the trends
hold across the other chipsets; ``sd845`` is likewise this library's
default platform.
"""

from dataclasses import dataclass

from repro.soc import params
from repro.soc.chip import Soc
from repro.soc.cpu import CpuCluster
from repro.soc.dsp import Dsp
from repro.soc.frequency import OppTable
from repro.soc.gpu import Gpu
from repro.soc.memory import MemorySystem
from repro.soc.thermal import ThermalModel


@dataclass(frozen=True)
class ClusterSpec:
    name: str
    core_count: int
    perf_index: float
    opp_khz: tuple


@dataclass(frozen=True)
class SocSpec:
    """Static description of one Table-II platform."""

    key: str
    system: str
    soc_name: str
    gpu_name: str
    dsp_name: str
    clusters: tuple
    cpu_scale: float
    gpu_scale: float
    dsp_scale: float
    dram_gbps: float = params.DRAM_BANDWIDTH_GBPS
    #: NNAPI feature level the platform's shipped drivers implement.
    nnapi_feature_level: float = 1.1

    @property
    def core_count(self):
        return sum(cluster.core_count for cluster in self.clusters)


def _little(count, perf, top_khz):
    steps = tuple(int(top_khz * f) for f in (0.35, 0.55, 0.75, 0.9, 1.0))
    return ClusterSpec("little", count, perf, steps)


def _big(count, perf, top_khz):
    steps = tuple(int(top_khz * f) for f in (0.3, 0.5, 0.65, 0.8, 0.92, 1.0))
    return ClusterSpec("big", count, perf, steps)


SOC_SPECS = {
    "sd835": SocSpec(
        key="sd835",
        system="Open-Q 835 uSOM",
        soc_name="Snapdragon 835",
        gpu_name="Adreno 540",
        dsp_name="Hexagon 682",
        clusters=(_little(4, 0.30, 1_900_000), _big(4, 0.80, 2_450_000)),
        cpu_scale=params.CPU_GENERATION_SCALE["sd835"],
        gpu_scale=params.GPU_GENERATION_SCALE["sd835"],
        dsp_scale=params.DSP_GENERATION_SCALE["sd835"],
        dram_gbps=10.0,
    ),
    "sd845": SocSpec(
        key="sd845",
        system="Google Pixel 3",
        soc_name="Snapdragon 845",
        gpu_name="Adreno 630",
        dsp_name="Hexagon 685",
        clusters=(_little(4, 0.35, 1_766_000), _big(4, 1.00, 2_803_000)),
        cpu_scale=params.CPU_GENERATION_SCALE["sd845"],
        gpu_scale=params.GPU_GENERATION_SCALE["sd845"],
        dsp_scale=params.DSP_GENERATION_SCALE["sd845"],
        dram_gbps=12.0,
    ),
    "sd855": SocSpec(
        key="sd855",
        system="Snapdragon 855 HDK",
        soc_name="Snapdragon 855",
        gpu_name="Adreno 640",
        dsp_name="Hexagon 690",
        clusters=(_little(4, 0.40, 1_785_000), _big(4, 1.25, 2_840_000)),
        cpu_scale=params.CPU_GENERATION_SCALE["sd855"],
        gpu_scale=params.GPU_GENERATION_SCALE["sd855"],
        dsp_scale=params.DSP_GENERATION_SCALE["sd855"],
        nnapi_feature_level=1.2,
        dram_gbps=14.0,
    ),
    "sd865": SocSpec(
        key="sd865",
        system="Snapdragon 865 HDK",
        soc_name="Snapdragon 865",
        gpu_name="Adreno 650",
        dsp_name="Hexagon 698",
        clusters=(_little(4, 0.45, 1_804_000), _big(4, 1.45, 2_840_000)),
        cpu_scale=params.CPU_GENERATION_SCALE["sd865"],
        gpu_scale=params.GPU_GENERATION_SCALE["sd865"],
        dsp_scale=params.DSP_GENERATION_SCALE["sd865"],
        nnapi_feature_level=1.3,
        dram_gbps=16.0,
    ),
}


def soc_spec(key):
    """Look up a :class:`SocSpec` by key (``sd835`` ... ``sd865``)."""
    try:
        return SOC_SPECS[key]
    except KeyError:
        raise KeyError(
            f"unknown SoC {key!r}; available: {sorted(SOC_SPECS)}"
        ) from None


def make_soc(sim, key="sd845", governor_mode="schedutil", dsp_coupling="loose"):
    """Instantiate a simulated :class:`Soc` for platform ``key``."""
    spec = soc_spec(key)
    clusters = []
    next_core = 0
    for cluster_spec in spec.clusters:
        cluster = CpuCluster(
            name=cluster_spec.name,
            perf_index=cluster_spec.perf_index * spec.cpu_scale,
            opp=OppTable(cluster_spec.opp_khz),
            core_count=cluster_spec.core_count,
            first_core_id=next_core,
            governor_mode=governor_mode,
        )
        next_core += cluster_spec.core_count
        clusters.append(cluster)
    gpu = Gpu(sim, spec.gpu_name, scale=spec.gpu_scale)
    dsp = Dsp(sim, spec.dsp_name, scale=spec.dsp_scale, coupling=dsp_coupling)
    memory = MemorySystem(sim, dram_gbps=spec.dram_gbps)
    thermal = ThermalModel(sim, clusters)
    return Soc(
        sim=sim,
        spec=spec,
        clusters=clusters,
        gpu=gpu,
        dsp=dsp,
        memory=memory,
        thermal=thermal,
    )
