"""Memoized per-op cost tables for graph latency math.

Every inference invoke used to re-price its op graph from scratch:
``graph_time_us`` walked the ops, recomputed each roofline division, and
summed. The op graphs are immutable (:class:`~repro.models.ops.Op` is a
frozen dataclass, model op tuples come out of an ``lru_cache``) and the
pricing inputs — device kind, device scale, dtype, kernel impl — are
fixed for the life of a process, so the per-op latency column and its
total can be computed once per *(pricing config, ops)* pair and reused
by every subsequent invoke.

A :class:`CostTable` is a struct-of-arrays view of one priced graph: a
flat tuple of per-op microsecond costs (one column, parallel to the ops
tuple) plus the precomputed total. Callers that only need the total read
:attr:`CostTable.total_us`; callers that walk per-op costs (partition
planners, ablations) can zip ``ops`` with :attr:`CostTable.op_us`
without re-entering the cost model.

Two cache levels keep the hot path O(1):

* ``_by_id`` keys on ``(config, id(ops))``. A stored table holds a
  strong reference to its ops tuple, so the id can never be recycled
  while the entry exists — the lookup is a single small-tuple hash, far
  cheaper than hashing every op in the graph.
* ``_by_value`` keys on ``(config, ops)`` (full content hash) and is
  consulted only on an id miss, so a workload that rebuilds equal op
  tuples per session (e.g. fresh partitions) still prices each distinct
  graph once.

Bit-identity contract (see ``docs/performance.md``): the cached total is
produced by the *same* left-fold ``sum()`` over per-op values computed
by the *same* per-op function the uncached code used, so replacing the
per-invoke sum with a table read is observably free — figure outputs
and replay digests are byte-identical.
"""

__all__ = [
    "CostTable",
    "build_table",
    "clear_cost_tables",
    "cost_table_stats",
    "lookup_table",
]


class CostTable:
    """Struct-of-arrays pricing of one op tuple under one config."""

    __slots__ = ("ops", "op_us", "total_us")

    def __init__(self, ops, op_us):
        self.ops = ops
        self.op_us = op_us
        # Left-fold from zero — the identical float-addition order to
        # the ``sum(op_time(op) for op in ops)`` expression this table
        # replaces, which keeps cached totals bit-equal to uncached.
        self.total_us = sum(op_us)

    def __len__(self):
        return len(self.ops)

    def __repr__(self):
        return f"<CostTable ops={len(self.ops)} total_us={self.total_us}>"


#: (config, id(ops)) -> (ops, CostTable). The entry holds the exact
#: tuple object whose id it is keyed on — not merely an equal one — so
#: the id can never be recycled by a different object while the entry
#: exists. (Keying an unpinned alias is a real bug: CPython reuses
#: tuple addresses immediately, and a later equal-id lookup would hit
#: the wrong table.)
_by_id = {}
#: (config, ops) -> CostTable, for deduplicating equal-content tuples.
_by_value = {}
_hits = 0
_misses = 0


def lookup_table(config, ops):
    """Return the cached :class:`CostTable` for ``(config, ops)`` or None.

    ``config`` must be a hashable description of every input the per-op
    cost function reads besides the op itself — device kind, scale,
    dtype, impl. Omitting a pricing input from the config would alias
    distinct costs onto one table.
    """
    global _hits
    # id() here is deterministically *safe*: it only decides cache hit
    # vs miss, and a miss recomputes the identical value, so no output
    # ever depends on the address. Every entry pins the tuple its id
    # names, so a stored id cannot be recycled by a different object.
    entry = _by_id.get((config, id(ops)))  # repro: allow[id-as-key]
    if entry is None:
        return None
    _hits += 1
    return entry[1]


def build_table(config, ops, op_us):
    """Price ``ops`` from the ``op_us`` column and memoize the table.

    ``op_us`` is the per-op microsecond cost sequence, computed by the
    caller with its existing per-op function (so this module never
    duplicates cost math). Non-tuple ``ops`` (rare ad-hoc lists) are
    priced but not cached — lists are mutable, so neither key is safe.
    """
    global _misses
    _misses += 1
    if not isinstance(ops, tuple):
        return CostTable(tuple(ops), tuple(op_us))
    value_key = (config, ops)
    table = _by_value.get(value_key)
    if table is None:
        table = CostTable(ops, tuple(op_us))
        _by_value[value_key] = table
    _by_id[(config, id(ops))] = (ops, table)  # repro: allow[id-as-key]
    return table


def clear_cost_tables():
    """Drop every cached table (tests and benchmark cold-start runs)."""
    global _hits, _misses
    _by_id.clear()
    _by_value.clear()
    _hits = 0
    _misses = 0


def cost_table_stats():
    """Cache effectiveness counters for benchmarks and docs."""
    return {
        "tables": len(_by_value),
        "aliases": len(_by_id),
        "hits": _hits,
        "misses": _misses,
    }
