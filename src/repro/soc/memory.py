"""Memory system: DRAM, AXI fabric, and cache maintenance costs.

Offloading a buffer to the loosely coupled DSP requires (a) cache
clean/invalidate so the DSP sees the CPU's writes (the "cache flush" in
the paper's Fig. 7 FastRPC flow) and (b) a transfer across the AXI
fabric. Both scale with buffer size. AXI traffic is also counted so the
Fig. 6 profile can show the traffic spike during Hexagon execution.
"""

from repro.sim import units
from repro.soc import params


class MemorySystem:
    """Bandwidth/cost model plus AXI traffic accounting."""

    def __init__(self, sim, dram_gbps=None, axi_gbps=None):
        self.sim = sim
        self.dram_gbps = dram_gbps or params.DRAM_BANDWIDTH_GBPS
        self.axi_gbps = axi_gbps or params.AXI_BANDWIDTH_GBPS
        #: (time_us, bytes) samples of AXI transfers.
        self.axi_transfers = []
        #: EnergyMeter attached by the owning Soc (may stay None).
        self.energy = None

    # one GB/s == 1e9 bytes / 1e6 us == 1e3 bytes/us
    @staticmethod
    def _time_us(nbytes, gbps):
        return nbytes / units.per_us_rate(gbps)

    def dram_copy_us(self, nbytes):
        """Time for a CPU-side bulk copy of ``nbytes``."""
        if self.energy is not None:
            self.energy.add_dram_transfer(nbytes)
        return self._time_us(nbytes, self.dram_gbps)

    def axi_transfer_us(self, nbytes):
        """Time to move ``nbytes`` between CPU memory and the DSP."""
        self.axi_transfers.append((self.sim.now, nbytes))
        if self.energy is not None:
            self.energy.add_dram_transfer(nbytes)
        if self.sim.trace is not None:
            self.sim.trace.count("axi_bytes", nbytes)
        return self._time_us(nbytes, self.axi_gbps)

    def cache_flush_us(self, nbytes):
        """Clean+invalidate ``nbytes`` of cache lines by virtual address."""
        return params.CACHE_FLUSH_BASE_US + self._time_us(
            nbytes, params.CACHE_FLUSH_GBPS
        )

    def axi_bytes_between(self, start, end):
        """Total AXI bytes moved in a time window (for profiles)."""
        return sum(
            nbytes for time, nbytes in self.axi_transfers if start <= time < end
        )
