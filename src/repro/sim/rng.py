"""Named, reproducible random streams.

Every stochastic component of the simulation (sensor jitter, interference
daemons, DVFS noise, ...) draws from its own named stream so that adding a
new consumer never perturbs the draws seen by existing ones. Streams are
derived deterministically from the root seed and the stream name.
"""

import hashlib

import numpy as np


class RngStreams:
    """Factory and cache of named ``numpy.random.Generator`` streams."""

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def __getitem__(self, name):
        return self.stream(name)

    def fork(self, salt):
        """A new :class:`RngStreams` with an independent derived seed."""
        digest = hashlib.sha256(f"{self.seed}/fork:{salt}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "little"))

    def spawn(self, session_id):
        """A new :class:`RngStreams` for fleet session ``session_id``.

        Derivation goes through :class:`numpy.random.SeedSequence` with
        ``spawn_key=(session_id,)``, so children are provably independent
        (in the SeedSequence sense) of each other and of the parent — the
        guarantee fleet simulation needs so per-session results are
        bit-identical regardless of execution order or worker count.

        Named-stream derivation inside the child is unchanged (sha256 of
        ``"{seed}:{name}"``), keeping existing seed-state byte-compatible.
        """
        session_id = int(session_id)
        if session_id < 0:
            raise ValueError(f"negative session id: {session_id}")
        # SeedSequence entropy must be non-negative; mask negatives into
        # the same 128-bit space deterministically.
        entropy = self.seed & ((1 << 128) - 1)
        sequence = np.random.SeedSequence(entropy, spawn_key=(session_id,))
        child_seed = int.from_bytes(
            sequence.generate_state(4, np.uint32).tobytes(), "little"
        )
        return RngStreams(child_seed)
