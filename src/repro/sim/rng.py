"""Named, reproducible random streams.

Every stochastic component of the simulation (sensor jitter, interference
daemons, DVFS noise, ...) draws from its own named stream so that adding a
new consumer never perturbs the draws seen by existing ones. Streams are
derived deterministically from the root seed and the stream name.
"""

import hashlib

import numpy as np


class RngStreams:
    """Factory and cache of named ``numpy.random.Generator`` streams."""

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def __getitem__(self, name):
        return self.stream(name)

    def fork(self, salt):
        """A new :class:`RngStreams` with an independent derived seed."""
        digest = hashlib.sha256(f"{self.seed}/fork:{salt}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "little"))
