"""Shared resources with FIFO and priority queueing.

The DSP in the simulated SoC is a capacity-1 :class:`Resource`: the paper
observes that "most hardware today supports the execution of one model at
a time", and the linear latency growth in Fig. 9 is exactly the queueing
delay this models.
"""

import heapq

from repro.sim.events import Event


class _RequestEvent(Event):
    """Event handed to a requester; succeeds when the resource is granted.

    A request is also a context manager: ``with resource.request() as
    req: yield WaitFor(req); ...`` releases the slot on *every* exit
    path — including :class:`~repro.sim.events.Interrupted` thrown into
    the process at a yield inside the block, the path a bare
    ``try/finally`` placed after the wait misses. ``release()`` is
    idempotent through the ``released`` flag, so an early explicit
    release (e.g. withdrawing a timed-out queue entry) composes with
    the with-block exit.
    """

    def __init__(self, sim, resource, name):
        super().__init__(sim, name=name)
        self.resource = resource
        self.granted = False
        self.released = False

    def release(self):
        if self.released:
            return
        self.released = True
        self.resource.release(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False


class Resource:
    """A resource with ``capacity`` concurrent slots and a FIFO queue."""

    def __init__(self, sim, capacity=1, name=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self.users = []
        self._waiting = []

    @property
    def queue_length(self):
        return len(self._waiting)

    @property
    def in_use(self):
        return len(self.users)

    def request(self):
        """Return an event that succeeds when a slot is available.

        The caller must eventually call ``.release()`` on the returned
        request. The robust pattern is the with-block — it releases on
        every exit path, including an interrupt delivered at a yield::

            with resource.request() as req:
                yield WaitFor(req)
                ...  # hold the slot

        (semcheck's ``resource-leak`` rule flags manual pairings whose
        release is reachable on only some paths.)
        """
        request = _RequestEvent(
            self.sim, self, name=f"{self.name}:request"
        )
        self._waiting.append(request)
        self._grant()
        return request

    def release(self, request):
        """Free the slot held by ``request``."""
        if request in self.users:
            self.users.remove(request)
        elif request in self._waiting:
            self._waiting.remove(request)
        else:
            raise ValueError("release() of a request this resource never granted")
        self._grant()

    def _pop_next(self):
        return self._waiting.pop(0)

    def _grant(self):
        while self._waiting and len(self.users) < self.capacity:
            request = self._pop_next()
            request.granted = True
            self.users.append(request)
            request.succeed(self)


class PriorityResource(Resource):
    """Resource whose queue is ordered by ``priority`` (lower first)."""

    def __init__(self, sim, capacity=1, name=None):
        super().__init__(sim, capacity=capacity, name=name)
        self._heap = []

    def request(self, priority=0):
        request = _RequestEvent(self.sim, self, name=f"{self.name}:request")
        # Engine-scoped FIFO tiebreak: ids reset with the simulator, so
        # replays see the same sequence whatever ran earlier in the
        # process (an itertools.count here would not).
        heapq.heappush(
            self._heap,
            (priority, self.sim.next_id("resource_request"), request),
        )
        self._waiting.append(request)
        self._grant()
        return request

    def _pop_next(self):
        while self._heap:
            _prio, _seq, request = heapq.heappop(self._heap)
            if request in self._waiting:
                self._waiting.remove(request)
                return request
        return self._waiting.pop(0)


class Store:
    """An unbounded FIFO buffer of items (used for frame queues)."""

    def __init__(self, sim, name=None, capacity=None):
        self.sim = sim
        self.name = name or "store"
        self.capacity = capacity
        self.items = []
        self._getters = []

    def put(self, item):
        """Add an item; drops the oldest when capacity is exceeded.

        Dropping the oldest frame mirrors camera HALs, whose buffer queues
        recycle stale frames when the consumer falls behind.
        """
        self.items.append(item)
        dropped = 0
        if self.capacity is not None and len(self.items) > self.capacity:
            self.items.pop(0)
            dropped = 1
        self._dispatch()
        return dropped

    def get(self):
        """Return an event yielding the next item (FIFO)."""
        event = Event(self.sim, name=f"{self.name}:get")
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self):
        while self.items and self._getters:
            event = self._getters.pop(0)
            event.succeed(self.items.pop(0))
