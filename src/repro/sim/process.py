"""Generator-based simulation processes."""

from repro.sim.events import Event, Interrupted


class Process(Event):
    """A coroutine driven by the simulator.

    The body is a generator that yields :class:`Event` objects; the process
    resumes when the yielded event triggers, receiving the event's value at
    the yield point (or its exception raised there). The process itself is
    an event that triggers with the generator's return value, so processes
    can wait on one another.
    """

    def __init__(self, sim, generator, name=None):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        self._generator = generator
        self._waiting_on = None
        # Kick off on the next schedule slot at the current time.
        bootstrap = Event(sim, name=f"{self.name}:start")
        bootstrap.callbacks.append(self._resume)
        bootstrap._state = "triggered"
        sim._schedule(bootstrap, priority=sim.PRIORITY_URGENT)

    @property
    def is_alive(self):
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupted` into the process at its yield point."""
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        wakeup = Event(self.sim, name=f"{self.name}:interrupt")
        wakeup.callbacks.append(
            lambda ev: self._step(Interrupted(cause), throw=True)
        )
        wakeup._state = "triggered"
        self.sim._schedule(wakeup, priority=self.sim.PRIORITY_URGENT)

    # -- internal -------------------------------------------------------

    def _resume(self, event):
        if self.triggered:
            return
        self._waiting_on = None
        if event._exception is not None:
            self._step(event._exception, throw=True)
        else:
            self._step(event._value, throw=False)

    def _step(self, payload, throw):
        previous, self.sim._active_process = self.sim._active_process, self
        try:
            if throw:
                target = self._generator.throw(payload)
            else:
                target = self._generator.send(payload)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupted as exc:
            self.fail(exc)
            return
        finally:
            self.sim._active_process = previous
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; expected an Event"
            )
        self._waiting_on = target
        if target.processed:
            # Already-processed events resume the process immediately (at
            # the current time) via a fresh bookkeeping event.
            relay = Event(self.sim, name=f"{self.name}:relay")
            relay.callbacks.append(self._resume)
            relay._state = "triggered"
            relay._value = target._value
            relay._exception = target._exception
            self.sim._schedule(relay, priority=self.sim.PRIORITY_URGENT)
        else:
            target.callbacks.append(self._resume)
