"""Generator-based simulation processes."""

from repro.sim.events import PENDING, PROCESSED, TRIGGERED, Event, Interrupted


class Process(Event):
    """A coroutine driven by the simulator.

    The body is a generator that yields :class:`Event` objects; the process
    resumes when the yielded event triggers, receiving the event's value at
    the yield point (or its exception raised there). The process itself is
    an event that triggers with the generator's return value, so processes
    can wait on one another.

    Bookkeeping events (bootstrap, relay, interrupt) reuse label strings
    precomputed once per process — they are scheduled on every resume
    from an already-processed event, and per-event f-string formatting
    shows up in profiles (see ``docs/performance.md``).
    """

    __slots__ = ("_generator", "_waiting_on", "_relay_name")

    def __init__(self, sim, generator, name=None):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        self._generator = generator
        self._waiting_on = None
        self._relay_name = self._name + ":relay"
        # Kick off on the next schedule slot at the current time.
        bootstrap = Event(sim, name=self._name + ":start")
        bootstrap.callbacks.append(self._resume)
        bootstrap._state = TRIGGERED
        sim._schedule(bootstrap, priority=sim.PRIORITY_URGENT)

    @property
    def is_alive(self):
        return self._state == PENDING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupted` into the process at its yield point."""
        if self._state != PENDING:
            return
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        wakeup = Event(self.sim, name=self._name + ":interrupt")
        wakeup.callbacks.append(
            lambda ev: self._step(Interrupted(cause), throw=True)
        )
        wakeup._state = TRIGGERED
        self.sim._schedule(wakeup, priority=self.sim.PRIORITY_URGENT)

    # -- internal -------------------------------------------------------

    def _resume(self, event):
        # The callback attached to every event a process waits on; this
        # is the single hottest function in a simulation, so the common
        # send path of _step is merged in rather than called (one frame
        # per event retired). Behaviour is identical to
        # ``self._step(event._value, throw=False)``.
        if self._state != PENDING:
            return
        self._waiting_on = None
        if event._exception is not None:
            self._step(event._exception, throw=True)
            return
        sim = self.sim
        previous, sim._active_process = sim._active_process, self
        try:
            target = self._generator.send(event._value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            sim._active_process = previous
            return
        except Interrupted as exc:
            self.fail(exc)
            sim._active_process = previous
            return
        except BaseException:
            sim._active_process = previous
            raise
        sim._active_process = previous
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; expected an Event"
            )
        if target._state is PROCESSED:
            self._relay(target)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)

    def _step(self, payload, throw):
        sim = self.sim
        previous, sim._active_process = sim._active_process, self
        try:
            if throw:
                target = self._generator.throw(payload)
            else:
                target = self._generator.send(payload)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupted as exc:
            self.fail(exc)
            return
        finally:
            sim._active_process = previous
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; expected an Event"
            )
        self._waiting_on = target
        if target._state is PROCESSED:
            self._relay(target)
        else:
            target.callbacks.append(self._resume)

    def _relay(self, target):
        # Already-processed events resume the process immediately (at
        # the current time) via a fresh bookkeeping event.
        sim = self.sim
        self._waiting_on = target
        relay = Event(sim, name=self._relay_name)
        relay.callbacks.append(self._resume)
        relay._state = TRIGGERED
        relay._value = target._value
        relay._exception = target._exception
        sim._schedule(relay, priority=sim.PRIORITY_URGENT)
