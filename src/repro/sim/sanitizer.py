"""Runtime simulation sanitizer: the engine-side invariant checker.

The :class:`Sanitizer` is run-loop instrumentation — the engine calls
its hooks on every schedule/pop, so it lives with the engine. The
*driver* side (dual-run replay digests, divergence diffing, the CLI)
sits above in :mod:`repro.analysis.sanitize`, which consumes the event
streams recorded here. With ``REPRO_SANITIZE=1`` in the environment
(or ``--sanitize`` on the CLI, or ``Simulator(..., sanitize=True)``)
every simulator instruments its run loop:

- **monotonic event clock** — a popped event may never be earlier than
  the current simulation time, and nothing may be scheduled in the
  past;
- **tiebreak audit** — consecutive events at equal ``(time, priority)``
  are recorded as tie groups: their relative order is decided purely by
  schedule insertion order, which is exactly where nondeterminism
  (hash-ordered iteration, address-derived keys) sneaks into an
  otherwise-seeded run;
- **no negative durations** — a trace span may never close before it
  opened;
- **resource accounting** — per hardware track (``cpu*``, ``gpu``,
  ``cdsp``, ``npu``) spans must be properly nested, merged busy time
  may not exceed elapsed time, and ``busy + idle == elapsed`` is
  reported per track (:func:`audit_accounting`).

Violations raise :class:`SanitizerError` immediately, at the event that
broke the invariant, instead of surfacing later as a mysteriously
different figure.
"""

import hashlib
import re
from dataclasses import dataclass

_EPS = 1e-9

_HARDWARE_TRACK = re.compile(r"^(cpu\d*|gpu\d*|cdsp|npu)$")


class SanitizerError(AssertionError):
    """A simulation invariant was violated."""


@dataclass(frozen=True)
class EventRecord:
    """One popped schedule entry, as hashed into the replay digest."""

    time: float
    priority: int
    sequence: int
    label: str

    def render(self):
        return (
            f"t={self.time!r} prio={self.priority} seq={self.sequence} "
            f"{self.label}"
        )


def _label(event):
    return event.name or type(event).__name__


class EventStream:
    """The ordered record of every event one simulator popped."""

    def __init__(self):
        self.records = []

    def add(self, time, priority, sequence, label):
        self.records.append(EventRecord(time, priority, sequence, label))

    def digest(self):
        """sha256 over the canonical rendering of every record."""
        digest = hashlib.sha256()
        for record in self.records:
            digest.update(
                f"{record.time!r}|{record.priority}|{record.sequence}|"
                f"{record.label}\n".encode("utf-8")
            )
        return digest.hexdigest()


#: The active cross-simulator collector, set by
#: :func:`repro.analysis.sanitize.collecting`; every Sanitizer created
#: while a collector is active registers its event stream with it.
_ACTIVE = {"collector": None}


class Sanitizer:
    """Per-simulator invariant checker and event-stream recorder.

    Attached by the engine when sanitizing is enabled; the engine calls
    :meth:`on_schedule` / :meth:`on_pop`, the trace recorder calls
    :meth:`on_span_close`.
    """

    def __init__(self, sim):
        self.sim = sim
        self.stream = EventStream()
        #: Groups of consecutive events popped at equal (time, priority)
        #: — their order is pure insertion order.
        self.ties = []
        self._tie_open = False
        self._last = None
        collector = _ACTIVE["collector"]
        if collector is not None:
            collector.register(self)

    # -- engine hooks --------------------------------------------------

    def on_schedule(self, time, priority, sequence, event):
        if time < self.sim.now - _EPS:
            raise SanitizerError(
                f"scheduled into the past: {_label(event)!r} at t={time} "
                f"with now={self.sim.now}"
            )

    def on_pop(self, time, priority, sequence, event):
        if time < self.sim.now - _EPS:
            raise SanitizerError(
                f"event clock went backwards: popped t={time} with "
                f"now={self.sim.now}"
            )
        record = EventRecord(time, priority, sequence, _label(event))
        last = self._last
        if (
            last is not None
            and last.time == record.time
            and last.priority == record.priority
        ):
            if self._tie_open:
                self.ties[-1].append(record)
            else:
                self.ties.append([last, record])
                self._tie_open = True
        else:
            self._tie_open = False
        self._last = record
        self.stream.records.append(record)

    # -- trace hooks ---------------------------------------------------

    def on_span_close(self, span):
        if span.end < span.start - _EPS:
            raise SanitizerError(
                f"negative span duration on {span.track!r}: "
                f"{span.label!r} [{span.start}, {span.end})"
            )

    # -- end-of-run audit ----------------------------------------------

    def audit(self):
        """Run end-of-run invariants; returns an accounting report.

        Raises :class:`SanitizerError` on partially-overlapping spans
        or busy time exceeding elapsed time on a hardware track.
        """
        report = {
            "events": len(self.stream.records),
            "ties": len(self.ties),
            "digest": self.stream.digest(),
            "tracks": {},
        }
        if self.sim.trace is not None:
            report["tracks"] = audit_accounting(self.sim.trace, self.sim.now)
        return report


def audit_accounting(trace, elapsed):
    """Per-hardware-track conservation: busy + idle == elapsed.

    For every hardware track (``cpu*``, ``gpu*``, ``cdsp``, ``npu``)
    the closed spans must be properly nested (Chrome complete events
    derive nesting from timestamps, and a serial unit cannot half-
    overlap itself), merged busy time may not exceed the elapsed
    simulation time, and no span may have negative duration. Returns
    ``{track: {"busy_us", "idle_us", "elapsed_us"}}``.
    """
    report = {}
    for track in sorted({span.track for span in trace.spans}):
        if not _HARDWARE_TRACK.match(track):
            continue
        spans = sorted(
            (
                (span.start, span.end, span.label)
                for span in trace.spans
                if span.track == track and span.closed
            ),
            key=lambda entry: (entry[0], -entry[1]),
        )
        busy = 0.0
        cursor = 0.0
        stack = []
        for start, end, label in spans:
            if end < start - _EPS:
                raise SanitizerError(
                    f"negative span duration on {track!r}: {label!r} "
                    f"[{start}, {end})"
                )
            while stack and stack[-1] <= start + _EPS:
                stack.pop()
            if stack and end > stack[-1] + _EPS:
                raise SanitizerError(
                    f"partially overlapping spans on {track!r}: {label!r} "
                    f"[{start}, {end}) crosses an enclosing span ending "
                    f"at {stack[-1]}"
                )
            stack.append(end)
            clipped_end = min(end, elapsed)
            if clipped_end > cursor:
                busy += clipped_end - max(start, cursor)
                cursor = clipped_end
        idle = elapsed - busy
        if idle < -_EPS:
            raise SanitizerError(
                f"busy time exceeds elapsed on {track!r}: busy={busy} "
                f"elapsed={elapsed}"
            )
        report[track] = {
            "busy_us": busy,
            "idle_us": max(idle, 0.0),
            "elapsed_us": elapsed,
        }
    return report
