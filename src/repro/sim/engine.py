"""The simulation engine: clock, schedule, and run loop.

Hot-path notes (see ``docs/performance.md``): the schedule is a binary
heap of ``(time, priority, sequence, event)`` entries; the run loops in
:meth:`Simulator.run` inline the pop-and-dispatch step with local
bindings because they retire tens of thousands of events per simulated
session. Cancellation is *lazy*: :meth:`Simulator.cancel` tombstones
the event and the pop loops skip it, so cancelling never scans the
heap. All of this is observably free — the popped-event stream (and
hence the sanitizer's replay digest) is identical to the naive loop's.
"""

import gc
from heapq import heappop, heappush
import os

from repro.sim.events import PROCESSED, Event, AllOf, AnyOf, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceRecorder

#: Process-local override for sanitizing new simulators; toggled via
#: :func:`set_sanitize_default` (on the ``repro.sim`` surface) by
#: ``repro.analysis.sanitize.collecting`` and the CLI ``--sanitize``
#: flags. The ``REPRO_SANITIZE`` environment variable has the same
#: effect without touching code.
_SANITIZE_DEFAULT = False


def set_sanitize_default(enabled):
    """Make new simulators attach a sanitizer; returns the old value."""
    global _SANITIZE_DEFAULT
    previous = _SANITIZE_DEFAULT
    _SANITIZE_DEFAULT = bool(enabled)
    return previous


def sanitize_enabled():
    """Whether a new Simulator should sanitize by default."""
    if _SANITIZE_DEFAULT:
        return True
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


class Simulator:
    """Deterministic discrete-event simulator.

    The schedule is a heap of ``(time, priority, sequence, event)`` entries.
    The sequence number breaks ties so that events scheduled earlier run
    earlier, which keeps runs bit-for-bit reproducible.

    Parameters
    ----------
    seed:
        Root seed for the named RNG streams available as :attr:`rng`.
    trace:
        When True, a :class:`TraceRecorder` collects spans and counters.
    sanitize:
        When True, attach a :class:`~repro.sim.sanitizer.Sanitizer`
        that checks run-loop invariants and records the event-stream
        replay digest. ``None`` (the default) defers to
        :func:`sanitize_enabled` — the ``REPRO_SANITIZE`` environment
        variable or an active ``--sanitize`` / dual-run scope.
    """

    #: Priority for ordinary events.
    PRIORITY_NORMAL = 1
    #: Priority for "urgent" bookkeeping events (run before normal ones).
    PRIORITY_URGENT = 0

    def __init__(self, seed=0, trace=False, sanitize=None):
        self.now = 0.0
        self.rng = RngStreams(seed)
        self.trace = TraceRecorder(self) if trace else None
        self._queue = []
        self._sequence = 0
        self._active_process = None
        self._id_counters = {}
        #: Events popped and dispatched so far — the denominator of the
        #: events/sec throughput metric in ``BENCH_engine_throughput``.
        self.events_processed = 0
        self.sanitizer = None
        if sanitize is None:
            sanitize = sanitize_enabled()
        if sanitize:
            from repro.sim.sanitizer import Sanitizer

            self.sanitizer = Sanitizer(self)

    def next_id(self, name="id"):
        """Next value of an engine-scoped deterministic id sequence.

        Replaces module- or class-level ``itertools.count`` sources:
        those survive across simulations in one process, so the ids a
        run sees depend on what ran before it. Engine-scoped counters
        reset with the simulator, keeping replays bit-identical.
        """
        value = self._id_counters.get(name, 0)
        self._id_counters[name] = value + 1
        return value

    # -- scheduling ---------------------------------------------------

    def _schedule(self, event, delay=0.0, priority=PRIORITY_NORMAL):
        time = self.now + delay
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(time, priority, self._sequence, event)
        heappush(self._queue, (time, priority, self._sequence, event))
        self._sequence += 1

    def schedule_callback(self, delay, callback, name=None):
        """Run ``callback(value)`` after ``delay`` microseconds."""
        event = Timeout(self, delay, name=name)
        event.callbacks.append(callback)
        return event

    def cancel(self, event):
        """Lazily cancel a scheduled-but-unprocessed event.

        The schedule entry is tombstoned, not removed: the run loops
        discard it when it surfaces, so cancellation is O(1) instead of
        an O(n) heap scan. A cancelled event never runs its callbacks,
        never advances the clock, and never reaches the sanitizer's
        replay stream. Processed events cannot be cancelled.
        """
        if event._state is PROCESSED:
            raise RuntimeError(f"cannot cancel processed event {event!r}")
        event._canceled = True
        return event

    # -- event factories ----------------------------------------------

    def event(self, name=None):
        """Create an untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay, value=None, name=None):
        """Create an event that fires after ``delay`` microseconds."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator, name=None):
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events):
        """Event that succeeds when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events):
        """Event that succeeds when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- run loop -----------------------------------------------------

    def step(self):
        """Process a single event. Returns False when the queue is empty."""
        queue = self._queue
        while queue:
            time, priority, sequence, event = heappop(queue)
            if event._canceled:
                continue
            if time < self.now:
                raise RuntimeError("schedule went backwards in time")
            if self.sanitizer is not None:
                self.sanitizer.on_pop(time, priority, sequence, event)
            self.now = time
            self.events_processed += 1
            callbacks = event.callbacks
            # Processed events drop their callback list entirely (an
            # accidental late append raises instead of silently never
            # running) — and the run loops avoid allocating a fresh
            # list per retired event.
            event.callbacks = None
            event._state = PROCESSED
            for callback in callbacks:
                callback(event)
            return True
        return False

    def run(self, until=None):
        """Run until the schedule drains, a time, or an event.

        ``until`` may be ``None`` (drain the queue), a number (absolute
        simulation time in microseconds), or an :class:`Event` (stop once
        it has been processed and return its value).
        """
        if until is None:
            # Inlined drain loop: identical semantics to `while
            # self.step()`, minus a method call and attribute reloads
            # per event. Cyclic GC is paused for the duration — the
            # collector otherwise walks the full object graph every few
            # thousand event allocations, and nothing in the loop relies
            # on collection. Purely a wall-clock effect; the event
            # stream is untouched.
            queue = self._queue
            sanitizer = self.sanitizer
            count = 0
            gc_was_enabled = gc.isenabled()
            if gc_was_enabled:
                gc.disable()
            try:
                while queue:
                    time, priority, sequence, event = heappop(queue)
                    if event._canceled:
                        continue
                    if time < self.now:
                        raise RuntimeError("schedule went backwards in time")
                    if sanitizer is not None:
                        sanitizer.on_pop(time, priority, sequence, event)
                    self.now = time
                    count += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._state = PROCESSED
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
            finally:
                if gc_was_enabled:
                    gc.enable()
            self.events_processed += count
            return None
        if isinstance(until, Event):
            return self._run_until_event(until)
        deadline = float(until)
        if deadline < self.now:
            raise ValueError(f"until={deadline} is in the past (now={self.now})")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self.now = deadline
        return None

    def _run_until_event(self, event):
        stopped = []
        event.callbacks.append(stopped.append)
        queue = self._queue
        sanitizer = self.sanitizer  # fixed at Simulator construction
        count = 0
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while not stopped:
                # Inlined pop-and-dispatch (see run()).
                if not queue:
                    raise RuntimeError(
                        f"schedule drained before {event!r} was triggered"
                    )
                time, priority, sequence, popped = heappop(queue)
                if popped._canceled:
                    continue
                if time < self.now:
                    raise RuntimeError("schedule went backwards in time")
                if sanitizer is not None:
                    sanitizer.on_pop(time, priority, sequence, popped)
                self.now = time
                count += 1
                callbacks = popped.callbacks
                popped.callbacks = None
                popped._state = PROCESSED
                if len(callbacks) == 1:
                    callbacks[0](popped)
                else:
                    for callback in callbacks:
                        callback(popped)
        finally:
            if gc_was_enabled:
                gc.enable()
            self.events_processed += count
        if event._exception is not None:
            raise event._exception
        return event._value

    def peek(self):
        """Time of the next scheduled event, or infinity when idle."""
        queue = self._queue
        while queue:
            if queue[0][3]._canceled:
                heappop(queue)
                continue
            return queue[0][0]
        return float("inf")
