"""Span-context probes: one-line instrumentation for simulation code.

Simulation hot paths are generators; a ``with`` block inside a
generator body opens a span at the current simulated time, lets any
number of ``yield``\\ s advance the clock inside it, and closes the span
when the block exits (including via an exception, so failed FastRPC
calls still leave a closed span behind):

.. code-block:: python

    from repro.sim.probes import probe

    def invoke(self, ...):
        with probe(self.kernel, "fastrpc", "invoke") as span:
            if span is not None:
                span.meta["pid"] = self.process_id
            yield Work(...)          # time passes inside the span
            yield from self.do_rpc()

Probes resolve their :class:`~repro.sim.trace.TraceRecorder` from
whatever owner is at hand — a recorder, a ``Simulator``, a ``Kernel``,
or anything with a ``.sim`` — and compile to a shared no-op context
manager when tracing is disabled, so instrumented code pays only an
attribute lookup on untraced runs and never perturbs simulated time
(the *probe effect* the paper quantifies in §III-D is modelled
separately by :mod:`repro.core.probe`; these probes are free).

Disabled probes are *allocation-free* (asserted by
``tests/observability/test_probe_overhead.py``): span metadata travels
as an optional positional dict, never ``**kwargs`` — a ``**meta``
signature would allocate a fresh dict on every call even when tracing
is off. Call sites with per-call metadata enter the span first and
write ``span.meta`` only when a live span came back, as above; sites
whose metadata is fixed for the life of a session pass one prebuilt
dict (``begin`` copies it into the span, so spans never alias it).
"""


def _recorder(owner):
    """TraceRecorder for ``owner`` (recorder/Simulator/Kernel), or None."""
    if owner is None:
        return None
    if hasattr(owner, "begin"):  # already a TraceRecorder
        return owner
    trace = getattr(owner, "trace", None)
    if trace is not None and hasattr(trace, "begin"):
        return trace
    sim = getattr(owner, "sim", None)
    if sim is not None:
        return sim.trace
    return None


class _NullProbe:
    """Shared do-nothing context manager for untraced runs."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL = _NullProbe()


class _Probe:
    """Context manager that brackets a span on a track."""

    __slots__ = ("_trace", "_track", "_label", "_meta", "span")

    def __init__(self, trace, track, label, meta):
        self._trace = trace
        self._track = track
        self._label = label
        self._meta = meta
        self.span = None

    def __enter__(self):
        meta = self._meta
        if meta is None:
            self.span = self._trace.begin(self._track, self._label)
        else:
            # Re-packed by begin's **meta, so the caller's dict (often a
            # per-session constant) is never aliased by the span.
            self.span = self._trace.begin(self._track, self._label, **meta)
        return self.span

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.span.meta["error"] = exc_type.__name__
        self._trace.end(self.span)
        return False


def probe(owner, track, label, meta=None):
    """Context manager recording a span on ``track`` while it is open.

    ``owner`` may be a :class:`~repro.sim.trace.TraceRecorder`, a
    ``Simulator``, a ``Kernel``, or ``None``; when tracing is off a
    shared null context is returned, so call sites need no guard and
    the call allocates nothing. ``meta`` is an optional dict copied
    into the span; for metadata that varies per call, prefer entering
    the span and writing ``span.meta`` when the span is not None.
    """
    trace = _recorder(owner)
    if trace is None:
        return _NULL
    return _Probe(trace, track, label, meta)


def instant(owner, label, meta=None):
    """Record an instantaneous event (``ph: "i"`` in the export)."""
    trace = _recorder(owner)
    if trace is not None:
        if meta is None:
            trace.mark(label)
        else:
            trace.mark(label, **meta)


def counter(owner, name, value=1):
    """Record a counter sample (``ph: "C"`` in the export)."""
    trace = _recorder(owner)
    if trace is not None:
        trace.count(name, value)
