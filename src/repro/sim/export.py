"""Trace export in Chrome trace-event format.

A :class:`~repro.sim.trace.TraceRecorder` can be dumped as the JSON the
Chrome tracing UI (``chrome://tracing`` / Perfetto) understands, giving
the reproduction the equivalent of the Snapdragon Profiler view the
paper screenshots in Fig. 6: per-core swimlanes, DSP activity, counter
tracks, and instant markers.
"""

import json


def _track_ids(trace):
    """Stable (pid, tid) assignment: one tid per track, sorted."""
    tracks = sorted({span.track for span in trace.spans})
    return {track: index + 1 for index, track in enumerate(tracks)}


def to_chrome_trace(trace, process_name="repro-soc"):
    """Convert a TraceRecorder to a Chrome trace-event dict."""
    tids = _track_ids(trace)
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in trace.spans:
        if not span.closed:
            continue
        events.append(
            {
                "name": span.label,
                "cat": span.track,
                "ph": "X",  # complete event
                "pid": 1,
                "tid": tids[span.track],
                "ts": span.start,
                "dur": span.duration,
                "args": dict(span.meta),
            }
        )
    for name, samples in trace.counters.items():
        for timestamp, value in samples:
            events.append(
                {
                    "name": name,
                    "ph": "C",  # counter
                    "pid": 1,
                    "ts": timestamp,
                    "args": {"value": value},
                }
            )
    for timestamp, label, meta in trace.marks:
        events.append(
            {
                "name": label,
                "ph": "i",  # instant
                "s": "g",
                "pid": 1,
                "ts": timestamp,
                "args": dict(meta),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace, path, process_name="repro-soc"):
    """Write the trace to ``path`` as JSON; returns the event count."""
    payload = to_chrome_trace(trace, process_name=process_name)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(payload["traceEvents"])
