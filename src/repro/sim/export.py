"""Backwards-compatible alias for :mod:`repro.observability.chrome_trace`.

The Chrome trace-event exporter grew into the observability layer
(filtering, deterministic track ordering, sorted timestamps, the
self-time summary next door); import from
:mod:`repro.observability` in new code.
"""

from repro.observability.chrome_trace import (  # noqa: F401
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = ["to_chrome_trace", "write_chrome_trace"]
