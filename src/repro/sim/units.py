"""Unit helpers: explicit, greppable conversions.

The simulator's clock counts **microseconds**; the paper reports
latencies in milliseconds, per-element cost rates are calibrated in
nanoseconds, and the energy model meters microjoules. These helpers
keep every conversion explicit and named for its direction instead of
scattering ``* 1000`` / ``/ 1000.0`` literals through the code — a
bare 1000 does not say which way it converts, and the semcheck
``magic-conversion`` rule (``python -m repro semcheck``) blocks it
outside this module.

Helpers are written so each replaces its literal form with the *same*
floating-point operation (``to_ms(x)`` is exactly ``x / 1000.0``), so
swapping a call site never shifts a figure by an ulp.
"""

US = 1.0
MS = 1_000.0
SECOND = 1_000_000.0

#: Nanoseconds per microsecond (divide by it to go ns -> us).
NS_PER_US = 1_000.0

#: Microjoules per millijoule (divide by it to go uJ -> mJ).
UJ_PER_MJ = 1_000.0

#: Milliseconds per second (for frame-time -> FPS math).
MS_PER_SECOND = 1_000.0

#: A rate in giga-ops *per second* equals this many ops *per
#: microsecond* (GFLOP/s x 1e9 ops / 1e6 us). Multiply a GFLOP/s or
#: GB/s rate by it to get ops or bytes per simulator tick.
GIGA_PER_S_TO_PER_US = 1_000.0


def ms(value):
    """Convert milliseconds to simulator microseconds."""
    return value * MS


def us(value):
    """Identity helper so call sites can be explicit about units."""
    return value * US


def ns(value):
    """Convert nanoseconds to simulator microseconds."""
    return value / NS_PER_US


def seconds(value):
    """Convert seconds to simulator microseconds."""
    return value * SECOND


def to_ms(value_us):
    """Convert simulator microseconds to milliseconds for reporting."""
    return value_us / MS


def to_us(value_us):
    """Identity helper: the value is already in simulator microseconds."""
    return value_us * US


def to_ns(value_us):
    """Convert simulator microseconds to nanoseconds."""
    return value_us * NS_PER_US


def to_seconds(value_us):
    """Convert simulator microseconds to seconds for reporting."""
    return value_us / SECOND


def to_mj(value_uj):
    """Convert metered microjoules to millijoules for reporting."""
    return value_uj / UJ_PER_MJ


def fps_from_ms(frame_ms):
    """Frames per second for a frame time in milliseconds."""
    return MS_PER_SECOND / frame_ms


def uj_from_w_us(power_w, duration_us):
    """Energy in microjoules: watts times busy microseconds.

    1 W = 1 J/s = 1 uJ/us, so the product is already microjoules —
    this helper exists to make that dimension change explicit.
    """
    return power_w * duration_us


def per_us_rate(rate_giga_per_s):
    """A giga-per-second rate as plain units per microsecond.

    GFLOP/s and GB/s rates both scale by 1e9/1e6: dividing flops (or
    bytes) by the result yields simulator microseconds.
    """
    return rate_giga_per_s * GIGA_PER_S_TO_PER_US
