"""Time-unit helpers.

The simulator's clock counts **microseconds**. The paper reports latencies
in milliseconds; these helpers keep conversions explicit and greppable
instead of scattering ``* 1000`` literals through the code.
"""

US = 1.0
MS = 1_000.0
SECOND = 1_000_000.0


def ms(value):
    """Convert milliseconds to simulator microseconds."""
    return value * MS


def us(value):
    """Identity helper so call sites can be explicit about units."""
    return value * US


def seconds(value):
    """Convert seconds to simulator microseconds."""
    return value * SECOND


def to_ms(value_us):
    """Convert simulator microseconds to milliseconds for reporting."""
    return value_us / MS


def to_seconds(value_us):
    """Convert simulator microseconds to seconds for reporting."""
    return value_us / SECOND
