"""Execution tracing: spans, counters, and utilization queries.

The Snapdragon Profiler screenshots in the paper's Fig. 6 show per-core
utilization, cDSP activity, and context switches over time. The
:class:`TraceRecorder` collects the equivalent raw data from the simulator
so that :mod:`repro.experiments.fig6` can regenerate that profile.
"""

import math
from dataclasses import dataclass, field


@dataclass
class Span:
    """A half-open interval ``[start, end)`` of activity on a track."""

    track: str
    label: str
    start: float
    end: float = float("nan")
    meta: dict = field(default_factory=dict)

    @property
    def duration(self):
        return self.end - self.start

    @property
    def closed(self):
        return not math.isnan(self.end)


class TraceRecorder:
    """Collects spans and counter events during a simulation run.

    Tracks are free-form strings (``"cpu4"``, ``"cdsp"``, ``"axi"``).
    Counters record instantaneous samples ``(time, value)`` per name.
    """

    def __init__(self, sim):
        self.sim = sim
        self.spans = []
        self.counters = {}
        self.marks = []
        self._open = {}

    # -- spans ----------------------------------------------------------

    def begin(self, track, label, **meta):
        """Open a span on ``track``; returns a handle for :meth:`end`."""
        span = Span(track=track, label=label, start=self.sim.now, meta=meta)
        self.spans.append(span)
        self._open.setdefault(track, []).append(span)
        return span

    def end(self, span):
        """Close a span opened with :meth:`begin`.

        The handle is popped from the track's open stack by *identity*,
        scanning from the innermost end — ``list.remove`` would match
        the first value-equal span, which silently closes the wrong
        handle when same-track spans nest with identical fields (e.g.
        two zero-width retries of the same label).
        """
        span.end = self.sim.now
        sanitizer = getattr(self.sim, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.on_span_close(span)
        stack = self._open.get(span.track, [])
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is span:
                del stack[index]
                break
        return span

    def open_spans(self, track):
        """Spans currently open on a track, outermost first."""
        return list(self._open.get(track, []))

    def record(self, track, label, start, end, **meta):
        """Record an already-closed span."""
        span = Span(track=track, label=label, start=start, end=end, meta=meta)
        sanitizer = getattr(self.sim, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.on_span_close(span)
        self.spans.append(span)
        return span

    # -- counters and marks ----------------------------------------------

    def count(self, name, value=1):
        """Record a counter sample at the current time."""
        self.counters.setdefault(name, []).append((self.sim.now, value))

    def mark(self, label, **meta):
        """Record an instantaneous point event."""
        self.marks.append((self.sim.now, label, meta))

    # -- queries ----------------------------------------------------------

    def spans_on(self, track):
        return [span for span in self.spans if span.track == track]

    def utilization(self, track, start=None, end=None):
        """Fraction of ``[start, end)`` covered by closed spans on a track.

        Overlapping spans are merged so utilization never exceeds 1.0.
        """
        lo = 0.0 if start is None else start
        hi = self.sim.now if end is None else end
        if hi <= lo:
            return 0.0
        intervals = sorted(
            (max(span.start, lo), min(span.end, hi))
            for span in self.spans_on(track)
            if span.closed and span.end > lo and span.start < hi
        )
        busy = 0.0
        cursor = lo
        for span_start, span_end in intervals:
            if span_end <= cursor:
                continue
            busy += span_end - max(span_start, cursor)
            cursor = max(cursor, span_end)
        return busy / (hi - lo)

    def counter_total(self, name):
        """Sum of all samples for a counter (e.g. total context switches)."""
        return sum(value for _time, value in self.counters.get(name, []))

    def timeline(self, track, bucket_us, start=0.0, end=None):
        """Per-bucket utilization list — the raw series behind Fig. 6 rows."""
        hi = self.sim.now if end is None else end
        buckets = []
        cursor = start
        while cursor < hi:
            buckets.append(
                self.utilization(track, cursor, min(cursor + bucket_us, hi))
            )
            cursor += bucket_us
        return buckets
