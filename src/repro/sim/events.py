"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence that processes may wait on.
Events succeed with a value or fail with an exception; callbacks attached
to an event run when the simulator pops it off the schedule.
"""

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"


class Interrupted(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        Owning :class:`~repro.sim.engine.Simulator`.
    name:
        Optional label used in ``repr`` and traces.
    """

    def __init__(self, sim, name=None):
        self.sim = sim
        self.name = name
        self.callbacks = []
        self._state = PENDING
        self._value = None
        self._exception = None

    @property
    def triggered(self):
        return self._state != PENDING

    @property
    def processed(self):
        return self._state == PROCESSED

    @property
    def ok(self):
        """True when the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self):
        if not self.triggered:
            raise RuntimeError(f"{self!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value=None):
        """Trigger the event with ``value``; schedules callbacks at now."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._state = TRIGGERED
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception):
        """Trigger the event with an exception to raise in waiters."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._state = TRIGGERED
        self._exception = exception
        self.sim._schedule(self)
        return self

    def _mark_processed(self):
        self._state = PROCESSED

    def __repr__(self):
        label = self.name or self.__class__.__name__
        return f"<Event {label} state={self._state}>"


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    def __init__(self, sim, delay, value=None, name=None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=name or f"timeout({delay})")
        self.delay = delay
        self._state = TRIGGERED
        self._value = value
        sim._schedule(self, delay=delay)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    def __init__(self, sim, events, name):
        super().__init__(sim, name=name)
        self.events = list(events)
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _collect(self):
        return {
            index: event._value
            for index, event in enumerate(self.events)
            if event.processed and event._exception is None
        }

    def _on_child(self, event):
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every child event has succeeded."""

    def __init__(self, sim, events, name=None):
        super().__init__(sim, events, name or "all_of")

    def _on_child(self, event):
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds as soon as one child event succeeds."""

    def __init__(self, sim, events, name=None):
        super().__init__(sim, events, name or "any_of")

    def _on_child(self, event):
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed(self._collect())
