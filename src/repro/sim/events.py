"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence that processes may wait on.
Events succeed with a value or fail with an exception; callbacks attached
to an event run when the simulator pops it off the schedule.

Hot-path notes (see ``docs/performance.md``): events are the single most
allocated object in a simulation — every timeslice, sleep, and wakeup is
one. They use ``__slots__``, and default labels (``timeout(3000.0)``)
are rendered *lazily* through the :attr:`Event.name` property so that an
untraced, unsanitized run never pays for a string it never reads. The
rendered text is byte-identical to the eager form, which the replay
digest (:mod:`repro.sim.sanitizer`) depends on.
"""

from heapq import heappush

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"


class Interrupted(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        Owning :class:`~repro.sim.engine.Simulator`.
    name:
        Optional label used in ``repr``, traces, and replay digests.
        Subclasses with a computable default render it lazily via
        :meth:`_default_name`.
    """

    __slots__ = (
        "sim", "callbacks", "_name", "_state", "_value", "_exception",
        "_canceled",
    )

    def __init__(self, sim, name=None):
        self.sim = sim
        self._name = name
        self.callbacks = []
        self._state = PENDING
        self._value = None
        self._exception = None
        self._canceled = False

    @property
    def name(self):
        """The event's label; defaults are rendered on first read."""
        if self._name is None:
            return self._default_name()
        return self._name

    def _default_name(self):
        """Lazy default label; ``None`` keeps the event anonymous."""
        return None

    @property
    def triggered(self):
        return self._state != PENDING

    @property
    def processed(self):
        return self._state == PROCESSED

    @property
    def ok(self):
        """True when the event succeeded (only meaningful once triggered)."""
        return self._state != PENDING and self._exception is None

    @property
    def value(self):
        if self._state == PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value=None):
        """Trigger the event with ``value``; schedules callbacks at now."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._state = TRIGGERED
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception):
        """Trigger the event with an exception to raise in waiters."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._state = TRIGGERED
        self._exception = exception
        self.sim._schedule(self)
        return self

    def _mark_processed(self):
        self._state = PROCESSED

    def __repr__(self):
        label = self.name or self.__class__.__name__
        return f"<Event {label} state={self._state}>"


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay, value=None, name=None):
        # Flattened Event.__init__ (no super() call): timeouts are the
        # most-constructed event type — one per timeslice, sleep, and
        # context switch — and the extra frame is measurable.
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self._name = name
        self.callbacks = []
        self._state = TRIGGERED
        self._value = value
        self._exception = None
        self._canceled = False
        self.delay = delay
        # Inlined sim._schedule(self, delay=delay) at PRIORITY_NORMAL
        # (1) — the only other frame left on the timeout path.
        time = sim.now + delay
        sequence = sim._sequence
        if sim.sanitizer is not None:
            sim.sanitizer.on_schedule(time, 1, sequence, self)
        heappush(sim._queue, (time, 1, sequence, self))
        sim._sequence = sequence + 1

    def _default_name(self):
        # Rendered only when a sanitizer, trace, or repr asks — a plain
        # run schedules tens of thousands of these without formatting.
        return f"timeout({self.delay})"


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_done")

    def __init__(self, sim, events, name):
        super().__init__(sim, name=name)
        self.events = list(events)
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event._state == PROCESSED:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _collect(self):
        return {
            index: event._value
            for index, event in enumerate(self.events)
            if event._state == PROCESSED and event._exception is None
        }

    def _on_child(self, event):
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every child event has succeeded."""

    __slots__ = ()

    def __init__(self, sim, events, name=None):
        super().__init__(sim, events, name or "all_of")

    def _on_child(self, event):
        if self._state != PENDING:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds as soon as one child event succeeds."""

    __slots__ = ()

    def __init__(self, sim, events, name=None):
        super().__init__(sim, events, name or "any_of")

    def _on_child(self, event):
        if self._state != PENDING:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed(self._collect())
