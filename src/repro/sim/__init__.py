"""Discrete-event simulation kernel.

A compact, deterministic, generator-based simulator in the style of simpy.
Every timed behaviour in the reproduction (CPU scheduling, DSP offload,
camera frames, thermal updates) is expressed as a :class:`Process` whose
body is a Python generator yielding :class:`Event` objects.

Time is a float in **microseconds**; helpers in :mod:`repro.sim.units`
convert to and from milliseconds and seconds.
"""

from repro.sim.engine import (
    Simulator,
    sanitize_enabled,
    set_sanitize_default,
)
from repro.sim.events import Event, Timeout, AllOf, AnyOf, Interrupted
from repro.sim.process import Process
from repro.sim.resources import Resource, PriorityResource, Store
from repro.sim.rng import RngStreams
from repro.sim.sanitizer import Sanitizer, SanitizerError
from repro.sim.trace import Span, TraceRecorder
from repro.sim import units

__all__ = [
    "Simulator",
    "Sanitizer",
    "SanitizerError",
    "sanitize_enabled",
    "set_sanitize_default",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupted",
    "Process",
    "Resource",
    "PriorityResource",
    "Store",
    "RngStreams",
    "Span",
    "TraceRecorder",
    "units",
]
