"""The TFLite benchmark utility, CLI and Android-app flavours.

The CLI benchmark generates random tensors as input — its "data
capture" — which the paper shows is a poor proxy for real capture,
complete with a standard-library quirk: random reals are cheap under
libc++ and expensive under libstdc++, integers the other way around.
"""

from repro.android import AppProcess
from repro.android import params as os_params
from repro.android.interference import InterferenceProfile, start_interference
from repro.android.thread import Work
from repro.apps.sessions import make_session
from repro.core.measurement import PipelineRun, RunCollection
from repro.models import load_model, model_card
from repro.sim.probes import probe
from repro.processing import build_postprocess_plan, build_preprocessor
from repro.processing.costs import random_input_cost_us


class BenchmarkCli:
    """``benchmark_model`` run over adb: no UI, no app process."""

    context = "benchmark"
    name = "benchmark_cli"
    managed_runtime = False
    ui_render = False

    def __init__(self, kernel, model_key, dtype="fp32", target="cpu",
                 threads=4, stdlib="libc++", interference=None,
                 preference=None, faults=None):
        self.kernel = kernel
        self.model_key = model_key
        self.card = model_card(model_key)
        self.model = load_model(model_key, dtype)
        self.target = target
        self.stdlib = stdlib
        self.session = make_session(
            kernel, self.model, target=target, threads=threads,
            preference=preference, faults=faults,
        )
        self.pre_plan = build_preprocessor(
            self.card, self.model, context=self.context
        )
        self.post_plan = build_postprocess_plan(
            self.card, self.model, context=self.context
        )
        self.records = RunCollection(name=f"{self.name}:{model_key}:{dtype}")
        if interference is None:
            interference = InterferenceProfile.benchmark()
        self._interference = interference
        self._interference_started = False
        self.process = self._make_process()

    def _make_process(self):
        return AppProcess(
            self.kernel, self.name, managed_runtime=self.managed_runtime
        )

    # -- stage generators --------------------------------------------------

    def _capture(self):
        """Random input generation stands in for data capture."""
        cost = random_input_cost_us(
            self.model.input_spec.numel, self.model.dtype, self.stdlib
        )
        yield Work(cost, label="bench:randgen")

    def _other(self):
        """No UI in the CLI benchmark."""
        return
        yield  # pragma: no cover - makes this a generator

    # -- the measured loop ---------------------------------------------------

    def body(self, runs):
        """Thread body: prepare once, then ``runs`` measured iterations."""
        if not self._interference_started:
            start_interference(self.kernel, self._interference)
            self._interference_started = True
        kernel = self.kernel
        with probe(kernel, "pipeline", "prepare",
                   {"model": self.model_key}):
            yield from self.session.prepare()
        for index in range(runs):
            start = kernel.now
            with probe(kernel, "pipeline", "data_capture") as span:
                if span is not None:
                    span.meta["iteration"] = index
                yield from self._capture()
            t_capture = kernel.now
            with probe(kernel, "pipeline", "pre_processing") as span:
                if span is not None:
                    span.meta["iteration"] = index
                if self.pre_plan.cost_us > 0:
                    yield Work(self.pre_plan.cost_us, label="bench:pre")
            t_pre = kernel.now
            with probe(kernel, "pipeline", "inference") as span:
                if span is not None:
                    span.meta["iteration"] = index
                yield from self.session.invoke()
            t_infer = kernel.now
            with probe(kernel, "pipeline", "post_processing") as span:
                if span is not None:
                    span.meta["iteration"] = index
                if self.post_plan.cost_us > 0:
                    yield Work(self.post_plan.cost_us, label="bench:post")
            t_post = kernel.now
            with probe(kernel, "pipeline", "other") as span:
                if span is not None:
                    span.meta["iteration"] = index
                yield from self._other()
            t_end = kernel.now
            self.records.add(
                PipelineRun(
                    capture_us=t_capture - start,
                    pre_us=t_pre - t_capture,
                    inference_us=t_infer - t_pre,
                    post_us=t_post - t_infer,
                    other_us=t_end - t_post,
                    meta={"iteration": index, "target": self.target},
                )
            )
        return self.records

    def execute(self, runs=10, thread_name=None):
        """Spawn the loop and run the simulation until it finishes."""
        thread = self.kernel.spawn(
            self.body(runs), name=thread_name or f"{self.name}:{self.model_key}",
            process=self.process,
        )
        self.kernel.sim.run(until=thread.done)
        return self.records


class BenchmarkApp(BenchmarkCli):
    """The TFLite Android benchmark app: same loop, app clothing.

    Runs inside a managed (ART) process with the normal daemon load and
    refreshes its UI after each iteration — closer to an app than the
    CLI, yet still masking data capture and pre-processing (paper
    Fig. 3).
    """

    name = "benchmark_app"
    managed_runtime = True
    ui_render = True

    def __init__(self, kernel, model_key, dtype="fp32", target="cpu",
                 threads=4, stdlib="libc++", interference=None,
                 preference=None, faults=None):
        if interference is None:
            interference = InterferenceProfile.app(intensity=0.6)
        super().__init__(
            kernel, model_key, dtype=dtype, target=target, threads=threads,
            stdlib=stdlib, interference=interference, preference=preference,
            faults=faults,
        )

    def _other(self):
        yield Work(os_params.UI_RENDER_US * 0.4, label="benchapp:ui")
