"""A real Android ML application (the TFLite example-app pipeline).

Per frame: wait for the camera, convert the bitmap, pre-process in
managed code, invoke the model, post-process, render. Runs in an ART
process (GC pauses) alongside the standard daemon population — the
packaging whose latency profile the paper contrasts against benchmarks
in Figs. 3, 4 and 11.
"""

from repro.android import AppProcess
from repro.android import params as os_params
from repro.android.interference import InterferenceProfile, start_interference
from repro.android.thread import Work
from repro.apps.sessions import make_session
from repro.capture import CameraHal
from repro.core.measurement import PipelineRun, RunCollection
from repro.models import load_model, model_card
from repro.sim.probes import probe
from repro.processing import build_postprocess_plan, build_preprocessor


class AndroidApp:
    """One app = one model + camera + UI, ready to run N frames."""

    context = "app"

    def __init__(self, kernel, model_key, dtype="fp32", target="nnapi",
                 threads=4, source_hw=(480, 640), fps=30.0,
                 interference=None, preference=None, name=None, faults=None):
        self.kernel = kernel
        self.model_key = model_key
        self.card = model_card(model_key)
        self.model = load_model(model_key, dtype)
        self.target = target
        self.name = name or f"app:{model_key}"
        self.session = make_session(
            kernel, self.model, target=target, threads=threads,
            preference=preference, faults=faults,
        )
        self.pre_plan = build_preprocessor(
            self.card, self.model, context="app", source_hw=source_hw
        )
        # Bitmap formatting happens in the camera callback: it is part
        # of the "supporting code around data capture" (§II-A), so its
        # cost is charged to the capture stage, not pre-processing.
        self._capture_conversion_us = sum(
            step.cost_us
            for step in self.pre_plan.steps
            if step.name == "bitmap_convert"
        )
        self._pre_cost_us = self.pre_plan.cost_us - self._capture_conversion_us
        self.post_plan = build_postprocess_plan(
            self.card, self.model, context="app"
        )
        self.is_vision = self.model.task != "language_processing"
        self.camera = (
            CameraHal(kernel, resolution=source_hw, fps=fps)
            if self.is_vision
            else None
        )
        self.records = RunCollection(name=f"app:{model_key}:{dtype}")
        if interference is None:
            interference = InterferenceProfile.app()
        self._interference = interference
        self._started = False
        self.process = AppProcess(kernel, self.name, managed_runtime=True)

    def start(self):
        """Start camera delivery and ambient interference (idempotent)."""
        if self._started:
            return
        if self.camera is not None:
            self.camera.start()
        start_interference(self.kernel, self._interference)
        self._started = True

    # -- stages ----------------------------------------------------------

    def _capture(self):
        """Camera wait + delivery, or text arrival for language tasks."""
        if self.camera is not None:
            frame = yield from self.camera.capture()
            if self._capture_conversion_us > 0:
                yield Work(self._capture_conversion_us, label="app:yuv2rgb")
            return frame
        # Language task: the "capture" is receiving the query string.
        yield Work(os_params.BINDER_CALL_US, label="app:text_input")
        return None

    def _render(self):
        """UI thread work after each result (layout + draw + vsync)."""
        yield Work(os_params.UI_RENDER_US, label="app:render")

    # -- measured loop ------------------------------------------------------

    def body(self, runs):
        self.start()
        kernel = self.kernel
        # Stage spans on the "pipeline" track mirror the PipelineRun
        # boundaries exactly, so the exported trace and the breakdown
        # tables attribute the same microseconds to the same stages.
        with probe(kernel, "pipeline", "prepare",
                   {"model": self.model_key}):
            yield from self.session.prepare()
        for index in range(runs):
            start = kernel.now
            with probe(kernel, "pipeline", "data_capture") as span:
                if span is not None:
                    span.meta["iteration"] = index
                yield from self._capture()
            t_capture = kernel.now
            with probe(kernel, "pipeline", "pre_processing") as span:
                if span is not None:
                    span.meta["iteration"] = index
                yield Work(self._pre_cost_us, label="app:pre")
            t_pre = kernel.now
            with probe(kernel, "pipeline", "inference") as span:
                if span is not None:
                    span.meta["iteration"] = index
                yield from self.session.invoke()
            t_infer = kernel.now
            with probe(kernel, "pipeline", "post_processing") as span:
                if span is not None:
                    span.meta["iteration"] = index
                yield Work(self.post_plan.cost_us, label="app:post")
            t_post = kernel.now
            with probe(kernel, "pipeline", "other") as span:
                if span is not None:
                    span.meta["iteration"] = index
                yield from self._render()
            t_end = kernel.now
            self.records.add(
                PipelineRun(
                    capture_us=t_capture - start,
                    pre_us=t_pre - t_capture,
                    inference_us=t_infer - t_pre,
                    post_us=t_post - t_infer,
                    other_us=t_end - t_post,
                    meta={"iteration": index, "target": self.target},
                )
            )
        return self.records

    def execute(self, runs=10, thread_name=None):
        thread = self.kernel.spawn(
            self.body(runs), name=thread_name or self.name, process=self.process
        )
        self.kernel.sim.run(until=thread.done)
        return self.records
