"""Pipelined app execution — an optimization the paper motivates.

The TFLite example apps run capture -> pre -> infer -> post
sequentially on one thread, so every stage adds to per-frame latency.
The paper's conclusion calls for "jointly accelerating these seemingly
mundane yet important data processing tasks along with ML execution";
the cheapest software version is overlap: a producer thread captures
and pre-processes frame N+1 while a consumer thread runs inference on
frame N. Throughput then tracks the *slowest* stage instead of the sum.

:class:`PipelinedApp` implements that two-stage software pipeline on the
simulated OS, reusing the same camera, plans, and sessions as
:class:`~repro.apps.android_app.AndroidApp`.
"""

from repro.android import AppProcess
from repro.android import params as os_params
from repro.android.interference import InterferenceProfile, start_interference
from repro.android.thread import WaitFor, Work
from repro.apps.sessions import make_session
from repro.capture import CameraHal
from repro.core.measurement import PipelineRun, RunCollection
from repro.models import load_model, model_card
from repro.processing import build_postprocess_plan, build_preprocessor
from repro.sim import Store


class PipelinedApp:
    """Producer/consumer version of the Android app pipeline."""

    context = "app"

    def __init__(self, kernel, model_key, dtype="fp32", target="nnapi",
                 threads=4, source_hw=(480, 640), fps=30.0,
                 interference=None, queue_depth=2):
        self.kernel = kernel
        self.model_key = model_key
        self.card = model_card(model_key)
        self.model = load_model(model_key, dtype)
        self.session = make_session(
            kernel, self.model, target=target, threads=threads
        )
        self.pre_plan = build_preprocessor(
            self.card, self.model, context="app", source_hw=source_hw
        )
        self.post_plan = build_postprocess_plan(
            self.card, self.model, context="app"
        )
        self.camera = CameraHal(kernel, resolution=source_hw, fps=fps)
        self.queue = Store(kernel.sim, name="preprocessed", capacity=queue_depth)
        self.records = RunCollection(name=f"pipelined:{model_key}:{dtype}")
        self.process = AppProcess(kernel, f"pipelined:{model_key}",
                                  managed_runtime=True)
        self._interference = (
            interference if interference is not None
            else InterferenceProfile.app()
        )
        self.producer_thread = None

    def _producer_body(self, frames):
        """Capture + pre-process each frame, push into the stage queue."""
        for _ in range(frames):
            start = self.kernel.now
            frame = yield from self.camera.capture()
            capture_done = self.kernel.now
            yield Work(self.pre_plan.cost_us, label="pipelined:pre")
            self.queue.put(
                {
                    "frame": frame,
                    "enqueued": self.kernel.now,
                    "capture_us": capture_done - start,
                    "pre_us": self.kernel.now - capture_done,
                }
            )

    def _consumer_body(self, frames):
        """Inference + post-processing per queued frame."""
        yield from self.session.prepare()
        for _ in range(frames):
            item = yield WaitFor(self.queue.get())
            infer_start = self.kernel.now
            yield from self.session.invoke()
            infer_done = self.kernel.now
            yield Work(self.post_plan.cost_us, label="pipelined:post")
            yield Work(os_params.UI_RENDER_US, label="pipelined:render")
            done = self.kernel.now
            self.records.add(
                PipelineRun(
                    capture_us=item["capture_us"],
                    pre_us=item["pre_us"],
                    inference_us=infer_done - infer_start,
                    post_us=done - infer_done,
                    # Time the frame waited in the stage queue: pipeline
                    # latency the sequential app does not have.
                    other_us=infer_start - item["enqueued"],
                    meta={"pipelined": True, "completed_at": done},
                )
            )

    def execute(self, frames=20):
        """Run producer and consumer concurrently; returns records.

        Also records achieved throughput in ``records.runs[i].meta``.
        """
        self.camera.start()
        start_interference(self.kernel, self._interference)
        producer = self.process.spawn(
            self._producer_body(frames), "producer"
        )
        consumer = self.process.spawn(
            self._consumer_body(frames), "consumer"
        )
        self.producer_thread = producer
        sim = self.kernel.sim
        sim.run(until=sim.all_of([producer.done, consumer.done]))
        if len(self.records.runs) >= 2:
            # Steady-state throughput: frames completed per second
            # between the first and last completion, which excludes the
            # one-time session preparation.
            first = self.records.runs[0].meta["completed_at"]
            last = self.records.runs[-1].meta["completed_at"]
            throughput_fps = (len(self.records.runs) - 1) / (
                (last - first) / 1e6
            )
            for run in self.records.runs:
                run.meta["throughput_fps"] = throughput_fps
        elif self.records.runs:
            self.records.runs[0].meta["throughput_fps"] = 0.0
        return self.records
