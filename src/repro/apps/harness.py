"""One-call harness: configure, simulate, return run records.

Experiments and examples describe *what* to measure with a
:class:`PipelineConfig`; the harness builds the simulator, SoC, kernel,
packaging, and optional background load, applies the paper's cooldown
protocol, runs it, and hands back the :class:`RunCollection`.
"""

from dataclasses import dataclass, field

from repro.android import Kernel
from repro.apps.android_app import AndroidApp
from repro.apps.background import start_background_inferences
from repro.apps.benchmark_cli import BenchmarkApp, BenchmarkCli
from repro.sim import Simulator
from repro.soc import make_soc

#: Packaging names (paper Fig. 3).
CONTEXTS = ("cli", "bench_app", "app")


@dataclass
class PipelineConfig:
    """Everything needed to reproduce one measured configuration."""

    model_key: str = "mobilenet_v1"
    dtype: str = "fp32"
    context: str = "app"
    target: str = "nnapi"
    threads: int = 4
    runs: int = 20
    soc: str = "sd845"
    seed: int = 0
    stdlib: str = "libc++"
    governor: str = "schedutil"
    preference: str = None
    source_hw: tuple = (480, 640)
    fps: float = 30.0
    trace: bool = False
    #: Die temperature (°C) at session start; ``None`` keeps the SoC's
    #: idle temperature (the paper's cooled-down protocol, §III-D).
    #: Fleet simulation uses this to model devices that start warm.
    ambient_celsius: float = None
    #: Probability each FastRPC call is hit by an injected fault (the
    #: chaos experiment's knob). 0.0 disables injection entirely; the
    #: plan is seeded from ``seed`` so runs stay deterministic.
    fault_rate: float = 0.0
    #: (count, target) of background inference jobs, e.g. (4, "nnapi").
    background: tuple = None
    background_model: str = "mobilenet_v1"
    background_dtype: str = "int8"
    background_threads: int = 1
    #: Extra keyword arguments forwarded to the packaging class.
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.context not in CONTEXTS:
            raise ValueError(
                f"unknown context {self.context!r}; known: {CONTEXTS}"
            )


def config_from_dict(payload):
    """Build a :class:`PipelineConfig` from a plain dict (JSON-friendly).

    Tuple-typed fields accept lists; unknown keys raise so config files
    fail loudly rather than silently ignoring typos.
    """
    import dataclasses

    known = {field.name for field in dataclasses.fields(PipelineConfig)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown config keys: {sorted(unknown)}")
    cleaned = dict(payload)
    for key in ("source_hw", "background"):
        if key in cleaned and cleaned[key] is not None:
            cleaned[key] = tuple(cleaned[key])
    return PipelineConfig(**cleaned)


def config_to_dict(config):
    """Plain-dict form of a config, for JSON round-tripping."""
    import dataclasses

    return dataclasses.asdict(config)


def build_rig(config):
    """(sim, soc, kernel) for a config."""
    sim = Simulator(seed=config.seed, trace=config.trace)
    soc = make_soc(sim, config.soc, governor_mode=config.governor)
    if config.ambient_celsius is not None:
        soc.thermal.temperature = float(config.ambient_celsius)
        soc.thermal._apply_throttle()
    kernel = Kernel(sim, soc, enable_dvfs=(config.governor == "schedutil"))
    return sim, soc, kernel


def build_packaging(kernel, config):
    """Instantiate the packaging object for a config."""
    from repro.faults import FaultPlan

    faults = (
        FaultPlan.sampled(rate=config.fault_rate, seed=config.seed)
        if config.fault_rate
        else None
    )
    common = dict(
        dtype=config.dtype,
        target=config.target,
        threads=config.threads,
        preference=config.preference,
        faults=faults,
        **config.extra,
    )
    if config.context == "cli":
        return BenchmarkCli(
            kernel, config.model_key, stdlib=config.stdlib, **common
        )
    if config.context == "bench_app":
        return BenchmarkApp(
            kernel, config.model_key, stdlib=config.stdlib, **common
        )
    return AndroidApp(
        kernel,
        config.model_key,
        source_hw=config.source_hw,
        fps=config.fps,
        **common,
    )


def run_pipeline(config):
    """Simulate one configuration end to end; returns a RunCollection.

    Follows the paper's measurement protocol: the SoC starts at its idle
    temperature (§III-D) and the warm-up iteration is kept in the record
    set — analyses drop it explicitly where the paper does.
    """
    sim, soc, kernel = build_rig(config)
    packaging = build_packaging(kernel, config)
    if config.background is not None:
        count, bg_target = config.background
        start_background_inferences(
            kernel,
            count,
            target=bg_target,
            model_key=config.background_model,
            dtype=config.background_dtype,
            threads=config.background_threads,
        )
    thread = kernel.spawn(
        packaging.body(config.runs),
        name=f"{config.context}:{config.model_key}",
        process=packaging.process,
    )
    sim.run(until=thread.done)
    records = packaging.records
    records.runs = list(records.runs)  # defensive copy before sim teardown
    return records


def run_pipeline_with_rig(config):
    """Like :func:`run_pipeline` but also returns (sim, soc, kernel, packaging).

    For experiments that need the trace (Fig. 6) or hardware counters.
    """
    sim, soc, kernel = build_rig(config)
    packaging = build_packaging(kernel, config)
    if config.background is not None:
        count, bg_target = config.background
        start_background_inferences(
            kernel,
            count,
            target=bg_target,
            model_key=config.background_model,
            dtype=config.background_dtype,
            threads=config.background_threads,
        )
    thread = kernel.spawn(
        packaging.body(config.runs),
        name=f"{config.context}:{config.model_key}",
        process=packaging.process,
    )
    sim.run(until=thread.done)
    return packaging.records, sim, soc, kernel, packaging
