"""MLPerf-style load generator.

The paper's critique targets industry benchmarks (MLPerf, AI Benchmark)
that "overemphasize ML inference performance". This loadgen implements
the two mobile-relevant MLPerf scenarios so the gap can be quantified
inside one framework:

* **single-stream** — issue the next query as soon as the previous
  completes; report the 90th-percentile latency (the MLPerf metric).
* **offline** — issue all queries at once; report throughput.

Both exercise *inference only* (random inputs, no capture, no app
pipeline), exactly like the benchmarks the paper takes to task, so
comparing their scores against an app's measured latency quantifies the
"missing the forest for the trees" gap.
"""

from dataclasses import dataclass

from repro.android.thread import Work
from repro.apps.sessions import make_session
from repro.models import load_model
from repro.processing.costs import random_input_cost_us
from repro.sim import units

SINGLE_STREAM = "single_stream"
OFFLINE = "offline"


@dataclass(frozen=True)
class LoadgenResult:
    """Scenario score plus the underlying samples."""

    scenario: str
    model_key: str
    dtype: str
    target: str
    query_count: int
    #: MLPerf single-stream metric: 90th-percentile latency (ms).
    p90_latency_ms: float
    mean_latency_ms: float
    #: MLPerf offline metric: queries per second.
    throughput_qps: float


class MlperfLoadgen:
    """Drives an inference session under an MLPerf scenario."""

    def __init__(self, kernel, model_key, dtype="fp32", target="cpu",
                 threads=4):
        self.kernel = kernel
        self.model_key = model_key
        self.dtype = dtype
        self.target = target
        self.model = load_model(model_key, dtype)
        self.session = make_session(
            kernel, self.model, target=target, threads=threads
        )
        self.latencies_us = []

    def _single_stream_body(self, queries):
        yield from self.session.prepare()
        # MLPerf allows untimed warm-up.
        yield from self.session.invoke()
        for _ in range(queries):
            yield Work(
                random_input_cost_us(self.model.input_spec.numel, self.dtype),
                label="loadgen:sample",
            )
            duration = yield from self.session.invoke()
            self.latencies_us.append(duration)

    def _offline_body(self, queries):
        yield from self.session.prepare()
        yield from self.session.invoke()
        start = self.kernel.now
        for _ in range(queries):
            duration = yield from self.session.invoke()
            self.latencies_us.append(duration)
        self._offline_wall_us = self.kernel.now - start

    def run(self, scenario=SINGLE_STREAM, queries=50):
        """Execute the scenario; returns a :class:`LoadgenResult`."""
        if scenario == SINGLE_STREAM:
            body = self._single_stream_body(queries)
        elif scenario == OFFLINE:
            body = self._offline_body(queries)
        else:
            raise ValueError(f"unknown scenario {scenario!r}")
        thread = self.kernel.spawn_on_big(body, name=f"loadgen:{scenario}")
        start = self.kernel.now
        self.kernel.sim.run(until=thread.done)
        wall_us = self.kernel.now - start
        ordered = sorted(self.latencies_us)
        p90 = ordered[min(len(ordered) - 1, int(0.9 * len(ordered)))]
        mean = sum(ordered) / len(ordered)
        return LoadgenResult(
            scenario=scenario,
            model_key=self.model_key,
            dtype=self.dtype,
            target=self.target,
            query_count=len(ordered),
            p90_latency_ms=units.to_ms(p90),
            mean_latency_ms=units.to_ms(mean),
            throughput_qps=len(ordered) / (wall_us / 1e6) if wall_us else 0.0,
        )
