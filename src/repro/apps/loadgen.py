"""MLPerf-style load generator.

The paper's critique targets industry benchmarks (MLPerf, AI Benchmark)
that "overemphasize ML inference performance". This loadgen implements
the four MLPerf scenarios (the mobile taxonomy of Janapa Reddi et al.,
"MLPerf Mobile Inference Benchmark") so the gap can be quantified
inside one framework:

* **single-stream** — issue the next query as soon as the previous
  completes; report the 90th-percentile latency (the MLPerf metric).
* **multi-stream** — issue a burst of ``streams`` samples per frame
  interval (a multi-camera pipeline); report the per-query p90.
* **offline** — issue all queries at once; report throughput.
* **server** — open-loop Poisson arrivals the device cannot pace
  (:mod:`repro.apps.arrivals`); report goodput — queries per second
  completing within the latency bound — alongside raw throughput.

All four exercise *inference only* (random inputs, no capture, no app
pipeline), exactly like the benchmarks the paper takes to task, so
comparing their scores against an app's measured latency quantifies the
"missing the forest for the trees" gap. The ``server`` scenario is the
bridge to :mod:`repro.service`, which runs the same open-loop contract
over a whole backend fleet.
"""

import math
from dataclasses import dataclass

from repro.android.thread import Sleep, Work
from repro.apps.sessions import make_session
from repro.core.measurement import percentile
from repro.models import load_model
from repro.processing.costs import random_input_cost_us
from repro.sim import units

SINGLE_STREAM = "single_stream"
MULTI_STREAM = "multi_stream"
OFFLINE = "offline"
SERVER = "server"

SCENARIOS = (SINGLE_STREAM, MULTI_STREAM, OFFLINE, SERVER)

#: Multi-stream frame interval (MLPerf mobile uses 50 ms / 20 FPS).
DEFAULT_FRAME_INTERVAL_MS = 50.0


@dataclass(frozen=True)
class LoadgenResult:
    """Scenario score plus the underlying samples."""

    scenario: str
    model_key: str
    dtype: str
    target: str
    query_count: int
    #: MLPerf single-stream metric: 90th-percentile latency (ms).
    p90_latency_ms: float
    mean_latency_ms: float
    #: MLPerf offline metric: queries per second.
    throughput_qps: float
    #: Server scenario: the latency bound queries must meet (ms);
    #: ``None`` outside the server scenario or when unbounded.
    slo_ms: float = None
    #: Server scenario: queries per second that met the bound.
    goodput_qps: float = 0.0
    #: Server scenario: fraction of queries that missed the bound.
    slo_miss_rate: float = 0.0


class MlperfLoadgen:
    """Drives an inference session under an MLPerf scenario."""

    def __init__(self, kernel, model_key, dtype="fp32", target="cpu",
                 threads=4):
        self.kernel = kernel
        self.model_key = model_key
        self.dtype = dtype
        self.target = target
        self.model = load_model(model_key, dtype)
        self.session = make_session(
            kernel, self.model, target=target, threads=threads
        )
        self.latencies_us = []
        self._timed_wall_us = None

    def _sample_work(self):
        return Work(
            random_input_cost_us(self.model.input_spec.numel, self.dtype),
            label="loadgen:sample",
        )

    def _single_stream_body(self, queries):
        yield from self.session.prepare()
        # MLPerf allows untimed warm-up.
        yield from self.session.invoke()
        for _ in range(queries):
            yield self._sample_work()
            duration = yield from self.session.invoke()
            self.latencies_us.append(duration)

    def _multi_stream_body(self, queries, streams, interval_us):
        yield from self.session.prepare()
        yield from self.session.invoke()
        epoch_us = self.kernel.now
        for index in range(queries):
            scheduled_us = epoch_us + index * interval_us
            if self.kernel.now < scheduled_us:
                yield Sleep(scheduled_us - self.kernel.now)
            # Query latency counts from the frame tick, so a query that
            # overruns its interval pushes the next one late — exactly
            # the backlog MLPerf's multi-stream mode exists to surface.
            for _ in range(streams):
                yield self._sample_work()
                yield from self.session.invoke()
            self.latencies_us.append(self.kernel.now - scheduled_us)

    def _offline_body(self, queries):
        yield from self.session.prepare()
        yield from self.session.invoke()
        start_us = self.kernel.now
        for _ in range(queries):
            duration = yield from self.session.invoke()
            self.latencies_us.append(duration)
        self._timed_wall_us = self.kernel.now - start_us

    def _server_body(self, queries, arrival_times_us):
        yield from self.session.prepare()
        yield from self.session.invoke()
        epoch_us = self.kernel.now
        for arrival_us in arrival_times_us[:queries]:
            issue_us = epoch_us + arrival_us
            if self.kernel.now < issue_us:
                yield Sleep(issue_us - self.kernel.now)
            yield self._sample_work()
            yield from self.session.invoke()
            # Latency counts from the scheduled arrival: when the device
            # is still busy with the previous query, the wait in line is
            # part of this query's latency (open-loop contract).
            self.latencies_us.append(self.kernel.now - issue_us)
        self._timed_wall_us = self.kernel.now - epoch_us

    def run(self, scenario=SINGLE_STREAM, queries=50, streams=4,
            frame_interval_ms=DEFAULT_FRAME_INTERVAL_MS, target_qps=None,
            slo_ms=None, seed=0):
        """Execute the scenario; returns a :class:`LoadgenResult`.

        ``streams``/``frame_interval_ms`` shape the multi-stream
        scenario; ``target_qps`` (default 20), ``slo_ms``, and ``seed``
        shape the server scenario's Poisson offered load and its
        goodput bound (``slo_ms=None`` leaves the bound open, making
        goodput equal throughput).
        """
        if scenario == SINGLE_STREAM:
            body = self._single_stream_body(queries)
        elif scenario == MULTI_STREAM:
            body = self._multi_stream_body(
                queries, streams, units.ms(frame_interval_ms)
            )
        elif scenario == OFFLINE:
            body = self._offline_body(queries)
        elif scenario == SERVER:
            from repro.apps.arrivals import PoissonArrivals

            arrivals = PoissonArrivals(
                rate_rps=target_qps if target_qps else 20.0, seed=seed
            )
            body = self._server_body(
                queries, arrivals.times_us(count=queries)
            )
        else:
            raise ValueError(
                f"unknown scenario {scenario!r}; known: {SCENARIOS}"
            )
        thread = self.kernel.spawn_on_big(body, name=f"loadgen:{scenario}")
        start_us = self.kernel.now
        self.kernel.sim.run(until=thread.done)
        # Offline and server record their own timed window (prepare and
        # the untimed warm-up must not inflate the denominator); the
        # closed-loop scenarios are timed wall to wall.
        wall_us = (
            self._timed_wall_us
            if self._timed_wall_us is not None
            else self.kernel.now - start_us
        )
        count = len(self.latencies_us)
        mean_us = sum(self.latencies_us) / count
        slo_us = math.inf if slo_ms is None else units.ms(slo_ms)
        met = sum(
            1 for latency_us in self.latencies_us if latency_us <= slo_us
        )
        wall_s = units.to_seconds(wall_us) if wall_us else 0.0
        return LoadgenResult(
            scenario=scenario,
            model_key=self.model_key,
            dtype=self.dtype,
            target=self.target,
            query_count=count,
            p90_latency_ms=units.to_ms(percentile(self.latencies_us, 0.9)),
            mean_latency_ms=units.to_ms(mean_us),
            throughput_qps=count / wall_s if wall_s else 0.0,
            slo_ms=slo_ms if scenario == SERVER else None,
            goodput_qps=(met / wall_s if wall_s else 0.0)
            if scenario == SERVER else 0.0,
            slo_miss_rate=(count - met) / count
            if scenario == SERVER else 0.0,
        )
