"""Background inference load for the multi-tenancy study (Figs. 9/10).

The paper schedules an increasing number of inference benchmarks in the
background — through the NNAPI Hexagon path to contend for the DSP
(Fig. 9), or on the CPU to contend with the app's capture/pre-processing
threads (Fig. 10) — while a foreground image-classification app keeps
running.
"""

from repro.android import AppProcess
from repro.apps.sessions import make_session
from repro.models import load_model


def _job_body(session, iterations):
    yield from session.prepare()
    if iterations is None:
        while True:
            yield from session.invoke()
    else:
        for _ in range(iterations):
            yield from session.invoke()


def start_background_inferences(kernel, count, target="nnapi",
                                model_key="mobilenet_v1", dtype="int8",
                                threads=1, iterations=None):
    """Spawn ``count`` looping inference jobs; returns their threads.

    ``target="nnapi"`` with a quantized MobileNet keeps each job on the
    DSP (serializing with the app's inferences); ``target="cpu"`` keeps
    them on the CPU where they steal cycles from capture/pre-processing.
    ``iterations=None`` loops forever (stop the simulation by time or by
    the foreground thread's completion event).
    """
    if count < 0:
        raise ValueError(f"negative background job count: {count}")
    threads_spawned = []
    for index in range(count):
        model = load_model(model_key, dtype)
        process = AppProcess(kernel, f"bg{index}", managed_runtime=False)
        session = make_session(
            kernel, model, target=target, threads=threads
        )
        thread = kernel.spawn(
            _job_body(session, iterations),
            name=f"bg{index}:{model_key}",
            process=process,
            nice=0,
        )
        threads_spawned.append(thread)
    return threads_spawned
