"""Session factory: map a target name to a configured runtime."""

from repro.faults import FaultInjector
from repro.frameworks import (
    GpuDelegate,
    HexagonDelegate,
    NnapiSession,
    SnpeSession,
    TfliteInterpreter,
)

#: Target names accepted across apps, experiments, and examples.
TARGETS = (
    "cpu",        # TFLite tuned kernels, 4 threads
    "cpu1",       # TFLite tuned kernels, 1 thread
    "nnapi",      # NNAPI automatic device assignment
    "hexagon",    # TFLite Hexagon delegate (direct)
    "gpu",        # TFLite GPU delegate
    "snpe-dsp",   # vendor runtime on the DSP
    "snpe-cpu",   # vendor runtime on the CPU
)


def make_session(kernel, model, target="cpu", threads=4, preference=None,
                 faults=None):
    """Build an :class:`~repro.frameworks.base.InferenceSession`.

    ``faults`` is an optional :class:`~repro.faults.FaultPlan`. Only the
    DSP-offload targets (``nnapi``, ``snpe-dsp``) cross FastRPC, so only
    they get an injector; CPU/GPU targets ignore the plan.
    """
    injector = FaultInjector(faults) if faults else None
    if target == "cpu":
        return TfliteInterpreter(kernel, model, threads=threads)
    if target == "cpu1":
        return TfliteInterpreter(kernel, model, threads=1)
    if target == "nnapi":
        kwargs = {"threads": threads}
        if preference is not None:
            kwargs["preference"] = preference
        if injector is not None:
            kwargs["fault_injector"] = injector
        return NnapiSession(kernel, model, **kwargs)
    if target == "hexagon":
        return TfliteInterpreter(
            kernel, model, delegate=HexagonDelegate(kernel)
        )
    if target == "gpu":
        return TfliteInterpreter(kernel, model, delegate=GpuDelegate(kernel))
    if target == "snpe-dsp":
        return SnpeSession(
            kernel, model, runtime="dsp", fault_injector=injector
        )
    if target == "snpe-cpu":
        return SnpeSession(kernel, model, runtime="cpu", threads=threads)
    raise ValueError(f"unknown target {target!r}; known: {TARGETS}")
