"""Open-loop arrival processes: the traffic the service cannot pace.

A closed-loop load generator (the MLPerf single-stream scenario) waits
for each response before issuing the next query, so an overloaded
system quietly slows the *offered* load down and hides its own
saturation. An open-loop process issues requests on a schedule the
system under test cannot influence — the "millions of users" regime —
which is what makes overload, queueing delay, and goodput collapse
observable at all.

Both processes here are pure functions of ``(parameters, seed)``: each
call derives a fresh named stream from
:class:`~repro.sim.rng.RngStreams`, so the same seed replays the
request timeline bit-identically, run after run, worker after worker.
"""

import math
from dataclasses import dataclass

from repro.sim import RngStreams, units

#: Stream name the arrival draws come from (one stream per process
#: instance; fresh per ``times_us`` call so replays are identical).
#: Frozen at its historical value: the name seeds the derived stream,
#: so changing it would move every request timeline ever exported.
_STREAM = "service.arrivals"

POISSON = "poisson"
DIURNAL = "diurnal"

ARRIVAL_KINDS = (POISSON, DIURNAL)


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson arrivals at ``rate_rps`` requests/second."""

    rate_rps: float
    seed: int = 0
    kind: str = POISSON

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")

    @property
    def mean_gap_us(self):
        """Mean inter-arrival gap in simulator microseconds."""
        return units.seconds(1.0 / self.rate_rps)

    def times_us(self, duration_us=None, count=None):
        """Deterministic arrival times, as a tuple of microseconds.

        Exactly one of ``duration_us`` (all arrivals in ``[0,
        duration_us)``) or ``count`` (the first ``count`` arrivals) must
        be given. Same parameters and seed — same timeline, always.
        """
        _check_window(duration_us, count)
        rng = RngStreams(self.seed).stream(_STREAM)
        times = []
        now_us = 0.0
        while _more(times, now_us, duration_us, count):
            now_us += rng.exponential(self.mean_gap_us)
            if duration_us is not None and now_us >= duration_us:
                break
            times.append(now_us)
        return tuple(times)

    def peak_rate_rps(self):
        return self.rate_rps

    def describe(self):
        return {"kind": self.kind, "rate_rps": self.rate_rps,
                "seed": self.seed}


@dataclass(frozen=True)
class DiurnalArrivals:
    """Sinusoidally-modulated Poisson arrivals (a compressed "day".)

    The instantaneous rate is ``rate_rps * (1 + amplitude *
    sin(2 pi t / period))`` — the mean stays ``rate_rps`` while the
    peak hits ``rate_rps * (1 + amplitude)``, so a service provisioned
    for the mean sees periodic overload. Sampled by thinning a
    homogeneous process at the peak rate: every candidate consumes
    exactly two draws (gap + accept), so the timeline is independent of
    how many candidates end up accepted.
    """

    rate_rps: float
    amplitude: float = 0.6
    period_s: float = 1.0
    seed: int = 0
    kind: str = DIURNAL

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )
        if self.period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {self.period_s}")

    def rate_at(self, time_us):
        """Instantaneous rate (requests/second) at a simulated time."""
        period_us = units.seconds(self.period_s)
        phase = math.sin(2.0 * math.pi * (time_us / period_us))
        return self.rate_rps * (1.0 + self.amplitude * phase)

    def peak_rate_rps(self):
        return self.rate_rps * (1.0 + self.amplitude)

    def times_us(self, duration_us=None, count=None):
        """Deterministic arrival times, as a tuple of microseconds.

        Same contract as :meth:`PoissonArrivals.times_us`.
        """
        _check_window(duration_us, count)
        rng = RngStreams(self.seed).stream(_STREAM)
        peak_gap_us = units.seconds(1.0 / self.peak_rate_rps())
        times = []
        now_us = 0.0
        while _more(times, now_us, duration_us, count):
            now_us += rng.exponential(peak_gap_us)
            accept = rng.random()
            if duration_us is not None and now_us >= duration_us:
                break
            if accept < self.rate_at(now_us) / self.peak_rate_rps():
                times.append(now_us)
        return tuple(times)

    def describe(self):
        return {
            "kind": self.kind, "rate_rps": self.rate_rps,
            "amplitude": self.amplitude, "period_s": self.period_s,
            "seed": self.seed,
        }


def _check_window(duration_us, count):
    if (duration_us is None) == (count is None):
        raise ValueError(
            "exactly one of duration_us / count must be given, got "
            f"duration_us={duration_us!r} count={count!r}"
        )
    if duration_us is not None and duration_us <= 0:
        raise ValueError(f"duration_us must be > 0, got {duration_us}")
    if count is not None and count < 1:
        raise ValueError(f"count must be >= 1, got {count}")


def _more(times, now_us, duration_us, count):
    if count is not None:
        return len(times) < count
    return now_us < duration_us


def make_arrivals(kind, rate_rps, seed=0, amplitude=0.6, period_s=1.0):
    """Factory mapping a config string to an arrival process."""
    if kind == POISSON:
        return PoissonArrivals(rate_rps=rate_rps, seed=seed)
    if kind == DIURNAL:
        return DiurnalArrivals(
            rate_rps=rate_rps, amplitude=amplitude, period_s=period_s,
            seed=seed,
        )
    raise ValueError(
        f"unknown arrival kind {kind!r}; known: {ARRIVAL_KINDS}"
    )
