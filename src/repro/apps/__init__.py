"""Application-level pipelines (paper §III-B, Fig. 3).

Three packagings of the same model, mirroring the paper's comparison:

* :class:`BenchmarkCli` — the TFLite command-line benchmark utility:
  random input tensors, native pre-processing, no UI, quiet system.
* :class:`BenchmarkApp` — the Android benchmark app: the same loop
  inside an app process with a UI and the ambient daemon load.
* :class:`AndroidApp` — a real application: camera capture, managed-
  code pre-processing, inference, post-processing, UI rendering, GC.

Plus background inference jobs for the multi-tenancy experiments
(Figs. 9/10), the open-loop arrival processes shared by the loadgen
scenarios and the service tier (:mod:`repro.apps.arrivals`), and a
one-call harness used by experiments and examples.
"""

from repro.apps.android_app import AndroidApp
from repro.apps.arrivals import (
    ARRIVAL_KINDS,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.apps.background import start_background_inferences
from repro.apps.benchmark_cli import BenchmarkApp, BenchmarkCli
from repro.apps.harness import (
    PipelineConfig,
    run_pipeline,
    run_pipeline_with_rig,
)
from repro.apps.sessions import make_session

__all__ = [
    "ARRIVAL_KINDS",
    "AndroidApp",
    "start_background_inferences",
    "BenchmarkApp",
    "BenchmarkCli",
    "DiurnalArrivals",
    "PipelineConfig",
    "PoissonArrivals",
    "make_arrivals",
    "run_pipeline",
    "run_pipeline_with_rig",
    "make_session",
]
