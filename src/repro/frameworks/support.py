"""Per-driver operator support matrices.

The paper's central framework finding (Fig. 5) is that NNAPI driver
support "is lagging for the INT8 operators the model implementation
used", so op-level support gaps decide whether a graph is accelerated,
fragmented, or silently dumped onto slow CPU reference kernels. The
matrices here encode the gaps that reproduce the paper's observations
on the SD845-era drivers:

* The NNAPI *DSP* driver lacks quantized ``ADD`` (residual connections)
  — harmless for MobileNet v1 (no residuals), fatal for
  EfficientNet-Lite0 (a residual per MBConv block fragments the graph
  until NNAPI gives up and falls back to the CPU).
* NNAPI drivers lack the asymmetric (1x7 / 7x1) convolutions of the
  Inception family, which is why the paper sees Inception "only
  partially offloaded ... around half of its inference on the CPU".
* The open-source TFLite Hexagon delegate supports the full quantized
  op set, and vendor SNPE supports everything it claims to.
"""

#: Op kinds that exist in our model IR.
_ALL_KINDS = {
    "CONV_2D",
    "DEPTHWISE_CONV_2D",
    "FULLY_CONNECTED",
    "BATCH_MATMUL",
    "ATTENTION",
    "MAX_POOL_2D",
    "AVERAGE_POOL_2D",
    "RELU",
    "RELU6",
    "LOGISTIC",
    "GELU",
    "ADD",
    "CONCATENATION",
    "SOFTMAX",
    "RESIZE_BILINEAR",
    "EMBEDDING_LOOKUP",
}

_BASIC_CNN = {
    "CONV_2D",
    "DEPTHWISE_CONV_2D",
    "FULLY_CONNECTED",
    "MAX_POOL_2D",
    "AVERAGE_POOL_2D",
    "RELU",
    "RELU6",
    "LOGISTIC",
    "CONCATENATION",
    "SOFTMAX",
}

#: backend -> dtype -> supported op kinds.
_MATRIX = {
    # NNAPI accelerator drivers (SD845-era, API level 28).
    "nnapi-dsp": {
        "int8": _BASIC_CNN | {"ADD", "RESIZE_BILINEAR"},
        "fp32": set(),  # HVX has no vector float path
        "fp16": set(),
    },
    "nnapi-gpu": {
        "fp32": _BASIC_CNN | {"ADD", "RESIZE_BILINEAR"},
        "fp16": _BASIC_CNN | {"ADD", "RESIZE_BILINEAR"},
        "int8": set(),  # the GL path has no quantized kernels
    },
    # TFLite open-source delegates.
    "hexagon-delegate": {
        "int8": _BASIC_CNN | {"ADD", "RESIZE_BILINEAR"},
        "fp32": set(),
        "fp16": set(),
    },
    "gpu-delegate": {
        "fp32": _BASIC_CNN | {"ADD", "RESIZE_BILINEAR"},
        "fp16": _BASIC_CNN | {"ADD", "RESIZE_BILINEAR"},
        "int8": set(),
    },
    # Vendor SNPE: complete coverage of its documented set.
    "snpe-dsp": {
        "int8": _ALL_KINDS - {"ATTENTION", "GELU"},
        "fp32": set(),
        "fp16": set(),
    },
    # TFLite CPU kernels run everything.
    "cpu": {"fp32": _ALL_KINDS, "fp16": _ALL_KINDS, "int8": _ALL_KINDS},
}


def _is_asymmetric_conv(op):
    kernel = op.attrs.get("kernel")
    return (
        op.kind == "CONV_2D"
        and isinstance(kernel, tuple)
        and kernel[0] != kernel[1]
    )


def _is_large_depthwise(op):
    kernel = op.attrs.get("kernel")
    if isinstance(kernel, tuple):
        kernel = max(kernel)
    return op.kind == "DEPTHWISE_CONV_2D" and (kernel or 0) > 3


#: NNAPI feature levels by Android generation. The paper measures the
#: SD845-era 1.1 drivers and notes "future iterations may likely fix
#: this performance bug"; the later levels model exactly that repair.
NNAPI_1_1 = 1.1
NNAPI_1_2 = 1.2
NNAPI_1_3 = 1.3


def supports_op(backend, op, dtype, feature_level=NNAPI_1_1):
    """Does ``backend``'s driver implement ``op`` at ``dtype``?

    ``feature_level`` only affects the NNAPI backends: 1.2 adds the
    quantized large-kernel depthwise convolutions (fixing the paper's
    EfficientNet-Lite0 pathology), 1.3 adds the asymmetric-kernel
    convolutions the Inception family needs.
    """
    try:
        kinds = _MATRIX[backend][dtype]
    except KeyError:
        raise KeyError(f"unknown backend/dtype {backend!r}/{dtype!r}") from None
    if op.kind not in kinds:
        return False
    if backend.startswith("nnapi"):
        if _is_asymmetric_conv(op) and feature_level < NNAPI_1_3:
            return False
        if (
            backend == "nnapi-dsp"
            and _is_large_depthwise(op)
            and feature_level < NNAPI_1_2
        ):
            # The SD845-era driver only ships quantized 3x3 depthwise
            # kernels; EfficientNet-Lite0's 5x5 depthwise stages are the
            # "INT8 operators the model implementation used" that the
            # paper found lacking driver support.
            return False
    return True


def supported_fraction(backend, ops, dtype):
    """Fraction of ops (by count) the backend can take."""
    if not ops:
        return 0.0
    good = sum(1 for op in ops if supports_op(backend, op, dtype))
    return good / len(ops)


def backends():
    return sorted(_MATRIX)
