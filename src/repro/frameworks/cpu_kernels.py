"""CPU kernel cost model.

Two kernel tiers matter for the paper's Fig. 5:

* ``tuned`` — TFLite's NEON kernels (ruy/XNNPACK era): the normal CPU
  path; int8 runs ~1.5x faster than fp32.
* ``reference`` — the portable fallback kernels the NNAPI runtime uses
  when a driver rejects an op: scalar loops with per-element
  requantization, several times slower than tuned fp32 and single-
  threaded by construction.
"""

from repro.sim import units
from repro.soc import params
from repro.soc.cost_tables import build_table, lookup_table

IMPL_TUNED = "tuned"
IMPL_REFERENCE = "reference"

_RATE_BY_KIND = {
    "conv": params.CPU_CONV_GFLOPS,
    "depthwise": params.CPU_DEPTHWISE_GFLOPS,
    "fc": params.CPU_FC_GFLOPS,
    "elementwise": params.CPU_ELEMENTWISE_GFLOPS,
}

#: Reference (portable) kernels relative to tuned fp32.
_REFERENCE_FP_SLOWDOWN = 2.0


def op_cpu_work_us(op, dtype, impl=IMPL_TUNED):
    """Reference-us of CPU work for one op (single core, max freq)."""
    rate_gflops = _RATE_BY_KIND[op.compute_class]
    if impl == IMPL_TUNED:
        if dtype == "int8":
            rate_gflops *= params.CPU_INT8_SPEEDUP
        elif dtype == "fp16":
            # CPU fp16 is emulated (converted to fp32): no gain.
            rate_gflops *= 1.0
    elif impl == IMPL_REFERENCE:
        if dtype == "int8":
            rate_gflops /= params.CPU_REFERENCE_INT8_SLOWDOWN
        else:
            rate_gflops /= _REFERENCE_FP_SLOWDOWN
    else:
        raise ValueError(f"unknown CPU kernel impl {impl!r}")
    compute_us = op.flops / units.per_us_rate(rate_gflops)
    return compute_us + params.CPU_OP_DISPATCH_US


def graph_cpu_work_us(ops, dtype, impl=IMPL_TUNED):
    """Total single-core reference-us for an op list.

    Memoized per ``(dtype, impl, ops)`` — see
    :mod:`repro.soc.cost_tables`. The cached total is the same
    left-fold sum of the same per-op values, so results are bit-equal
    to pricing the graph inline on every call.
    """
    config = ("cpu", dtype, impl)
    table = lookup_table(config, ops)
    if table is None:
        table = build_table(
            config, ops, [op_cpu_work_us(op, dtype, impl) for op in ops]
        )
    return table.total_us


def parallel_efficiency(threads):
    """Scaling efficiency of the tuned kernels across threads."""
    table = params.CPU_PARALLEL_EFFICIENCY
    if threads in table:
        return table[threads]
    known = sorted(table)
    if threads <= known[0]:
        return table[known[0]]
    if threads >= known[-1]:
        return table[known[-1]]
    lower = max(k for k in known if k <= threads)
    upper = min(k for k in known if k >= threads)
    if lower == upper:
        return table[lower]
    fraction = (threads - lower) / (upper - lower)
    return table[lower] + fraction * (table[upper] - table[lower])
