"""Common framework abstractions."""

from dataclasses import dataclass, field

#: NNAPI execution preferences (the benchmarks default to
#: FAST_SINGLE_ANSWER, §III-B).
FAST_SINGLE_ANSWER = "fast_single_answer"
SUSTAINED_SPEED = "sustained_speed"
LOW_POWER = "low_power"

EXECUTION_PREFERENCES = (FAST_SINGLE_ANSWER, SUSTAINED_SPEED, LOW_POWER)


class UnsupportedModelError(Exception):
    """Raised when a framework/delegate cannot run a model at all."""


@dataclass
class Partition:
    """A contiguous run of ops assigned to one device."""

    device: str  # "cpu", "gpu", "dsp"
    ops: tuple
    index: int = 0

    @property
    def op_count(self):
        return len(self.ops)

    @property
    def flops(self):
        return sum(op.flops for op in self.ops)


@dataclass
class InferenceStats:
    """Accounting for one session across its lifetime."""

    model_name: str = ""
    framework: str = ""
    init_us: float = 0.0
    compile_us: float = 0.0
    invocations: int = 0
    invoke_us_total: float = 0.0
    compute_us_total: float = 0.0
    offload_us_total: float = 0.0
    partition_crossings: int = 0
    per_invoke_us: list = field(default_factory=list)

    @property
    def mean_invoke_us(self):
        if not self.per_invoke_us:
            return 0.0
        return sum(self.per_invoke_us) / len(self.per_invoke_us)

    def record_invoke(self, duration_us):
        self.invocations += 1
        self.invoke_us_total += duration_us
        self.per_invoke_us.append(duration_us)


class InferenceSession:
    """Interface all runtimes implement.

    ``prepare()`` and ``invoke()`` are generators to ``yield from``
    inside a :class:`~repro.android.thread.SimThread` body. ``prepare``
    is the one-time model load/compile; ``invoke`` runs one inference
    and returns its wall duration in simulated microseconds.
    """

    stats: InferenceStats

    def prepare(self):
        raise NotImplementedError

    def invoke(self):
        raise NotImplementedError

    def describe_plan(self):
        """Human-readable device placement, for reports."""
        raise NotImplementedError
