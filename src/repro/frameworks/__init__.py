"""ML delegation frameworks (paper §II-C/D, §IV-B).

* :class:`TfliteInterpreter` — the interpreter with tuned CPU kernels
  and whole-graph GPU/Hexagon delegates.
* :class:`NnapiSession` — the OS-level runtime: compilation,
  partitioning against vendor driver op-support matrices, and CPU
  *reference-kernel* fallback.
* :class:`SnpeSession` — the vendor runtime with complete, tuned DSP
  support.
"""

from repro.frameworks.base import (
    EXECUTION_PREFERENCES,
    FAST_SINGLE_ANSWER,
    LOW_POWER,
    SUSTAINED_SPEED,
    InferenceSession,
    InferenceStats,
    Partition,
    UnsupportedModelError,
)
from repro.frameworks.cpu_kernels import (
    IMPL_REFERENCE,
    IMPL_TUNED,
    graph_cpu_work_us,
    op_cpu_work_us,
    parallel_efficiency,
)
from repro.frameworks.delegates import GpuDelegate, HexagonDelegate
from repro.frameworks.nnapi import NnapiSession
from repro.frameworks.snpe import SnpeSession
from repro.frameworks.support import backends, supported_fraction, supports_op
from repro.frameworks.tflite import TfliteInterpreter, run_graph_on_cpu

__all__ = [
    "EXECUTION_PREFERENCES",
    "FAST_SINGLE_ANSWER",
    "LOW_POWER",
    "SUSTAINED_SPEED",
    "InferenceSession",
    "InferenceStats",
    "Partition",
    "UnsupportedModelError",
    "IMPL_REFERENCE",
    "IMPL_TUNED",
    "graph_cpu_work_us",
    "op_cpu_work_us",
    "parallel_efficiency",
    "GpuDelegate",
    "HexagonDelegate",
    "NnapiSession",
    "SnpeSession",
    "backends",
    "supported_fraction",
    "supports_op",
    "TfliteInterpreter",
    "run_graph_on_cpu",
]
