"""TFLite hardware delegates: GPU and Hexagon.

A delegate takes the whole graph (these two refuse models they cannot
fully cover — partial delegation with CPU fallback is NNAPI's job, see
:mod:`repro.frameworks.nnapi`).
"""

from repro.android.thread import Sleep, WaitFor, Work
from repro.frameworks.support import supports_op
from repro.models import dtype_bytes
from repro.soc import params as soc_params

#: DSP-side graph preparation per op at delegate init.
_DSP_GRAPH_PREP_PER_OP_US = 9.0
#: CPU-side delegate graph construction per op.
_DELEGATE_BUILD_PER_OP_US = 4.0


class GpuDelegate:
    """OpenGL/OpenCL delegate: shader compile at init, command queues at run."""

    name = "gpu"
    backend = "gpu-delegate"

    def __init__(self, kernel, precision="fp16"):
        self.kernel = kernel
        self.gpu = kernel.soc.gpu
        if precision not in ("fp32", "fp16"):
            raise ValueError(f"GPU precision must be fp16/fp32, not {precision!r}")
        self.precision = precision

    def covers(self, model):
        if model.dtype == "int8":
            return False
        return all(
            supports_op(self.backend, op, model.dtype) for op in model.ops
        )

    def init(self, model):
        """Shader compilation: CPU-side codegen plus GPU-side build."""
        build_us = model.op_count * _DELEGATE_BUILD_PER_OP_US
        yield Work(self.gpu.init_time_us * 0.4 + build_us, label="gpu:compile")
        yield Sleep(self.gpu.init_time_us * 0.6)

    def invoke(self, model):
        """Upload inputs, run the command buffer, read back outputs."""
        memory = self.kernel.soc.memory
        dtype = "fp16" if self.precision == "fp16" else model.dtype
        yield Work(
            memory.dram_copy_us(model.input_bytes), label="gpu:upload"
        )
        # with-block instead of try/finally: the old finally began only
        # after the queue wait, so an interrupt at the WaitFor leaked
        # the GPU grant.
        with self.gpu.resource.request() as request:
            yield WaitFor(request)
            compute_us = self.gpu.graph_time_us(model.ops, dtype)
            span = None
            if self.kernel.sim.trace is not None:
                span = self.kernel.sim.trace.begin("gpu", model.name)
            yield Sleep(compute_us)
            if span is not None:
                self.kernel.sim.trace.end(span)
            self.kernel.soc.energy.add_gpu_busy(compute_us)
        yield Work(
            memory.dram_copy_us(model.output_bytes), label="gpu:readback"
        )
        return compute_us


class HexagonDelegate:
    """The open-source TFLite Hexagon delegate (int8 graphs on the DSP)."""

    name = "hexagon"
    backend = "hexagon-delegate"

    def __init__(self, kernel, channel=None):
        self.kernel = kernel
        self.dsp = kernel.soc.dsp
        if channel is None:
            from repro.android.fastrpc import FastRpcChannel

            channel = FastRpcChannel(kernel, process_id=kernel.allocate_pid())
        self.channel = channel

    def covers(self, model):
        if model.dtype != "int8":
            return False
        return all(supports_op(self.backend, op, "int8") for op in model.ops)

    def init(self, model):
        """Open the FastRPC session and build the graph on the DSP."""
        yield Work(
            model.op_count * _DELEGATE_BUILD_PER_OP_US, label="hexagon:build"
        )
        yield from self.channel.open_session()
        yield Sleep(model.op_count * _DSP_GRAPH_PREP_PER_OP_US)

    def invoke(self, model):
        compute_us = self.dsp.graph_time_us(model.ops, "int8")
        input_bytes = model.input_spec.numel * dtype_bytes("int8")
        yield from self.channel.invoke(
            input_bytes, model.output_bytes, compute_us, label=model.name
        )
        return compute_us


#: Effective speedup of SNPE's hand-tuned HVX kernels over the
#: open-source delegate's (vendor software is "highly tuned", §IV-B).
SNPE_DSP_TUNING = 1.3


def cpu_fallback_dispatch_overhead_us():
    """Per-op overhead when the NNAPI runtime walks reference kernels."""
    return soc_params.CPU_OP_DISPATCH_US
