"""The NNAPI runtime: compilation, partitioning, and CPU fallback.

NNAPI (paper §II-D) compiles a model once: it asks each vendor driver
which ops it supports, slices the graph into contiguous partitions, and
assigns each partition to a device. Unsupported ops — and accelerator
runs too short to be worth a crossing — execute on the runtime's
*reference* CPU kernels, single-threaded.

This is the machinery behind the paper's Fig. 5: quantized
EfficientNet-Lite0's residual ``ADD`` ops are missing from the DSP
driver, the graph shatters into sub-minimum fragments, everything lands
on the slow reference path, and end-to-end latency degrades ~7x versus
just using the tuned single-thread CPU kernels directly.
"""

from repro.android.fastrpc import FastRpcSessionDeath, FastRpcTimeout
from repro.android.thread import Sleep, WaitFor, Work
from repro.faults.recovery import DegradationReport, fault_counters
from repro.frameworks.base import (
    FAST_SINGLE_ANSWER,
    EXECUTION_PREFERENCES,
    InferenceSession,
    InferenceStats,
    Partition,
)
from repro.frameworks.cpu_kernels import (
    IMPL_REFERENCE,
    graph_cpu_work_us,
)
from repro.frameworks.support import supports_op
from repro.frameworks.tflite import run_graph_on_cpu
from repro.sim.probes import probe
from repro.models import dtype_bytes

#: Compilation cost: base plus per-op partitioning work.
_COMPILE_BASE_US = 900.0
_COMPILE_PER_OP_US = 6.0
#: Accelerator runs shorter than this are demoted to the CPU.
_MIN_ACCELERATOR_RUN = 3
#: CPU-side cost of handing a partition across a device boundary.
_BOUNDARY_DISPATCH_US = 14.0
#: Device-boundary density above which the runtime abandons the
#: accelerator plan and executes everything on its single-threaded
#: reference kernels. An over-fragmented plan means the driver rejects
#: more of the graph than the crossings are worth; the runtime's escape
#: hatch is the slow portable path — the paper's Fig. 5 failure mode.
_MAX_FRAGMENTATION = 0.18

#: Pre-rendered span labels for the per-invoke partition probes; an
#: f-string here would allocate on every partition even when tracing
#: is off (unknown devices fall back to concatenation).
_PARTITION_SPAN_LABELS = {
    device: "partition:" + device
    for device in ("cpu", "cpu-reference", "gpu", "dsp")
}


class NnapiSession(InferenceSession):
    """An NNAPI compilation + execution for one model."""

    def __init__(self, kernel, model, preference=FAST_SINGLE_ANSWER,
                 min_accelerator_run=_MIN_ACCELERATOR_RUN, threads=4,
                 feature_level=None, fault_injector=None):
        if preference not in EXECUTION_PREFERENCES:
            raise ValueError(f"unknown execution preference {preference!r}")
        self.kernel = kernel
        self.model = model
        self.preference = preference
        #: NNAPI feature level; defaults to what the platform ships.
        if feature_level is None:
            feature_level = getattr(
                kernel.soc.spec, "nnapi_feature_level", 1.1
            )
        self.feature_level = feature_level
        self.min_accelerator_run = min_accelerator_run
        #: Interpreter threads used for partitions the driver rejected
        #: (TFLite keeps those ops on its own tuned kernels).
        self.threads = threads
        self.partitions = []
        self.reference_fallback = False
        self.prepared = False
        self._channel = None
        #: Optional :class:`~repro.faults.plan.FaultInjector` driving
        #: deterministic DSP failures through the FastRPC channel.
        self.fault_injector = fault_injector
        #: Ledger of faults, retries, and runtime CPU fallbacks — the
        #: graceful-degradation account for this session.
        self.degradation = DegradationReport()
        self._invoke_fallbacks = 0
        self._invoke_fallback_us = 0.0
        self.stats = InferenceStats(model_name=model.name, framework="nnapi")

    # -- compilation -----------------------------------------------------

    @property
    def accelerator_backend(self):
        """Which vendor driver NNAPI consults for this dtype."""
        return "nnapi-dsp" if self.model.dtype == "int8" else "nnapi-gpu"

    def plan_partitions(self):
        """Slice the graph into device partitions (pure, no simulation)."""
        backend = self.accelerator_backend
        dtype = self.model.dtype
        device = "dsp" if backend == "nnapi-dsp" else "gpu"
        runs = []
        current_device = None
        current_ops = []
        for op in self.model.ops:
            supported = supports_op(
                backend, op, dtype, feature_level=self.feature_level
            )
            target = device if supported else "cpu"
            if target != current_device and current_ops:
                runs.append(Partition(current_device, tuple(current_ops)))
                current_ops = []
            current_device = target
            current_ops.append(op)
        if current_ops:
            runs.append(Partition(current_device, tuple(current_ops)))

        # Demote accelerator runs too short to amortize a crossing.
        for partition in runs:
            if partition.device != "cpu" and partition.op_count < self.min_accelerator_run:
                partition.device = "cpu"
        # Merge adjacent same-device runs.
        merged = []
        for partition in runs:
            if merged and merged[-1].device == partition.device:
                merged[-1] = Partition(
                    partition.device, merged[-1].ops + partition.ops
                )
            else:
                merged.append(partition)
        for index, partition in enumerate(merged):
            partition.index = index

        # Over-fragmented plan: the runtime gives up on the accelerator
        # and executes the whole model on reference kernels.
        fragmentation = (len(merged) - 1) / max(1, self.model.op_count)
        if fragmentation > _MAX_FRAGMENTATION:
            self.reference_fallback = True
            return [Partition("cpu-reference", tuple(self.model.ops))]
        self.reference_fallback = False
        return merged

    def prepare(self):
        """Model compilation (paper: performed once per model load)."""
        start = self.kernel.now
        with probe(self.kernel, "nnapi", "compile",
                   {"model": self.model.name}):
            with probe(self.kernel, "nnapi", "partition"):
                yield Work(
                    _COMPILE_BASE_US
                    + self.model.op_count * _COMPILE_PER_OP_US,
                    label="nnapi:compile",
                )
                partitions = self.plan_partitions()
                self.partitions = partitions
            devices = {partition.device for partition in partitions}
            if "dsp" in devices or self.model.dtype == "int8":
                # The DSP driver is probed during compilation (capability
                # query + test handshake) — the brief cDSP spike at the
                # start of the paper's Fig. 6 NNAPI profile, present even
                # when execution later falls back to the CPU.
                channel = self._dsp_channel()
                before, retries_before = self._fault_snapshot()
                with probe(self.kernel, "nnapi", "driver_probe:dsp"):
                    try:
                        yield from channel.open_session()
                        yield from channel.invoke_retrying(
                            4_096, 256, dsp_compute_us=150.0,
                            label="nnapi:probe",
                        )
                    except (FastRpcTimeout, FastRpcSessionDeath):
                        # The driver never came up: NNAPI abandons the
                        # accelerator plan at compile time and the whole
                        # model runs on reference kernels (the Fig. 5
                        # escape hatch, reached via a dead driver
                        # instead of fragmentation).
                        self.reference_fallback = True
                        self.degradation.compile_fallback = True
                        self.partitions = [
                            Partition("cpu-reference", tuple(self.model.ops))
                        ]
                after, retries_after = self._fault_snapshot()
                if after != before or retries_after != retries_before:
                    self.degradation.record_invoke(
                        -1, before, after,
                        retries=retries_after - retries_before,
                    )
            # Re-derived from the *current* plan: the DSP probe above
            # may have abandoned the accelerator partitions entirely
            # (compile fallback), and a plan with no GPU partitions
            # initializes no GPU delegate.
            if "gpu" in {p.device for p in self.partitions}:
                gpu = self.kernel.soc.gpu
                with probe(self.kernel, "nnapi", "driver_probe:gpu"):
                    yield Work(
                        gpu.init_time_us * 0.4, label="nnapi:gpu_compile"
                    )
                    yield Sleep(gpu.init_time_us * 0.6)
        if self.preference == "sustained_speed":
            # Cap the boost clock: trades peak latency for a thermally
            # sustainable operating point (no throttle cycling).
            self.kernel.soc.big_cluster.governor.max_fraction = 0.85
        self.prepared = True
        self.stats.compile_us = self.kernel.now - start
        self.stats.init_us = self.stats.compile_us

    def _dsp_channel(self):
        if self._channel is None:
            from repro.android.fastrpc import FastRpcChannel

            self._channel = FastRpcChannel(
                self.kernel, process_id=self.kernel.allocate_pid(),
                fault_injector=self.fault_injector,
            )
        return self._channel

    def _fault_snapshot(self):
        """(fault counters, retries) of the DSP channel, zeros if none."""
        if self._channel is None:
            return {}, 0
        return (
            fault_counters(self._channel.stats),
            self._channel.stats.retries,
        )

    # -- execution ---------------------------------------------------------

    def _boundary_bytes(self, partition):
        item = dtype_bytes(self.model.dtype)
        first, last = partition.ops[0], partition.ops[-1]
        return first.input_elems * item, last.output_elems * item

    def invoke(self):
        """One inference across the partition plan."""
        if not self.prepared:
            raise RuntimeError("invoke() before prepare()")
        kernel = self.kernel
        soc = kernel.soc
        start = kernel.now
        crossings = 0
        previous_device = None
        invoke_index = self.stats.invocations
        faults_before, retries_before = self._fault_snapshot()
        self._invoke_fallbacks = 0
        self._invoke_fallback_us = 0.0
        for partition in self.partitions:
            if previous_device is not None and partition.device != previous_device:
                crossings += 1
                in_bytes, _ = self._boundary_bytes(partition)
                with probe(kernel, "nnapi", "boundary") as span:
                    if span is not None:
                        span.meta["from_device"] = previous_device
                        span.meta["to_device"] = partition.device
                    yield Work(
                        _BOUNDARY_DISPATCH_US
                        + soc.memory.dram_copy_us(in_bytes),
                        label="nnapi:boundary",
                    )
            previous_device = partition.device
            with probe(kernel, "nnapi",
                       _PARTITION_SPAN_LABELS.get(
                           partition.device,
                           "partition:" + partition.device,
                       )) as span:
                if span is not None:
                    span.meta["index"] = partition.index
                    span.meta["ops"] = partition.op_count
                yield from self._run_partition(partition)
        duration = kernel.now - start
        faults_after, retries_after = self._fault_snapshot()
        self.degradation.record_invoke(
            invoke_index, faults_before, faults_after,
            retries=retries_after - retries_before,
            fallbacks=self._invoke_fallbacks,
            fallback_us=self._invoke_fallback_us,
        )
        self.stats.partition_crossings += crossings
        self.stats.record_invoke(duration)
        return duration

    def _run_partition(self, partition):
        """Execute one partition on its assigned device (generator)."""
        kernel = self.kernel
        soc = kernel.soc
        if partition.device == "cpu-reference":
            # The runtime's portable kernels: single-threaded scalar
            # loops on the caller thread (paper Fig. 5 / Fig. 6).
            work = graph_cpu_work_us(
                partition.ops, self.model.dtype, IMPL_REFERENCE
            )
            yield Work(work, label="nnapi:reference")
            self.stats.compute_us_total += work
        elif partition.device == "cpu":
            # Driver-rejected ops stay in TFLite's tuned kernels on
            # the interpreter's thread pool (partial delegation, the
            # Inception situation of §IV-A). The execution
            # preference steers placement: LOW_POWER keeps CPU work
            # on the little cluster with fewer threads.
            threads = self.threads
            affinity = None
            if self.preference == "low_power":
                threads = min(self.threads, 2)
                affinity = {
                    core.core_id for core in soc.little_cores
                }
            work = yield from run_graph_on_cpu(
                self.kernel,
                partition.ops,
                self.model.dtype,
                threads=threads,
                label="nnapi:cpu_partition",
                affinity=affinity,
            )
            self.stats.compute_us_total += work
        elif partition.device == "dsp":
            in_bytes, out_bytes = self._boundary_bytes(partition)
            compute = soc.dsp.graph_time_us(partition.ops, "int8")
            channel = self._dsp_channel()
            before = channel.stats.offload_overhead_us
            try:
                yield from channel.invoke_retrying(
                    in_bytes, out_bytes, compute,
                    label=f"nnapi:{self.model.name}[{partition.index}]",
                )
            except (FastRpcTimeout, FastRpcSessionDeath) as exc:
                # Runtime CPU fallback: retries are exhausted, so the
                # runtime re-runs just this partition on its portable
                # reference kernels and the invoke completes — degraded,
                # never dead. (Distinct from the compile-time
                # ``reference_fallback``, which never tries the DSP.)
                self.stats.offload_us_total += (
                    channel.stats.offload_overhead_us - before
                )
                work = graph_cpu_work_us(
                    partition.ops, self.model.dtype, IMPL_REFERENCE
                )
                with probe(kernel, "nnapi", "runtime_fallback",
                           {"index": partition.index,
                            "cause": type(exc).__name__}):
                    yield Work(work, label="nnapi:runtime_fallback")
                self.stats.compute_us_total += work
                self._invoke_fallbacks += 1
                self._invoke_fallback_us += work
            else:
                self.stats.offload_us_total += (
                    channel.stats.offload_overhead_us - before
                )
                self.stats.compute_us_total += compute
        elif partition.device == "gpu":
            in_bytes, out_bytes = self._boundary_bytes(partition)
            yield Work(soc.memory.dram_copy_us(in_bytes), label="nnapi:upload")
            # with-block instead of try/finally: the old finally began
            # only after the queue wait, so an interrupt at the WaitFor
            # leaked the GPU grant.
            with soc.gpu.resource.request() as request:
                yield WaitFor(request)
                compute = soc.gpu.graph_time_us(
                    partition.ops, self.model.dtype
                )
                span = None
                if kernel.sim.trace is not None:
                    span = kernel.sim.trace.begin("gpu", self.model.name)
                yield Sleep(compute)
                if span is not None:
                    kernel.sim.trace.end(span)
                soc.energy.add_gpu_busy(compute)
            yield Work(
                soc.memory.dram_copy_us(out_bytes), label="nnapi:readback"
            )
            self.stats.compute_us_total += compute
        else:
            raise RuntimeError(f"unknown device {partition.device!r}")

    def describe_plan(self):
        if not self.partitions:
            self.partitions = self.plan_partitions()
        pieces = [
            f"{partition.device}x{partition.op_count}"
            for partition in self.partitions
        ]
        return " -> ".join(pieces)

    def accelerated_fraction(self):
        """Fraction of FLOPs placed on an accelerator by the plan."""
        if not self.partitions:
            self.partitions = self.plan_partitions()
        total = sum(partition.flops for partition in self.partitions)
        if total == 0:
            return 0.0
        accelerated = sum(
            partition.flops
            for partition in self.partitions
            if partition.device in ("dsp", "gpu")
        )
        return accelerated / total
