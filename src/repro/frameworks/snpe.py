"""Qualcomm SNPE-style vendor runtime.

The paper (§IV-B) finds that switching from NNAPI to the vendor's SNPE
makes the DSP outperform the CPU "as one would expect": vendor software
is tuned for the chipset and ships complete quantized-op coverage. We
model that as a runtime with full op support on its DSP path and
hand-tuned kernels a constant factor faster than the open-source
delegate's.
"""

from repro.android.thread import Sleep, Work
from repro.faults.recovery import NO_RETRY, DegradationReport, fault_counters
from repro.frameworks.base import InferenceSession, InferenceStats, UnsupportedModelError
from repro.frameworks.delegates import SNPE_DSP_TUNING
from repro.frameworks.support import supports_op
from repro.frameworks.tflite import run_graph_on_cpu
from repro.models import dtype_bytes

#: DLC model conversion/load cost per op.
_DLC_LOAD_PER_OP_US = 5.0
#: DSP graph setup per op at init.
_DSP_PREP_PER_OP_US = 7.0


class SnpeSession(InferenceSession):
    """An SNPE network handle on the chosen runtime ("dsp" or "cpu")."""

    def __init__(self, kernel, model, runtime="dsp", threads=4,
                 fault_injector=None):
        if runtime not in ("dsp", "cpu"):
            raise ValueError(f"unknown SNPE runtime {runtime!r}")
        self.kernel = kernel
        self.model = model
        self.runtime = runtime
        self.threads = threads
        self.prepared = False
        self._channel = None
        #: Fault injection on the DSP channel. The vendor runtime does
        #: NOT recover: FastRPC errors propagate to the application
        #: unchanged (no retry, no CPU fallback) — exactly how a fleet
        #: session dies rather than degrades.
        self.fault_injector = fault_injector
        self.degradation = DegradationReport()
        self.stats = InferenceStats(
            model_name=model.name, framework=f"snpe-{runtime}"
        )

    def _check_supported(self):
        if self.runtime == "dsp":
            if self.model.dtype != "int8":
                raise UnsupportedModelError(
                    "SNPE DSP runtime requires a quantized model"
                )
            unsupported = [
                op.kind
                for op in self.model.ops
                if not supports_op("snpe-dsp", op, "int8")
            ]
            if unsupported:
                raise UnsupportedModelError(
                    f"SNPE DSP lacks ops: {sorted(set(unsupported))}"
                )

    def prepare(self):
        start = self.kernel.now
        self._check_supported()
        yield Work(
            self.model.op_count * _DLC_LOAD_PER_OP_US, label="snpe:load"
        )
        if self.runtime == "dsp":
            from repro.android.fastrpc import FastRpcChannel

            self._channel = FastRpcChannel(
                self.kernel, process_id=self.kernel.allocate_pid(),
                fault_injector=self.fault_injector, retry_policy=NO_RETRY,
            )
            yield from self._channel.open_session()
            yield Sleep(self.model.op_count * _DSP_PREP_PER_OP_US)
        self.prepared = True
        self.stats.init_us = self.kernel.now - start

    def invoke(self):
        if not self.prepared:
            raise RuntimeError("invoke() before prepare()")
        start = self.kernel.now
        if self.runtime == "dsp":
            compute = (
                self.kernel.soc.dsp.graph_time_us(self.model.ops, "int8")
                / SNPE_DSP_TUNING
            )
            in_bytes = self.model.input_spec.numel * dtype_bytes("int8")
            before = fault_counters(self._channel.stats)
            try:
                yield from self._channel.invoke(
                    in_bytes, self.model.output_bytes, compute,
                    label=f"snpe:{self.model.name}",
                )
            finally:
                after = fault_counters(self._channel.stats)
                if after != before:
                    self.degradation.record_invoke(
                        self.stats.invocations, before, after
                    )
            self.stats.compute_us_total += compute
        else:
            work = yield from run_graph_on_cpu(
                self.kernel,
                self.model.ops,
                self.model.dtype,
                threads=self.threads,
                label=f"snpe:{self.model.name}:cpu",
            )
            self.stats.compute_us_total += work
        duration = self.kernel.now - start
        self.stats.record_invoke(duration)
        return duration

    def describe_plan(self):
        return f"all {self.model.op_count} ops on snpe-{self.runtime}"
