"""TFLite-style interpreter with CPU execution and optional delegates.

The interpreter owns model load/parse, then either runs the graph on N
CPU threads with tuned kernels or hands the whole graph to a delegate
(GPU or Hexagon). Matches the structure of the TFLite benchmark
utility the paper uses (§III-B): init once, invoke many times.
"""

from repro.android.thread import Work
from repro.frameworks.base import InferenceSession, InferenceStats, UnsupportedModelError
from repro.frameworks.cpu_kernels import (
    IMPL_TUNED,
    graph_cpu_work_us,
    parallel_efficiency,
)
from repro.sim.probes import probe

#: Flatbuffer parse cost per op during model load.
_PARSE_PER_OP_US = 1.5
#: Interpreter tensor allocation per op.
_ALLOC_PER_OP_US = 0.8


def run_graph_on_cpu(kernel, ops, dtype, threads=4, impl=IMPL_TUNED,
                     label="inference", affinity=None):
    """Generator: execute an op list on ``threads`` CPU threads.

    The calling thread acts as worker 0; helpers are spawned for the
    rest and joined. Contention with background load emerges naturally
    from the scheduler (paper Fig. 10).
    """
    total_work = graph_cpu_work_us(ops, dtype, impl)
    if threads <= 1:
        yield Work(total_work, label=label)
        return total_work
    efficiency = parallel_efficiency(threads)
    share = total_work / (threads * efficiency)

    def helper():
        yield Work(share, label=f"{label}:worker")

    helpers = [
        kernel.spawn(helper(), name=f"{label}:w{index}", affinity=affinity)
        for index in range(1, threads)
    ]
    yield Work(share, label=f"{label}:w0")
    for thread in helpers:
        if not thread.done.triggered:
            from repro.android.thread import WaitFor

            yield WaitFor(thread.done)
    return total_work


class TfliteInterpreter(InferenceSession):
    """One TFLite interpreter instance bound to a model."""

    def __init__(self, kernel, model, threads=4, delegate=None, affinity=None):
        self.kernel = kernel
        self.model = model
        self.threads = threads
        self.delegate = delegate
        self.affinity = affinity
        self.prepared = False
        self.stats = InferenceStats(
            model_name=model.name,
            framework="tflite" if delegate is None else f"tflite+{delegate.name}",
        )
        # Invoke-span label and metadata are fixed for the session;
        # rendering them per invoke would allocate even on untraced
        # runs (probes copy the shared dict into each span).
        if delegate is None:
            self._invoke_span_label = "cpu_invoke"
            self._invoke_span_meta = {
                "model": model.name, "threads": threads,
            }
        else:
            self._invoke_span_label = "delegate_invoke:" + delegate.name
            self._invoke_span_meta = {"model": model.name}

    def prepare(self):
        """Model load + tensor allocation + delegate initialization."""
        start = self.kernel.now
        memory = self.kernel.soc.memory
        with probe(self.kernel, "tflite", "load",
                   {"model": self.model.name}):
            load_us = memory.dram_copy_us(self.model.weight_bytes)
            parse_us = self.model.op_count * (
                _PARSE_PER_OP_US + _ALLOC_PER_OP_US
            )
            yield Work(load_us + parse_us, label="tflite:load")
        if self.delegate is not None:
            if not self.delegate.covers(self.model):
                raise UnsupportedModelError(
                    f"{self.delegate.name} cannot run {self.model.name} "
                    f"[{self.model.dtype}]"
                )
            with probe(self.kernel, "tflite",
                       f"delegate_init:{self.delegate.name}"):
                yield from self.delegate.init(self.model)
        self.prepared = True
        self.stats.init_us = self.kernel.now - start

    def invoke(self):
        """One inference; returns wall duration in simulated us."""
        if not self.prepared:
            raise RuntimeError("invoke() before prepare()")
        start = self.kernel.now
        if self.delegate is not None:
            with probe(self.kernel, "tflite", self._invoke_span_label,
                       self._invoke_span_meta):
                compute_us = yield from self.delegate.invoke(self.model)
            self.stats.compute_us_total += compute_us
        else:
            with probe(self.kernel, "tflite", self._invoke_span_label,
                       self._invoke_span_meta):
                work = yield from run_graph_on_cpu(
                    self.kernel,
                    self.model.ops,
                    self.model.dtype,
                    threads=self.threads,
                    label=f"{self.model.name}:cpu",
                    affinity=self.affinity,
                )
            self.stats.compute_us_total += work
        duration = self.kernel.now - start
        self.stats.record_invoke(duration)
        return duration

    def describe_plan(self):
        if self.delegate is not None:
            return f"all {self.model.op_count} ops on {self.delegate.name}"
        return (
            f"all {self.model.op_count} ops on cpu x{self.threads} threads"
        )
