"""Bounded admission: the decision made before any work is queued.

An inference service protects itself at the front door. When the number
of admitted-but-unfinished requests reaches the configured bound, the
admission queue applies one of three policies:

``drop``
    Discard silently (UDP-style telemetry ingestion). Cheapest; the
    client discovers nothing.
``reject``
    Fail fast with an error response (the online-API default). Same
    capacity math as drop, but the client can back off or retry
    elsewhere — and the rejection is visible in the result.
``shed``
    Admit anyway, but serve with the backend's *degraded* model variant
    (a distilled/smaller model kept warm for exactly this moment), so
    the user gets a worse answer instead of no answer. Sheds do not
    count against the bound they exceeded — they are the pressure
    valve, not a new queue.
"""

from dataclasses import dataclass

from repro.service.request import (
    OUTCOME_DROPPED,
    OUTCOME_PENDING,
    OUTCOME_REJECTED,
)

POLICY_DROP = "drop"
POLICY_REJECT = "reject"
POLICY_SHED = "shed"

POLICIES = (POLICY_DROP, POLICY_REJECT, POLICY_SHED)

#: Admission decisions handed back to the driver.
ADMIT = "admit"
#: Admitted, but flagged for the degraded model variant.
ADMIT_DEGRADED = "admit_degraded"
TURN_AWAY = "turn_away"


@dataclass
class AdmissionQueue:
    """Bounded admission control over the service's outstanding work.

    ``capacity`` bounds the requests admitted but not yet completed
    (queued anywhere in the service plus in flight on a backend).
    ``admit`` is called at each arrival with the current outstanding
    count and decides the request's fate per the policy, updating the
    tally counters the :class:`~repro.service.simulate.ServiceResult`
    reports.
    """

    capacity: int
    policy: str = POLICY_REJECT
    admitted: int = 0
    dropped: int = 0
    rejected: int = 0
    shed: int = 0

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown admission policy {self.policy!r}; "
                f"known: {POLICIES}"
            )

    def admit(self, request, outstanding):
        """Decide a request's fate; returns an admission decision.

        Mutates ``request.outcome`` (and ``degraded``) for turned-away
        and shed requests so the request record is self-describing.
        """
        if request.outcome != OUTCOME_PENDING:
            raise ValueError(
                f"request {request.request_id} already decided: "
                f"{request.outcome!r}"
            )
        if outstanding < self.capacity:
            self.admitted += 1
            return ADMIT
        if self.policy == POLICY_DROP:
            self.dropped += 1
            request.outcome = OUTCOME_DROPPED
            return TURN_AWAY
        if self.policy == POLICY_REJECT:
            self.rejected += 1
            request.outcome = OUTCOME_REJECTED
            return TURN_AWAY
        self.shed += 1
        self.admitted += 1
        request.degraded = True
        return ADMIT_DEGRADED

    def counters(self):
        """Tally snapshot for result export."""
        return {
            "admitted": self.admitted,
            "dropped": self.dropped,
            "rejected": self.rejected,
            "shed": self.shed,
        }
