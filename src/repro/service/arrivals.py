"""Backwards-compatible alias for :mod:`repro.apps.arrivals`.

Open-loop arrival processes are *load generation* — the same machinery
drives both the MLPerf-style loadgen scenarios
(:mod:`repro.apps.loadgen`) and the service tier's offered traffic —
so they live with the workload layer in :mod:`repro.apps.arrivals`.
Import from there in new code.
"""

from repro.apps.arrivals import (  # noqa: F401
    ARRIVAL_KINDS,
    DIURNAL,
    POISSON,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)

__all__ = [
    "ARRIVAL_KINDS",
    "DIURNAL",
    "POISSON",
    "DiurnalArrivals",
    "PoissonArrivals",
    "make_arrivals",
]
