"""Backend pool: the device fleet seen from the service's side.

A service backend is one device from a
:class:`~repro.fleet.population.DevicePopulation`, reduced to the
profile the router and batcher need: how long one request takes, split
into the inference compute (which dynamic batching amortizes) and the
per-request AI tax (pre/post-processing and framework glue, which it
does not — the paper's central measurement, surfacing here as the term
that caps how much batching can buy).

Profiles are *calibrated by simulation*: :func:`build_pool` expands the
population deterministically and runs each device session through the
full per-device simulator (:func:`repro.fleet.session.simulate_session`
— FastRPC, NNAPI partitioning, DVFS, thermal, and injected faults all
included), then takes steady-state per-stage means. A session the
simulator kills (an un-recovered injected fault on a vendor runtime)
produces *no* backend: under chaos the pool itself shrinks, which is
exactly the goodput-collapse mechanism the chaos experiment measures.
"""

from dataclasses import dataclass

from repro.fleet import (
    STAGE_FIELDS,
    SessionSpec,
    simulate_session_payload,
)

#: Fraction of the single-request inference cost each *additional*
#: batched request adds (1.0 = no amortization; 0.0 = free riders).
DEFAULT_BATCH_MARGINAL = 0.35

#: Service-time scale of the degraded (shed-to) model variant.
DEFAULT_DEGRADED_SCALE = 0.4


@dataclass(frozen=True)
class BackendProfile:
    """One backend's calibrated service-time model.

    ``inference_us`` and ``tax_us`` are steady-state per-request means
    from the device simulation (``tax_us`` pools the pre/post/other
    stages; capture is excluded — service requests arrive with their
    payload). ``batch_marginal`` is the incremental inference cost
    fraction per extra batched item; ``degraded_scale`` scales both
    components for shed-to-degraded requests.
    """

    backend_id: int
    name: str
    inference_us: float
    tax_us: float
    batch_marginal: float = DEFAULT_BATCH_MARGINAL
    degraded_scale: float = DEFAULT_DEGRADED_SCALE

    def __post_init__(self):
        if self.inference_us <= 0:
            raise ValueError(
                f"inference_us must be > 0, got {self.inference_us}"
            )
        if self.tax_us < 0:
            raise ValueError(f"tax_us must be >= 0, got {self.tax_us}")
        if not 0.0 <= self.batch_marginal <= 1.0:
            raise ValueError(
                f"batch_marginal must be in [0, 1], got "
                f"{self.batch_marginal}"
            )
        if not 0.0 < self.degraded_scale <= 1.0:
            raise ValueError(
                f"degraded_scale must be in (0, 1], got "
                f"{self.degraded_scale}"
            )

    def _item_scale(self, degraded):
        return self.degraded_scale if degraded else 1.0

    def batch_inference_us(self, degraded_flags):
        """Inference compute of one batch (µs).

        The first item pays its full cost; each further item pays only
        ``batch_marginal`` of its own single-request cost — weights
        load once, activations stream through together.
        """
        total_us = 0.0
        for index, degraded in enumerate(degraded_flags):
            share = 1.0 if index == 0 else self.batch_marginal
            total_us += self.inference_us * self._item_scale(degraded) * share
        return total_us

    def batch_tax_us(self, degraded_flags):
        """Non-inference service work of one batch (µs); per item."""
        return sum(
            self.tax_us * self._item_scale(degraded)
            for degraded in degraded_flags
        )

    def batch_service_us(self, degraded_flags):
        """End-to-end backend busy time for one batch (µs)."""
        return (
            self.batch_inference_us(degraded_flags)
            + self.batch_tax_us(degraded_flags)
        )

    def steady_rate_rps(self, batch_size):
        """Sustained request rate at saturation with full batches."""
        from repro.sim import units

        flags = (False,) * max(1, int(batch_size))
        return len(flags) / units.to_seconds(self.batch_service_us(flags))

    def to_dict(self):
        from repro.sim import units

        return {
            "backend_id": self.backend_id,
            "name": self.name,
            "inference_ms": units.to_ms(self.inference_us),
            "tax_ms": units.to_ms(self.tax_us),
            "batch_marginal": self.batch_marginal,
            "degraded_scale": self.degraded_scale,
        }


def profile_from_payload(backend_id, payload,
                         batch_marginal=DEFAULT_BATCH_MARGINAL,
                         degraded_scale=DEFAULT_DEGRADED_SCALE):
    """A :class:`BackendProfile` from a session-result payload.

    Steady-state runs only (the cold start is a session event, not a
    per-request cost); ``None`` when the payload is a failed session.
    """
    if payload.get("error") is not None or not payload.get("runs"):
        return None
    spec = SessionSpec.from_dict(payload["spec"])
    steady = payload["runs"][1:] or payload["runs"]
    count = len(steady)
    inference_us = sum(run["inference_us"] for run in steady) / count
    tax_us = sum(
        sum(run[stage] for stage in STAGE_FIELDS
            if stage not in ("inference_us", "capture_us"))
        for run in steady
    ) / count
    name = (
        f"{spec.soc}/{spec.model_key}-{spec.dtype}/{spec.target}"
        f"#{spec.session_id}"
    )
    return BackendProfile(
        backend_id=backend_id,
        name=name,
        inference_us=inference_us,
        tax_us=tax_us,
        batch_marginal=batch_marginal,
        degraded_scale=degraded_scale,
    )


def build_pool(population=None, devices=4, seed=0, runs=3, fault_rate=None,
               batch_marginal=DEFAULT_BATCH_MARGINAL,
               degraded_scale=DEFAULT_DEGRADED_SCALE):
    """Calibrate a backend pool from a device population.

    Returns ``(profiles, failures)``: the live pool (backend ids dense,
    in session order) and the structured errors of sessions whose
    simulation died — under injected faults the vendor-runtime slice
    does, shrinking the pool. Raises when *no* session survives, since
    a service with zero backends cannot run at all.
    """
    from repro.fleet import expand_population, paper_population

    if population is None:
        population = paper_population()
    if runs is not None:
        population = population.with_runs(runs)
    if fault_rate is not None:
        population = population.with_fault_rate(fault_rate)
    specs = expand_population(population, devices, seed=seed)
    profiles = []
    failures = []
    for spec in specs:
        payload = simulate_session_payload(spec.to_dict())
        profile = profile_from_payload(
            len(profiles), payload,
            batch_marginal=batch_marginal, degraded_scale=degraded_scale,
        )
        if profile is None:
            failures.append({
                "session_id": spec.session_id,
                "target": spec.target,
                "error": payload.get("error"),
            })
        else:
            profiles.append(profile)
    if not profiles:
        raise RuntimeError(
            f"no backend survived calibration: {len(failures)} of "
            f"{len(specs)} sessions failed"
        )
    return profiles, failures


def pool_capacity_rps(profiles, batch_size):
    """Aggregate saturation rate of a pool at a given batch size."""
    return sum(
        profile.steady_rate_rps(batch_size) for profile in profiles
    )
