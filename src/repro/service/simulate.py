"""The service run loop: offered load in, :class:`ServiceResult` out.

:func:`run_service` wires the subsystem together on one discrete-event
simulator: a deterministic open-loop arrival process drives requests
through bounded admission, join-shortest-queue routing, and per-backend
dynamic batching over a pool calibrated from the device fleet. The
result separates the two numbers the whole tier exists to distinguish:

* **throughput** — completed requests per second, and
* **goodput** — completed requests per second *that met their SLO*,

plus per-percentile latency, SLO-miss attribution (queueing vs
inference vs AI tax), the admission ledger, and the queue-depth time
series. Same config and seed — byte-identical export, always; the
determinism sanitizer (``python -m repro sanitize serve``) holds the
run loop to that.
"""

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field

from repro.core import percentile
from repro.faults import (
    FAULT_SSR,
    FAULT_TIMEOUT,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    derived_seed,
)
from repro.service.admission import (
    POLICY_REJECT,
    TURN_AWAY,
    AdmissionQueue,
    POLICIES,
)
from repro.apps.arrivals import ARRIVAL_KINDS, POISSON, make_arrivals
from repro.service.backends import build_pool
from repro.service.batcher import DynamicBatcher
from repro.service.health import (
    BreakerConfig,
    BrownoutController,
    HealthMonitor,
)
from repro.service.request import MISS_BUCKETS, Request
from repro.service.router import Backend, Router
from repro.sim import Simulator, units


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that determines one service run."""

    #: Mean offered load, requests per second.
    rate_rps: float = 200.0
    #: Simulated traffic window, seconds.
    duration_s: float = 1.0
    #: Arrival process: ``poisson`` or ``diurnal``.
    arrivals: str = POISSON
    diurnal_amplitude: float = 0.6
    diurnal_period_s: float = 0.5
    #: Per-request latency budget; ``None`` disables the SLO.
    slo_ms: float = 50.0
    #: Bound on admitted-but-unfinished requests.
    queue_capacity: int = 64
    #: Over-capacity policy: ``drop`` / ``reject`` / ``shed``.
    policy: str = POLICY_REJECT
    #: Dynamic batcher: flush at this many requests ...
    max_batch: int = 4
    #: ... or once the oldest has waited this long.
    max_delay_ms: float = 5.0
    #: Devices expanded from the population into the backend pool.
    devices: int = 4
    #: Per-session iterations when calibrating backend profiles.
    calibration_runs: int = 3
    #: Per-call fault probability during calibration (chaos variant).
    fault_rate: float = 0.0
    #: Per-batch fault probability at each *serving* backend (a faulted
    #: batch burns its service time, completes nothing, and sends its
    #: requests back to the router).
    backend_fault_rate: float = 0.0
    #: Inject an SSR storm: affected backends take a subsystem restart
    #: on their first batch at or after this simulated time (ms).
    ssr_storm_ms: float = None
    #: How many backends (pool order) the storm hits; ``None`` = all.
    ssr_storm_backends: int = None
    #: Reboot window a backend loses after an SSR fault, ms.
    ssr_recovery_ms: float = 80.0
    #: Times a failed request is re-routed before it fails for good.
    redispatch_limit: int = 2
    #: Per-backend circuit breakers (ejected from routing while open).
    breakers: bool = True
    breaker_failure_threshold: int = 1
    breaker_recovery_ms: float = 100.0
    breaker_half_open_probes: int = 2
    #: Brownout watermarks over outstanding requests: enter degraded
    #: execution at ``high``, exit at ``low`` (``None`` disables).
    brownout_high: int = None
    brownout_low: int = None
    seed: int = 0
    trace: bool = False

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be > 0, got {self.duration_s}"
            )
        if self.arrivals not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrivals {self.arrivals!r}; "
                f"known: {ARRIVAL_KINDS}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; known: {POLICIES}"
            )
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be > 0, got {self.slo_ms}")
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if not 0.0 <= self.backend_fault_rate <= 1.0:
            raise ValueError(
                f"backend_fault_rate must be in [0, 1], got "
                f"{self.backend_fault_rate}"
            )
        if self.ssr_recovery_ms < 0:
            raise ValueError(
                f"ssr_recovery_ms must be >= 0, got "
                f"{self.ssr_recovery_ms}"
            )
        if self.redispatch_limit < 0:
            raise ValueError(
                f"redispatch_limit must be >= 0, got "
                f"{self.redispatch_limit}"
            )
        if self.ssr_storm_backends is not None and self.ssr_storm_backends < 1:
            raise ValueError(
                f"ssr_storm_backends must be >= 1, got "
                f"{self.ssr_storm_backends}"
            )
        if (self.brownout_high is None) != (self.brownout_low is None):
            if self.brownout_high is None:
                raise ValueError(
                    "brownout_low requires brownout_high"
                )

    @property
    def faulty_backends(self):
        """Whether serving backends can fail under this config."""
        return (
            self.backend_fault_rate > 0.0 or self.ssr_storm_ms is not None
        )

    @property
    def slo_us(self):
        """The latency budget in simulator microseconds (inf = none)."""
        return math.inf if self.slo_ms is None else units.ms(self.slo_ms)

    def to_dict(self):
        return asdict(self)


@dataclass
class ServiceResult:
    """Aggregated outcome of one service run (JSON-able, sortable)."""

    config: dict
    backends: list
    #: Calibration sessions that died (chaos shrinks the pool).
    pool_failures: list
    offered: int
    completed: int
    met_slo: int
    dropped: int
    rejected: int
    shed: int
    elapsed_ms: float
    throughput_rps: float
    goodput_rps: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    #: SLO-missed completions by dominant component
    #: (queueing / inference / ai_tax).
    miss_attribution: dict
    #: ``[time_ms, outstanding]`` samples at every admission/completion.
    depth_series: list = field(default_factory=list)
    #: Requests that exhausted the redispatch budget.
    failed: int = 0
    #: Successful re-routes after backend batch failures.
    redispatched: int = 0
    #: Per-backend breaker ledger (empty when health is disabled).
    health: list = field(default_factory=list)
    #: Brownout-controller ledger (``None`` when disabled).
    brownout: dict = None

    @property
    def turned_away(self):
        return self.dropped + self.rejected

    @property
    def slo_miss_rate(self):
        """Fraction of *offered* load that got no timely good answer."""
        if not self.offered:
            return 0.0
        return 1.0 - self.met_slo / self.offered

    def to_dict(self):
        return {
            "config": self.config,
            "backends": self.backends,
            "pool_failures": self.pool_failures,
            "offered": self.offered,
            "completed": self.completed,
            "met_slo": self.met_slo,
            "dropped": self.dropped,
            "rejected": self.rejected,
            "shed": self.shed,
            "elapsed_ms": self.elapsed_ms,
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "p50_ms": self.p50_ms,
            "p90_ms": self.p90_ms,
            "p99_ms": self.p99_ms,
            "miss_attribution": self.miss_attribution,
            "slo_miss_rate": self.slo_miss_rate,
            "depth_series": self.depth_series,
            "failed": self.failed,
            "redispatched": self.redispatched,
            "health": self.health,
            "brownout": self.brownout,
        }

    def to_json(self):
        """Canonical JSON: sorted keys, fixed separators.

        Two same-seed runs must produce byte-identical output — the
        acceptance bar the CI ``service-smoke`` job compares with
        ``cmp``.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self):
        """sha256 of the canonical JSON export."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def write_json(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def render(self):
        """Human-readable summary for the ``serve`` CLI."""
        config = self.config
        slo_ms = config.get("slo_ms")
        lines = [
            (
                f"service: {len(self.backends)} backends "
                f"({len(self.pool_failures)} calibration failures), "
                f"{config['arrivals']} {config['rate_rps']:g} rps for "
                f"{config['duration_s']:g} s (seed {config['seed']})"
            ),
            (
                f"admission: capacity {config['queue_capacity']}, "
                f"policy {config['policy']}; batcher: max "
                f"{config['max_batch']} / {config['max_delay_ms']:g} ms"
            ),
            (
                f"offered {self.offered}  completed {self.completed}  "
                f"rejected {self.rejected}  dropped {self.dropped}  "
                f"shed {self.shed}"
            ),
            (
                f"throughput {self.throughput_rps:.1f} rps   "
                f"goodput {self.goodput_rps:.1f} rps"
                + (
                    f"   ({self.met_slo}/{self.completed} completions "
                    f"met the {slo_ms:g} ms SLO)"
                    if slo_ms is not None and self.completed
                    else "   (no SLO: goodput == throughput)"
                )
            ),
            (
                f"latency: p50 {self.p50_ms:.2f} ms  "
                f"p90 {self.p90_ms:.2f} ms  p99 {self.p99_ms:.2f} ms"
            ),
            (
                "slo misses: "
                + ", ".join(
                    f"{bucket} {self.miss_attribution.get(bucket, 0)}"
                    for bucket in MISS_BUCKETS
                )
                + f", turned away {self.turned_away}"
            ),
        ]
        if self.failed or self.redispatched or self.health:
            opens = sum(entry["opens"] for entry in self.health)
            lines.append(
                f"resilience: failed {self.failed}, redispatched "
                f"{self.redispatched}, breaker opens {opens}"
                + (
                    f", brownout episodes {self.brownout['episodes']} "
                    f"({self.brownout['degraded_requests']} degraded)"
                    if self.brownout else ""
                )
            )
        return "\n".join(lines)


def run_service(config=None, population=None, profiles=None, **overrides):
    """Run one service simulation; returns a :class:`ServiceResult`.

    ``profiles`` short-circuits pool calibration (sweeps reuse one
    calibrated pool across points); otherwise the pool is built from
    ``population`` (default: the paper population) at the config's
    ``fault_rate``. Keyword overrides build a config when none is
    given.
    """
    if config is None:
        config = ServiceConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config or overrides, not both")
    if profiles is None:
        profiles, pool_failures = build_pool(
            population=population,
            devices=config.devices,
            seed=config.seed,
            runs=config.calibration_runs,
            fault_rate=config.fault_rate,
        )
    else:
        pool_failures = []

    sim = Simulator(seed=config.seed, trace=config.trace)
    requests = []
    completed = []
    failed = []
    depth_series = []

    def on_complete(request):
        completed.append(request)
        depth_series.append(
            [units.to_ms(sim.now), router.outstanding]
        )
        if brownout is not None:
            brownout.update(router.outstanding, sim)

    def on_request_failed(request):
        failed.append(request)
        depth_series.append(
            [units.to_ms(sim.now), router.outstanding]
        )

    def on_batch_failed(request):
        router.redispatch(request)

    # Health plumbing exists only when backends can actually fail, so
    # the fault-free service run loop stays event-for-event identical
    # to a build without this module.
    monitor = None
    brownout = None
    injectors = {}
    if config.faulty_backends:
        storm_ids = set()
        if config.ssr_storm_ms is not None:
            hit = (
                len(profiles) if config.ssr_storm_backends is None
                else min(config.ssr_storm_backends, len(profiles))
            )
            storm_ids = {
                profile.backend_id for profile in profiles[:hit]
            }
        storm = (
            FaultSpec(FAULT_SSR, at_time_us=units.ms(config.ssr_storm_ms)),
        ) if storm_ids else ()
        injectors = {
            profile.backend_id: FaultInjector(FaultPlan(
                specs=storm if profile.backend_id in storm_ids else (),
                rate=config.backend_fault_rate,
                seed=derived_seed(
                    config.seed, f"backend{profile.backend_id}"
                ),
                kinds=(FAULT_TIMEOUT, FAULT_SSR),
            ))
            for profile in profiles
        }
        if config.breakers:
            monitor = HealthMonitor(
                sim,
                [profile.backend_id for profile in profiles],
                BreakerConfig(
                    failure_threshold=config.breaker_failure_threshold,
                    recovery_us=units.ms(config.breaker_recovery_ms),
                    half_open_probes=config.breaker_half_open_probes,
                ),
            )
    if config.brownout_high is not None:
        brownout = BrownoutController(
            config.brownout_high, config.brownout_low
        )

    backends = [
        Backend(
            sim,
            profile,
            DynamicBatcher(
                max_batch=config.max_batch,
                max_delay_us=units.ms(config.max_delay_ms),
            ),
            on_complete,
            injector=injectors.get(profile.backend_id),
            health=monitor,
            on_failed=on_batch_failed,
            ssr_recovery_us=units.ms(config.ssr_recovery_ms),
        )
        for profile in profiles
    ]
    router = Router(
        sim,
        backends,
        health=monitor,
        brownout=brownout,
        redispatch_limit=config.redispatch_limit,
        on_failed=on_request_failed,
    )
    admission = AdmissionQueue(
        capacity=config.queue_capacity, policy=config.policy
    )
    arrivals = make_arrivals(
        config.arrivals,
        config.rate_rps,
        seed=config.seed,
        amplitude=config.diurnal_amplitude,
        period_s=config.diurnal_period_s,
    )
    times_us = arrivals.times_us(
        duration_us=units.seconds(config.duration_s)
    )

    def driver():
        slo_us = config.slo_us
        for index, arrival_us in enumerate(times_us):
            if arrival_us > sim.now:
                yield sim.timeout(
                    arrival_us - sim.now, name="service:arrival"
                )
            request = Request(
                request_id=index, arrival_us=sim.now, slo_us=slo_us
            )
            requests.append(request)
            decision = admission.admit(request, router.outstanding)
            if decision == TURN_AWAY:
                continue
            router.dispatch(request)
            depth_series.append(
                [units.to_ms(sim.now), router.outstanding]
            )

    sim.process(driver(), name="service:driver")
    sim.run()
    return _assemble(
        config, backends, pool_failures, admission, requests, completed,
        depth_series, router=router, monitor=monitor, brownout=brownout,
    )


def _assemble(config, backends, pool_failures, admission, requests,
              completed, depth_series, router=None, monitor=None,
              brownout=None):
    latencies_ms = [
        units.to_ms(request.latency_us) for request in completed
    ]
    met = [request for request in completed if request.met_slo]
    misses = {bucket: 0 for bucket in MISS_BUCKETS}
    for request in completed:
        if not request.met_slo:
            misses[request.miss_attribution()] += 1
    last_done_us = max(
        (request.done_us for request in completed), default=0.0
    )
    elapsed_us = max(units.seconds(config.duration_s), last_done_us)
    elapsed_s = units.to_seconds(elapsed_us)
    counters = admission.counters()
    return ServiceResult(
        config=config.to_dict(),
        backends=[backend.to_dict() for backend in backends],
        pool_failures=pool_failures,
        offered=len(requests),
        completed=len(completed),
        met_slo=len(met),
        dropped=counters["dropped"],
        rejected=counters["rejected"],
        shed=counters["shed"],
        elapsed_ms=units.to_ms(elapsed_us),
        throughput_rps=len(completed) / elapsed_s,
        goodput_rps=len(met) / elapsed_s,
        p50_ms=percentile(latencies_ms, 0.50),
        p90_ms=percentile(latencies_ms, 0.90),
        p99_ms=percentile(latencies_ms, 0.99),
        miss_attribution=misses,
        depth_series=depth_series,
        failed=router.failed if router is not None else 0,
        redispatched=router.redispatches if router is not None else 0,
        health=monitor.to_dict() if monitor is not None else [],
        brownout=brownout.to_dict() if brownout is not None else None,
    )
