"""Dynamic batching: the throughput-vs-latency knob, made explicit.

A backend runs whole batches; requests arrive one at a time. The
:class:`DynamicBatcher` holds a backend's admitted requests and decides
when a batch is ready: when ``max_batch`` requests are waiting, or when
the *oldest* has waited ``max_delay_us`` — whichever comes first. A
larger ``max_batch`` amortizes the inference compute (higher
throughput); a larger ``max_delay_us`` gives batches time to fill but
spends each request's latency budget doing it. The tradeoff curve
between the two is the ``service_goodput`` experiment's first output.

This class is pure bookkeeping — simulated time comes in as arguments —
so the flush policy is unit-testable without an engine; the DES side
lives in :class:`repro.service.router.Backend`.
"""

import math
from dataclasses import dataclass, field


@dataclass
class DynamicBatcher:
    """Per-backend batch formation: max size plus max queue delay."""

    max_batch: int
    max_delay_us: float
    #: FIFO of ``(enqueue_us, request)`` pairs.
    pending: list = field(default_factory=list)

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_us < 0:
            raise ValueError(
                f"max_delay_us must be >= 0, got {self.max_delay_us}"
            )

    def __len__(self):
        return len(self.pending)

    def push(self, request, now_us):
        """Append a request at the current simulated time."""
        self.pending.append((now_us, request))

    def deadline_us(self):
        """When the oldest pending request forces a flush (inf if idle)."""
        if not self.pending:
            return math.inf
        oldest_us, _request = self.pending[0]
        return oldest_us + self.max_delay_us

    def ready(self, now_us):
        """Whether a batch should flush now."""
        if not self.pending:
            return False
        if len(self.pending) >= self.max_batch:
            return True
        return now_us >= self.deadline_us()

    def take(self):
        """Pop the next batch (up to ``max_batch`` requests, FIFO)."""
        if not self.pending:
            raise ValueError("take() on an empty batcher")
        batch = [request for _enqueue_us, request in
                 self.pending[: self.max_batch]]
        del self.pending[: self.max_batch]
        return batch
