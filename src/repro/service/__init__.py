"""An inference service tier over the simulated device fleet.

The paper measures per-device AI tax; this package builds the layer a
"millions of users" deployment puts above those devices: a simulated
cloud/edge inference service whose backends are
:mod:`repro.fleet` population members. Open-loop Poisson/diurnal
traffic (:mod:`~repro.apps.arrivals`) flows through bounded
admission (:mod:`~repro.service.admission`), deterministic
join-shortest-queue routing and per-backend dynamic batching
(:mod:`~repro.service.router`, :mod:`~repro.service.batcher`) over a
pool calibrated by full device simulation
(:mod:`~repro.service.backends`), and aggregates into a
:class:`~repro.service.simulate.ServiceResult` whose headline metric is
**goodput** — requests per second that met their SLO — against raw
throughput.

Entry points: ``python -m repro serve``, the ``service_goodput`` /
``service_chaos`` experiments, and :func:`run_service`.
"""

from repro.service.admission import (
    POLICIES,
    POLICY_DROP,
    POLICY_REJECT,
    POLICY_SHED,
    AdmissionQueue,
)
from repro.apps.arrivals import (
    ARRIVAL_KINDS,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.service.backends import (
    BackendProfile,
    build_pool,
    pool_capacity_rps,
)
from repro.service.batcher import DynamicBatcher
from repro.service.health import (
    BreakerConfig,
    BrownoutController,
    CircuitBreaker,
    HealthMonitor,
)
from repro.service.request import Request
from repro.service.router import Backend, Router
from repro.service.simulate import ServiceConfig, ServiceResult, run_service

__all__ = [
    "ARRIVAL_KINDS",
    "POLICIES",
    "POLICY_DROP",
    "POLICY_REJECT",
    "POLICY_SHED",
    "AdmissionQueue",
    "Backend",
    "BackendProfile",
    "BreakerConfig",
    "BrownoutController",
    "CircuitBreaker",
    "DiurnalArrivals",
    "DynamicBatcher",
    "HealthMonitor",
    "PoissonArrivals",
    "Request",
    "Router",
    "ServiceConfig",
    "ServiceResult",
    "build_pool",
    "make_arrivals",
    "pool_capacity_rps",
    "run_service",
]
