"""Per-backend health: circuit breakers, probes, and brownout.

The fault package (PR 3) gave the *device* stack its recovery story —
watchdog timeouts, DSP subsystem restarts, retry policies. This module
gives the *service* tier its own: each backend carries a three-state
circuit breaker fed by its batch outcomes, the router ejects backends
whose breaker is open, a half-open probe window decides when an ejected
backend may rejoin, and a brownout controller degrades execution (the
shed-to-degraded model variant) under sustained overload instead of
letting the queue melt down.

Everything here is driven by **simulated** time and deterministic
failure events (the per-backend :class:`~repro.faults.FaultInjector`
schedules are stateless hashes), so two same-seed runs transition
breakers identically and export byte-identical results — the same
contract as the rest of the service tier.

States
------

``closed``
    Healthy: requests route here normally. ``failure_threshold``
    consecutive batch failures trip the breaker.
``open``
    Ejected from routing. After ``recovery_us`` of simulated time the
    breaker becomes eligible for half-open probing.
``half_open``
    Up to ``half_open_probes`` requests are let through as probes; the
    next batch outcome decides — success closes the breaker, failure
    re-opens it (with a fresh recovery window).
"""

from dataclasses import dataclass

from repro.sim.probes import counter, instant

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"

STATES = (STATE_CLOSED, STATE_OPEN, STATE_HALF_OPEN)

#: Counter-span encoding of breaker states (``health:backend<N>``).
_STATE_LEVELS = {STATE_CLOSED: 0, STATE_HALF_OPEN: 1, STATE_OPEN: 2}


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables of one circuit breaker (shared across the pool)."""

    #: Consecutive batch failures that trip the breaker. The default is
    #: eager (one strike): a failed batch is expensive — it burned a
    #: full service time and re-dispatched its requests — and an SSR'd
    #: backend is guaranteed to be useless for its whole reboot window.
    failure_threshold: int = 1
    #: Simulated µs an open breaker stays ejected before probing.
    recovery_us: float = 100_000.0
    #: Requests admitted as probes while half-open.
    half_open_probes: int = 2

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got "
                f"{self.failure_threshold}"
            )
        if self.recovery_us <= 0:
            raise ValueError(
                f"recovery_us must be > 0, got {self.recovery_us}"
            )
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got "
                f"{self.half_open_probes}"
            )


class CircuitBreaker:
    """Closed / open / half-open breaker over one backend's outcomes."""

    def __init__(self, config=None):
        self.config = config or BreakerConfig()
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        self.opened_at_us = None
        self.probes_in_flight = 0
        #: Lifetime tallies for the health ledger.
        self.failures = 0
        self.successes = 0
        self.opens = 0
        #: Simulated time spent ejected (closed-off to new work).
        self.ejected_us = 0.0

    def allow(self, now_us):
        """Whether the router may send a request here right now.

        Advances ``open -> half_open`` when the recovery window has
        elapsed; in half-open, admits at most ``half_open_probes``
        requests until an outcome arrives.
        """
        if self.state == STATE_CLOSED:
            return True
        if self.state == STATE_OPEN:
            if now_us - self.opened_at_us < self.config.recovery_us:
                return False
            self._transition(STATE_HALF_OPEN, now_us)
        return self.probes_in_flight < self.config.half_open_probes

    def note_dispatch(self, now_us):
        """Record a routed request (counts probes while half-open)."""
        if self.state == STATE_HALF_OPEN:
            self.probes_in_flight += 1

    def record_success(self, now_us):
        """A batch served cleanly: close from half-open, reset strikes."""
        self.successes += 1
        self.consecutive_failures = 0
        if self.state == STATE_HALF_OPEN:
            self._transition(STATE_CLOSED, now_us)

    def record_failure(self, now_us):
        """A batch failed: trip from closed, re-open from half-open."""
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == STATE_HALF_OPEN:
            self._open(now_us)
        elif (
            self.state == STATE_CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self._open(now_us)

    def _open(self, now_us):
        self.opens += 1
        self._transition(STATE_OPEN, now_us)
        self.opened_at_us = now_us

    def _transition(self, state, now_us):
        if self.state == STATE_OPEN and self.opened_at_us is not None:
            self.ejected_us += now_us - self.opened_at_us
        self.state = state
        self.probes_in_flight = 0

    def to_dict(self):
        from repro.sim import units

        return {
            "state": self.state,
            "failures": self.failures,
            "successes": self.successes,
            "opens": self.opens,
            "ejected_ms": units.to_ms(self.ejected_us),
        }


class HealthMonitor:
    """The pool's breakers plus their observability plumbing.

    One :class:`CircuitBreaker` per backend id; the router consults
    :meth:`allow` at dispatch, the backends report batch outcomes, and
    every transition leaves an instant span plus a
    ``health:backend<N>`` counter in the trace (0 closed, 1 half-open,
    2 open) so ejection windows are visible in the same Perfetto
    timeline as the queues they protect.
    """

    def __init__(self, sim, backend_ids, config=None):
        self.sim = sim
        self.config = config or BreakerConfig()
        self.breakers = {
            backend_id: CircuitBreaker(self.config)
            for backend_id in backend_ids
        }

    def allow(self, backend_id):
        breaker = self.breakers[backend_id]
        before = breaker.state
        allowed = breaker.allow(self.sim.now)
        if breaker.state != before:
            self._mark(backend_id, breaker)
        return allowed

    def note_dispatch(self, backend_id):
        self.breakers[backend_id].note_dispatch(self.sim.now)

    def record_success(self, backend_id):
        breaker = self.breakers[backend_id]
        before = breaker.state
        breaker.record_success(self.sim.now)
        if breaker.state != before:
            self._mark(backend_id, breaker)

    def record_failure(self, backend_id):
        breaker = self.breakers[backend_id]
        before = breaker.state
        breaker.record_failure(self.sim.now)
        if breaker.state != before:
            self._mark(backend_id, breaker)

    def _mark(self, backend_id, breaker):
        instant(
            self.sim, f"health:{breaker.state}",
            {"backend": backend_id},
        )
        counter(
            self.sim, f"health:backend{backend_id}",
            _STATE_LEVELS[breaker.state],
        )

    def open_backends(self):
        """Backend ids currently ejected from routing."""
        return sorted(
            backend_id
            for backend_id, breaker in sorted(self.breakers.items())
            if breaker.state == STATE_OPEN
        )

    def to_dict(self):
        """Per-backend health ledger, in backend-id order."""
        return [
            dict(backend_id=backend_id, **breaker.to_dict())
            for backend_id, breaker in sorted(self.breakers.items())
        ]


class BrownoutController:
    """Degrade under sustained overload instead of melting down.

    Hysteresis over the pool's outstanding-request count: when it
    reaches ``high`` the service enters brownout and every subsequently
    dispatched request is served by the backend's *degraded* model
    variant (the same distilled/smaller variant the ``shed`` admission
    policy uses); once outstanding falls back to ``low`` the service
    exits. Driven purely by deterministic queue state, so brownout
    windows replay identically.
    """

    def __init__(self, high, low=None):
        if high < 1:
            raise ValueError(f"brownout high watermark must be >= 1, got {high}")
        if low is None:
            low = high // 2
        if not 0 <= low < high:
            raise ValueError(
                f"brownout low watermark must be in [0, high), got "
                f"{low} (high {high})"
            )
        self.high = high
        self.low = low
        self.active = False
        self.episodes = 0
        self.degraded_requests = 0

    def update(self, outstanding, sim=None):
        """Advance the hysteresis; returns whether brownout is active."""
        if not self.active and outstanding >= self.high:
            self.active = True
            self.episodes += 1
            instant(sim, "brownout:enter", {"outstanding": outstanding})
            counter(sim, "service:brownout", 1)
        elif self.active and outstanding <= self.low:
            self.active = False
            instant(sim, "brownout:exit", {"outstanding": outstanding})
            counter(sim, "service:brownout", 0)
        return self.active

    def degrade(self, request):
        """Apply brownout to a dispatched request."""
        if not request.degraded:
            request.degraded = True
            self.degraded_requests += 1

    def to_dict(self):
        return {
            "high": self.high,
            "low": self.low,
            "episodes": self.episodes,
            "degraded_requests": self.degraded_requests,
        }
