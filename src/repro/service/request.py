"""Requests: one unit of offered load, with its SLO and its audit trail.

A :class:`Request` carries the timestamps and per-stage attribution the
service records as the request moves arrival -> admission -> batch ->
backend -> completion. Everything is plain floats in simulated
microseconds, so a finished request serializes to a deterministic dict
and the whole population aggregates into a
:class:`~repro.service.simulate.ServiceResult`.
"""

import math
from dataclasses import dataclass, field

from repro.sim import units

#: Request outcomes.
OUTCOME_PENDING = "pending"
OUTCOME_OK = "ok"
#: Admission queue full, policy ``drop``: silently discarded.
OUTCOME_DROPPED = "dropped"
#: Admission queue full, policy ``reject``: failed fast with an error.
OUTCOME_REJECTED = "rejected"
#: Admitted but every serving attempt failed (backend faults exhausted
#: the redispatch budget).
OUTCOME_FAILED = "failed"

#: SLO-miss attribution buckets (the dominant latency component).
MISS_QUEUEING = "queueing"
MISS_INFERENCE = "inference"
MISS_AI_TAX = "ai_tax"

MISS_BUCKETS = (MISS_QUEUEING, MISS_INFERENCE, MISS_AI_TAX)


@dataclass
class Request:
    """One request: identity, SLO, lifecycle timestamps, attribution."""

    request_id: int
    arrival_us: float
    #: Latency budget; ``inf`` means no SLO (every completion is good).
    slo_us: float = math.inf
    #: Shed-to-degraded admission: served by the backend's degraded
    #: (cheaper) model variant instead of being turned away.
    degraded: bool = False
    outcome: str = OUTCOME_PENDING
    #: Times this request was re-routed after a backend batch failed.
    redispatches: int = 0
    backend_id: int = None
    #: Size of the batch this request was served in.
    batch_size: int = 0
    #: When the backend started serving the batch.
    start_us: float = None
    done_us: float = None
    #: Attributed latency components (µs): time not spent on this
    #: request's own work (admission wait, batch formation, and batch
    #: mates' service share) ...
    queue_us: float = 0.0
    #: ... this request's share of the batch's inference compute ...
    inference_us: float = 0.0
    #: ... and its non-inference service work (pre/post/glue): the AI
    #: tax, which batching does not amortize.
    tax_us: float = 0.0

    @property
    def completed(self):
        return self.outcome == OUTCOME_OK

    @property
    def latency_us(self):
        """Arrival-to-completion latency; ``None`` until completed."""
        if self.done_us is None:
            return None
        return self.done_us - self.arrival_us

    @property
    def met_slo(self):
        """Whether the request completed within its latency budget."""
        latency_us = self.latency_us
        return latency_us is not None and latency_us <= self.slo_us

    def miss_attribution(self):
        """Dominant latency component of an SLO miss.

        Only meaningful for completed requests that missed; returns one
        of :data:`MISS_BUCKETS` (ties break toward the earlier stage:
        queueing before inference before tax, matching the order the
        time was actually spent).
        """
        components = (
            (MISS_QUEUEING, self.queue_us),
            (MISS_INFERENCE, self.inference_us),
            (MISS_AI_TAX, self.tax_us),
        )
        best, best_us = components[0]
        for name, value_us in components[1:]:
            if value_us > best_us:
                best, best_us = name, value_us
        return best

    def to_dict(self):
        """JSON-able form (sorted keys happen at dump time)."""
        return {
            "request_id": self.request_id,
            "arrival_ms": units.to_ms(self.arrival_us),
            "slo_ms": (
                None if math.isinf(self.slo_us)
                else units.to_ms(self.slo_us)
            ),
            "outcome": self.outcome,
            "degraded": self.degraded,
            "redispatches": self.redispatches,
            "backend_id": self.backend_id,
            "batch_size": self.batch_size,
            "latency_ms": (
                None if self.latency_us is None
                else units.to_ms(self.latency_us)
            ),
            "queue_ms": units.to_ms(self.queue_us),
            "inference_ms": units.to_ms(self.inference_us),
            "tax_ms": units.to_ms(self.tax_us),
            "met_slo": self.met_slo,
        }
