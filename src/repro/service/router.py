"""Routing and backend execution on the discrete-event engine.

A :class:`Backend` pairs one calibrated
:class:`~repro.service.backends.BackendProfile` with a
:class:`~repro.service.batcher.DynamicBatcher` and a simulator process
that forms and serves batches. The :class:`Router` spreads admitted
requests across the pool with deterministic join-shortest-queue
(ties break toward the lowest backend id, so identical runs route
identically).

Queue depth and in-flight counts are exported as observability counter
spans (``service:depth``, ``service:backend<N>:depth``) whenever the
service simulator records a trace, so backpressure dynamics are
visible in the same Perfetto timeline as everything else.

Backends can also *fail*: given a per-backend
:class:`~repro.faults.FaultInjector`, each batch draws from the fault
plan, and a faulted batch burns its full service time and then
completes nothing — the requests go back to the router for redispatch,
the backend's :class:`~repro.service.health.HealthMonitor` breaker
records the failure (ejecting the backend from routing once it trips),
and an SSR fault additionally costs the backend a reboot window.
"""

from repro.faults import FAULT_SSR
from repro.sim.probes import counter, instant
from repro.service.request import OUTCOME_FAILED, OUTCOME_OK


class Backend:
    """One pool member: a batcher plus a serving process."""

    def __init__(self, sim, profile, batcher, on_complete,
                 injector=None, health=None, on_failed=None,
                 ssr_recovery_us=0.0):
        self.sim = sim
        self.profile = profile
        self.batcher = batcher
        self._on_complete = on_complete
        self.injector = injector
        self.health = health
        self._on_failed = on_failed
        self.ssr_recovery_us = ssr_recovery_us
        #: Requests being served in the current batch.
        self.inflight = 0
        self.served_batches = 0
        self.served_requests = 0
        self.failed_batches = 0
        self.failed_requests = 0
        #: Total simulated time this backend spent serving.
        self.busy_us = 0.0
        self._wakeup = None
        sim.process(
            self._loop(), name=f"service:backend{profile.backend_id}"
        )

    @property
    def depth(self):
        """Outstanding requests here: batching queue plus in flight."""
        return len(self.batcher) + self.inflight

    def enqueue(self, request):
        """Accept a routed request into the batching queue."""
        request.backend_id = self.profile.backend_id
        self.batcher.push(request, self.sim.now)
        counter(
            self.sim, f"service:backend{self.profile.backend_id}:depth",
            self.depth,
        )
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _wait(self, *events):
        self._wakeup = self.sim.event(
            name=f"service:backend{self.profile.backend_id}:wakeup"
        )
        if events:
            return self.sim.any_of([*events, self._wakeup])
        return self._wakeup

    def _loop(self):
        """Form and serve batches forever (parks when the queue drains).

        The process never returns: after the last arrival it blocks on a
        wakeup that never fires, and the simulation ends when the
        schedule drains around it.
        """
        while True:
            while not self.batcher.pending:
                yield self._wait()
                self._wakeup = None
            while not self.batcher.ready(self.sim.now):
                remaining_us = self.batcher.deadline_us() - self.sim.now
                yield self._wait(self.sim.timeout(remaining_us))
                self._wakeup = None
            batch = self.batcher.take()
            yield from self._serve(batch)

    def _serve(self, batch):
        flags = tuple(request.degraded for request in batch)
        inference_total_us = self.profile.batch_inference_us(flags)
        service_us = inference_total_us + self.profile.batch_tax_us(flags)
        start_us = self.sim.now
        self.inflight = len(batch)
        fault = (
            self.injector.draw(self.sim.now)
            if self.injector is not None else None
        )
        yield self.sim.timeout(
            service_us, name=f"service:batch[{len(batch)}]"
        )
        if fault is not None:
            yield from self._fail(batch, fault, service_us)
            return
        done_us = self.sim.now
        inference_share_us = inference_total_us / len(batch)
        for request in batch:
            request.batch_size = len(batch)
            request.start_us = start_us
            request.done_us = done_us
            request.inference_us = inference_share_us
            request.tax_us = (
                self.profile.tax_us
                * self.profile._item_scale(request.degraded)
            )
            # Everything that is not this request's own work — admission
            # wait, batch formation, and batch mates' shares — is
            # queueing/batching delay by definition, so the three
            # components sum exactly to the observed latency.
            request.queue_us = max(
                0.0,
                (done_us - request.arrival_us)
                - request.inference_us - request.tax_us,
            )
            request.outcome = OUTCOME_OK
        self.inflight = 0
        self.busy_us += service_us
        self.served_batches += 1
        self.served_requests += len(batch)
        counter(
            self.sim, f"service:backend{self.profile.backend_id}:depth",
            self.depth,
        )
        if self.health is not None:
            self.health.record_success(self.profile.backend_id)
        for request in batch:
            self._on_complete(request)

    def _fail(self, batch, fault, service_us):
        """A faulted batch: the service time is burned, nothing finishes.

        The requests return to the router for redispatch, the breaker
        (if any) records the failure, and an SSR fault additionally
        costs this backend its subsystem-reboot window before it can
        form another batch.
        """
        self.inflight = 0
        self.busy_us += service_us
        self.failed_batches += 1
        self.failed_requests += len(batch)
        instant(
            self.sim, f"service:fault:{fault.kind}",
            {"backend": self.profile.backend_id, "batch": len(batch)},
        )
        if self.health is not None:
            self.health.record_failure(self.profile.backend_id)
        counter(
            self.sim, f"service:backend{self.profile.backend_id}:depth",
            self.depth,
        )
        for request in batch:
            if self._on_failed is not None:
                self._on_failed(request)
        if fault.kind == FAULT_SSR and self.ssr_recovery_us > 0:
            yield self.sim.timeout(
                self.ssr_recovery_us,
                name=(
                    f"service:backend{self.profile.backend_id}"
                    ":ssr_reboot"
                ),
            )

    def to_dict(self):
        from repro.sim import units

        return {
            "profile": self.profile.to_dict(),
            "served_requests": self.served_requests,
            "served_batches": self.served_batches,
            "busy_ms": units.to_ms(self.busy_us),
        }


class Router:
    """Deterministic join-shortest-queue dispatch over the pool.

    With a :class:`~repro.service.health.HealthMonitor` attached, JSQ
    runs over the backends whose breaker admits traffic (open breakers
    are ejected; half-open ones take bounded probes); with a
    :class:`~repro.service.health.BrownoutController`, dispatched
    requests are degraded while the pool's outstanding count is inside
    a brownout episode. Both are deterministic functions of simulated
    state, so routing replays identically.
    """

    def __init__(self, sim, backends, health=None, brownout=None,
                 redispatch_limit=2, on_failed=None):
        if not backends:
            raise ValueError("router needs at least one backend")
        if redispatch_limit < 0:
            raise ValueError(
                f"redispatch_limit must be >= 0, got {redispatch_limit}"
            )
        self.sim = sim
        self.backends = list(backends)
        self.health = health
        self.brownout = brownout
        self.redispatch_limit = redispatch_limit
        self._on_failed = on_failed
        #: Successful re-routes after backend batch failures.
        self.redispatches = 0
        #: Requests that exhausted the redispatch budget.
        self.failed = 0

    @property
    def outstanding(self):
        """Admitted-but-unfinished requests across the pool."""
        return sum(backend.depth for backend in self.backends)

    def _candidates(self, exclude_id=None):
        """Routable backends, pool order (never empty).

        Prefers healthy backends other than ``exclude_id`` (the one
        that just failed the request), then any healthy backend, then —
        when every breaker is open — the whole pool: routing must still
        land somewhere, and the half-open probes find recovery.
        """
        if self.health is not None:
            allowed = [
                backend for backend in self.backends
                if self.health.allow(backend.profile.backend_id)
            ]
        else:
            allowed = self.backends
        if exclude_id is not None:
            kept = [
                backend for backend in allowed
                if backend.profile.backend_id != exclude_id
            ]
            if kept:
                return kept
        return allowed or self.backends

    def dispatch(self, request, exclude_id=None):
        """Route to the least-loaded routable backend; returns it."""
        candidates = self._candidates(exclude_id)
        target = candidates[0]
        for backend in candidates[1:]:
            if backend.depth < target.depth:
                target = backend
        if self.health is not None:
            self.health.note_dispatch(target.profile.backend_id)
        if self.brownout is not None and self.brownout.update(
            self.outstanding, self.sim
        ):
            self.brownout.degrade(request)
        target.enqueue(request)
        counter(self.sim, "service:depth", self.outstanding)
        return target

    def redispatch(self, request):
        """Re-route a request whose batch faulted, or fail it for good.

        Called by a backend for each member of a failed batch. The
        request is re-routed away from the backend that failed it while
        the budget lasts; past ``redispatch_limit`` it finishes as
        :data:`~repro.service.request.OUTCOME_FAILED`.
        """
        request.redispatches += 1
        if request.redispatches > self.redispatch_limit:
            request.outcome = OUTCOME_FAILED
            self.failed += 1
            instant(
                self.sim, "service:request_failed",
                {"request": request.request_id},
            )
            if self._on_failed is not None:
                self._on_failed(request)
            return None
        self.redispatches += 1
        return self.dispatch(request, exclude_id=request.backend_id)
