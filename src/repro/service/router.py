"""Routing and backend execution on the discrete-event engine.

A :class:`Backend` pairs one calibrated
:class:`~repro.service.backends.BackendProfile` with a
:class:`~repro.service.batcher.DynamicBatcher` and a simulator process
that forms and serves batches. The :class:`Router` spreads admitted
requests across the pool with deterministic join-shortest-queue
(ties break toward the lowest backend id, so identical runs route
identically).

Queue depth and in-flight counts are exported as observability counter
spans (``service:depth``, ``service:backend<N>:depth``) whenever the
service simulator records a trace, so backpressure dynamics are
visible in the same Perfetto timeline as everything else.
"""

from repro.observability.probes import counter
from repro.service.request import OUTCOME_OK


class Backend:
    """One pool member: a batcher plus a serving process."""

    def __init__(self, sim, profile, batcher, on_complete):
        self.sim = sim
        self.profile = profile
        self.batcher = batcher
        self._on_complete = on_complete
        #: Requests being served in the current batch.
        self.inflight = 0
        self.served_batches = 0
        self.served_requests = 0
        #: Total simulated time this backend spent serving.
        self.busy_us = 0.0
        self._wakeup = None
        sim.process(
            self._loop(), name=f"service:backend{profile.backend_id}"
        )

    @property
    def depth(self):
        """Outstanding requests here: batching queue plus in flight."""
        return len(self.batcher) + self.inflight

    def enqueue(self, request):
        """Accept a routed request into the batching queue."""
        request.backend_id = self.profile.backend_id
        self.batcher.push(request, self.sim.now)
        counter(
            self.sim, f"service:backend{self.profile.backend_id}:depth",
            self.depth,
        )
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _wait(self, *events):
        self._wakeup = self.sim.event(
            name=f"service:backend{self.profile.backend_id}:wakeup"
        )
        if events:
            return self.sim.any_of([*events, self._wakeup])
        return self._wakeup

    def _loop(self):
        """Form and serve batches forever (parks when the queue drains).

        The process never returns: after the last arrival it blocks on a
        wakeup that never fires, and the simulation ends when the
        schedule drains around it.
        """
        while True:
            while not self.batcher.pending:
                yield self._wait()
                self._wakeup = None
            while not self.batcher.ready(self.sim.now):
                remaining_us = self.batcher.deadline_us() - self.sim.now
                yield self._wait(self.sim.timeout(remaining_us))
                self._wakeup = None
            batch = self.batcher.take()
            yield from self._serve(batch)

    def _serve(self, batch):
        flags = tuple(request.degraded for request in batch)
        inference_total_us = self.profile.batch_inference_us(flags)
        service_us = inference_total_us + self.profile.batch_tax_us(flags)
        start_us = self.sim.now
        self.inflight = len(batch)
        yield self.sim.timeout(
            service_us, name=f"service:batch[{len(batch)}]"
        )
        done_us = self.sim.now
        inference_share_us = inference_total_us / len(batch)
        for request in batch:
            request.batch_size = len(batch)
            request.start_us = start_us
            request.done_us = done_us
            request.inference_us = inference_share_us
            request.tax_us = (
                self.profile.tax_us
                * self.profile._item_scale(request.degraded)
            )
            # Everything that is not this request's own work — admission
            # wait, batch formation, and batch mates' shares — is
            # queueing/batching delay by definition, so the three
            # components sum exactly to the observed latency.
            request.queue_us = max(
                0.0,
                (done_us - request.arrival_us)
                - request.inference_us - request.tax_us,
            )
            request.outcome = OUTCOME_OK
        self.inflight = 0
        self.busy_us += service_us
        self.served_batches += 1
        self.served_requests += len(batch)
        counter(
            self.sim, f"service:backend{self.profile.backend_id}:depth",
            self.depth,
        )
        for request in batch:
            self._on_complete(request)

    def to_dict(self):
        from repro.sim import units

        return {
            "profile": self.profile.to_dict(),
            "served_requests": self.served_requests,
            "served_batches": self.served_batches,
            "busy_ms": units.to_ms(self.busy_us),
        }


class Router:
    """Deterministic join-shortest-queue dispatch over the pool."""

    def __init__(self, sim, backends):
        if not backends:
            raise ValueError("router needs at least one backend")
        self.sim = sim
        self.backends = list(backends)

    @property
    def outstanding(self):
        """Admitted-but-unfinished requests across the pool."""
        return sum(backend.depth for backend in self.backends)

    def dispatch(self, request):
        """Route to the least-loaded backend; returns it."""
        target = self.backends[0]
        for backend in self.backends[1:]:
            if backend.depth < target.depth:
                target = backend
        target.enqueue(request)
        counter(self.sim, "service:depth", self.outstanding)
        return target
