"""Simulated threads and the requests their bodies may yield.

A thread body is a generator that yields scheduling requests:

* ``Work(ref_us)`` — consume CPU time, measured in reference
  microseconds (see :mod:`repro.soc.params`); the scheduler slices it
  across cores and converts to wall time using the current core speed.
* ``Sleep(us)`` — block for fixed wall time without holding a core.
* ``WaitFor(event)`` — block on any simulator event (resource grants,
  DSP completion, camera frames); resumes with the event's value.

Bodies may freely ``yield from`` helper generators that mix these, which
is how drivers like :class:`repro.android.fastrpc.FastRpcChannel`
compose CPU work with device waits.
"""

from dataclasses import dataclass, field

from repro.android import params

NEW = "new"
RUNNABLE = "runnable"
RUNNING = "running"
BLOCKED = "blocked"
DONE = "done"


@dataclass(frozen=True)
class Work:
    """Consume CPU: ``ref_us`` microseconds on the reference core."""

    ref_us: float
    label: str = "work"

    def __post_init__(self):
        if self.ref_us < 0:
            raise ValueError(f"negative work: {self.ref_us}")


@dataclass(frozen=True)
class Sleep:
    """Block off-CPU for a fixed wall-time duration."""

    duration_us: float

    def __post_init__(self):
        if self.duration_us < 0:
            raise ValueError(f"negative sleep: {self.duration_us}")


@dataclass(frozen=True)
class WaitFor:
    """Block until a simulator event triggers; resumes with its value."""

    event: object


class SimThread:
    """A schedulable thread.

    Created via :meth:`repro.android.kernel.Kernel.spawn`. ``nice``
    follows Linux semantics (lower = higher priority, weight 1.25x per
    step); ``affinity`` is an optional set of allowed core ids.
    """

    __slots__ = (
        "kernel", "body", "name", "tid", "nice", "affinity", "process",
        "state", "vruntime", "last_core_id", "remaining_work",
        "current_label", "penalty_work", "stats", "done", "weight",
        "_sleep_name",
    )

    def __init__(self, kernel, body, name, nice=0, affinity=None, process=None):
        self.kernel = kernel
        self.body = body
        self.name = name
        self.tid = kernel.allocate_tid()
        self.nice = nice
        self.affinity = frozenset(affinity) if affinity is not None else None
        self.process = process
        self.state = NEW
        self.vruntime = 0.0
        self.last_core_id = None
        #: Remaining reference-us of the Work item being executed.
        self.remaining_work = 0.0
        self.current_label = None
        #: Pending one-off penalty work (migration cost) in ref-us.
        self.penalty_work = 0.0
        self.stats = ThreadStats()
        #: CFS load weight; vruntime advances inversely to this. ``nice``
        #: is fixed at spawn, so the weight is computed once instead of
        #: one ``**`` per slice.
        self.weight = params.NICE_WEIGHT_STEP ** (-nice)
        #: Label reused by every Sleep the body issues (see Kernel._advance).
        self._sleep_name = name + ":sleep"
        #: Event triggered with the body's return value when it finishes.
        self.done = kernel.sim.event(name=f"{name}:done")

    def can_run_on(self, core):
        return self.affinity is None or core.core_id in self.affinity

    def runnable(self):
        return self.state == RUNNABLE

    def __repr__(self):
        return f"<SimThread {self.name} tid={self.tid} state={self.state}>"


@dataclass
class ThreadStats:
    """Per-thread accounting surfaced in profiles and tests."""

    cpu_time_us: float = 0.0
    wall_work_us: float = 0.0
    context_switches: int = 0
    migrations: int = 0
    slices: int = 0
    cores_used: set = field(default_factory=set)
