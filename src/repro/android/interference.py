"""Ambient system interference.

The paper attributes app-side run-to-run variability (±30% from the
median, Fig. 11) to "the Android operating system's scheduling
decisions, delays in the interrupt handling from sensor input streams,
etc." — activity that exists on a real phone but not in a bare
benchmark loop. This module provides daemon threads that wake
stochastically and briefly compete for CPU: system_server churn,
surfaceflinger composition, kworker bursts.
"""

from dataclasses import dataclass

from repro.android.thread import Sleep, Work


@dataclass(frozen=True)
class DaemonSpec:
    """A recurring background daemon."""

    name: str
    mean_interval_us: float
    mean_burst_us: float
    nice: int = 0


#: What runs alongside a foreground Android app.
APP_DAEMONS = (
    DaemonSpec("system_server", mean_interval_us=40_000.0, mean_burst_us=900.0),
    DaemonSpec("surfaceflinger", mean_interval_us=16_667.0, mean_burst_us=650.0, nice=-2),
    DaemonSpec("kworker", mean_interval_us=25_000.0, mean_burst_us=350.0),
    DaemonSpec("sensors_hal", mean_interval_us=20_000.0, mean_burst_us=250.0),
    DaemonSpec("audioserver", mean_interval_us=90_000.0, mean_burst_us=500.0),
)

#: The near-silent system state of a command-line benchmark run over adb
#: with the screen off — only kernel housekeeping remains.
BENCHMARK_DAEMONS = (
    DaemonSpec("kworker", mean_interval_us=45_000.0, mean_burst_us=200.0),
)


@dataclass(frozen=True)
class InterferenceProfile:
    """A named set of daemons, scaled by ``intensity``."""

    name: str
    daemons: tuple
    intensity: float = 1.0

    @classmethod
    def app(cls, intensity=1.0):
        return cls("app", APP_DAEMONS, intensity)

    @classmethod
    def benchmark(cls, intensity=1.0):
        return cls("benchmark", BENCHMARK_DAEMONS, intensity)

    @classmethod
    def none(cls):
        return cls("none", (), 0.0)


import math


def _daemon_body(kernel, spec, intensity, rng):
    # Burst sizes are heavy-tailed (lognormal): most wakeups are tiny,
    # the occasional one is 10x the mean — the long tail that real
    # Android system services exhibit and that stretches an app's
    # latency distribution (paper Fig. 11).
    sigma = 1.2
    mu = math.log(spec.mean_burst_us) - sigma * sigma / 2.0
    label = "daemon:" + spec.name
    while True:
        interval = rng.exponential(spec.mean_interval_us)
        yield Sleep(max(interval, 50.0))
        burst = min(
            rng.lognormal(mu, sigma), 6.0 * spec.mean_burst_us
        ) * intensity
        if burst > 1.0:
            yield Work(burst, label=label)


def start_interference(kernel, profile):
    """Spawn the profile's daemons; returns the created threads."""
    threads = []
    if profile.intensity <= 0:
        return threads
    for spec in profile.daemons:
        rng = kernel.sim.rng.stream(f"daemon:{spec.name}")
        thread = kernel.spawn(
            _daemon_body(kernel, spec, profile.intensity, rng),
            name=spec.name,
            nice=spec.nice,
        )
        threads.append(thread)
    return threads
