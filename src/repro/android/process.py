"""Application processes.

An :class:`AppProcess` groups threads, owns a FastRPC channel, and — for
real Android apps (not command-line benchmarks) — runs an ART garbage
collector whose pauses stall the app's threads at random points, one of
the app-only variability sources behind the paper's Fig. 11.
"""

from repro.android import params
from repro.android.fastrpc import FastRpcChannel
from repro.android.thread import Sleep, Work


class AppProcess:
    """One Linux process: threads, RPC channel, optional ART runtime."""

    def __init__(self, kernel, name, managed_runtime=False):
        self.kernel = kernel
        self.name = name
        self.pid = kernel.allocate_pid()
        self.managed_runtime = managed_runtime
        self.threads = []
        self.fastrpc = FastRpcChannel(kernel, process_id=self.pid)
        self._gc_thread = None
        if managed_runtime:
            self._gc_thread = kernel.spawn(
                self._gc_body(), name=f"{name}:gc", nice=10, process=self
            )

    def spawn(self, body, name, **kwargs):
        thread = self.kernel.spawn(
            body, name=f"{self.name}:{name}", process=self, **kwargs
        )
        self.threads.append(thread)
        return thread

    def _gc_body(self):
        """Background + pause phases of the ART concurrent collector."""
        rng = self.kernel.sim.rng.stream(f"gc:{self.name}")
        while True:
            interval = rng.exponential(params.GC_INTERVAL_MEAN_US)
            yield Sleep(max(interval, 10_000.0))
            # Concurrent mark runs as low-priority CPU work; the brief
            # stop-the-world portion is modelled as extra work too since
            # it steals CPU from the app's hot path.
            pause = rng.exponential(params.GC_PAUSE_MEAN_US)
            yield Work(max(pause, 200.0), label="gc")
