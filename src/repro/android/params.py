"""Calibrated OS-level cost constants (microseconds unless noted)."""

# -- scheduler ---------------------------------------------------------------

#: CFS scheduling granularity: how long a thread runs before the core
#: re-picks. Android's sched_min_granularity is ~2-3 ms.
TIMESLICE_US = 3000.0
#: Direct cost of a context switch (register save/restore, runqueue ops).
CONTEXT_SWITCH_US = 6.0
#: Extra work charged when a thread lands on a different core than last
#: time: cold L1/L2, TLB refill. Charged once per migration.
MIGRATION_PENALTY_US = 60.0
#: Nice-level weight ratio per step (kernel uses 1.25x per nice level).
NICE_WEIGHT_STEP = 1.25

# -- kernel crossings --------------------------------------------------------

#: One user->kernel->user round trip (syscall/ioctl).
IOCTL_US = 8.0
#: Binder IPC call overhead (to camera service, surfaceflinger, ...).
BINDER_CALL_US = 110.0

# -- FastRPC (paper Fig. 7) --------------------------------------------------

#: Marshalling the remote call arguments into the shared ring.
FASTRPC_MARSHAL_US = 18.0
#: Driver signalling latency, CPU->DSP or DSP->CPU, per direction.
FASTRPC_SIGNAL_US = 25.0
#: One-time cost of mapping the application process onto the DSP
#: (dynamic loader, memory map setup). Paid at first use per process —
#: the dominant part of the paper's cold-start penalty (Fig. 8).
FASTRPC_SESSION_OPEN_US = 12_000.0
#: DSP-side invoke dispatch (queue pop, stub unmarshal).
FASTRPC_DSP_DISPATCH_US = 30.0
#: How long an injected-timeout call waits before the driver fails it
#: with -ETIMEDOUT, when the channel has no explicit queue timeout.
FASTRPC_INJECTED_TIMEOUT_US = 5_000.0
#: Latency until the driver notices a DSP subsystem restart and fails
#: in-flight calls (watchdog expiry + SSR notification fan-out).
FASTRPC_SSR_DETECT_US = 1_500.0

# -- Android runtime ---------------------------------------------------------

#: Mean/fraction parameters of ART GC pauses seen by app threads.
GC_PAUSE_MEAN_US = 3_500.0
GC_INTERVAL_MEAN_US = 350_000.0
#: UI thread work per rendered frame (layout, draw command recording).
UI_RENDER_US = 3_200.0
#: Choreographer vsync interval (60 Hz).
VSYNC_INTERVAL_US = 16_667.0
