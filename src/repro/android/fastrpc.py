"""FastRPC: the CPU <-> DSP offload channel (paper Fig. 7).

The Hexagon DSP is loosely coupled — it has its own memory subsystem and
no cache coherency with the CPU — so every invocation crosses these
boundaries:

    user (marshal args) -> kernel (ioctl, cache flush) -> AXI transfer
      -> DSP dispatch -> compute -> AXI transfer back
      -> kernel (invalidate, signal) -> user (unmarshal)

Session setup additionally maps the calling process onto the DSP (loader
+ memory map), a one-time multi-millisecond cost per process: the
dominant share of the cold-start penalty the paper amortizes in Fig. 8.
"""

from dataclasses import dataclass

from repro.android import params
from repro.android.thread import Sleep, WaitFor, Work
from repro.observability.probes import probe


@dataclass
class FastRpcStats:
    """Accounting of where FastRPC time went, per channel."""

    calls: int = 0
    session_opens: int = 0
    session_open_us: float = 0.0
    marshal_us: float = 0.0
    kernel_us: float = 0.0
    cache_flush_us: float = 0.0
    transfer_us: float = 0.0
    signal_us: float = 0.0
    dsp_queue_us: float = 0.0
    dsp_compute_us: float = 0.0

    @property
    def offload_overhead_us(self):
        """Everything except DSP compute — the hardware AI tax."""
        return (
            self.session_open_us
            + self.marshal_us
            + self.kernel_us
            + self.cache_flush_us
            + self.transfer_us
            + self.signal_us
            + self.dsp_queue_us
        )


class FastRpcTimeout(Exception):
    """The DSP did not become available within the driver timeout.

    Real FastRPC invocations carry a driver-level timeout: a saturated
    or wedged DSP surfaces as ``-ETIMEDOUT`` to the caller, who decides
    whether to retry or fall back to the CPU.
    """


class FastRpcChannel:
    """One process's RPC channel to the DSP.

    All public methods are generators intended for ``yield from`` inside
    a :class:`~repro.android.thread.SimThread` body.
    """

    def __init__(self, kernel, process_id, queue_timeout_us=None):
        self.kernel = kernel
        self.soc = kernel.soc
        self.dsp = kernel.soc.dsp
        self.process_id = process_id
        #: Max wait for the DSP queue before the call fails; None waits
        #: forever (the behaviour of the default driver configuration).
        self.queue_timeout_us = queue_timeout_us
        self.stats = FastRpcStats()
        self._session_open = False

    def open_session(self):
        """Map the process onto the DSP (idempotent)."""
        if self._session_open:
            return
        start = self.kernel.now
        with probe(self.kernel, "fastrpc", "open_session",
                   process=self.process_id):
            yield from self.kernel.syscall(label="fastrpc:open")
            if self.dsp.map_process(self.process_id):
                # Remote loader + SMMU mapping run on the DSP side; the
                # CPU thread blocks while holding nothing.
                yield Sleep(params.FASTRPC_SESSION_OPEN_US)
        self._session_open = True
        self.stats.session_opens += 1
        self.stats.session_open_us += self.kernel.now - start

    def invoke(self, input_bytes, output_bytes, dsp_compute_us, label="invoke"):
        """One remote invocation; returns total wall time spent.

        ``dsp_compute_us`` is the pure DSP execution time for the call;
        the channel adds all offload overheads around it.
        """
        sim = self.kernel.sim
        memory = self.soc.memory
        start = self.kernel.now
        if not self._session_open:
            yield from self.open_session()
        self.stats.calls += 1

        # The Fig. 7 call flow, each stage a nested span on the
        # "fastrpc" track (probes are no-ops when tracing is off).
        with probe(sim, "fastrpc", f"invoke:{label}",
                   process=self.process_id, input_bytes=input_bytes,
                   output_bytes=output_bytes):
            # User side: marshal arguments.
            with probe(sim, "fastrpc", "user:marshal"):
                yield Work(
                    params.FASTRPC_MARSHAL_US,
                    label=f"fastrpc:{label}:marshal",
                )
            self.stats.marshal_us += params.FASTRPC_MARSHAL_US

            # Kernel entry + cache clean so the DSP sees our writes. The
            # flush is CPU work (cache maintenance by VA runs on the core).
            with probe(sim, "fastrpc", "kernel:ioctl"):
                yield Work(params.IOCTL_US, label=f"fastrpc:{label}:ioctl")
            self.stats.kernel_us += params.IOCTL_US
            if self.dsp.coupling == "loose":
                flush_us = memory.cache_flush_us(input_bytes)
                with probe(sim, "fastrpc", "kernel:cache_flush"):
                    yield Work(flush_us, label=f"fastrpc:{label}:flush")
                self.stats.cache_flush_us += flush_us

            # Signal the DSP and wait in its queue (capacity-1 device).
            yield Sleep(params.FASTRPC_SIGNAL_US)
            self.stats.signal_us += params.FASTRPC_SIGNAL_US
            queue_start = self.kernel.now
            request = self.dsp.resource.request()
            with probe(sim, "fastrpc", "dsp:queue",
                       depth=self.dsp.resource.queue_length):
                if self.queue_timeout_us is not None:
                    deadline = sim.timeout(self.queue_timeout_us)
                    yield WaitFor(sim.any_of([request, deadline]))
                    if not request.granted:
                        # Driver timeout: withdraw from the queue and
                        # fail the call; the kernel exit path is still
                        # charged.
                        request.release()
                        self.stats.dsp_queue_us += (
                            self.kernel.now - queue_start
                        )
                        yield Work(
                            params.IOCTL_US,
                            label=f"fastrpc:{label}:etimedout",
                        )
                        self.stats.kernel_us += params.IOCTL_US
                        raise FastRpcTimeout(
                            f"DSP busy for {self.queue_timeout_us:.0f}us "
                            f"(queue depth {self.dsp.resource.queue_length})"
                        )
                else:
                    yield WaitFor(request)
            self.stats.dsp_queue_us += self.kernel.now - queue_start
            try:
                # Move inputs over AXI into VTCM, compute, move outputs
                # back.
                if self.dsp.coupling == "loose":
                    in_transfer = memory.axi_transfer_us(input_bytes)
                    with probe(sim, "fastrpc", "axi:input_transfer"):
                        yield Sleep(in_transfer)
                    self.stats.transfer_us += in_transfer
                span = None
                if sim.trace is not None:
                    span = sim.trace.begin(
                        "cdsp", label, process=self.process_id
                    )
                with probe(sim, "fastrpc", "dsp:dispatch_compute"):
                    yield Sleep(params.FASTRPC_DSP_DISPATCH_US + dsp_compute_us)
                if span is not None:
                    sim.trace.end(span)
                self.soc.energy.add_dsp_busy(
                    params.FASTRPC_DSP_DISPATCH_US + dsp_compute_us
                )
                self.stats.dsp_compute_us += dsp_compute_us
                if self.dsp.coupling == "loose":
                    out_transfer = memory.axi_transfer_us(output_bytes)
                    with probe(sim, "fastrpc", "axi:output_transfer"):
                        yield Sleep(out_transfer)
                    self.stats.transfer_us += out_transfer
            finally:
                request.release()

            # DSP -> CPU completion signal, kernel exit, invalidate
            # outputs.
            yield Sleep(params.FASTRPC_SIGNAL_US)
            self.stats.signal_us += params.FASTRPC_SIGNAL_US
            if self.dsp.coupling == "loose":
                invalidate_us = memory.cache_flush_us(output_bytes)
                with probe(sim, "fastrpc", "kernel:cache_invalidate"):
                    yield Work(
                        invalidate_us, label=f"fastrpc:{label}:invalidate"
                    )
                self.stats.cache_flush_us += invalidate_us
            with probe(sim, "fastrpc", "kernel:ioctl_return"):
                yield Work(params.IOCTL_US, label=f"fastrpc:{label}:ret")
            self.stats.kernel_us += params.IOCTL_US

        return self.kernel.now - start

    def close(self):
        """Tear down the process mapping."""
        if self._session_open:
            self.dsp.unmap_process(self.process_id)
            self._session_open = False


def call_flow_stages():
    """The Fig. 7 call-flow stage names, in order (for reports/tests)."""
    return (
        "user:marshal",
        "kernel:ioctl",
        "kernel:cache_flush",
        "signal:cpu_to_dsp",
        "dsp:queue",
        "axi:input_transfer",
        "dsp:dispatch_compute",
        "axi:output_transfer",
        "signal:dsp_to_cpu",
        "kernel:cache_invalidate",
        "kernel:ioctl_return",
    )
