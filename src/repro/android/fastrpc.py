"""FastRPC: the CPU <-> DSP offload channel (paper Fig. 7).

The Hexagon DSP is loosely coupled — it has its own memory subsystem and
no cache coherency with the CPU — so every invocation crosses these
boundaries:

    user (marshal args) -> kernel (ioctl, cache flush) -> AXI transfer
      -> DSP dispatch -> compute -> AXI transfer back
      -> kernel (invalidate, signal) -> user (unmarshal)

Session setup additionally maps the calling process onto the DSP (loader
+ memory map), a one-time multi-millisecond cost per process: the
dominant share of the cold-start penalty the paper amortizes in Fig. 8.
"""

from dataclasses import dataclass

from repro.android import params
from repro.android.thread import Sleep, WaitFor, Work
from repro.faults.plan import (
    DEFAULT_THERMAL_JUMP_C,
    FAULT_SESSION_DEATH,
    FAULT_SSR,
    FAULT_THERMAL,
    FAULT_TIMEOUT,
)
from repro.faults.recovery import RetryPolicy
from repro.sim.probes import instant, probe


@dataclass
class FastRpcStats:
    """Accounting of where FastRPC time went, per channel.

    ``calls`` counts *completed* invocations only; failed calls land in
    the fault counters (``timeouts``, ``session_deaths``, ``ssr_events``,
    ``stale_handles``) so traces and reports can distinguish a call that
    finished from one the driver failed.
    """

    calls: int = 0
    session_opens: int = 0
    session_open_us: float = 0.0
    marshal_us: float = 0.0
    kernel_us: float = 0.0
    cache_flush_us: float = 0.0
    transfer_us: float = 0.0
    signal_us: float = 0.0
    dsp_queue_us: float = 0.0
    dsp_compute_us: float = 0.0
    #: Calls failed with -ETIMEDOUT (driver timeout or injected).
    timeouts: int = 0
    #: Calls failed because this channel's session was torn down.
    session_deaths: int = 0
    #: Calls failed by a DSP subsystem restart (all mappings dropped).
    ssr_events: int = 0
    #: Calls failed on a handle invalidated by someone else's SSR.
    stale_handles: int = 0
    #: Transient thermal emergencies injected on this channel.
    thermal_events: int = 0
    #: Retries issued by :meth:`FastRpcChannel.invoke_retrying`.
    retries: int = 0
    #: Off-CPU time spent in retry backoff.
    backoff_us: float = 0.0

    @property
    def failed_calls(self):
        """Invocation attempts that raised instead of completing."""
        return (
            self.timeouts + self.session_deaths + self.ssr_events
            + self.stale_handles
        )

    @property
    def offload_overhead_us(self):
        """Everything except DSP compute — the hardware AI tax."""
        return (
            self.session_open_us
            + self.marshal_us
            + self.kernel_us
            + self.cache_flush_us
            + self.transfer_us
            + self.signal_us
            + self.dsp_queue_us
        )


class _StatsCommitLog:
    """Deferred :class:`FastRpcStats` updates, committed atomically.

    :meth:`FastRpcChannel.invoke` spans many yields; bumping the stats
    fields inline would let an ``Interrupted`` (or a driver error) at
    an interior yield leave the object torn between fields mid-call —
    ``offload_overhead_us`` reads seven of them and assumes they move
    together. Stage times are appended here instead and land on the
    stats object in one step when the call settles, on *every* exit
    path. Entries replay in append order, so each field's float sum is
    the same left-fold it was under inline commits (bit-identical
    accounting).
    """

    __slots__ = ("_stats", "_entries")

    def __init__(self, stats):
        self._stats = stats
        self._entries = []

    def add(self, entry):
        """Queue one ``(field name, delta)`` update."""
        self._entries.append(entry)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        stats = self._stats
        for field, delta in self._entries:
            setattr(stats, field, getattr(stats, field) + delta)
        self._entries.clear()
        return False


class FastRpcTimeout(Exception):
    """The DSP did not become available within the driver timeout.

    Real FastRPC invocations carry a driver-level timeout: a saturated
    or wedged DSP surfaces as ``-ETIMEDOUT`` to the caller, who decides
    whether to retry or fall back to the CPU.
    """


class FastRpcSessionDeath(Exception):
    """The channel's DSP session died mid-call.

    Covers both a targeted teardown (the driver killed this process's
    handle) and a DSP subsystem restart (SSR), which drops *every*
    process mapping. Either way the caller must reopen the session —
    paying the multi-millisecond remap/reload cost again — before the
    channel is usable.
    """


class FastRpcChannel:
    """One process's RPC channel to the DSP.

    All public methods are generators intended for ``yield from`` inside
    a :class:`~repro.android.thread.SimThread` body.

    ``fault_injector`` (a :class:`~repro.faults.plan.FaultInjector`)
    deterministically fails calls for chaos experiments;
    ``retry_policy`` (a :class:`~repro.faults.recovery.RetryPolicy`)
    governs :meth:`invoke_retrying`.
    """

    def __init__(self, kernel, process_id, queue_timeout_us=None,
                 fault_injector=None, retry_policy=None):
        self.kernel = kernel
        self.soc = kernel.soc
        self.dsp = kernel.soc.dsp
        self.process_id = process_id
        #: Max wait for the DSP queue before the call fails; None waits
        #: forever (the behaviour of the default driver configuration).
        self.queue_timeout_us = queue_timeout_us
        self.fault_injector = fault_injector
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.stats = FastRpcStats()
        self._session_open = False
        #: Static span metadata, built once — probes copy it into each
        #: span, and untraced runs never allocate a per-call dict.
        self._probe_meta = {"process": process_id}

    def open_session(self):
        """Map the process onto the DSP (idempotent)."""
        if self._session_open:
            return
        start = self.kernel.now
        with probe(self.kernel, "fastrpc", "open_session",
                   self._probe_meta):
            yield from self.kernel.syscall(label="fastrpc:open")
            if self.dsp.map_process(self.process_id):
                # Remote loader + SMMU mapping run on the DSP side; the
                # CPU thread blocks while holding nothing.
                yield Sleep(params.FASTRPC_SESSION_OPEN_US)
        # Re-checked after the yields: a second body racing into open
        # (or an SSR flipping the flag while we were suspended) must
        # not double-count the open on the entry check alone.
        if not self._session_open:
            self._session_open = True
            self.stats.session_opens += 1
        self.stats.session_open_us += self.kernel.now - start

    def invoke(self, input_bytes, output_bytes, dsp_compute_us, label="invoke"):
        """One remote invocation; returns total wall time spent.

        ``dsp_compute_us`` is the pure DSP execution time for the call;
        the channel adds all offload overheads around it.
        """
        sim = self.kernel.sim
        memory = self.soc.memory
        start = self.kernel.now
        if (
            self._session_open
            and self.process_id not in self.dsp.mapped_processes
        ):
            # The DSP restarted underneath us (another client's SSR):
            # the handle is stale and the driver fails the call at the
            # ioctl, before any DSP-side work.
            self._session_open = False
            yield from self.kernel.syscall(label=f"fastrpc:{label}:stale")
            self.stats.kernel_us += params.IOCTL_US
            self.stats.stale_handles += 1
            raise FastRpcSessionDeath(
                f"process {self.process_id} lost its DSP mapping "
                "(subsystem restarted)"
            )
        if not self._session_open:
            yield from self.open_session()
        # Stage accounting is deferred to this commit log and lands on
        # ``self.stats`` in one atomic step when the call settles (any
        # exit path) — see :class:`_StatsCommitLog`.
        pending = _StatsCommitLog(self.stats)
        fault = None
        if self.fault_injector is not None:
            fault = self.fault_injector.draw(self.kernel.now)
        if fault is not None and fault.kind == FAULT_THERMAL:
            # Transient thermal emergency: the die jumps and throttling
            # engages; the call itself proceeds, just slower from here.
            jump = (
                fault.magnitude
                if fault.magnitude is not None
                else DEFAULT_THERMAL_JUMP_C
            )
            thermal = self.soc.thermal
            thermal.temperature = min(
                thermal.full_load_celsius, thermal.temperature + jump
            )
            thermal._apply_throttle()
            pending.add(("thermal_events", 1))
            instant(sim, "fault:thermal",
                    {"process": self.process_id, "jump_c": jump})
            fault = None

        # The Fig. 7 call flow, each stage a nested span on the
        # "fastrpc" track (probes are no-ops when tracing is off).
        with pending, probe(sim, "fastrpc", "invoke:" + label) as span:
            if span is not None:
                span.meta["process"] = self.process_id
                span.meta["input_bytes"] = input_bytes
                span.meta["output_bytes"] = output_bytes
            # User side: marshal arguments.
            with probe(sim, "fastrpc", "user:marshal"):
                yield Work(
                    params.FASTRPC_MARSHAL_US,
                    label=f"fastrpc:{label}:marshal",
                )
            pending.add(("marshal_us", params.FASTRPC_MARSHAL_US))

            # Kernel entry + cache clean so the DSP sees our writes. The
            # flush is CPU work (cache maintenance by VA runs on the core).
            with probe(sim, "fastrpc", "kernel:ioctl"):
                yield Work(params.IOCTL_US, label=f"fastrpc:{label}:ioctl")
            pending.add(("kernel_us", params.IOCTL_US))
            if self.dsp.coupling == "loose":
                flush_us = memory.cache_flush_us(input_bytes)
                with probe(sim, "fastrpc", "kernel:cache_flush"):
                    yield Work(flush_us, label=f"fastrpc:{label}:flush")
                pending.add(("cache_flush_us", flush_us))

            # Signal the DSP and wait in its queue (capacity-1 device).
            yield Sleep(params.FASTRPC_SIGNAL_US)
            pending.add(("signal_us", params.FASTRPC_SIGNAL_US))
            queue_start = self.kernel.now
            if fault is not None:
                # Injected failures surface here, where a real wedged
                # DSP or dead session would: after the CPU-side costs
                # are sunk. _fail_injected always raises.
                yield from self._fail_injected(fault, span, label,
                                               queue_start, pending)
            # The grant is held in a with-block so the queue slot is
            # returned on *every* exit — the old try/finally started
            # after the queue wait, so an Interrupted thrown at the
            # WaitFor (fault injection, watchdog abort) leaked the slot
            # and wedged the capacity-1 DSP for the rest of the run.
            with self.dsp.resource.request() as request:
                with probe(sim, "fastrpc", "dsp:queue") as queue_span:
                    if queue_span is not None:
                        queue_span.meta["depth"] = (
                            self.dsp.resource.queue_length
                        )
                    if self.queue_timeout_us is not None:
                        deadline = sim.timeout(self.queue_timeout_us)
                        yield WaitFor(sim.any_of([request, deadline]))
                        if not request.granted:
                            # Driver timeout: withdraw from the queue
                            # and fail the call; the kernel exit path
                            # is still charged. release() is
                            # idempotent, so the with-exit is a no-op.
                            request.release()
                            pending.add(
                                ("dsp_queue_us",
                                 self.kernel.now - queue_start)
                            )
                            yield Work(
                                params.IOCTL_US,
                                label=f"fastrpc:{label}:etimedout",
                            )
                            pending.add(("kernel_us", params.IOCTL_US))
                            pending.add(("timeouts", 1))
                            if span is not None:
                                span.meta["status"] = "timeout"
                            raise FastRpcTimeout(
                                f"DSP busy for "
                                f"{self.queue_timeout_us:.0f}us "
                                f"(queue depth "
                                f"{self.dsp.resource.queue_length})"
                            )
                    else:
                        yield WaitFor(request)
                pending.add(
                    ("dsp_queue_us", self.kernel.now - queue_start)
                )
                # Move inputs over AXI into VTCM, compute, move outputs
                # back.
                if self.dsp.coupling == "loose":
                    in_transfer = memory.axi_transfer_us(input_bytes)
                    with probe(sim, "fastrpc", "axi:input_transfer"):
                        yield Sleep(in_transfer)
                    pending.add(("transfer_us", in_transfer))
                span = None
                if sim.trace is not None:
                    span = sim.trace.begin(
                        "cdsp", label, process=self.process_id
                    )
                with probe(sim, "fastrpc", "dsp:dispatch_compute"):
                    yield Sleep(
                        params.FASTRPC_DSP_DISPATCH_US + dsp_compute_us
                    )
                if span is not None:
                    sim.trace.end(span)
                self.soc.energy.add_dsp_busy(
                    params.FASTRPC_DSP_DISPATCH_US + dsp_compute_us
                )
                pending.add(("dsp_compute_us", dsp_compute_us))
                if self.dsp.coupling == "loose":
                    out_transfer = memory.axi_transfer_us(output_bytes)
                    with probe(sim, "fastrpc", "axi:output_transfer"):
                        yield Sleep(out_transfer)
                    pending.add(("transfer_us", out_transfer))

            # DSP -> CPU completion signal, kernel exit, invalidate
            # outputs.
            yield Sleep(params.FASTRPC_SIGNAL_US)
            pending.add(("signal_us", params.FASTRPC_SIGNAL_US))
            if self.dsp.coupling == "loose":
                invalidate_us = memory.cache_flush_us(output_bytes)
                with probe(sim, "fastrpc", "kernel:cache_invalidate"):
                    yield Work(
                        invalidate_us, label=f"fastrpc:{label}:invalidate"
                    )
                pending.add(("cache_flush_us", invalidate_us))
            with probe(sim, "fastrpc", "kernel:ioctl_return"):
                yield Work(params.IOCTL_US, label=f"fastrpc:{label}:ret")
            pending.add(("kernel_us", params.IOCTL_US))

        self.stats.calls += 1
        return self.kernel.now - start

    def _fail_injected(self, fault, span, label, queue_start, pending):
        """Surface an injected fault as the driver would. Always raises.

        ``pending`` is the caller's :class:`_StatsCommitLog`; it
        commits when :meth:`invoke` unwinds, so the failure accounting
        lands atomically with the stage times already logged.
        """
        sim = self.kernel.sim
        instant(sim, f"fault:{fault.kind}",
                {"process": self.process_id, "call": label})
        if span is not None:
            span.meta["status"] = fault.kind
        if fault.kind == FAULT_TIMEOUT:
            # The DSP never picks the call up; the caller burns the
            # driver timeout in the queue, then pays the kernel exit.
            wait = (
                self.queue_timeout_us
                if self.queue_timeout_us is not None
                else params.FASTRPC_INJECTED_TIMEOUT_US
            )
            with probe(sim, "fastrpc", "dsp:queue",
                       {"depth": self.dsp.resource.queue_length}):
                yield Sleep(wait)
            pending.add(("dsp_queue_us", self.kernel.now - queue_start))
            yield Work(params.IOCTL_US, label=f"fastrpc:{label}:etimedout")
            pending.add(("kernel_us", params.IOCTL_US))
            pending.add(("timeouts", 1))
            raise FastRpcTimeout(
                f"injected: DSP unresponsive for {wait:.0f}us"
            )
        if fault.kind == FAULT_SSR:
            # Subsystem restart: the watchdog fires, every process
            # mapping is dropped, and each victim pays the session
            # remap/reload cost again at its next open.
            yield Sleep(params.FASTRPC_SSR_DETECT_US)
            dropped = self.dsp.restart()
            self._session_open = False
            yield Work(params.IOCTL_US, label=f"fastrpc:{label}:ssr")
            pending.add(("kernel_us", params.IOCTL_US))
            pending.add(("ssr_events", 1))
            raise FastRpcSessionDeath(
                f"injected: DSP subsystem restart dropped {dropped} "
                "process mappings"
            )
        if fault.kind == FAULT_SESSION_DEATH:
            # Only this channel's handle dies; the DSP itself survives.
            self.dsp.unmap_process(self.process_id)
            self._session_open = False
            yield Work(params.IOCTL_US, label=f"fastrpc:{label}:enosuchdev")
            pending.add(("kernel_us", params.IOCTL_US))
            pending.add(("session_deaths", 1))
            raise FastRpcSessionDeath(
                f"injected: driver killed session for process "
                f"{self.process_id}"
            )
        raise RuntimeError(f"unhandled fault kind {fault.kind!r}")

    def invoke_retrying(self, input_bytes, output_bytes, dsp_compute_us,
                        label="invoke"):
        """:meth:`invoke` under the channel's retry policy.

        Failed calls (timeout or session death) are retried up to
        ``retry_policy.max_retries`` times with deterministic
        exponential backoff; a reopened session pays the remap cost
        inside the retried call. The final failure propagates for the
        runtime above to handle (e.g. NNAPI's runtime CPU fallback).
        """
        policy = self.retry_policy
        attempt = 0
        while True:
            try:
                result = yield from self.invoke(
                    input_bytes, output_bytes, dsp_compute_us, label=label
                )
                return result
            except (FastRpcTimeout, FastRpcSessionDeath) as exc:
                if attempt >= policy.max_retries:
                    raise
                backoff = policy.backoff_for(attempt)
                attempt += 1
                self.stats.retries += 1
                self.stats.backoff_us += backoff
                with probe(self.kernel.sim, "fastrpc", f"retry:{label}",
                           {"attempt": attempt,
                            "cause": type(exc).__name__}):
                    if backoff > 0:
                        yield Sleep(backoff)

    def close(self):
        """Tear down the process mapping."""
        if self._session_open:
            self.dsp.unmap_process(self.process_id)
            self._session_open = False


def call_flow_stages():
    """The Fig. 7 call-flow stage names, in order (for reports/tests)."""
    return (
        "user:marshal",
        "kernel:ioctl",
        "kernel:cache_flush",
        "signal:cpu_to_dsp",
        "dsp:queue",
        "axi:input_transfer",
        "dsp:dispatch_compute",
        "axi:output_transfer",
        "signal:dsp_to_cpu",
        "kernel:cache_invalidate",
        "kernel:ioctl_return",
    )
