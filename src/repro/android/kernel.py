"""CFS-style scheduler over the simulated SoC's cores.

Design notes
------------

* One global runqueue (per-thread affinity masks filter eligibility);
  each core runs a dispatch loop that picks the runnable thread with the
  lowest virtual runtime, charges a context switch if it is not the one
  that ran there last, and executes at most one timeslice before
  re-picking.
* Threads waking onto a different core than they last ran on pay a
  migration penalty (cold caches) and are counted — the "frequent CPU
  migrations" annotation 4 of the paper's Fig. 6 profile.
* Idle cores are woken in randomized order when work arrives, which —
  combined with interference daemons — reproduces the single hot thread
  bouncing across cores 4-7 that the paper observes for the NNAPI CPU
  fallback path.
* Per-cluster DVFS governors sample window utilization; a benchmark's
  tight loop pins the top OPP while an app idling between camera frames
  ramps up and down, contributing run-to-run variability (Fig. 11).
"""

from repro.android import params
from repro.sim.events import TRIGGERED, Event, Timeout
from repro.android.thread import (
    BLOCKED,
    DONE,
    RUNNABLE,
    RUNNING,
    Sleep,
    SimThread,
    WaitFor,
    Work,
)

#: Governor sampling window.
_GOVERNOR_WINDOW_US = 4_000.0
#: Thermal model sampling window.
_THERMAL_WINDOW_US = 50_000.0
#: Trace counter-sampling window (die temperature, runqueue depth).
#: Offset from the governor window so samples never tie with governor
#: events at the same timestamp.
_TRACE_SAMPLE_WINDOW_US = 5_000.0
#: Floor for core speed so a throttled core still makes progress.
_MIN_SPEED = 0.01


class Kernel:
    """Scheduler + OS services for one simulated device."""

    def __init__(self, sim, soc, enable_dvfs=True, enable_thermal=False):
        self.sim = sim
        self.soc = soc
        self.threads = []
        self._runqueue = []
        self._idle_events = {}
        self._cluster_busy = {cluster.name: 0.0 for cluster in soc.clusters}
        self._core_busy = {core.core_id: 0.0 for core in soc.cores}
        self._total_busy = 0.0
        self._rng = sim.rng.stream("sched")
        self._next_pid = 1000
        self._next_tid = 1
        # Static per-core tables for the dispatch hot paths: the
        # negated perf index keyed by core id (same ordering the old
        # `sort(key=lambda cid: -soc.core(cid).perf_index)` produced,
        # without a linear core lookup per element) and, per core, the
        # strictly-faster cores a preempted thread could misfit-migrate
        # to, in `soc.cores` order.
        self._neg_perf = {core.core_id: -core.perf_index for core in soc.cores}
        self._faster_cores = {
            core.core_id: tuple(
                other for other in soc.cores
                if other.perf_index > core.perf_index
            )
            for core in soc.cores
        }
        # Start dispatch loops fastest-core-first so work queued before
        # the first simulation step lands on the big cluster. These are
        # callback state machines, not generator Processes: one event
        # callback frame replaces the Process._resume -> generator.send
        # chain on the two hottest loops in the simulation. Their event
        # streams — bootstrap labels included — are byte-identical to
        # the generator forms they replaced (see docs/performance.md).
        for core in sorted(soc.cores, key=lambda c: -c.perf_index):
            _CoreLoop(self, core)
        if enable_dvfs:
            for cluster in soc.clusters:
                _GovernorLoop(self, cluster)
        if enable_thermal:
            sim.process(self._thermal_loop(), name="thermal")
        if sim.trace is not None:
            sim.process(self._trace_sampler_loop(), name="trace-sampler")

    @property
    def now(self):
        return self.sim.now

    def allocate_pid(self):
        """Deterministic process-id allocation, fresh per simulation.

        Pids end up in trace metadata, so they must not come from
        interpreter state (``id()``, module counters) — identical runs
        must export byte-identical traces.
        """
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def allocate_tid(self):
        """Deterministic thread-id allocation, fresh per simulation.

        Same contract as :meth:`allocate_pid`: tids are exported in
        trace-event args, so a process-global counter would make the
        Nth simulation in a process export different bytes than the
        first.
        """
        tid = self._next_tid
        self._next_tid += 1
        return tid

    # -- thread lifecycle ------------------------------------------------

    def spawn(self, body, name, nice=0, affinity=None, process=None):
        """Create and start a thread running generator ``body``."""
        thread = SimThread(
            self, body, name, nice=nice, affinity=affinity, process=process
        )
        self.threads.append(thread)
        self._advance(thread, None)
        return thread

    def spawn_on_big(self, body, name, **kwargs):
        """Spawn with affinity to the big cluster (perf-critical work)."""
        affinity = {core.core_id for core in self.soc.big_cores}
        return self.spawn(body, name, affinity=affinity, **kwargs)

    # -- scheduling internals ----------------------------------------------

    def _advance(self, thread, value, exception=None):
        """Run the thread body to its next scheduling request."""
        try:
            if exception is not None:
                request = thread.body.throw(exception)
            else:
                request = thread.body.send(value)
        except StopIteration as stop:
            thread.state = DONE
            thread.done.succeed(getattr(stop, "value", None))
            return
        if isinstance(request, Work):
            if request.ref_us <= 0:
                self._advance(thread, None)
                return
            thread.remaining_work = request.ref_us
            thread.current_label = request.label
            self._enqueue(thread)
        elif isinstance(request, Sleep):
            thread.state = BLOCKED
            timeout = Timeout(
                self.sim, request.duration_us, name=thread._sleep_name
            )
            timeout.callbacks.append(
                lambda _event: self._advance(thread, None)
            )
        elif isinstance(request, WaitFor):
            thread.state = BLOCKED
            event = request.event
            if event.processed:
                timeout = Timeout(self.sim, 0.0)
                timeout.callbacks.append(
                    lambda _ev: self._resume_from_event(thread, event)
                )
            else:
                event.callbacks.append(
                    lambda ev: self._resume_from_event(thread, ev)
                )
        else:
            raise TypeError(
                f"thread {thread.name!r} yielded {request!r}; expected "
                "Work, Sleep, or WaitFor"
            )

    def _resume_from_event(self, thread, event):
        if event._exception is not None:
            self._advance(thread, None, exception=event._exception)
        else:
            self._advance(thread, event._value)

    def _min_runnable_vruntime(self):
        # Single pass, no intermediate list: runs on every wakeup.
        best = None
        for thread in self._runqueue:
            if best is None or thread.vruntime < best:
                best = thread.vruntime
        for core in self.soc.cores:
            running = core.current_thread
            if running is not None and running.state == RUNNING:
                if best is None or running.vruntime < best:
                    best = running.vruntime
        return 0.0 if best is None else best

    def _enqueue(self, thread):
        thread.state = RUNNABLE
        # Place woken threads at the head of the fairness window so they
        # get CPU promptly without resetting accumulated fairness.
        thread.vruntime = max(thread.vruntime, self._min_runnable_vruntime())
        self._runqueue.append(thread)
        self._wake_idle_cores(thread)

    def _wake_idle_cores(self, thread):
        idle_events = self._idle_events
        affinity = thread.affinity
        if affinity is None:
            eligible = [
                core_id
                for core_id, event in idle_events.items()
                if event is not None
            ]
        else:
            eligible = [
                core_id
                for core_id, event in idle_events.items()
                if event is not None and core_id in affinity
            ]
        if not eligible:
            return
        # Capacity-aware placement (EAS-style): offer work to the fastest
        # idle cores first, with a randomized tiebreak within a cluster so
        # placement among equal cores is not always cpu4. NumPy's
        # Generator.shuffle draws nothing for sequences of length <= 1,
        # so skipping it there leaves the RNG stream byte-identical.
        if len(eligible) > 1:
            self._rng.shuffle(eligible)
            eligible.sort(key=self._neg_perf.__getitem__)
        schedule = self.sim._schedule
        for core_id in eligible:
            event = idle_events[core_id]
            idle_events[core_id] = None
            # Inlined event.succeed() with no value: idle events are
            # created PENDING by the core loop and only triggered here.
            event._state = TRIGGERED
            schedule(event)

    def _pick_for(self, core):
        best = None
        best_vruntime = 0.0
        core_id = core.core_id
        for thread in self._runqueue:
            affinity = thread.affinity
            if affinity is not None and core_id not in affinity:
                continue
            vruntime = thread.vruntime
            if best is None or vruntime < best_vruntime:
                best = thread
                best_vruntime = vruntime
        return best

    # -- periodic services ----------------------------------------------

    def _trace_sampler_loop(self):
        # Counter tracks for the Chrome-trace export: die temperature
        # and global runqueue depth, sampled on their own window so the
        # "C" events are dense enough to plot but never perturb the
        # schedule (the loop only reads state).
        trace = self.sim.trace
        while True:
            yield self.sim.timeout(_TRACE_SAMPLE_WINDOW_US)
            trace.count("temp_c", self.soc.thermal.temperature)
            trace.count("runqueue", len(self._runqueue))

    def _thermal_loop(self):
        # Die heating is dominated by the big cluster (its cores draw
        # ~5x a little core): normalize load to the big-core count so a
        # saturated big cluster drives the die towards max temperature.
        last_busy = 0.0
        big_count = max(1, len(self.soc.big_cores))
        while True:
            yield self.sim.timeout(_THERMAL_WINDOW_US)
            window_busy = self._total_busy - last_busy
            last_busy = self._total_busy
            load = min(1.0, window_busy / (_THERMAL_WINDOW_US * big_count))
            self.soc.thermal.update(load)

    # -- system call / IPC helpers (generators for thread bodies) -------

    def syscall(self, work_us=0.0, label="syscall"):
        """Kernel round trip plus optional in-kernel work."""
        yield Work(params.IOCTL_US + work_us, label=label)

    def binder_call(self, service_work_us=0.0, label="binder"):
        """Synchronous binder transaction to a system service.

        The caller blocks while the remote service does its work; only
        the transaction overhead is charged to the calling thread.
        """
        yield Work(params.BINDER_CALL_US / 2, label=f"{label}:send")
        if service_work_us > 0:
            yield Sleep(service_work_us)
        yield Work(params.BINDER_CALL_US / 2, label=f"{label}:recv")


class _CoreLoop:
    """Dispatch loop for one core, written as a callback state machine.

    Semantically this is the generator::

        while True:
            thread = pick()                   # or wait on an idle event
            maybe yield Timeout(ctx_switch)   # if a different thread ran
            yield Timeout(slice)              # execute one timeslice
            account(); maybe yield Timeout(0) # misfit handoff

    driven directly by event callbacks instead of through a
    :class:`~repro.sim.process.Process`. Every timeslice on every core
    passes through this loop — it retires the large majority of all
    simulation events — and the ``Process._resume`` ->
    ``generator.send`` frames cost more than the loop body itself. The
    events it creates (labels, creation order, priorities, including
    the ``<core>:loop:start`` bootstrap) are byte-identical to the
    generator form it replaced, which the sanitizer's replay digest
    pins (see ``docs/performance.md``).
    """

    # Resume states: where the loop continues when its pending event pops.
    _PICK = 0
    _RUN = 1
    _ACCOUNT = 2

    __slots__ = (
        "kernel", "sim", "trace", "core", "core_id", "runqueue",
        "idle_events", "cluster", "cluster_name", "governor",
        "opp_max_khz", "perf_index", "faster_cores", "idle_name",
        "add_cpu_slice", "context_switch_us", "migration_penalty_us",
        "timeslice_us", "_state", "_thread", "_slice_work", "_duration",
        "_span",
    )

    def __init__(self, kernel, core):
        sim = kernel.sim
        self.kernel = kernel
        self.sim = sim
        self.trace = sim.trace  # fixed at Simulator construction
        self.core = core
        self.core_id = core.core_id
        self.runqueue = kernel._runqueue
        self.idle_events = kernel._idle_events
        cluster = core.cluster
        self.cluster = cluster
        self.cluster_name = cluster.name
        self.governor = cluster.governor
        self.opp_max_khz = cluster.governor.opp.max_khz
        self.perf_index = core.perf_index
        self.faster_cores = kernel._faster_cores[core.core_id]
        self.idle_name = core.name + ":idle"
        self.add_cpu_slice = kernel.soc.energy.add_cpu_slice
        self.context_switch_us = params.CONTEXT_SWITCH_US
        self.migration_penalty_us = params.MIGRATION_PENALTY_US
        self.timeslice_us = params.TIMESLICE_US
        self._state = self._PICK
        self._thread = None
        self._slice_work = 0.0
        self._duration = 0.0
        self._span = None
        # Bootstrap identical to ``sim.process(..., name=f"{core.name}:loop")``:
        # a triggered urgent event labelled ``<name>:start`` whose pop
        # runs the first dispatch round.
        start = Event(sim, name=core.name + ":loop:start")
        start.callbacks.append(self._run)
        start._state = TRIGGERED
        sim._schedule(start, priority=sim.PRIORITY_URGENT)

    def _run(self, _event):
        # One activation: loop over states until the machine blocks on
        # a new event (idle wait or timeout) and returns. The events
        # this creates never fail, so there is no exception relay.
        kernel = self.kernel
        sim = self.sim
        core = self.core
        core_id = self.core_id
        runqueue = self.runqueue
        trace = self.trace
        state = self._state
        thread = self._thread
        while True:
            if state == 0:  # _PICK: choose a thread or go idle
                # Inlined Kernel._pick_for: lowest-vruntime runnable
                # thread this core may run.
                thread = None
                best_vruntime = 0.0
                for candidate in runqueue:
                    affinity = candidate.affinity
                    if affinity is not None and core_id not in affinity:
                        continue
                    vruntime = candidate.vruntime
                    if thread is None or vruntime < best_vruntime:
                        thread = candidate
                        best_vruntime = vruntime
                if thread is None:
                    idle = Event(sim, name=self.idle_name)
                    idle.callbacks.append(self._run)
                    self.idle_events[core_id] = idle
                    self._state = 0
                    self._thread = None
                    return
                runqueue.remove(thread)
                thread.state = RUNNING
                if core.current_thread is not thread:
                    thread.stats.context_switches += 1
                    if trace is not None:
                        trace.count(f"ctx_switch:{core.name}")
                        trace.count("ctx_switch")
                    timeout = Timeout(sim, self.context_switch_us)
                    timeout.callbacks.append(self._run)
                    self._state = 1
                    self._thread = thread
                    return
                state = 1
            elif state == 1:  # _RUN: charge migration, run one slice
                if (
                    thread.last_core_id is not None
                    and thread.last_core_id != core_id
                ):
                    thread.stats.migrations += 1
                    thread.penalty_work += self.migration_penalty_us
                    if trace is not None:
                        trace.count("migration")
                        trace.mark(
                            "migration",
                            thread=thread.name,
                            from_core=thread.last_core_id,
                            to_core=core_id,
                        )
                core.current_thread = thread
                thread.last_core_id = core_id
                # Inlined core.speed (perf * speed_fraction * thermal
                # factor) — same expression, minus two property frames
                # per slice; speed_fraction is current_khz / max_khz.
                fraction = self.governor.current_khz / self.opp_max_khz
                speed = (
                    self.perf_index * fraction * self.cluster.thermal_factor
                )
                if speed < _MIN_SPEED:
                    speed = _MIN_SPEED
                total_work = thread.penalty_work + thread.remaining_work
                slice_work = min(total_work, self.timeslice_us * speed)
                duration = slice_work / speed
                span = None
                if trace is not None:
                    span = trace.begin(
                        core.name, thread.name, tid=thread.tid
                    )
                timeout = Timeout(sim, duration)
                timeout.callbacks.append(self._run)
                self._state = 2
                self._thread = thread
                self._slice_work = slice_work
                self._duration = duration
                self._span = span
                return
            else:  # _ACCOUNT: book the finished slice
                span = self._span
                if span is not None:
                    trace.end(span)
                    self._span = None
                slice_work = self._slice_work
                duration = self._duration
                penalty_used = min(thread.penalty_work, slice_work)
                thread.penalty_work -= penalty_used
                thread.remaining_work -= slice_work - penalty_used
                thread.vruntime += duration / thread.weight
                stats = thread.stats
                stats.cpu_time_us += duration
                stats.slices += 1
                stats.cores_used.add(core_id)
                core.busy_us += duration
                # The energy meter charges the slice at the OPP current
                # *now* (slice end) — the governor may have stepped
                # mid-slice, so this is not the fraction used for speed.
                self.add_cpu_slice(
                    core, duration,
                    label=thread.current_label or thread.name,
                    fraction=self.governor.current_khz / self.opp_max_khz,
                )
                kernel._cluster_busy[self.cluster_name] += duration
                kernel._core_busy[core_id] += duration
                kernel._total_busy += duration
                if thread.remaining_work <= 1e-9:
                    thread.state = BLOCKED
                    thread.remaining_work = 0.0
                    kernel._advance(thread, None)
                    state = 0
                    continue
                thread.state = RUNNABLE
                runqueue.append(thread)
                # Misfit migration (EAS): when a strictly faster core
                # sits idle, hand the preempted thread over instead of
                # re-picking it here — the zero timeout gives the woken
                # core's loop one schedule round to steal. Equal or
                # slower idle cores never steal, avoiding migration
                # ping-pong at slice boundaries. ``faster_cores`` is
                # the precomputed tuple of strictly faster cores.
                idle_events = self.idle_events
                for other in self.faster_cores:
                    if idle_events.get(other.core_id) is not None and (
                        thread.can_run_on(other)
                    ):
                        kernel._wake_idle_cores(thread)
                        timeout = Timeout(sim, 0.0)
                        timeout.callbacks.append(self._run)
                        self._state = 0
                        self._thread = None
                        return
                state = 0


class _GovernorLoop:
    """Periodic schedutil sampling for one cluster (callback form).

    schedutil tracks per-CPU utilization and a cluster runs at the
    frequency its *busiest* core needs — a single fully-busy core pins
    the whole cluster at the top OPP. Like :class:`_CoreLoop` this is a
    callback state machine with an event stream byte-identical to the
    generator Process it replaced (bootstrap ``gov:<cluster>:start``,
    then one ``timeout(4000.0)`` per window).
    """

    __slots__ = (
        "sim", "trace", "core_busy", "core_ids", "last_busy", "governor",
        "update", "freq_label",
    )

    def __init__(self, kernel, cluster):
        sim = kernel.sim
        self.sim = sim
        self.trace = sim.trace
        self.core_busy = kernel._core_busy
        self.core_ids = tuple(core.core_id for core in cluster.cores)
        self.last_busy = {core_id: 0.0 for core_id in self.core_ids}
        self.governor = cluster.governor
        self.update = cluster.governor.update
        self.freq_label = "freq:" + cluster.name
        start = Event(sim, name="gov:" + cluster.name + ":start")
        start.callbacks.append(self._start)
        start._state = TRIGGERED
        sim._schedule(start, priority=sim.PRIORITY_URGENT)

    def _start(self, _event):
        timeout = Timeout(self.sim, _GOVERNOR_WINDOW_US)
        timeout.callbacks.append(self._tick)

    def _tick(self, _event):
        core_busy = self.core_busy
        last_busy = self.last_busy
        utilization = 0.0
        for core_id in self.core_ids:
            busy = core_busy[core_id]
            window_busy = busy - last_busy[core_id]
            last_busy[core_id] = busy
            utilization = max(
                utilization, min(1.0, window_busy / _GOVERNOR_WINDOW_US)
            )
        self.update(utilization)
        if self.trace is not None:
            self.trace.count(self.freq_label, self.governor.current_khz)
        timeout = Timeout(self.sim, _GOVERNOR_WINDOW_US)
        timeout.callbacks.append(self._tick)
