"""CFS-style scheduler over the simulated SoC's cores.

Design notes
------------

* One global runqueue (per-thread affinity masks filter eligibility);
  each core runs a dispatch loop that picks the runnable thread with the
  lowest virtual runtime, charges a context switch if it is not the one
  that ran there last, and executes at most one timeslice before
  re-picking.
* Threads waking onto a different core than they last ran on pay a
  migration penalty (cold caches) and are counted — the "frequent CPU
  migrations" annotation 4 of the paper's Fig. 6 profile.
* Idle cores are woken in randomized order when work arrives, which —
  combined with interference daemons — reproduces the single hot thread
  bouncing across cores 4-7 that the paper observes for the NNAPI CPU
  fallback path.
* Per-cluster DVFS governors sample window utilization; a benchmark's
  tight loop pins the top OPP while an app idling between camera frames
  ramps up and down, contributing run-to-run variability (Fig. 11).
"""

from repro.android import params
from repro.android.thread import (
    BLOCKED,
    DONE,
    RUNNABLE,
    RUNNING,
    Sleep,
    SimThread,
    WaitFor,
    Work,
)

#: Governor sampling window.
_GOVERNOR_WINDOW_US = 4_000.0
#: Thermal model sampling window.
_THERMAL_WINDOW_US = 50_000.0
#: Trace counter-sampling window (die temperature, runqueue depth).
#: Offset from the governor window so samples never tie with governor
#: events at the same timestamp.
_TRACE_SAMPLE_WINDOW_US = 5_000.0
#: Floor for core speed so a throttled core still makes progress.
_MIN_SPEED = 0.01


class Kernel:
    """Scheduler + OS services for one simulated device."""

    def __init__(self, sim, soc, enable_dvfs=True, enable_thermal=False):
        self.sim = sim
        self.soc = soc
        self.threads = []
        self._runqueue = []
        self._idle_events = {}
        self._cluster_busy = {cluster.name: 0.0 for cluster in soc.clusters}
        self._core_busy = {core.core_id: 0.0 for core in soc.cores}
        self._total_busy = 0.0
        self._rng = sim.rng.stream("sched")
        self._next_pid = 1000
        self._next_tid = 1
        # Start dispatch loops fastest-core-first so work queued before
        # the first simulation step lands on the big cluster.
        for core in sorted(soc.cores, key=lambda c: -c.perf_index):
            sim.process(self._core_loop(core), name=f"{core.name}:loop")
        if enable_dvfs:
            for cluster in soc.clusters:
                sim.process(
                    self._governor_loop(cluster), name=f"gov:{cluster.name}"
                )
        if enable_thermal:
            sim.process(self._thermal_loop(), name="thermal")
        if sim.trace is not None:
            sim.process(self._trace_sampler_loop(), name="trace-sampler")

    @property
    def now(self):
        return self.sim.now

    def allocate_pid(self):
        """Deterministic process-id allocation, fresh per simulation.

        Pids end up in trace metadata, so they must not come from
        interpreter state (``id()``, module counters) — identical runs
        must export byte-identical traces.
        """
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def allocate_tid(self):
        """Deterministic thread-id allocation, fresh per simulation.

        Same contract as :meth:`allocate_pid`: tids are exported in
        trace-event args, so a process-global counter would make the
        Nth simulation in a process export different bytes than the
        first.
        """
        tid = self._next_tid
        self._next_tid += 1
        return tid

    # -- thread lifecycle ------------------------------------------------

    def spawn(self, body, name, nice=0, affinity=None, process=None):
        """Create and start a thread running generator ``body``."""
        thread = SimThread(
            self, body, name, nice=nice, affinity=affinity, process=process
        )
        self.threads.append(thread)
        self._advance(thread, None)
        return thread

    def spawn_on_big(self, body, name, **kwargs):
        """Spawn with affinity to the big cluster (perf-critical work)."""
        affinity = {core.core_id for core in self.soc.big_cores}
        return self.spawn(body, name, affinity=affinity, **kwargs)

    # -- scheduling internals ----------------------------------------------

    def _advance(self, thread, value, exception=None):
        """Run the thread body to its next scheduling request."""
        try:
            if exception is not None:
                request = thread.body.throw(exception)
            else:
                request = thread.body.send(value)
        except StopIteration as stop:
            thread.state = DONE
            thread.done.succeed(getattr(stop, "value", None))
            return
        if isinstance(request, Work):
            if request.ref_us <= 0:
                self._advance(thread, None)
                return
            thread.remaining_work = request.ref_us
            thread.current_label = request.label
            self._enqueue(thread)
        elif isinstance(request, Sleep):
            thread.state = BLOCKED
            self.sim.schedule_callback(
                request.duration_us,
                lambda _event: self._advance(thread, None),
                name=f"{thread.name}:sleep",
            )
        elif isinstance(request, WaitFor):
            thread.state = BLOCKED
            event = request.event
            if event.processed:
                self.sim.schedule_callback(
                    0.0, lambda _ev: self._resume_from_event(thread, event)
                )
            else:
                event.callbacks.append(
                    lambda ev: self._resume_from_event(thread, ev)
                )
        else:
            raise TypeError(
                f"thread {thread.name!r} yielded {request!r}; expected "
                "Work, Sleep, or WaitFor"
            )

    def _resume_from_event(self, thread, event):
        if event._exception is not None:
            self._advance(thread, None, exception=event._exception)
        else:
            self._advance(thread, event._value)

    def _min_runnable_vruntime(self):
        candidates = [thread.vruntime for thread in self._runqueue]
        candidates.extend(
            core.current_thread.vruntime
            for core in self.soc.cores
            if core.current_thread is not None
            and core.current_thread.state == RUNNING
        )
        return min(candidates) if candidates else 0.0

    def _enqueue(self, thread):
        thread.state = RUNNABLE
        # Place woken threads at the head of the fairness window so they
        # get CPU promptly without resetting accumulated fairness.
        thread.vruntime = max(thread.vruntime, self._min_runnable_vruntime())
        self._runqueue.append(thread)
        self._wake_idle_cores(thread)

    def _wake_idle_cores(self, thread):
        eligible = [
            core_id
            for core_id, event in self._idle_events.items()
            if event is not None and thread.can_run_on(self.soc.core(core_id))
        ]
        # Capacity-aware placement (EAS-style): offer work to the fastest
        # idle cores first, with a randomized tiebreak within a cluster so
        # placement among equal cores is not always cpu4.
        self._rng.shuffle(eligible)
        eligible.sort(key=lambda cid: -self.soc.core(cid).perf_index)
        for core_id in eligible:
            event = self._idle_events[core_id]
            self._idle_events[core_id] = None
            event.succeed()

    def _pick_for(self, core):
        best = None
        for thread in self._runqueue:
            if not thread.can_run_on(core):
                continue
            if best is None or thread.vruntime < best.vruntime:
                best = thread
        return best

    def _core_loop(self, core):
        sim = self.sim
        while True:
            thread = self._pick_for(core)
            if thread is None:
                idle = sim.event(name=f"{core.name}:idle")
                self._idle_events[core.core_id] = idle
                yield idle
                continue
            self._runqueue.remove(thread)
            thread.state = RUNNING
            if core.current_thread is not thread:
                thread.stats.context_switches += 1
                if sim.trace is not None:
                    sim.trace.count(f"ctx_switch:{core.name}")
                    sim.trace.count("ctx_switch")
                yield sim.timeout(params.CONTEXT_SWITCH_US)
            if (
                thread.last_core_id is not None
                and thread.last_core_id != core.core_id
            ):
                thread.stats.migrations += 1
                thread.penalty_work += params.MIGRATION_PENALTY_US
                if sim.trace is not None:
                    sim.trace.count("migration")
                    sim.trace.mark(
                        "migration",
                        thread=thread.name,
                        from_core=thread.last_core_id,
                        to_core=core.core_id,
                    )
            core.current_thread = thread
            thread.last_core_id = core.core_id

            speed = max(core.speed, _MIN_SPEED)
            total_work = thread.penalty_work + thread.remaining_work
            slice_work = min(total_work, params.TIMESLICE_US * speed)
            duration = slice_work / speed
            span = None
            if sim.trace is not None:
                span = sim.trace.begin(core.name, thread.name, tid=thread.tid)
            yield sim.timeout(duration)
            if span is not None:
                sim.trace.end(span)

            penalty_used = min(thread.penalty_work, slice_work)
            thread.penalty_work -= penalty_used
            thread.remaining_work -= slice_work - penalty_used
            thread.vruntime += duration / thread.weight
            thread.stats.cpu_time_us += duration
            thread.stats.slices += 1
            thread.stats.cores_used.add(core.core_id)
            core.busy_us += duration
            self.soc.energy.add_cpu_slice(
                core, duration, label=thread.current_label or thread.name
            )
            self._cluster_busy[core.cluster.name] += duration
            self._core_busy[core.core_id] += duration
            self._total_busy += duration

            if thread.remaining_work <= 1e-9:
                thread.state = BLOCKED
                thread.remaining_work = 0.0
                self._advance(thread, None)
            else:
                thread.state = RUNNABLE
                self._runqueue.append(thread)
                # Misfit migration (EAS): when a strictly faster core
                # sits idle, hand the preempted thread over instead of
                # letting this core re-pick it — the yield gives the
                # woken core's loop one schedule round to steal. Equal
                # or slower idle cores never steal here, which avoids
                # pointless migration ping-pong at slice boundaries.
                faster_idle = any(
                    self._idle_events.get(other.core_id) is not None
                    and other.perf_index > core.perf_index
                    and thread.can_run_on(other)
                    for other in self.soc.cores
                )
                if faster_idle:
                    self._wake_idle_cores(thread)
                    yield sim.timeout(0.0)

    # -- periodic services ----------------------------------------------

    def _governor_loop(self, cluster):
        # schedutil tracks per-CPU utilization and a cluster runs at the
        # frequency its *busiest* core needs — a single fully-busy core
        # pins the whole cluster at the top OPP.
        last_busy = {core.core_id: 0.0 for core in cluster.cores}
        while True:
            yield self.sim.timeout(_GOVERNOR_WINDOW_US)
            utilization = 0.0
            for core in cluster.cores:
                busy = self._core_busy[core.core_id]
                window_busy = busy - last_busy[core.core_id]
                last_busy[core.core_id] = busy
                utilization = max(
                    utilization, min(1.0, window_busy / _GOVERNOR_WINDOW_US)
                )
            cluster.governor.update(utilization)
            if self.sim.trace is not None:
                self.sim.trace.count(
                    f"freq:{cluster.name}", cluster.governor.current_khz
                )

    def _trace_sampler_loop(self):
        # Counter tracks for the Chrome-trace export: die temperature
        # and global runqueue depth, sampled on their own window so the
        # "C" events are dense enough to plot but never perturb the
        # schedule (the loop only reads state).
        trace = self.sim.trace
        while True:
            yield self.sim.timeout(_TRACE_SAMPLE_WINDOW_US)
            trace.count("temp_c", self.soc.thermal.temperature)
            trace.count("runqueue", len(self._runqueue))

    def _thermal_loop(self):
        # Die heating is dominated by the big cluster (its cores draw
        # ~5x a little core): normalize load to the big-core count so a
        # saturated big cluster drives the die towards max temperature.
        last_busy = 0.0
        big_count = max(1, len(self.soc.big_cores))
        while True:
            yield self.sim.timeout(_THERMAL_WINDOW_US)
            window_busy = self._total_busy - last_busy
            last_busy = self._total_busy
            load = min(1.0, window_busy / (_THERMAL_WINDOW_US * big_count))
            self.soc.thermal.update(load)

    # -- system call / IPC helpers (generators for thread bodies) -------

    def syscall(self, work_us=0.0, label="syscall"):
        """Kernel round trip plus optional in-kernel work."""
        yield Work(params.IOCTL_US + work_us, label=label)

    def binder_call(self, service_work_us=0.0, label="binder"):
        """Synchronous binder transaction to a system service.

        The caller blocks while the remote service does its work; only
        the transaction overhead is charged to the calling thread.
        """
        yield Work(params.BINDER_CALL_US / 2, label=f"{label}:send")
        if service_work_us > 0:
            yield Sleep(service_work_us)
        yield Work(params.BINDER_CALL_US / 2, label=f"{label}:recv")
