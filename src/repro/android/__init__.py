"""Simulated Android OS layer.

Threads, a CFS-style scheduler over the SoC's cores, kernel-crossing
costs, the FastRPC driver used to reach the Hexagon DSP, and the ambient
interference (daemons, GC) that makes real-device latency vary run to
run. The scheduler phenomena this layer produces — CPU fallback running
single-threaded, frequent core migrations, contention from background
inferences — are the mechanisms behind the paper's Figs. 5, 6, 9 and 10.
"""

from repro.android.fastrpc import (
    FastRpcChannel,
    FastRpcSessionDeath,
    FastRpcStats,
    FastRpcTimeout,
)
from repro.android.interference import InterferenceProfile, start_interference
from repro.android.kernel import Kernel
from repro.android.process import AppProcess
from repro.android.thread import Sleep, SimThread, WaitFor, Work

__all__ = [
    "FastRpcChannel",
    "FastRpcSessionDeath",
    "FastRpcStats",
    "FastRpcTimeout",
    "InterferenceProfile",
    "start_interference",
    "Kernel",
    "AppProcess",
    "Sleep",
    "SimThread",
    "WaitFor",
    "Work",
]
