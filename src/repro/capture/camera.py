"""The camera HAL.

Delivers frames on the sensor cadence into a small buffer queue; stale
frames are recycled when the consumer falls behind (so a slow inference
pipeline sees fresh frames, not a growing backlog — the behaviour of
Android's ImageReader with a fixed buffer count).

Capture latency seen by the app = wait for the next frame (up to a full
frame interval, depending on phase) + interrupt/delivery jitter +
binder IPC from the camera service. The paper names "delays in the
interrupt handling from sensor input streams" as one variability source;
the jitter stream models that.
"""

from repro.android import params as os_params
from repro.android.thread import WaitFor, Work
from repro.capture.frames import FrameDescriptor
from repro.sim import units
from repro.sim import Store


class CameraHal:
    """One camera stream bound to a simulator."""

    #: Per-pixel ISP cost (demosaic/3A statistics) in the HAL thread, ns.
    ISP_NS_PER_PIXEL = 4.0

    def __init__(self, kernel, resolution=(480, 640), fps=30.0,
                 buffer_count=3, jitter_fraction=0.08, isp_enabled=True):
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        self.kernel = kernel
        self.sim = kernel.sim
        self.resolution = resolution
        self.fps = fps
        self.frame_interval_us = 1e6 / fps
        self.jitter_fraction = jitter_fraction
        self.isp_enabled = isp_enabled
        self.queue = Store(self.sim, name="camera", capacity=buffer_count)
        self.frames_produced = 0
        self.frames_dropped = 0
        self._rng = self.sim.rng.stream("camera")
        self._running = False
        self._hal_thread = None

    @property
    def isp_work_us(self):
        """CPU work the camera HAL does per delivered frame."""
        if not self.isp_enabled:
            return 0.0
        height, width = self.resolution
        return units.ns(height * width * self.ISP_NS_PER_PIXEL)

    def start(self):
        """Begin frame delivery; idempotent.

        The HAL runs as a high-priority *thread*, not a free-running
        process: the per-frame ISP work (demosaic, 3A) competes for CPU
        with everything else, which is how background CPU load delays
        frame delivery (one of the Fig. 10 coupling paths).
        """
        if self._running:
            return
        self._running = True
        self._hal_thread = self.kernel.spawn(
            self._delivery_loop(), name="camera:hal", nice=-2
        )

    def _delivery_loop(self):
        from repro.android.thread import Sleep, Work

        height, width = self.resolution
        while True:
            jitter = self._rng.normal(0.0, self.jitter_fraction)
            interval = self.frame_interval_us * max(0.5, 1.0 + jitter)
            yield Sleep(interval)
            if self.isp_work_us > 0:
                yield Work(self.isp_work_us, label="camera:isp")
            frame = FrameDescriptor(
                sequence=self.frames_produced,
                timestamp_us=self.sim.now,
                height=height,
                width=width,
            )
            self.frames_produced += 1
            self.frames_dropped += self.queue.put(frame)
            if self.sim.trace is not None:
                self.sim.trace.count("camera_frames")

    def capture(self):
        """Thread-body generator: wait for and receive the next frame.

        Returns the :class:`FrameDescriptor`. The binder transaction to
        the camera service and the buffer handling are charged to the
        calling thread.
        """
        if not self._running:
            raise RuntimeError("capture() before start()")
        frame = yield WaitFor(self.queue.get())
        # Buffer rotation + metadata handling in the app process.
        yield Work(os_params.BINDER_CALL_US, label="camera:acquire")
        return frame
