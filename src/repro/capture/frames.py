"""Frame descriptors and synthetic sensor data."""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FrameDescriptor:
    """Metadata of one camera frame in the HAL buffer queue."""

    sequence: int
    timestamp_us: float
    height: int
    width: int
    format: str = "NV21"

    @property
    def nbytes(self):
        if self.format == "NV21":
            return self.height * self.width * 3 // 2
        if self.format == "RGB":
            return self.height * self.width * 3
        raise ValueError(f"unknown frame format {self.format!r}")


def synthesize_nv21(rng, height, width):
    """A random-scene NV21 byte buffer (smooth luma + blocky chroma)."""
    if height % 2 or width % 2:
        raise ValueError("NV21 needs even dimensions")
    # Smooth-ish luma: low-res noise upsampled, plus fine grain.
    coarse = rng.integers(40, 216, size=(height // 8 + 1, width // 8 + 1))
    luma = np.repeat(np.repeat(coarse, 8, axis=0), 8, axis=1)[:height, :width]
    luma = np.clip(luma + rng.integers(-8, 9, size=(height, width)), 0, 255)
    chroma = rng.integers(96, 160, size=(height // 2) * (width // 2) * 2)
    return np.concatenate(
        [luma.reshape(-1), chroma.reshape(-1)]
    ).astype(np.uint8)


def synthesize_rgb(rng, height, width):
    """A random RGB uint8 frame for pipelines that skip YUV."""
    return rng.integers(0, 256, size=(height, width, 3)).astype(np.uint8)
