"""Data capture: the simulated camera subsystem (paper §II-A).

A camera HAL process delivers YUV NV21 frames at the sensor frame rate
(with exposure/ISP jitter) into a bounded buffer queue; the app's
capture stage is the wait for the next frame plus the delivery IPC.
Frames can also be synthesized as real NV21 byte buffers so the
pre-processing kernels have genuine data to chew on in examples/tests.
"""

from repro.capture.camera import CameraHal
from repro.capture.frames import FrameDescriptor, synthesize_nv21, synthesize_rgb

__all__ = ["CameraHal", "FrameDescriptor", "synthesize_nv21", "synthesize_rgb"]
