"""Op descriptors and factory helpers.

An :class:`Op` records everything the cost and delegation models need:

* ``kind`` — the TFLite-level operator name used by framework op-support
  matrices (``CONV_2D``, ``DEPTHWISE_CONV_2D``, ...).
* ``compute_class`` — which roofline bucket prices it (``conv``,
  ``depthwise``, ``fc``, ``elementwise``).
* ``flops`` — 2x multiply-accumulates for MAC-type ops, element counts
  for memory-bound ops.
* ``params`` / activation sizes for weight- and transfer-cost accounting.

Factory helpers compute FLOPs from layer hyperparameters so architecture
builders read like network definitions.
"""

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Op:
    name: str
    kind: str
    compute_class: str
    flops: float
    params: int
    output_shape: tuple
    input_elems: int
    output_elems: int
    attrs: dict = field(default_factory=dict, compare=False)

    def __post_init__(self):
        if self.compute_class not in ("conv", "depthwise", "fc", "elementwise"):
            raise ValueError(f"bad compute_class {self.compute_class!r}")
        if self.flops < 0:
            raise ValueError("negative flops")


def _out_dim(size, stride):
    return math.ceil(size / stride)


def conv2d(name, in_hw, in_ch, out_ch, kernel, stride=1):
    """Standard 2-D convolution (SAME padding).

    ``kernel`` may be an int (square) or an ``(kh, kw)`` tuple for the
    factorized 1x7 / 7x1 convolutions of the Inception family.
    """
    in_h, in_w = in_hw
    kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
    out_h, out_w = _out_dim(in_h, stride), _out_dim(in_w, stride)
    macs = out_h * out_w * out_ch * in_ch * kh * kw
    return Op(
        name=name,
        kind="CONV_2D",
        compute_class="conv",
        flops=2.0 * macs,
        params=kh * kw * in_ch * out_ch + out_ch,
        output_shape=(out_h, out_w, out_ch),
        input_elems=in_h * in_w * in_ch,
        output_elems=out_h * out_w * out_ch,
        attrs={"kernel": (kh, kw), "stride": stride},
    )


def depthwise_conv2d(name, in_hw, channels, kernel, stride=1):
    """Depthwise 2-D convolution (one filter per channel)."""
    in_h, in_w = in_hw
    out_h, out_w = _out_dim(in_h, stride), _out_dim(in_w, stride)
    macs = out_h * out_w * channels * kernel * kernel
    return Op(
        name=name,
        kind="DEPTHWISE_CONV_2D",
        compute_class="depthwise",
        flops=2.0 * macs,
        params=kernel * kernel * channels + channels,
        output_shape=(out_h, out_w, channels),
        input_elems=in_h * in_w * channels,
        output_elems=out_h * out_w * channels,
        attrs={"kernel": kernel, "stride": stride},
    )


def fully_connected(name, in_features, out_features):
    return Op(
        name=name,
        kind="FULLY_CONNECTED",
        compute_class="fc",
        flops=2.0 * in_features * out_features,
        params=in_features * out_features + out_features,
        output_shape=(out_features,),
        input_elems=in_features,
        output_elems=out_features,
    )


def matmul(name, m, k, n, batch=1, weights=True):
    """Batched matrix multiply (transformer projections/attention).

    ``weights=True`` (the default) treats the right operand as a learned
    ``k x n`` weight matrix; pass False for activation-activation products.
    """
    return Op(
        name=name,
        kind="BATCH_MATMUL",
        compute_class="fc",
        flops=2.0 * batch * m * k * n,
        params=(k * n + n) if weights else 0,
        output_shape=(batch, m, n),
        input_elems=batch * (m * k + k * n),
        output_elems=batch * m * n,
    )


def attention_scores(name, seq_len, head_dim, heads):
    """QK^T plus attention-weighted V for all heads."""
    macs = 2 * heads * seq_len * seq_len * head_dim  # scores + context
    return Op(
        name=name,
        kind="ATTENTION",
        compute_class="fc",
        flops=2.0 * macs,
        params=0,
        output_shape=(seq_len, heads * head_dim),
        input_elems=3 * seq_len * heads * head_dim,
        output_elems=seq_len * heads * head_dim,
        attrs={"heads": heads},
    )


def maxpool(name, in_hw, channels, kernel, stride):
    in_h, in_w = in_hw
    out_h, out_w = _out_dim(in_h, stride), _out_dim(in_w, stride)
    return Op(
        name=name,
        kind="MAX_POOL_2D",
        compute_class="elementwise",
        flops=float(out_h * out_w * channels * kernel * kernel),
        params=0,
        output_shape=(out_h, out_w, channels),
        input_elems=in_h * in_w * channels,
        output_elems=out_h * out_w * channels,
        attrs={"kernel": kernel, "stride": stride},
    )


def avgpool(name, in_hw, channels, kernel=None, stride=None):
    """Average pool; defaults to global pooling."""
    in_h, in_w = in_hw
    if kernel is None:  # global
        out_h = out_w = 1
        work = in_h * in_w * channels
    else:
        out_h, out_w = _out_dim(in_h, stride), _out_dim(in_w, stride)
        work = out_h * out_w * channels * kernel * kernel
    return Op(
        name=name,
        kind="AVERAGE_POOL_2D",
        compute_class="elementwise",
        flops=float(work),
        params=0,
        output_shape=(out_h, out_w, channels),
        input_elems=in_h * in_w * channels,
        output_elems=out_h * out_w * channels,
    )


def activation(name, shape, kind="RELU"):
    elems = math.prod(shape)
    return Op(
        name=name,
        kind=kind,
        compute_class="elementwise",
        flops=float(elems),
        params=0,
        output_shape=tuple(shape),
        input_elems=elems,
        output_elems=elems,
    )


def add(name, shape):
    elems = math.prod(shape)
    return Op(
        name=name,
        kind="ADD",
        compute_class="elementwise",
        flops=float(elems),
        params=0,
        output_shape=tuple(shape),
        input_elems=2 * elems,
        output_elems=elems,
    )


def concat(name, shapes, axis=-1):
    """Concatenate along the channel axis."""
    total = sum(math.prod(shape) for shape in shapes)
    base = list(shapes[0])
    base[axis] = sum(shape[axis] for shape in shapes)
    return Op(
        name=name,
        kind="CONCATENATION",
        compute_class="elementwise",
        flops=float(total),
        params=0,
        output_shape=tuple(base),
        input_elems=total,
        output_elems=total,
    )


def softmax(name, features, batch=1):
    elems = batch * features
    return Op(
        name=name,
        kind="SOFTMAX",
        compute_class="elementwise",
        flops=5.0 * elems,  # exp, subtract-max, sum, divide
        params=0,
        output_shape=(batch, features),
        input_elems=elems,
        output_elems=elems,
    )


def resize_bilinear(name, in_hw, out_hw, channels):
    out_h, out_w = out_hw
    elems = out_h * out_w * channels
    return Op(
        name=name,
        kind="RESIZE_BILINEAR",
        compute_class="elementwise",
        flops=8.0 * elems,  # 4 taps, 2 lerps per output element
        params=0,
        output_shape=(out_h, out_w, channels),
        input_elems=in_hw[0] * in_hw[1] * channels,
        output_elems=elems,
    )


def embedding_lookup(name, seq_len, hidden, vocab_size=0):
    """Token embedding gather; ``vocab_size`` adds the table parameters."""
    elems = seq_len * hidden
    return Op(
        name=name,
        kind="EMBEDDING_LOOKUP",
        compute_class="elementwise",
        flops=float(elems),
        params=vocab_size * hidden,
        output_shape=(seq_len, hidden),
        input_elems=seq_len,
        output_elems=elems,
    )
