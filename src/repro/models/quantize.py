"""Graph quantization transform.

Turning a fp32 graph into its int8 counterpart keeps the topology and
arithmetic volume but changes the execution dtype, which drives:

* smaller weights and activations (4x) — less transfer/flush cost;
* eligibility for the Hexagon DSP (int8 only);
* different kernel throughputs (tuned NEON vs reference fallback on CPU).

The paper never compares fp32 against int8 accuracy (§III-A), and neither
do we: quantization here is a performance-relevant retyping.
"""

from repro.models.graph import ModelGraph


def quantize_graph(graph):
    """Return the int8 variant of ``graph``.

    The quantized model gains a name suffix and records its float origin
    in metadata so reports can pair the two variants.
    """
    if graph.dtype == "int8":
        raise ValueError(f"{graph.name} is already quantized")
    quantized = graph.with_dtype("int8")
    metadata = dict(quantized.metadata)
    metadata["quantized_from"] = graph.name
    return ModelGraph(
        name=graph.name,
        task=graph.task,
        input_spec=quantized.input_spec,
        ops=graph.ops,
        dtype="int8",
        output_features=graph.output_features,
        metadata=metadata,
    )
