"""SSD MobileNet-v2 (300x300) — Liu et al., 2016 / Sandler et al., 2018.

Single-shot detection: MNv2 backbone plus a pyramid of extra feature
maps, with per-location box-regression and class heads. Post-processing
(anchor decode + NMS) runs on the CPU outside the graph, as in the
TFLite detection apps the paper profiles.
"""

from repro.models.graph import ModelGraph
from repro.models.ops import activation, concat, conv2d, depthwise_conv2d
from repro.models.tensor import TensorSpec

from repro.models.architectures.mobilenet_v2 import mobilenet_v2_backbone

#: (feature map size, anchors per cell) of the six SSD heads at 300x300.
_HEADS = [(19, 3), (10, 6), (5, 6), (3, 6), (2, 6), (1, 6)]


def build_ssd_mobilenet_v2(resolution=300, classes=91):
    ops, hw, channels = mobilenet_v2_backbone(resolution=resolution, prefix="backbone")
    ops = list(ops)

    # Extra feature pyramid convs shrinking 10 -> 1.
    feature_channels = [channels, 512, 256, 256, 128, 128]
    current_hw, current_ch = hw, channels
    for index in range(1, len(_HEADS)):
        target = feature_channels[index]
        squeeze = conv2d(f"extra{index}_squeeze", current_hw, current_ch, target // 2, 1)
        ops.append(squeeze)
        ops.append(activation(f"extra{index}_squeeze_relu", squeeze.output_shape))
        expand = conv2d(
            f"extra{index}_expand", current_hw, target // 2, target, 3, stride=2
        )
        ops.append(expand)
        ops.append(activation(f"extra{index}_expand_relu", expand.output_shape))
        current_hw, current_ch = expand.output_shape[:2], target

    # SSDLite-style box and class heads (depthwise 3x3 + pointwise 1x1)
    # over each pyramid level.
    total_anchors = 0
    for index, ((size, anchors), ch) in enumerate(zip(_HEADS, feature_channels)):
        head_hw = (size, size)
        ops.append(depthwise_conv2d(f"head{index}_dw", head_hw, ch, 3))
        ops.append(conv2d(f"head{index}_box", head_hw, ch, anchors * 4, 1))
        ops.append(conv2d(f"head{index}_class", head_hw, ch, anchors * classes, 1))
        total_anchors += size * size * anchors
    shapes = [(1, 1, total_anchors * 4), (1, 1, total_anchors * classes)]
    ops.append(concat("head_concat", shapes))

    return ModelGraph(
        name="ssd_mobilenet_v2",
        task="object_detection",
        input_spec=TensorSpec((resolution, resolution, 3)),
        ops=tuple(ops),
        output_features=total_anchors,
        metadata={
            "paper_row": "SSD MobileNet v2",
            "resolution": resolution,
            "classes": classes,
            "anchors": total_anchors,
        },
    )
