"""Architecture builders for the Table-I model zoo.

Each module exposes a ``build()`` function returning a fp32
:class:`~repro.models.graph.ModelGraph`; quantized variants come from
:func:`repro.models.quantize.quantize_graph`.
"""

from repro.models.architectures.alexnet import build_alexnet
from repro.models.architectures.deeplab import build_deeplab_v3
from repro.models.architectures.efficientnet import build_efficientnet_lite0
from repro.models.architectures.inception import build_inception_v3, build_inception_v4
from repro.models.architectures.mobilebert import build_mobile_bert
from repro.models.architectures.mobilenet_v1 import build_mobilenet_v1
from repro.models.architectures.mobilenet_v2 import mobilenet_v2_backbone
from repro.models.architectures.nasnet import build_nasnet_mobile
from repro.models.architectures.posenet import build_posenet
from repro.models.architectures.squeezenet import build_squeezenet
from repro.models.architectures.ssd import build_ssd_mobilenet_v2

__all__ = [
    "build_alexnet",
    "build_deeplab_v3",
    "build_efficientnet_lite0",
    "build_inception_v3",
    "build_inception_v4",
    "build_mobile_bert",
    "build_mobilenet_v1",
    "mobilenet_v2_backbone",
    "build_nasnet_mobile",
    "build_posenet",
    "build_squeezenet",
    "build_ssd_mobilenet_v2",
]
