"""EfficientNet-Lite0 (224x224) — Tan & Le, 2019 (Lite variant, 2020).

The Lite variants drop squeeze-excite and swap swish for ReLU6 so the
graph is delegate-friendly — ironically the model the paper uses to show
NNAPI's quantized-op support gaps (Fig. 5). ~390 M MACs, ~4.6 M params.
"""

from repro.models.graph import ModelGraph
from repro.models.ops import (
    activation,
    add,
    avgpool,
    conv2d,
    depthwise_conv2d,
    fully_connected,
    softmax,
)
from repro.models.tensor import TensorSpec

#: (expansion, channels, repeats, stride, kernel) per stage — B0 schedule.
_STAGES = [
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
]


def _mbconv(ops, prefix, hw, in_ch, out_ch, expansion, stride, kernel):
    mid = in_ch * expansion
    if expansion != 1:
        expand = conv2d(f"{prefix}_expand", hw, in_ch, mid, kernel=1)
        ops.append(expand)
        ops.append(activation(f"{prefix}_expand_relu", expand.output_shape, "RELU6"))
    dw = depthwise_conv2d(f"{prefix}_dw", hw, mid, kernel=kernel, stride=stride)
    ops.append(dw)
    ops.append(activation(f"{prefix}_dw_relu", dw.output_shape, "RELU6"))
    out_hw = dw.output_shape[:2]
    project = conv2d(f"{prefix}_project", out_hw, mid, out_ch, kernel=1)
    ops.append(project)
    if stride == 1 and in_ch == out_ch:
        ops.append(add(f"{prefix}_residual", project.output_shape))
    return out_hw, out_ch


def build_efficientnet_lite0(resolution=224, classes=1001):
    ops = []
    hw = (resolution, resolution)
    stem = conv2d("stem", hw, 3, 32, kernel=3, stride=2)
    ops.append(stem)
    ops.append(activation("stem_relu", stem.output_shape, "RELU6"))
    hw = stem.output_shape[:2]
    channels = 32

    block = 0
    for expansion, out_ch, repeats, first_stride, kernel in _STAGES:
        for repeat in range(repeats):
            stride = first_stride if repeat == 0 else 1
            hw, channels = _mbconv(
                ops, f"mb{block}", hw, channels, out_ch, expansion, stride, kernel
            )
            block += 1

    head = conv2d("head", hw, channels, 1280, kernel=1)
    ops.append(head)
    ops.append(activation("head_relu", head.output_shape, "RELU6"))
    ops.append(avgpool("global_pool", hw, 1280))
    ops.append(fully_connected("logits", 1280, classes))
    ops.append(softmax("probs", classes))

    return ModelGraph(
        name="efficientnet_lite0",
        task="classification",
        input_spec=TensorSpec((resolution, resolution, 3)),
        ops=tuple(ops),
        output_features=classes,
        metadata={"paper_row": "EfficientNet-Lite0", "resolution": resolution},
    )
