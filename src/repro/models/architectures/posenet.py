"""PoseNet (224x224, MobileNet-v1 backbone) — single-person pose.

A MobileNet-v1 feature extractor with four convolutional heads emitting
heatmaps and offset/displacement tensors for 17 keypoints. The pipeline
around it is the interesting part for the paper: input rotation during
pre-processing and keypoint decoding during post-processing.
"""

from repro.models.graph import ModelGraph
from repro.models.ops import activation, conv2d, depthwise_conv2d
from repro.models.tensor import TensorSpec

from repro.models.architectures.mobilenet_v1 import _BLOCKS

KEYPOINTS = 17


def build_posenet(resolution=224, keypoints=KEYPOINTS):
    ops = []
    hw = (resolution, resolution)
    channels = 32
    stem = conv2d("stem_conv", hw, 3, channels, kernel=3, stride=2)
    ops.append(stem)
    ops.append(activation("stem_relu", stem.output_shape, "RELU6"))
    hw = stem.output_shape[:2]

    # MobileNet v1 backbone at output stride 16 (last stride-2 removed).
    for index, (stride, out_ch) in enumerate(_BLOCKS, start=1):
        if index == 12:
            stride = 1
        dw = depthwise_conv2d(f"block{index}_dw", hw, channels, 3, stride)
        ops.append(dw)
        ops.append(activation(f"block{index}_dw_relu", dw.output_shape, "RELU6"))
        hw = dw.output_shape[:2]
        pw = conv2d(f"block{index}_pw", hw, channels, out_ch, kernel=1)
        ops.append(pw)
        ops.append(activation(f"block{index}_pw_relu", pw.output_shape, "RELU6"))
        channels = out_ch

    heads = {
        "heatmaps": keypoints,
        "offsets": 2 * keypoints,
        "displacement_fwd": 2 * (keypoints - 1),
        "displacement_bwd": 2 * (keypoints - 1),
    }
    for head_name, head_channels in heads.items():
        ops.append(conv2d(f"head_{head_name}", hw, channels, head_channels, 1))
    ops.append(activation("heatmap_sigmoid", (hw[0], hw[1], keypoints), "LOGISTIC"))

    return ModelGraph(
        name="posenet",
        task="pose_estimation",
        input_spec=TensorSpec((resolution, resolution, 3)),
        ops=tuple(ops),
        output_features=keypoints,
        metadata={
            "paper_row": "PoseNet",
            "resolution": resolution,
            "heatmap_size": hw,
            "keypoints": keypoints,
        },
    )
