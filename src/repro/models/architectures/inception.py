"""Inception v3 and v4 (299x299) — Szegedy et al., 2016.

These are the paper's "general purpose" heavyweights: far more
parameters and ops than the mobile-first networks, and — per §IV-A —
only partially offloadable by NNAPI, so roughly half their inference
runs on the CPU. The builders follow the published block schedules
(stem, Inception-A/B/C towers with factorized 7x1/1x7 convolutions,
reduction blocks); totals land near the canonical ~5.7 G MACs / 23.8 M
params (v3) and ~12.3 G MACs / 42.7 M params (v4).
"""

from repro.models.graph import ModelGraph
from repro.models.ops import (
    activation,
    avgpool,
    concat,
    conv2d,
    fully_connected,
    maxpool,
    softmax,
)
from repro.models.tensor import TensorSpec


def _branch_conv(ops, name, hw, in_ch, out_ch, kernel, stride=1):
    conv = conv2d(name, hw, in_ch, out_ch, kernel, stride)
    ops.append(conv)
    ops.append(activation(f"{name}_relu", conv.output_shape))
    return conv.output_shape


def _inception_a(ops, prefix, hw, in_ch, pool_ch):
    """35x35 block: 1x1, 5x5, double-3x3 and pooled branches."""
    _branch_conv(ops, f"{prefix}_b1x1", hw, in_ch, 64, 1)
    _branch_conv(ops, f"{prefix}_b5_1", hw, in_ch, 48, 1)
    _branch_conv(ops, f"{prefix}_b5_2", hw, 48, 64, 5)
    _branch_conv(ops, f"{prefix}_b3_1", hw, in_ch, 64, 1)
    _branch_conv(ops, f"{prefix}_b3_2", hw, 64, 96, 3)
    _branch_conv(ops, f"{prefix}_b3_3", hw, 96, 96, 3)
    ops.append(avgpool(f"{prefix}_pool", hw, in_ch, kernel=3, stride=1))
    _branch_conv(ops, f"{prefix}_bpool", hw, in_ch, pool_ch, 1)
    out_ch = 64 + 64 + 96 + pool_ch
    shapes = [(hw[0], hw[1], c) for c in (64, 64, 96, pool_ch)]
    ops.append(concat(f"{prefix}_concat", shapes))
    return out_ch


def _reduction_a(ops, prefix, hw, in_ch):
    """35x35 -> 17x17 downsample."""
    _branch_conv(ops, f"{prefix}_b3", hw, in_ch, 384, 3, stride=2)
    _branch_conv(ops, f"{prefix}_bd1", hw, in_ch, 64, 1)
    _branch_conv(ops, f"{prefix}_bd2", hw, 64, 96, 3)
    out_shape = _branch_conv(ops, f"{prefix}_bd3", hw, 96, 96, 3, stride=2)
    pool = maxpool(f"{prefix}_pool", hw, in_ch, kernel=3, stride=2)
    ops.append(pool)
    out_hw = out_shape[:2]
    out_ch = 384 + 96 + in_ch
    shapes = [(out_hw[0], out_hw[1], c) for c in (384, 96, in_ch)]
    ops.append(concat(f"{prefix}_concat", shapes))
    return out_hw, out_ch


def _inception_b(ops, prefix, hw, in_ch, mid):
    """17x17 block with factorized 7x1 / 1x7 convolutions."""
    _branch_conv(ops, f"{prefix}_b1x1", hw, in_ch, 192, 1)
    _branch_conv(ops, f"{prefix}_b7_1", hw, in_ch, mid, 1)
    _branch_conv(ops, f"{prefix}_b7_2", hw, mid, mid, (1, 7))
    _branch_conv(ops, f"{prefix}_b7_3", hw, mid, 192, (7, 1))
    _branch_conv(ops, f"{prefix}_bd7_1", hw, in_ch, mid, 1)
    _branch_conv(ops, f"{prefix}_bd7_2", hw, mid, mid, (7, 1))
    _branch_conv(ops, f"{prefix}_bd7_3", hw, mid, mid, (1, 7))
    _branch_conv(ops, f"{prefix}_bd7_4", hw, mid, mid, (7, 1))
    _branch_conv(ops, f"{prefix}_bd7_5", hw, mid, 192, (1, 7))
    ops.append(avgpool(f"{prefix}_pool", hw, in_ch, kernel=3, stride=1))
    _branch_conv(ops, f"{prefix}_bpool", hw, in_ch, 192, 1)
    shapes = [(hw[0], hw[1], 192)] * 4
    ops.append(concat(f"{prefix}_concat", shapes))
    return 768


def _reduction_b(ops, prefix, hw, in_ch):
    """17x17 -> 8x8 downsample."""
    _branch_conv(ops, f"{prefix}_b3_1", hw, in_ch, 192, 1)
    shape3 = _branch_conv(ops, f"{prefix}_b3_2", hw, 192, 320, 3, stride=2)
    _branch_conv(ops, f"{prefix}_b7_1", hw, in_ch, 192, 1)
    _branch_conv(ops, f"{prefix}_b7_2", hw, 192, 192, (1, 7))
    _branch_conv(ops, f"{prefix}_b7_3", hw, 192, 192, (7, 1))
    _branch_conv(ops, f"{prefix}_b7_4", hw, 192, 192, 3, stride=2)
    ops.append(maxpool(f"{prefix}_pool", hw, in_ch, kernel=3, stride=2))
    out_hw = shape3[:2]
    out_ch = 320 + 192 + in_ch
    shapes = [(out_hw[0], out_hw[1], c) for c in (320, 192, in_ch)]
    ops.append(concat(f"{prefix}_concat", shapes))
    return out_hw, out_ch


def _inception_c(ops, prefix, hw, in_ch):
    """8x8 block with expanded 1x3/3x1 fan-outs."""
    _branch_conv(ops, f"{prefix}_b1x1", hw, in_ch, 320, 1)
    _branch_conv(ops, f"{prefix}_b3_1", hw, in_ch, 384, 1)
    _branch_conv(ops, f"{prefix}_b3_2a", hw, 384, 384, (1, 3))
    _branch_conv(ops, f"{prefix}_b3_2b", hw, 384, 384, (3, 1))
    _branch_conv(ops, f"{prefix}_bd3_1", hw, in_ch, 448, 1)
    _branch_conv(ops, f"{prefix}_bd3_2", hw, 448, 384, 3)
    _branch_conv(ops, f"{prefix}_bd3_3a", hw, 384, 384, (1, 3))
    _branch_conv(ops, f"{prefix}_bd3_3b", hw, 384, 384, (3, 1))
    ops.append(avgpool(f"{prefix}_pool", hw, in_ch, kernel=3, stride=1))
    _branch_conv(ops, f"{prefix}_bpool", hw, in_ch, 192, 1)
    out_ch = 320 + 768 + 768 + 192
    shapes = [(hw[0], hw[1], c) for c in (320, 768, 768, 192)]
    ops.append(concat(f"{prefix}_concat", shapes))
    return out_ch


def _stem(ops, resolution):
    hw = (resolution, resolution)
    shape = _branch_conv(ops, "stem_conv1", hw, 3, 32, 3, stride=2)
    hw = shape[:2]
    _branch_conv(ops, "stem_conv2", hw, 32, 32, 3)
    _branch_conv(ops, "stem_conv3", hw, 32, 64, 3)
    pool = maxpool("stem_pool1", hw, 64, kernel=3, stride=2)
    ops.append(pool)
    hw = pool.output_shape[:2]
    _branch_conv(ops, "stem_conv4", hw, 64, 80, 1)
    _branch_conv(ops, "stem_conv5", hw, 80, 192, 3)
    pool = maxpool("stem_pool2", hw, 192, kernel=3, stride=2)
    ops.append(pool)
    return pool.output_shape[:2], 192


def build_inception_v3(resolution=299, classes=1001):
    ops = []
    hw, channels = _stem(ops, resolution)
    for index, pool_ch in enumerate((32, 64, 64)):
        channels = _inception_a(ops, f"mixed_a{index}", hw, channels, pool_ch)
    hw, channels = _reduction_a(ops, "reduction_a", hw, channels)
    for index, mid in enumerate((128, 160, 160, 192)):
        channels = _inception_b(ops, f"mixed_b{index}", hw, channels, mid)
    hw, channels = _reduction_b(ops, "reduction_b", hw, channels)
    for index in range(2):
        channels = _inception_c(ops, f"mixed_c{index}", hw, channels)
    ops.append(avgpool("global_pool", hw, channels))
    ops.append(fully_connected("logits", channels, classes))
    ops.append(softmax("probs", classes))
    return ModelGraph(
        name="inception_v3",
        task="face_recognition",
        input_spec=TensorSpec((resolution, resolution, 3)),
        ops=tuple(ops),
        output_features=classes,
        metadata={"paper_row": "Inception v3", "resolution": resolution},
    )


def build_inception_v4(resolution=299, classes=1001):
    """Inception v4: deeper towers (4xA, 7xB, 3xC) over the same stem."""
    ops = []
    hw, channels = _stem(ops, resolution)
    for index in range(4):
        channels = _inception_a(ops, f"mixed_a{index}", hw, channels, 64)
    hw, channels = _reduction_a(ops, "reduction_a", hw, channels)
    for index in range(7):
        channels = _inception_b(ops, f"mixed_b{index}", hw, channels, 192)
    hw, channels = _reduction_b(ops, "reduction_b", hw, channels)
    for index in range(3):
        channels = _inception_c(ops, f"mixed_c{index}", hw, channels)
    ops.append(avgpool("global_pool", hw, channels))
    ops.append(fully_connected("logits", channels, classes))
    ops.append(softmax("probs", classes))
    return ModelGraph(
        name="inception_v4",
        task="face_recognition",
        input_spec=TensorSpec((resolution, resolution, 3)),
        ops=tuple(ops),
        output_features=classes,
        metadata={"paper_row": "Inception v4", "resolution": resolution},
    )
