"""MobileNet v1 1.0 (224x224) — Howard et al., 2017.

13 depthwise-separable blocks after a strided stem; ~569 M MACs and
~4.2 M parameters at width multiplier 1.0.
"""

from repro.models.graph import ModelGraph
from repro.models.ops import (
    activation,
    avgpool,
    conv2d,
    depthwise_conv2d,
    fully_connected,
    softmax,
)
from repro.models.tensor import TensorSpec

#: (stride, output channels) of the 13 separable blocks.
_BLOCKS = [
    (1, 64),
    (2, 128),
    (1, 128),
    (2, 256),
    (1, 256),
    (2, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (2, 1024),
    (1, 1024),
]


def build_mobilenet_v1(resolution=224, classes=1001):
    ops = []
    hw = (resolution, resolution)
    channels = 32
    stem = conv2d("stem_conv", hw, 3, channels, kernel=3, stride=2)
    ops.append(stem)
    ops.append(activation("stem_relu", stem.output_shape, "RELU6"))
    hw = stem.output_shape[:2]

    for index, (stride, out_ch) in enumerate(_BLOCKS, start=1):
        dw = depthwise_conv2d(f"block{index}_dw", hw, channels, kernel=3, stride=stride)
        ops.append(dw)
        ops.append(activation(f"block{index}_dw_relu", dw.output_shape, "RELU6"))
        hw = dw.output_shape[:2]
        pw = conv2d(f"block{index}_pw", hw, channels, out_ch, kernel=1)
        ops.append(pw)
        ops.append(activation(f"block{index}_pw_relu", pw.output_shape, "RELU6"))
        channels = out_ch

    ops.append(avgpool("global_pool", hw, channels))
    ops.append(fully_connected("logits", channels, classes))
    ops.append(softmax("probs", classes))

    return ModelGraph(
        name="mobilenet_v1",
        task="classification",
        input_spec=TensorSpec((resolution, resolution, 3)),
        ops=tuple(ops),
        output_features=classes,
        metadata={"paper_row": "MobileNet 1.0 v1", "resolution": resolution},
    )
