"""SqueezeNet v1.0 (227x227) — Iandola et al., 2016.

Eight "fire" modules (1x1 squeeze feeding parallel 1x1 + 3x3 expands);
~840 M MACs and ~1.25 M parameters.
"""

from repro.models.graph import ModelGraph
from repro.models.ops import activation, avgpool, concat, conv2d, maxpool, softmax
from repro.models.tensor import TensorSpec

#: (squeeze, expand1x1, expand3x3) per fire module, v1.0 schedule.
_FIRE = [
    (16, 64, 64),
    (16, 64, 64),
    (32, 128, 128),
    (32, 128, 128),
    (48, 192, 192),
    (48, 192, 192),
    (64, 256, 256),
    (64, 256, 256),
]
#: Fire indices followed by a 3x3/2 maxpool (1-based like the paper).
_POOL_AFTER = {3, 7}


def _fire(ops, index, hw, in_ch, squeeze, expand1, expand3):
    squeeze_op = conv2d(f"fire{index}_squeeze", hw, in_ch, squeeze, kernel=1)
    ops.append(squeeze_op)
    ops.append(activation(f"fire{index}_squeeze_relu", squeeze_op.output_shape))
    e1 = conv2d(f"fire{index}_expand1x1", hw, squeeze, expand1, kernel=1)
    e3 = conv2d(f"fire{index}_expand3x3", hw, squeeze, expand3, kernel=3)
    ops.extend([e1, e3])
    ops.append(concat(f"fire{index}_concat", [e1.output_shape, e3.output_shape]))
    ops.append(activation(f"fire{index}_relu", (hw[0], hw[1], expand1 + expand3)))
    return expand1 + expand3


def build_squeezenet(resolution=227, classes=1001):
    ops = []
    hw = (resolution, resolution)
    stem = conv2d("conv1", hw, 3, 96, kernel=7, stride=2)
    ops.append(stem)
    ops.append(activation("conv1_relu", stem.output_shape))
    hw = stem.output_shape[:2]
    pool = maxpool("pool1", hw, 96, kernel=3, stride=2)
    ops.append(pool)
    hw = pool.output_shape[:2]

    channels = 96
    for number, (squeeze, expand1, expand3) in enumerate(_FIRE, start=2):
        channels = _fire(ops, number, hw, channels, squeeze, expand1, expand3)
        if number in _POOL_AFTER:
            pool = maxpool(f"pool{number}", hw, channels, kernel=3, stride=2)
            ops.append(pool)
            hw = pool.output_shape[:2]

    head = conv2d("conv10", hw, channels, classes, kernel=1)
    ops.append(head)
    ops.append(activation("conv10_relu", head.output_shape))
    ops.append(avgpool("global_pool", hw, classes))
    ops.append(softmax("probs", classes))

    return ModelGraph(
        name="squeezenet",
        task="classification",
        input_spec=TensorSpec((resolution, resolution, 3)),
        ops=tuple(ops),
        output_features=classes,
        metadata={"paper_row": "SqueezeNet", "resolution": resolution},
    )
