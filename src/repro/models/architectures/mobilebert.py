"""MobileBERT (sequence length 384) — Sun et al., 2020.

The only non-vision model in Table I: language processing with
tokenization as pre-processing and logits computation as
post-processing. 24 bottlenecked transformer blocks (intra-block hidden
128, body hidden 512, stacked FFNs); ~25 M params.
"""

from repro.models.graph import ModelGraph
from repro.models.ops import (
    activation,
    add,
    attention_scores,
    embedding_lookup,
    matmul,
    softmax,
)
from repro.models.tensor import TensorSpec

HIDDEN = 512
BOTTLENECK = 128
HEADS = 4
LAYERS = 24
FFN_STACK = 4
FFN_HIDDEN = 512


def _layer(ops, index, seq_len):
    prefix = f"layer{index}"
    # Bottleneck down-projection.
    ops.append(matmul(f"{prefix}_bottleneck_in", seq_len, HIDDEN, BOTTLENECK))
    # Self attention in the bottleneck width.
    head_dim = BOTTLENECK // HEADS
    for proj in ("q", "k", "v"):
        ops.append(matmul(f"{prefix}_{proj}", seq_len, BOTTLENECK, BOTTLENECK))
    ops.append(
        attention_scores(f"{prefix}_attention", seq_len, head_dim, HEADS)
    )  # activation-activation product: no weights
    ops.append(softmax(f"{prefix}_attn_softmax", seq_len, batch=HEADS * seq_len))
    ops.append(matmul(f"{prefix}_attn_out", seq_len, BOTTLENECK, BOTTLENECK))
    ops.append(add(f"{prefix}_attn_residual", (seq_len, BOTTLENECK)))
    # Stacked feed-forward networks.
    for ffn in range(FFN_STACK):
        ops.append(
            matmul(f"{prefix}_ffn{ffn}_up", seq_len, BOTTLENECK, FFN_HIDDEN)
        )
        ops.append(activation(f"{prefix}_ffn{ffn}_gelu", (seq_len, FFN_HIDDEN), "GELU"))
        ops.append(
            matmul(f"{prefix}_ffn{ffn}_down", seq_len, FFN_HIDDEN, BOTTLENECK)
        )
        ops.append(add(f"{prefix}_ffn{ffn}_residual", (seq_len, BOTTLENECK)))
    # Bottleneck up-projection back to body width.
    ops.append(matmul(f"{prefix}_bottleneck_out", seq_len, BOTTLENECK, HIDDEN))
    ops.append(add(f"{prefix}_out_residual", (seq_len, HIDDEN)))


def build_mobile_bert(seq_len=384, vocab_size=30522):
    ops = [embedding_lookup("embeddings", seq_len, BOTTLENECK, vocab_size=vocab_size)]
    ops.append(matmul("embedding_proj", seq_len, BOTTLENECK, HIDDEN))
    for index in range(LAYERS):
        _layer(ops, index, seq_len)
    # Span-prediction head (SQuAD-style start/end logits).
    ops.append(matmul("qa_head", seq_len, HIDDEN, 2))
    ops.append(softmax("qa_softmax", seq_len, batch=2))

    return ModelGraph(
        name="mobile_bert",
        task="language_processing",
        input_spec=TensorSpec((seq_len,), dtype="int32"),
        ops=tuple(ops),
        output_features=seq_len,
        metadata={
            "paper_row": "Mobile BERT",
            "seq_len": seq_len,
            "vocab_size": vocab_size,
        },
    )
