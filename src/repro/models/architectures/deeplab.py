"""DeepLab-v3 with MobileNet-v2 backbone (513x513) — Chen et al., 2017.

Dense per-pixel segmentation: the MNv2 backbone runs at output stride 16
with dilated convolutions, followed by an ASPP head and a bilinear
upsample back to input resolution. Post-processing is "mask flattening"
(argmax over class logits per pixel) rather than topK. The paper's
quantized variant is unsupported (Table I NNAPI-int8 "N").
"""

from repro.models.graph import ModelGraph
from repro.models.ops import activation, avgpool, concat, conv2d, resize_bilinear
from repro.models.tensor import TensorSpec

from repro.models.architectures.mobilenet_v2 import mobilenet_v2_backbone


def build_deeplab_v3(resolution=513, classes=21):
    ops, hw, channels = mobilenet_v2_backbone(
        resolution=resolution, prefix="backbone", output_stride=16
    )
    ops = list(ops)

    # ASPP: 1x1 branch, three dilated 3x3 branches, image pooling branch.
    aspp_ch = 256
    for index, label in enumerate(("1x1", "rate6", "rate12", "rate18")):
        kernel = 1 if index == 0 else 3
        branch = conv2d(f"aspp_{label}", hw, channels, aspp_ch, kernel)
        ops.append(branch)
        ops.append(activation(f"aspp_{label}_relu", branch.output_shape))
    ops.append(avgpool("aspp_image_pool", hw, channels))
    pool_proj = conv2d("aspp_pool_proj", (1, 1), channels, aspp_ch, 1)
    ops.append(pool_proj)
    ops.append(resize_bilinear("aspp_pool_upsample", (1, 1), hw, aspp_ch))
    shapes = [(hw[0], hw[1], aspp_ch)] * 5
    ops.append(concat("aspp_concat", shapes))

    merged = conv2d("aspp_merge", hw, 5 * aspp_ch, aspp_ch, 1)
    ops.append(merged)
    ops.append(activation("aspp_merge_relu", merged.output_shape))
    logits = conv2d("logits", hw, aspp_ch, classes, 1)
    ops.append(logits)
    ops.append(
        resize_bilinear("upsample_logits", hw, (resolution, resolution), classes)
    )

    return ModelGraph(
        name="deeplab_v3",
        task="segmentation",
        input_spec=TensorSpec((resolution, resolution, 3)),
        ops=tuple(ops),
        output_features=resolution * resolution,  # per-pixel argmax mask
        metadata={
            "paper_row": "Deeplab-v3 Mobilenet-v2",
            "resolution": resolution,
            "classes": classes,
        },
    )
