"""MobileNet v2 backbone — Sandler et al., 2018.

Inverted residual bottlenecks; exposed as a reusable backbone for the
SSD detector and DeepLab segmentation models in Table I (~300 M MACs,
~3.4 M params at 224x224).
"""

from repro.models.ops import activation, add, conv2d, depthwise_conv2d

#: (expansion t, output channels c, repeats n, first stride s) per stage.
_STAGES = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _bottleneck(ops, prefix, hw, in_ch, out_ch, expansion, stride, dilation=1):
    """One inverted residual block; returns (hw, out_ch)."""
    mid = in_ch * expansion
    if expansion != 1:
        expand = conv2d(f"{prefix}_expand", hw, in_ch, mid, kernel=1)
        ops.append(expand)
        ops.append(activation(f"{prefix}_expand_relu", expand.output_shape, "RELU6"))
    effective_stride = 1 if dilation > 1 else stride
    dw = depthwise_conv2d(f"{prefix}_dw", hw, mid, kernel=3, stride=effective_stride)
    ops.append(dw)
    ops.append(activation(f"{prefix}_dw_relu", dw.output_shape, "RELU6"))
    out_hw = dw.output_shape[:2]
    project = conv2d(f"{prefix}_project", out_hw, mid, out_ch, kernel=1)
    ops.append(project)
    if stride == 1 and in_ch == out_ch and dilation == 1:
        ops.append(add(f"{prefix}_residual", project.output_shape))
    return out_hw, out_ch


def mobilenet_v2_backbone(resolution=224, prefix="mnv2", output_stride=32):
    """Build backbone op list; returns (ops, final_hw, final_channels).

    ``output_stride=16`` keeps the last downsampling stage at stride 1
    with dilated convolutions — the DeepLab configuration.
    """
    ops = []
    hw = (resolution, resolution)
    stem = conv2d(f"{prefix}_stem", hw, 3, 32, kernel=3, stride=2)
    ops.append(stem)
    ops.append(activation(f"{prefix}_stem_relu", stem.output_shape, "RELU6"))
    hw = stem.output_shape[:2]
    channels = 32
    accumulated_stride = 2
    block = 0
    for expansion, out_ch, repeats, first_stride in _STAGES:
        for repeat in range(repeats):
            stride = first_stride if repeat == 0 else 1
            dilation = 1
            if accumulated_stride >= output_stride and stride == 2:
                dilation = 2  # swap downsampling for dilation (DeepLab trick)
            elif stride == 2:
                accumulated_stride *= 2
            hw, channels = _bottleneck(
                ops, f"{prefix}_b{block}", hw, channels, out_ch, expansion,
                stride, dilation=dilation,
            )
            block += 1
    return ops, hw, channels
