"""AlexNet (256x256 input per Table I) — Krizhevsky et al., 2012.

Five convolutions plus three huge fully-connected layers; ~0.7 G MACs
of convolution but ~59 M parameters dominated by the FC layers. The
paper ships it CPU-only: no NNAPI driver path (Table I marks NNAPI "N").
"""

from repro.models.graph import ModelGraph
from repro.models.ops import activation, conv2d, fully_connected, maxpool, softmax
from repro.models.tensor import TensorSpec


def build_alexnet(resolution=256, classes=1001):
    ops = []
    hw = (resolution, resolution)

    conv1 = conv2d("conv1", hw, 3, 96, kernel=11, stride=4)
    ops.append(conv1)
    ops.append(activation("relu1", conv1.output_shape))
    hw = conv1.output_shape[:2]
    pool1 = maxpool("pool1", hw, 96, kernel=3, stride=2)
    ops.append(pool1)
    hw = pool1.output_shape[:2]

    conv2 = conv2d("conv2", hw, 96, 256, kernel=5)
    ops.append(conv2)
    ops.append(activation("relu2", conv2.output_shape))
    pool2 = maxpool("pool2", hw, 256, kernel=3, stride=2)
    ops.append(pool2)
    hw = pool2.output_shape[:2]

    conv3 = conv2d("conv3", hw, 256, 384, kernel=3)
    ops.append(conv3)
    ops.append(activation("relu3", conv3.output_shape))
    conv4 = conv2d("conv4", hw, 384, 384, kernel=3)
    ops.append(conv4)
    ops.append(activation("relu4", conv4.output_shape))
    conv5 = conv2d("conv5", hw, 384, 256, kernel=3)
    ops.append(conv5)
    ops.append(activation("relu5", conv5.output_shape))
    pool5 = maxpool("pool5", hw, 256, kernel=3, stride=2)
    ops.append(pool5)
    hw = pool5.output_shape[:2]

    flat = hw[0] * hw[1] * 256
    fc6 = fully_connected("fc6", flat, 4096)
    fc7 = fully_connected("fc7", 4096, 4096)
    fc8 = fully_connected("fc8", 4096, classes)
    ops.extend(
        [
            fc6,
            activation("relu6", (4096,)),
            fc7,
            activation("relu7", (4096,)),
            fc8,
            softmax("probs", classes),
        ]
    )

    return ModelGraph(
        name="alexnet",
        task="classification",
        input_spec=TensorSpec((resolution, resolution, 3)),
        ops=tuple(ops),
        output_features=classes,
        metadata={"paper_row": "AlexNet", "resolution": resolution},
    )
