"""NASNet-A Mobile (331x331 per Table I) — Zoph et al., 2018.

Architecture-search cells built almost entirely from small separable
convolutions: modest MAC count (~0.6 G at 224; more at 331) but a very
large *op count*, which is what makes it interesting for per-op
delegation overheads. Table I marks the quantized variant unsupported.
"""

from repro.models.graph import ModelGraph
from repro.models.ops import (
    activation,
    add,
    avgpool,
    concat,
    conv2d,
    depthwise_conv2d,
    fully_connected,
    softmax,
)
from repro.models.tensor import TensorSpec


def _separable(ops, prefix, hw, in_ch, out_ch, kernel, stride=1):
    """Separable conv applied twice, as in the NASNet cell definition."""
    current_hw, channels = hw, in_ch
    for step in range(2):
        effective_stride = stride if step == 0 else 1
        dw = depthwise_conv2d(
            f"{prefix}_dw{step}", current_hw, channels, kernel, effective_stride
        )
        ops.append(dw)
        current_hw = dw.output_shape[:2]
        pw = conv2d(f"{prefix}_pw{step}", current_hw, channels, out_ch, 1)
        ops.append(pw)
        ops.append(activation(f"{prefix}_relu{step}", pw.output_shape))
        channels = out_ch
    return current_hw, out_ch


def _normal_cell(ops, prefix, hw, in_ch, filters):
    """Five combine nodes of separable convs / pools / identity adds."""
    _separable(ops, f"{prefix}_s3a", hw, in_ch, filters, 3)
    _separable(ops, f"{prefix}_s3b", hw, in_ch, filters, 3)
    _separable(ops, f"{prefix}_s5a", hw, in_ch, filters, 5)
    _separable(ops, f"{prefix}_s5b", hw, in_ch, filters, 5)
    ops.append(avgpool(f"{prefix}_pool1", hw, filters, kernel=3, stride=1))
    ops.append(avgpool(f"{prefix}_pool2", hw, filters, kernel=3, stride=1))
    for node in range(5):
        ops.append(add(f"{prefix}_combine{node}", (hw[0], hw[1], filters)))
    shapes = [(hw[0], hw[1], filters)] * 5
    ops.append(concat(f"{prefix}_concat", shapes))
    return 5 * filters


def _reduction_cell(ops, prefix, hw, in_ch, filters):
    new_hw, _ = _separable(ops, f"{prefix}_s5", hw, in_ch, filters, 5, stride=2)
    _separable(ops, f"{prefix}_s7", hw, in_ch, filters, 7, stride=2)
    _separable(ops, f"{prefix}_s3", hw, in_ch, filters, 3, stride=2)
    for node in range(3):
        ops.append(add(f"{prefix}_combine{node}", (new_hw[0], new_hw[1], filters)))
    shapes = [(new_hw[0], new_hw[1], filters)] * 3
    ops.append(concat(f"{prefix}_concat", shapes))
    return new_hw, 3 * filters


def build_nasnet_mobile(resolution=331, classes=1001):
    ops = []
    hw = (resolution, resolution)
    stem = conv2d("stem", hw, 3, 32, kernel=3, stride=2)
    ops.append(stem)
    ops.append(activation("stem_relu", stem.output_shape))
    hw = stem.output_shape[:2]
    channels = 32

    filters = 44  # N=4, penultimate filters 1056 => 44 base
    # Two stem reduction cells bring 331 -> ~21px like the reference net.
    hw, channels = _reduction_cell(ops, "stem_r0", hw, channels, filters // 2)
    hw, channels = _reduction_cell(ops, "stem_r1", hw, channels, filters)

    for block in range(3):
        for cell in range(4):
            channels = _normal_cell(
                ops, f"normal{block}_{cell}", hw, channels, filters
            )
        if block < 2:
            filters *= 2
            hw, channels = _reduction_cell(ops, f"reduce{block}", hw, channels, filters)

    ops.append(avgpool("global_pool", hw, channels))
    ops.append(fully_connected("logits", channels, classes))
    ops.append(softmax("probs", classes))

    return ModelGraph(
        name="nasnet_mobile",
        task="classification",
        input_spec=TensorSpec((resolution, resolution, 3)),
        ops=tuple(ops),
        output_features=classes,
        metadata={"paper_row": "NasNet Mobile", "resolution": resolution},
    )
