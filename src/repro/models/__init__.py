"""Model zoo: op-level graphs for the paper's Table I benchmarks.

Each model is described as a topologically ordered list of ops with
arithmetic (FLOPs), parameter, and activation-size accounting — enough
fidelity for the roofline cost models in :mod:`repro.soc` and for the
per-op delegation decisions in :mod:`repro.frameworks`. The layer
structures follow the published architectures; totals land close to the
well-known MAC/parameter counts for each network.
"""

from repro.models.graph import ModelGraph
from repro.models.ops import (
    Op,
    activation,
    add,
    attention_scores,
    avgpool,
    concat,
    conv2d,
    depthwise_conv2d,
    embedding_lookup,
    fully_connected,
    matmul,
    maxpool,
    resize_bilinear,
    softmax,
)
from repro.models.quantize import quantize_graph
from repro.models.tensor import TensorSpec, dtype_bytes
from repro.models.zoo import MODEL_CARDS, ModelCard, load_model, model_card

__all__ = [
    "ModelGraph",
    "Op",
    "TensorSpec",
    "dtype_bytes",
    "activation",
    "add",
    "attention_scores",
    "avgpool",
    "concat",
    "conv2d",
    "depthwise_conv2d",
    "embedding_lookup",
    "fully_connected",
    "matmul",
    "maxpool",
    "resize_bilinear",
    "softmax",
    "quantize_graph",
    "MODEL_CARDS",
    "ModelCard",
    "load_model",
    "model_card",
]
