"""Tensor shape/dtype descriptors."""

from dataclasses import dataclass
from math import prod

_DTYPE_BYTES = {"fp32": 4, "fp16": 2, "int8": 1, "int32": 4, "uint8": 1}


@dataclass(frozen=True)
class TensorSpec:
    """Shape and element type of a tensor (no data)."""

    shape: tuple
    dtype: str = "fp32"

    def __post_init__(self):
        if self.dtype not in _DTYPE_BYTES:
            raise ValueError(f"unknown dtype {self.dtype!r}")
        if any(dim <= 0 for dim in self.shape):
            raise ValueError(f"non-positive dimension in shape {self.shape}")

    @property
    def numel(self):
        return prod(self.shape)

    @property
    def itemsize(self):
        return _DTYPE_BYTES[self.dtype]

    @property
    def nbytes(self):
        return self.numel * self.itemsize

    def with_dtype(self, dtype):
        return TensorSpec(self.shape, dtype)

    def __str__(self):
        return f"{self.dtype}[{'x'.join(str(d) for d in self.shape)}]"


def dtype_bytes(dtype):
    """Bytes per element for a dtype name."""
    return _DTYPE_BYTES[dtype]
