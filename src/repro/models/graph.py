"""Model graphs: ordered op lists with aggregate accounting."""

from dataclasses import dataclass, field, replace

from repro.models.tensor import TensorSpec, dtype_bytes


@dataclass(frozen=True)
class ModelGraph:
    """A topologically ordered inference graph.

    The op list is execution order; framework partitioners slice it into
    contiguous runs per device (NNAPI's "model partitioning" step).
    """

    name: str
    task: str
    input_spec: TensorSpec
    ops: tuple
    dtype: str = "fp32"
    #: Output feature count (classes, keypoints, ...) for post-processing.
    output_features: int = 1000
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self):
        if not self.ops:
            raise ValueError(f"model {self.name!r} has no ops")
        if self.dtype not in ("fp32", "fp16", "int8"):
            raise ValueError(f"unsupported model dtype {self.dtype!r}")

    # -- aggregates -----------------------------------------------------

    @property
    def total_flops(self):
        return sum(op.flops for op in self.ops)

    @property
    def total_macs(self):
        return self.total_flops / 2.0

    @property
    def total_params(self):
        return sum(op.params for op in self.ops)

    @property
    def weight_bytes(self):
        return self.total_params * dtype_bytes(self.dtype)

    @property
    def input_bytes(self):
        return self.input_spec.numel * dtype_bytes(self.dtype)

    @property
    def output_bytes(self):
        return self.output_features * dtype_bytes(self.dtype)

    @property
    def op_count(self):
        return len(self.ops)

    @property
    def peak_activation_bytes(self):
        """Peak live activation memory along the (linear) graph.

        For a topologically linear schedule the interpreter needs one
        op's inputs and outputs resident simultaneously; the arena high
        water mark is the max over ops. Branchy regions (Inception
        towers) are approximated by their widest op.
        """
        item = dtype_bytes(self.dtype)
        return max(
            (op.input_elems + op.output_elems) * item for op in self.ops
        )

    @property
    def memory_footprint_bytes(self):
        """Weights plus the activation arena: the app's resident cost."""
        return self.weight_bytes + self.peak_activation_bytes

    @property
    def is_quantized(self):
        return self.dtype == "int8"

    def ops_of_kind(self, kind):
        return [op for op in self.ops if op.kind == kind]

    def with_dtype(self, dtype):
        """Same topology with a different execution dtype."""
        return replace(
            self,
            dtype=dtype,
            input_spec=self.input_spec.with_dtype(dtype),
        )

    def summary(self):
        """One-line human summary used by reports and examples."""
        return (
            f"{self.name} [{self.dtype}] {self.input_spec}: "
            f"{self.op_count} ops, {self.total_macs / 1e6:.0f} MMACs, "
            f"{self.total_params / 1e6:.2f} M params"
        )

    def __repr__(self):
        return f"<ModelGraph {self.summary()}>"
