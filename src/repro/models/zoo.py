"""Model registry mirroring the paper's Table I.

Each :class:`ModelCard` records the task, input resolution, the pre- and
post-processing tasks observed in the paper's applications, and which
(framework, dtype) combinations are supported — AlexNet has no NNAPI
path at all; NasNet, SqueezeNet, DeepLab, PoseNet and MobileBERT have no
quantized variant.
"""

from dataclasses import dataclass
from functools import lru_cache

from repro.models.architectures import (
    build_alexnet,
    build_deeplab_v3,
    build_efficientnet_lite0,
    build_inception_v3,
    build_inception_v4,
    build_mobile_bert,
    build_mobilenet_v1,
    build_nasnet_mobile,
    build_posenet,
    build_squeezenet,
    build_ssd_mobilenet_v2,
)
from repro.models.quantize import quantize_graph


@dataclass(frozen=True)
class ModelCard:
    """One row of Table I."""

    key: str
    task: str
    display_name: str
    resolution: str
    pre_tasks: tuple
    post_tasks: tuple
    nnapi_fp32: bool
    nnapi_int8: bool
    cpu_fp32: bool
    cpu_int8: bool
    builder: object

    def supports(self, framework, dtype):
        """Check a (framework, dtype) pair against the Table-I matrix."""
        column = {
            ("nnapi", "fp32"): self.nnapi_fp32,
            ("nnapi", "int8"): self.nnapi_int8,
            ("cpu", "fp32"): self.cpu_fp32,
            ("cpu", "int8"): self.cpu_int8,
        }
        try:
            return column[(framework, dtype)]
        except KeyError:
            raise ValueError(
                f"unknown support column ({framework!r}, {dtype!r})"
            ) from None

    def post_tasks_for(self, dtype):
        """Dequantization applies to quantized models only (Table I '*')."""
        tasks = [task.rstrip("*") for task in self.post_tasks]
        if dtype != "int8":
            tasks = [task for task in tasks if task != "dequantization"]
        return tuple(tasks)


_CLASSIFY_PRE = ("scale", "crop", "normalize")
_CLASSIFY_POST = ("topK", "dequantization*")

MODEL_CARDS = {
    "mobilenet_v1": ModelCard(
        "mobilenet_v1", "classification", "MobileNet 1.0 v1", "224x224",
        _CLASSIFY_PRE, _CLASSIFY_POST, True, True, True, True,
        build_mobilenet_v1,
    ),
    "nasnet_mobile": ModelCard(
        "nasnet_mobile", "classification", "NasNet Mobile", "331x331",
        _CLASSIFY_PRE, _CLASSIFY_POST, True, False, True, False,
        build_nasnet_mobile,
    ),
    "squeezenet": ModelCard(
        "squeezenet", "classification", "SqueezeNet", "227x227",
        _CLASSIFY_PRE, _CLASSIFY_POST, True, False, True, False,
        build_squeezenet,
    ),
    "efficientnet_lite0": ModelCard(
        "efficientnet_lite0", "classification", "EfficientNet-Lite0", "224x224",
        _CLASSIFY_PRE, _CLASSIFY_POST, True, True, True, True,
        build_efficientnet_lite0,
    ),
    "alexnet": ModelCard(
        "alexnet", "classification", "AlexNet", "256x256",
        _CLASSIFY_PRE, _CLASSIFY_POST, False, False, True, True,
        build_alexnet,
    ),
    "inception_v4": ModelCard(
        "inception_v4", "face_recognition", "Inception v4", "299x299",
        _CLASSIFY_PRE, _CLASSIFY_POST, True, True, True, True,
        build_inception_v4,
    ),
    "inception_v3": ModelCard(
        "inception_v3", "face_recognition", "Inception v3", "299x299",
        _CLASSIFY_PRE, _CLASSIFY_POST, True, True, True, True,
        build_inception_v3,
    ),
    "deeplab_v3": ModelCard(
        "deeplab_v3", "segmentation", "Deeplab-v3 Mobilenet-v2", "513x513",
        ("scale", "normalize"), ("mask flattening",), True, False, True, False,
        build_deeplab_v3,
    ),
    "ssd_mobilenet_v2": ModelCard(
        "ssd_mobilenet_v2", "object_detection", "SSD MobileNet v2", "300x300",
        _CLASSIFY_PRE, _CLASSIFY_POST, True, True, True, True,
        build_ssd_mobilenet_v2,
    ),
    "posenet": ModelCard(
        "posenet", "pose_estimation", "PoseNet", "224x224",
        ("scale", "crop", "normalize", "rotate"), ("calculate keypoints",),
        True, False, True, False,
        build_posenet,
    ),
    "mobile_bert": ModelCard(
        "mobile_bert", "language_processing", "Mobile BERT", "-",
        ("tokenization",), ("topK", "compute logits"), True, False, True, False,
        build_mobile_bert,
    ),
}


def model_card(key):
    """Look up a Table-I row by model key."""
    try:
        return MODEL_CARDS[key]
    except KeyError:
        raise KeyError(
            f"unknown model {key!r}; available: {sorted(MODEL_CARDS)}"
        ) from None


@lru_cache(maxsize=None)
def load_model(key, dtype="fp32"):
    """Build (and cache) a model graph in the requested dtype."""
    card = model_card(key)
    graph = card.builder()
    if dtype == "fp32":
        return graph
    if dtype == "int8":
        return quantize_graph(graph)
    if dtype == "fp16":
        return graph.with_dtype("fp16")
    raise ValueError(f"unsupported dtype {dtype!r}")
