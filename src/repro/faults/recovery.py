"""Graceful-degradation machinery: retry policies and fault accounting.

The paper's failure modes (Fig. 5 silent CPU fallback, Fig. 7 FastRPC
stalls, Fig. 11 thermal erosion) do not crash real phones — the stack
*degrades*: drivers retry, runtimes re-route work to the CPU, sessions
finish slower. This module holds the two pieces every recovering layer
shares: the deterministic :class:`RetryPolicy` a FastRPC channel backs
off with, and the :class:`DegradationReport` an inference session keeps
so the cost of faults, retries, and runtime fallbacks is attributable —
and auditable against the injector that caused them.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff."""

    max_retries: int = 2
    backoff_us: float = 500.0
    backoff_multiplier: float = 2.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_us < 0:
            raise ValueError(f"backoff_us must be >= 0, got {self.backoff_us}")

    def backoff_for(self, attempt):
        """Backoff before retry ``attempt`` (0-based), in simulated µs."""
        return self.backoff_us * self.backoff_multiplier ** attempt


#: No retries at all — vendor runtimes (SNPE) surface FastRPC errors
#: straight to the app, which is exactly how fleet sessions die.
NO_RETRY = RetryPolicy(max_retries=0)


def fault_counters(stats):
    """Per-kind fault counters of a :class:`FastRpcStats` as a dict."""
    return {
        "timeout": stats.timeouts,
        "ssr": stats.ssr_events,
        "session_death": stats.session_deaths,
        "thermal": stats.thermal_events,
    }


def _delta(after, before):
    return {
        kind: after[kind] - before.get(kind, 0)
        for kind in after
        if after[kind] - before.get(kind, 0)
    }


@dataclass
class InvokeDegradation:
    """What went wrong (and what it cost) during one invoke."""

    index: int
    #: Faults observed during this invoke, by kind.
    faults: dict = field(default_factory=dict)
    #: Channel-level retries spent recovering.
    retries: int = 0
    #: Partitions re-run on the CPU reference path after the DSP failed.
    fallbacks: int = 0
    #: Reference-kernel work added by those fallbacks, µs.
    fallback_us: float = 0.0

    @property
    def degraded(self):
        return bool(self.faults) or self.fallbacks > 0


class DegradationReport:
    """Per-session ledger of faults, retries, and runtime fallbacks.

    A session records one :class:`InvokeDegradation` per invoke (plus a
    pseudo-invoke with index ``-1`` for compile-time faults), so the
    report accounts for every injected fault:
    ``report.accounts_for(injector)`` is the acceptance check the chaos
    tests enforce.
    """

    def __init__(self):
        self.invokes = []
        #: The compile-time driver probe failed and the session fell
        #: back to reference kernels for its whole lifetime.
        self.compile_fallback = False

    def record_invoke(self, index, faults_before, faults_after,
                      retries=0, fallbacks=0, fallback_us=0.0):
        """Close the ledger entry for one invoke from counter snapshots."""
        entry = InvokeDegradation(
            index=index,
            faults=_delta(faults_after, faults_before),
            retries=retries,
            fallbacks=fallbacks,
            fallback_us=fallback_us,
        )
        self.invokes.append(entry)
        return entry

    # -- totals ----------------------------------------------------------

    @property
    def faults_by_kind(self):
        totals = {}
        for entry in self.invokes:
            for kind, count in entry.faults.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    @property
    def total_faults(self):
        return sum(self.faults_by_kind.values())

    @property
    def total_retries(self):
        return sum(entry.retries for entry in self.invokes)

    @property
    def total_fallbacks(self):
        return sum(entry.fallbacks for entry in self.invokes)

    @property
    def fallback_us(self):
        return sum(entry.fallback_us for entry in self.invokes)

    @property
    def degraded_invokes(self):
        return sum(1 for entry in self.invokes if entry.degraded)

    def accounts_for(self, injector):
        """True when the ledger matches the injector's counts exactly."""
        return self.faults_by_kind == injector.injected

    def summary(self):
        """JSON-able rollup, the form fleet session results carry."""
        return {
            "faults": self.faults_by_kind,
            "retries": self.total_retries,
            "fallbacks": self.total_fallbacks,
            "fallback_us": self.fallback_us,
            "degraded_invokes": self.degraded_invokes,
            "invokes": len(self.invokes),
            "compile_fallback": self.compile_fallback,
        }
