"""Deterministic fault plans: what goes wrong, and exactly when.

A :class:`FaultPlan` is a pure value describing the faults a simulation
will experience — explicit :class:`FaultSpec` entries pinned to a call
index or a simulated time, plus an optional Bernoulli ``rate`` sampled
per call index. Sampling is *stateless*: whether call ``i`` faults is a
hash of ``(seed, i)``, so the decision is independent of execution
order, worker count, and of any other RNG stream in the simulation —
the same determinism contract the fleet runner already relies on.

A :class:`FaultInjector` is the runtime consumer: one per inference
session, it numbers the session's FastRPC calls and hands the channel
the fault (if any) due for each call, keeping per-kind injection
counts that degradation reports are audited against.
"""

import hashlib
from dataclasses import dataclass, field

#: Timeout: the call waits out the driver timeout and fails -ETIMEDOUT
#: (a saturated or wedged DSP — the paper's Fig. 7 tail behaviour).
FAULT_TIMEOUT = "timeout"
#: Subsystem restart: the DSP reboots, every process mapping is lost,
#: and the next session open pays the full remap/reload cost again.
FAULT_SSR = "ssr"
#: Session death: this channel's process mapping alone is torn down
#: (driver killed the handle); reopening restores it.
FAULT_SESSION_DEATH = "session_death"
#: Transient thermal emergency: die temperature jumps and the throttle
#: engages; the call itself proceeds (Fig. 11's degraded sustained
#: performance, compressed into an event).
FAULT_THERMAL = "thermal"

FAULT_KINDS = (FAULT_TIMEOUT, FAULT_SSR, FAULT_SESSION_DEATH, FAULT_THERMAL)

#: Kinds that surface to the caller as an exception (thermal degrades
#: silently instead).
RAISING_KINDS = (FAULT_TIMEOUT, FAULT_SSR, FAULT_SESSION_DEATH)

#: Die-temperature jump of a thermal-emergency fault, °C.
DEFAULT_THERMAL_JUMP_C = 15.0


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: a kind plus a trigger (call index or time)."""

    kind: str
    #: Fires on the channel's Nth invoke attempt (0-based), or...
    at_call: int = None
    #: ...on the first invoke attempt at or after this simulated time.
    at_time_us: float = None
    #: Kind-specific size (thermal: °C added to the die temperature).
    magnitude: float = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if (self.at_call is None) == (self.at_time_us is None):
            raise ValueError(
                "exactly one of at_call / at_time_us must be set, got "
                f"at_call={self.at_call!r} at_time_us={self.at_time_us!r}"
            )


def derived_seed(seed, salt):
    """A deterministic child seed from ``(seed, salt)``.

    Lets independent consumers (one fault plan per service backend,
    say) derive non-colliding seeds from one root without sharing any
    RNG state — the same stateless-hash discipline as the Bernoulli
    sampling below.
    """
    digest = hashlib.sha256(
        f"faultseed:{seed}:{salt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little")


def _unit_draw(seed, index, salt):
    """Deterministic uniform in [0, 1) from (seed, call index, salt)."""
    digest = hashlib.sha256(
        f"faultplan:{seed}:{salt}:{index}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults for one session.

    ``specs`` pin individual faults to a call index or simulated time;
    ``rate`` additionally faults each call with the given probability,
    decided by a stateless hash of ``(seed, call_index)`` so the plan
    needs no RNG state and never perturbs other streams.
    """

    specs: tuple = ()
    rate: float = 0.0
    seed: int = 0
    kinds: tuple = RAISING_KINDS

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; known: {FAULT_KINDS}"
                )
        if self.rate > 0 and not self.kinds:
            raise ValueError("rate > 0 requires at least one kind")
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"specs must be FaultSpec, got {spec!r}")

    def __bool__(self):
        return bool(self.specs) or self.rate > 0.0

    @classmethod
    def sampled(cls, rate, seed=0, kinds=RAISING_KINDS):
        """A pure rate-based plan (the chaos experiment's knob)."""
        return cls(rate=float(rate), seed=int(seed), kinds=tuple(kinds))

    def fault_for_call(self, index):
        """The fault due on invoke attempt ``index``, or ``None``.

        Stateless: the answer for an index never depends on which other
        indices were asked about, or in what order.
        """
        for spec in self.specs:
            if spec.at_call == index:
                return spec
        if self.rate > 0.0 and _unit_draw(self.seed, index, "fire") < self.rate:
            kind_draw = _unit_draw(self.seed, index, "kind")
            kind = self.kinds[int(kind_draw * len(self.kinds))]
            return FaultSpec(kind, at_call=index)
        return None

    def timed_specs(self):
        """Time-triggered specs, soonest first."""
        return sorted(
            (spec for spec in self.specs if spec.at_time_us is not None),
            key=lambda spec: spec.at_time_us,
        )


class FaultInjector:
    """Runtime consumer of a :class:`FaultPlan` for one session.

    The FastRPC channel calls :meth:`draw` once per invoke attempt;
    the injector numbers attempts, resolves the plan, and keeps the
    per-kind injection counts that a
    :class:`~repro.faults.recovery.DegradationReport` is audited
    against (``report.accounts_for(injector)``).
    """

    def __init__(self, plan):
        self.plan = plan if plan is not None else FaultPlan()
        self.call_index = 0
        #: Injected fault counts by kind.
        self.injected = {}
        self._timed = self.plan.timed_specs()
        self._timed_fired = 0

    @property
    def total_injected(self):
        return sum(self.injected.values())

    def draw(self, now):
        """The fault to inject into the next invoke attempt, or ``None``.

        Time-triggered specs fire on the first attempt at or after their
        time (at most one per attempt); otherwise the plan's call-index
        schedule decides.
        """
        index = self.call_index
        self.call_index += 1
        spec = None
        if (
            self._timed_fired < len(self._timed)
            and now >= self._timed[self._timed_fired].at_time_us
        ):
            spec = self._timed[self._timed_fired]
            self._timed_fired += 1
        else:
            spec = self.plan.fault_for_call(index)
        if spec is not None:
            self.injected[spec.kind] = self.injected.get(spec.kind, 0) + 1
        return spec
