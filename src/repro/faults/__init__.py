"""Deterministic fault injection and graceful degradation.

The paper's worst AI-tax cliffs are failure modes, not steady state:
NNAPI partitions silently landing on the slow reference path (Fig. 5),
FastRPC calls wedging behind a saturated DSP (Fig. 7), and thermal
throttling eroding sustained performance (Fig. 11). This package makes
those conditions first-class and *reproducible*: a seeded
:class:`FaultPlan` schedules DSP subsystem restarts, FastRPC timeouts,
session deaths, and thermal emergencies by call index or simulated
time; a :class:`FaultInjector` feeds them into the FastRPC channel; a
:class:`RetryPolicy` bounds the driver-level recovery; and a
:class:`DegradationReport` accounts for every fault, retry, and
runtime CPU fallback so the chaos experiment can price the AI-tax
inflation faults cause.

    from repro.faults import FaultPlan
    config = PipelineConfig(target="nnapi", dtype="int8", fault_rate=0.2)
    records = run_pipeline(config)   # completes via retries + fallback
"""

from repro.faults.plan import (
    DEFAULT_THERMAL_JUMP_C,
    FAULT_KINDS,
    FAULT_SESSION_DEATH,
    FAULT_SSR,
    FAULT_THERMAL,
    FAULT_TIMEOUT,
    RAISING_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    derived_seed,
)
from repro.faults.recovery import (
    NO_RETRY,
    DegradationReport,
    InvokeDegradation,
    RetryPolicy,
    fault_counters,
)

__all__ = [
    "DEFAULT_THERMAL_JUMP_C",
    "FAULT_KINDS",
    "FAULT_SESSION_DEATH",
    "FAULT_SSR",
    "FAULT_THERMAL",
    "FAULT_TIMEOUT",
    "RAISING_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NO_RETRY",
    "DegradationReport",
    "InvokeDegradation",
    "RetryPolicy",
    "derived_seed",
    "fault_counters",
]
