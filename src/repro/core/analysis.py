"""AI-tax breakdown analysis."""

from dataclasses import dataclass

from repro.sim import units


@dataclass(frozen=True)
class StageBreakdown:
    """Mean per-stage latency and derived tax metrics for a run set."""

    name: str
    n: int
    capture_ms: float
    pre_ms: float
    inference_ms: float
    post_ms: float
    other_ms: float

    @property
    def total_ms(self):
        return (
            self.capture_ms
            + self.pre_ms
            + self.inference_ms
            + self.post_ms
            + self.other_ms
        )

    @property
    def tax_ms(self):
        return self.total_ms - self.inference_ms

    @property
    def tax_fraction(self):
        return self.tax_ms / self.total_ms if self.total_ms else 0.0

    @property
    def capture_plus_pre_over_inference(self):
        """The Fig.-4b metric: (capture + pre) relative to inference."""
        if self.inference_ms == 0:
            return float("inf")
        return (self.capture_ms + self.pre_ms) / self.inference_ms

    def rows(self):
        """(stage, ms, fraction) rows for reports."""
        total = self.total_ms or 1.0
        entries = [
            ("data_capture", self.capture_ms),
            ("pre_processing", self.pre_ms),
            ("inference", self.inference_ms),
            ("post_processing", self.post_ms),
            ("other", self.other_ms),
        ]
        return [(stage, ms, ms / total) for stage, ms in entries]


def breakdown(collection, drop_warmup=1):
    """Compute a :class:`StageBreakdown` from a :class:`RunCollection`."""
    trimmed = collection.drop_warmup(drop_warmup) if drop_warmup else collection
    if len(trimmed) == 0:
        trimmed = collection
    mean = trimmed.mean_run()
    return StageBreakdown(
        name=collection.name,
        n=len(trimmed),
        capture_ms=units.to_ms(mean.capture_us),
        pre_ms=units.to_ms(mean.pre_us),
        inference_ms=units.to_ms(mean.inference_us),
        post_ms=units.to_ms(mean.post_us),
        other_ms=units.to_ms(mean.other_us),
    )


def ai_tax_fraction(collection, drop_warmup=1):
    """Overall AI-tax fraction of end-to-end time for a run set."""
    return breakdown(collection, drop_warmup).tax_fraction


def compare_contexts(benchmark, app, drop_warmup=1):
    """Benchmark-vs-app comparison used throughout §IV-A.

    Returns a dict with both breakdowns and the app/benchmark total
    latency ratio (the paper's Fig. 3 gap).
    """
    bench_breakdown = breakdown(benchmark, drop_warmup)
    app_breakdown = breakdown(app, drop_warmup)
    ratio = (
        app_breakdown.total_ms / bench_breakdown.total_ms
        if bench_breakdown.total_ms
        else float("inf")
    )
    return {
        "benchmark": bench_breakdown,
        "app": app_breakdown,
        "app_over_benchmark": ratio,
        "app_tax_fraction": app_breakdown.tax_fraction,
        "benchmark_tax_fraction": bench_breakdown.tax_fraction,
    }
