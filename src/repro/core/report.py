"""Plain-text table rendering for experiment outputs."""


def render_table(headers, rows, title=None, floatfmt="{:.2f}"):
    """Render an aligned ASCII table.

    ``rows`` is a list of sequences; floats are formatted with
    ``floatfmt``, everything else with ``str``.
    """
    def fmt(value):
        if isinstance(value, bool):
            return "Y" if value else "N"
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in text_rows))
        if text_rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in text_rows:
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def render_breakdown(breakdown_result):
    """Render a :class:`~repro.core.analysis.StageBreakdown`."""
    rows = [
        (stage, ms, f"{fraction:.1%}")
        for stage, ms, fraction in breakdown_result.rows()
    ]
    rows.append(("total", breakdown_result.total_ms, "100.0%"))
    rows.append(
        ("ai_tax", breakdown_result.tax_ms, f"{breakdown_result.tax_fraction:.1%}")
    )
    return render_table(
        ("stage", "mean ms", "share"),
        rows,
        title=f"{breakdown_result.name} (n={breakdown_result.n})",
    )
