"""Stage-level measurements of pipeline runs."""

import math
from dataclasses import dataclass, field

from repro.core.taxonomy import (
    STAGE_CAPTURE,
    STAGE_INFERENCE,
    STAGE_POST,
    STAGE_PRE,
)
from repro.sim import units


@dataclass
class PipelineRun:
    """Per-stage latencies (simulated microseconds) of one iteration."""

    capture_us: float = 0.0
    pre_us: float = 0.0
    inference_us: float = 0.0
    post_us: float = 0.0
    #: Anything else attributable to the run (UI, framework glue).
    other_us: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def total_us(self):
        return (
            self.capture_us
            + self.pre_us
            + self.inference_us
            + self.post_us
            + self.other_us
        )

    @property
    def tax_us(self):
        """Non-inference time: the AI tax of this run."""
        return self.total_us - self.inference_us

    @property
    def tax_fraction(self):
        total = self.total_us
        return self.tax_us / total if total > 0 else 0.0

    def stage_us(self, stage):
        mapping = {
            STAGE_CAPTURE: self.capture_us,
            STAGE_PRE: self.pre_us,
            STAGE_INFERENCE: self.inference_us,
            STAGE_POST: self.post_us,
        }
        try:
            return mapping[stage]
        except KeyError:
            raise KeyError(f"unknown stage {stage!r}") from None

    def as_ms(self):
        """Dict of stage -> milliseconds, for reports."""
        return {
            "capture": units.to_ms(self.capture_us),
            "pre": units.to_ms(self.pre_us),
            "inference": units.to_ms(self.inference_us),
            "post": units.to_ms(self.post_us),
            "other": units.to_ms(self.other_us),
            "total": units.to_ms(self.total_us),
        }


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    index = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(index))
    upper = int(math.ceil(index))
    weight = index - lower
    low_value = sorted_values[lower]
    # a + w*(b-a) is exact when a == b (no float round-off past b).
    return low_value + weight * (sorted_values[upper] - low_value)


def percentile(values, fraction):
    """Linear-interpolated percentile of an unsorted sequence.

    The same estimator :class:`RunCollection` uses, exposed for callers
    (fleet aggregation) that pool values across many collections.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0,1], got {fraction}")
    return _percentile(sorted(values), fraction)


@dataclass
class RunCollection:
    """A set of runs of the same configuration, with statistics."""

    name: str
    runs: list = field(default_factory=list)

    def add(self, run):
        self.runs.append(run)

    def __len__(self):
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    def _values(self, attribute):
        return [getattr(run, attribute) for run in self.runs]

    def mean_us(self, attribute="total_us"):
        return _mean(self._values(attribute))

    def median_us(self, attribute="total_us"):
        return _percentile(sorted(self._values(attribute)), 0.5)

    def percentile_us(self, fraction, attribute="total_us"):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0,1], got {fraction}")
        return _percentile(sorted(self._values(attribute)), fraction)

    def std_us(self, attribute="total_us"):
        values = self._values(attribute)
        if len(values) < 2:
            return 0.0
        mean = _mean(values)
        return math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))

    def mean_run(self):
        """A synthetic run whose stages are the per-stage means."""
        return PipelineRun(
            capture_us=self.mean_us("capture_us"),
            pre_us=self.mean_us("pre_us"),
            inference_us=self.mean_us("inference_us"),
            post_us=self.mean_us("post_us"),
            other_us=self.mean_us("other_us"),
            meta={"n": len(self.runs), "name": self.name},
        )

    def drop_warmup(self, count=1):
        """A new collection without the first ``count`` (cold) runs."""
        return RunCollection(name=self.name, runs=self.runs[count:])
