"""What-if analysis: where should optimization effort go?

The paper's stated purpose for the AI-tax lens is to "steer the mobile
systems community towards fruitful research areas and narrow in on the
parts of a system that are sources of performance bottlenecks and need
optimization". These helpers answer the resulting question directly:
given a measured stage breakdown, how much does the *end-to-end* number
improve if a given stage gets k-times faster (Amdahl over the pipeline)?
"""

from dataclasses import dataclass

_STAGE_ATTRS = {
    "data_capture": "capture_ms",
    "pre_processing": "pre_ms",
    "inference": "inference_ms",
    "post_processing": "post_ms",
    "other": "other_ms",
}


@dataclass(frozen=True)
class StageImpact:
    """Effect of speeding one stage up by ``factor``."""

    stage: str
    stage_ms: float
    stage_share: float
    factor: float
    new_total_ms: float
    end_to_end_speedup: float


def stage_speedup_impact(stage_breakdown, stage, factor=2.0):
    """End-to-end effect of making ``stage`` ``factor``x faster.

    ``factor=float("inf")`` models eliminating the stage entirely.
    """
    try:
        attr = _STAGE_ATTRS[stage]
    except KeyError:
        raise KeyError(
            f"unknown stage {stage!r}; known: {sorted(_STAGE_ATTRS)}"
        ) from None
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    total = stage_breakdown.total_ms
    stage_ms = getattr(stage_breakdown, attr)
    new_stage_ms = 0.0 if factor == float("inf") else stage_ms / factor
    new_total = total - stage_ms + new_stage_ms
    return StageImpact(
        stage=stage,
        stage_ms=stage_ms,
        stage_share=stage_ms / total if total else 0.0,
        factor=factor,
        new_total_ms=new_total,
        end_to_end_speedup=total / new_total if new_total else float("inf"),
    )


def optimization_priorities(stage_breakdown, factor=2.0):
    """All stages ranked by end-to-end payoff of a ``factor``x speedup.

    The paper's headline instance: for many models, halving
    pre-processing beats halving inference.
    """
    impacts = [
        stage_speedup_impact(stage_breakdown, stage, factor)
        for stage in _STAGE_ATTRS
    ]
    impacts.sort(key=lambda impact: -impact.end_to_end_speedup)
    return impacts


def accelerator_upgrade_ceiling(stage_breakdown):
    """Best possible end-to-end speedup from an infinitely fast NPU.

    The Amdahl ceiling the paper warns SoC designers about: silicon that
    only accelerates inference cannot beat ``1 / tax_fraction``.
    """
    impact = stage_speedup_impact(
        stage_breakdown, "inference", factor=float("inf")
    )
    return impact.end_to_end_speedup
