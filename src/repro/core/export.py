"""Result export: run collections and experiment results to CSV/JSON.

Downstream analysis (pandas, spreadsheets, plotting) wants flat files;
these helpers serialize the two result types without adding any
dependency beyond the standard library.
"""

import csv
import io
import json

from repro.sim import units

_RUN_FIELDS = (
    "index", "capture_ms", "pre_ms", "inference_ms", "post_ms",
    "other_ms", "total_ms", "tax_fraction",
)


def runs_to_rows(collection):
    """Flatten a RunCollection into dict rows (ms units)."""
    rows = []
    for index, run in enumerate(collection):
        rows.append(
            {
                "index": index,
                "capture_ms": units.to_ms(run.capture_us),
                "pre_ms": units.to_ms(run.pre_us),
                "inference_ms": units.to_ms(run.inference_us),
                "post_ms": units.to_ms(run.post_us),
                "other_ms": units.to_ms(run.other_us),
                "total_ms": units.to_ms(run.total_us),
                "tax_fraction": run.tax_fraction,
            }
        )
    return rows


def runs_to_csv(collection, path=None):
    """CSV text (or file) for a RunCollection; returns the CSV string."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_RUN_FIELDS)
    writer.writeheader()
    for row in runs_to_rows(collection):
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", newline="") as handle:
            handle.write(text)
    return text


def experiment_to_dict(result):
    """JSON-ready dict for an ExperimentResult."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "series": {
            key: list(value)
            for key, value in sorted(result.series.items())
        },
        "notes": list(result.notes),
    }


def experiment_to_json(result, path=None, indent=2):
    """JSON text (or file) for an ExperimentResult."""
    text = json.dumps(experiment_to_dict(result), indent=indent, default=str)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text


def experiment_to_csv(result, path=None):
    """CSV text (or file) of an ExperimentResult's table."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", newline="") as handle:
            handle.write(text)
    return text


def rows_to_runs(rows, name="imported"):
    """Rebuild a RunCollection from :func:`runs_to_rows` output."""
    from repro.core.measurement import PipelineRun, RunCollection

    collection = RunCollection(name=name)
    for row in rows:
        collection.add(
            PipelineRun(
                capture_us=units.ms(float(row["capture_ms"])),
                pre_us=units.ms(float(row["pre_ms"])),
                inference_us=units.ms(float(row["inference_ms"])),
                post_us=units.ms(float(row["post_ms"])),
                other_us=units.ms(float(row["other_ms"])),
            )
        )
    return collection


def runs_from_csv(path_or_text, name="imported"):
    """Load a RunCollection from CSV written by :func:`runs_to_csv`."""
    import os

    if isinstance(path_or_text, str) and not os.path.exists(path_or_text):
        text = path_or_text
    else:
        with open(path_or_text) as handle:
            text = handle.read()
    rows = list(csv.DictReader(io.StringIO(text)))
    return rows_to_runs(rows, name=name)


def compare_experiments(baseline, current, rel_tolerance=0.15):
    """Diff two experiment result dicts; returns drift findings.

    Intended for calibration-regression checks: export a baseline with
    :func:`experiment_to_dict`, re-run later, and compare. Numeric cells
    differing by more than ``rel_tolerance`` (relative) are reported as
    ``(row_key, column, baseline_value, current_value)``.
    """
    if baseline["experiment_id"] != current["experiment_id"]:
        raise ValueError(
            f"experiment mismatch: {baseline['experiment_id']} vs "
            f"{current['experiment_id']}"
        )
    if baseline["headers"] != current["headers"]:
        raise ValueError("headers changed between baseline and current")
    headers = baseline["headers"]
    findings = []
    for old_row, new_row in zip(baseline["rows"], current["rows"]):
        for column, old_value, new_value in zip(headers, old_row, new_row):
            if not isinstance(old_value, (int, float)) or isinstance(
                old_value, bool
            ):
                continue
            if not isinstance(new_value, (int, float)):
                findings.append((old_row[0], column, old_value, new_value))
                continue
            scale = max(abs(old_value), 1e-12)
            if abs(new_value - old_value) / scale > rel_tolerance:
                findings.append((old_row[0], column, old_value, new_value))
    return findings
