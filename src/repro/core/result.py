"""The tabular result container shared by producers and consumers.

:class:`ExperimentResult` is the *sanctioned result surface* between
the simulation side (``repro.fleet`` aggregation) and the analysis side
(``repro.experiments``): a plain table plus named series, with no
reference back into live simulator objects. It lives in ``repro.core``
so the fleet can build one without importing the experiments package —
the layering contract (``.repro-arch.toml``) forbids that edge.
"""

from dataclasses import dataclass, field

from repro.core.report import render_table


@dataclass
class ExperimentResult:
    """Tabular output of one experiment plus free-form extras."""

    experiment_id: str
    title: str
    headers: tuple
    rows: list
    #: Named latency series for figure-style outputs (x -> [values]).
    series: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)

    def render(self):
        text = render_table(
            self.headers, self.rows,
            title=f"[{self.experiment_id}] {self.title}",
        )
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text

    def column(self, header):
        """Extract one column as a list (headers matched exactly)."""
        try:
            index = list(self.headers).index(header)
        except ValueError:
            raise KeyError(
                f"no column {header!r}; have {self.headers}"
            ) from None
        return [row[index] for row in self.rows]

    def row_map(self, key_header):
        """Dict of key-column value -> row."""
        index = list(self.headers).index(key_header)
        return {row[index]: row for row in self.rows}
