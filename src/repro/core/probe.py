"""Instrumentation probe-effect model (paper §III-D).

The authors measured their driver instrumentation at a 4-7% inference
slowdown when hardware acceleration is enabled (extra trace points in
the RPC path) and no effect on CPU-only runs. This model lets the
harness report both raw and instrumented numbers, and tests assert the
effect stays inside the paper's band.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class ProbeEffect:
    """Multiplicative instrumentation overhead on inference latency."""

    #: Overhead factor applied when offload drivers are instrumented.
    accelerated_overhead: float = 0.055  # mid of the paper's 4-7% band
    #: CPU-only runs are unaffected (§III-D).
    cpu_overhead: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.accelerated_overhead < 1.0:
            raise ValueError("overhead factor out of range")

    def apply(self, inference_us, accelerated):
        """Instrumented inference latency for a raw latency."""
        factor = 1.0 + (
            self.accelerated_overhead if accelerated else self.cpu_overhead
        )
        return inference_us * factor

    def overhead_fraction(self, accelerated):
        return self.accelerated_overhead if accelerated else self.cpu_overhead

    def within_paper_band(self):
        """True when the accelerated overhead is inside 4-7%."""
        return 0.04 <= self.accelerated_overhead <= 0.07
