"""AI-tax accounting: the paper's primary contribution.

"AI tax is the time a system spends on tasks that enable the execution
of a machine learning model; this is the combined latency of all
non-inference ML pipeline stages" (§IV). This package holds the Fig.-1
taxonomy, per-run stage measurements, breakdown analysis, run-to-run
variability statistics, and report rendering.
"""

from repro.core.analysis import (
    StageBreakdown,
    ai_tax_fraction,
    breakdown,
    compare_contexts,
)
from repro.core.measurement import PipelineRun, RunCollection, percentile
from repro.core.probe import ProbeEffect
from repro.core.report import render_table
from repro.core.result import ExperimentResult
from repro.core.taxonomy import (
    CATEGORY_ALGORITHMS,
    CATEGORY_FRAMEWORKS,
    CATEGORY_HARDWARE,
    STAGE_CAPTURE,
    STAGE_INFERENCE,
    STAGE_POST,
    STAGE_PRE,
    STAGES,
    TAX_STAGES,
    Taxonomy,
    stage_category,
)
from repro.core.variability import VariabilityStats

__all__ = [
    "ExperimentResult",
    "StageBreakdown",
    "ai_tax_fraction",
    "breakdown",
    "compare_contexts",
    "PipelineRun",
    "RunCollection",
    "percentile",
    "ProbeEffect",
    "render_table",
    "CATEGORY_ALGORITHMS",
    "CATEGORY_FRAMEWORKS",
    "CATEGORY_HARDWARE",
    "STAGE_CAPTURE",
    "STAGE_INFERENCE",
    "STAGE_POST",
    "STAGE_PRE",
    "STAGES",
    "TAX_STAGES",
    "Taxonomy",
    "stage_category",
    "VariabilityStats",
]
