"""The Fig.-1 taxonomy of AI-tax overheads.

End-to-end performance = AI model execution + AI tax, where the tax has
three categories, each with concrete sources:

* **Algorithms** — data capture, pre-processing, post-processing;
* **Frameworks** — drivers, offload scheduling;
* **Hardware** — offload costs, multitenancy, run-to-run variability.
"""

# Pipeline stages (paper §II, Fig. 2).
STAGE_CAPTURE = "data_capture"
STAGE_PRE = "pre_processing"
STAGE_INFERENCE = "inference"
STAGE_POST = "post_processing"
STAGE_FRAMEWORK = "framework"

#: Execution-order stage list for one pipeline iteration.
STAGES = (STAGE_CAPTURE, STAGE_PRE, STAGE_INFERENCE, STAGE_POST)

#: The stages that constitute AI tax (everything but model execution).
TAX_STAGES = (STAGE_CAPTURE, STAGE_PRE, STAGE_POST, STAGE_FRAMEWORK)

# Tax categories (paper Fig. 1).
CATEGORY_ALGORITHMS = "algorithms"
CATEGORY_FRAMEWORKS = "frameworks"
CATEGORY_HARDWARE = "hardware"

_STAGE_TO_CATEGORY = {
    STAGE_CAPTURE: CATEGORY_ALGORITHMS,
    STAGE_PRE: CATEGORY_ALGORITHMS,
    STAGE_POST: CATEGORY_ALGORITHMS,
    STAGE_FRAMEWORK: CATEGORY_FRAMEWORKS,
}

#: Overhead sources per category, as drawn in Fig. 1.
TAXONOMY_SOURCES = {
    CATEGORY_ALGORITHMS: ("data_capture", "pre_processing", "post_processing"),
    CATEGORY_FRAMEWORKS: ("drivers", "offload_scheduling"),
    CATEGORY_HARDWARE: ("offload", "multitenancy", "run_to_run_variability"),
}


def stage_category(stage):
    """Tax category of a pipeline stage (inference has none)."""
    if stage == STAGE_INFERENCE:
        raise ValueError("inference is model execution, not AI tax")
    try:
        return _STAGE_TO_CATEGORY[stage]
    except KeyError:
        raise KeyError(f"unknown stage {stage!r}") from None


class Taxonomy:
    """Convenience view over the Fig.-1 tree, mostly for reports."""

    categories = (CATEGORY_ALGORITHMS, CATEGORY_FRAMEWORKS, CATEGORY_HARDWARE)

    @staticmethod
    def sources(category):
        try:
            return TAXONOMY_SOURCES[category]
        except KeyError:
            raise KeyError(f"unknown category {category!r}") from None

    @staticmethod
    def describe():
        lines = ["AI tax taxonomy (paper Fig. 1):"]
        for category in Taxonomy.categories:
            sources = ", ".join(TAXONOMY_SOURCES[category])
            lines.append(f"  {category}: {sources}")
        return "\n".join(lines)
