"""Run-to-run variability statistics (paper Fig. 11).

The paper argues single-number reporting hides the latency
*distribution*: apps vary by as much as 30% from the median while
benchmark loops are tight. These statistics quantify that.
"""

import math
from dataclasses import dataclass

from repro.sim import units


@dataclass(frozen=True)
class VariabilityStats:
    """Distribution statistics over total latency."""

    name: str
    n: int
    mean_ms: float
    median_ms: float
    std_ms: float
    min_ms: float
    max_ms: float
    p5_ms: float
    p95_ms: float
    #: max |x - median| / median over the runs.
    max_deviation_from_median: float
    #: coefficient of variation (std / mean).
    cv: float

    @classmethod
    def from_collection(cls, collection, drop_warmup=1):
        trimmed = collection.drop_warmup(drop_warmup) if drop_warmup else collection
        if len(trimmed) == 0:
            trimmed = collection
        values = sorted(units.to_ms(run.total_us) for run in trimmed)
        if not values:
            raise ValueError(f"no runs in collection {collection.name!r}")
        n = len(values)
        mean = sum(values) / n
        median = values[n // 2] if n % 2 else (values[n // 2 - 1] + values[n // 2]) / 2
        std = (
            math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1))
            if n > 1
            else 0.0
        )
        deviation = (
            max(abs(v - median) for v in values) / median if median else 0.0
        )

        def pct(fraction):
            index = min(n - 1, max(0, int(round(fraction * (n - 1)))))
            return values[index]

        return cls(
            name=collection.name,
            n=n,
            mean_ms=mean,
            median_ms=median,
            std_ms=std,
            min_ms=values[0],
            max_ms=values[-1],
            p5_ms=pct(0.05),
            p95_ms=pct(0.95),
            max_deviation_from_median=deviation,
            cv=std / mean if mean else 0.0,
        )

    def histogram(self, bins=10):
        """Not the data itself — a (lo, hi, count) summary for reports."""
        raise NotImplementedError(
            "histogram needs the raw collection; use histogram_of()"
        )


def histogram_of(collection, bins=10, drop_warmup=1):
    """(bin_low_ms, bin_high_ms, count) triples over total latency."""
    trimmed = collection.drop_warmup(drop_warmup) if drop_warmup else collection
    values = sorted(units.to_ms(run.total_us) for run in trimmed)
    if not values:
        return []
    low, high = values[0], values[-1]
    if high == low:
        return [(low, high, len(values))]
    width = (high - low) / bins
    result = []
    for index in range(bins):
        lo = low + index * width
        hi = low + (index + 1) * width
        count = sum(
            1
            for v in values
            if lo <= v < hi or (index == bins - 1 and v == high)
        )
        result.append((lo, hi, count))
    return result
