"""Declarative device populations: weighted scenario axes.

The paper measures a handful of lab phones; a production fleet is a
*distribution* over SoC generations, ambient thermal states, background
load, and the model/packaging mix apps actually ship. A
:class:`DevicePopulation` describes that distribution as independent
weighted axes; :func:`expand_population` samples it into ``N`` concrete
:class:`~repro.fleet.session.SessionSpec` configs, each with a root seed
derived through ``numpy.random.SeedSequence.spawn`` (via
:meth:`repro.sim.rng.RngStreams.spawn`) so the expansion — and every
session simulated from it — is bit-identical regardless of execution
order or worker count.
"""

from dataclasses import dataclass, field, replace

import numpy as np

from repro.apps.harness import CONTEXTS
from repro.apps.sessions import TARGETS
from repro.models import MODEL_CARDS
from repro.soc import SOC_SPECS

from repro.fleet.session import SessionSpec


@dataclass(frozen=True)
class Axis:
    """One weighted scenario axis: a name and ``(value, weight)`` choices."""

    name: str
    choices: tuple

    def __post_init__(self):
        if not self.choices:
            raise ValueError(f"axis {self.name!r} has no choices")
        for value, weight in self.choices:
            if weight <= 0:
                raise ValueError(
                    f"axis {self.name!r}: non-positive weight {weight!r} "
                    f"for {value!r}"
                )

    @property
    def values(self):
        return tuple(value for value, _weight in self.choices)

    def sample(self, rng):
        """Draw one value with probability proportional to its weight.

        Uses a single uniform draw against the cumulative weights so the
        stream consumption per sample is fixed (one draw), keeping axis
        additions from perturbing other axes' samples.
        """
        total = sum(weight for _value, weight in self.choices)
        point = rng.random() * total
        cumulative = 0.0
        for value, weight in self.choices:
            cumulative += weight
            if point < cumulative:
                return value
        return self.choices[-1][0]


def _axis(name, choices):
    return Axis(name, tuple(choices))


@dataclass(frozen=True)
class DevicePopulation:
    """A fleet described as independent weighted axes.

    ``workload`` values are ``(model_key, dtype)`` pairs from the Table-I
    zoo; ``background`` values are ``None`` or ``(count, target)`` tuples
    understood by :mod:`repro.apps.background`; ``thermal`` values are
    session-start die temperatures in °C (33 ≈ the paper's cooled-down
    protocol, higher ≈ a device already warm in hand or pocket).
    """

    soc: Axis
    workload: Axis
    context: Axis
    target: Axis
    thermal: Axis
    background: Axis
    #: Inference iterations per session (first one is the cold start).
    runs: int = 6
    #: Per-call FastRPC fault probability applied to every session
    #: (chaos experiments); 0 disables injection.
    fault_rate: float = 0.0

    def __post_init__(self):
        for soc_key in self.soc.values:
            if soc_key not in SOC_SPECS:
                raise ValueError(f"unknown SoC {soc_key!r}")
        for model_key, dtype in self.workload.values:
            if model_key not in MODEL_CARDS:
                raise ValueError(f"unknown model {model_key!r}")
            if dtype not in ("fp32", "int8", "fp16"):
                raise ValueError(f"unknown dtype {dtype!r}")
        for context in self.context.values:
            if context not in CONTEXTS:
                raise ValueError(f"unknown context {context!r}")
        for target in self.target.values:
            if target not in TARGETS:
                raise ValueError(f"unknown target {target!r}")
        if self.runs < 2:
            raise ValueError(
                f"runs must be >= 2 (the first iteration is the cold "
                f"start; aggregation needs steady-state runs), got "
                f"{self.runs}"
            )
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(
                f"fault_rate must be in [0, 1], got {self.fault_rate}"
            )

    def with_runs(self, runs):
        return replace(self, runs=runs)

    def with_fault_rate(self, fault_rate):
        return replace(self, fault_rate=fault_rate)


def paper_population():
    """The default fleet: the paper's measurement space as a population.

    SoC weights skew to the older generations still dominant in a real
    installed base; the workload mix is led by quantized MobileNet v1
    (the paper's flagship app), contexts are mostly real apps with a
    minority of benchmark runs, and most devices start near the 33 °C
    idle temperature with a warm/hot tail.
    """
    return DevicePopulation(
        soc=_axis("soc", [
            ("sd835", 0.30),
            ("sd845", 0.40),
            ("sd855", 0.20),
            ("sd865", 0.10),
        ]),
        workload=_axis("workload", [
            (("mobilenet_v1", "int8"), 0.30),
            (("mobilenet_v1", "fp32"), 0.15),
            (("efficientnet_lite0", "int8"), 0.15),
            (("ssd_mobilenet_v2", "int8"), 0.10),
            (("inception_v3", "fp32"), 0.10),
            (("squeezenet", "fp32"), 0.10),
            (("posenet", "fp32"), 0.10),
        ]),
        context=_axis("context", [
            ("app", 0.60),
            ("bench_app", 0.20),
            ("cli", 0.20),
        ]),
        target=_axis("target", [
            ("nnapi", 0.50),
            ("cpu", 0.35),
            ("cpu1", 0.15),
        ]),
        thermal=_axis("thermal", [
            (33.0, 0.60),
            (45.0, 0.30),
            (60.0, 0.10),
        ]),
        background=_axis("background", [
            (None, 0.60),
            ((2, "cpu"), 0.25),
            ((2, "nnapi"), 0.15),
        ]),
    )


def chaos_population():
    """The fleet used by chaos experiments: paper mix + a vendor slice.

    Identical to :func:`paper_population` except the target axis carries
    a SNPE-DSP share. The vendor runtime performs no fault recovery
    (no retry, no CPU fallback), so under injected faults that slice
    produces genuinely *failed* sessions — exercising the partial
    :class:`~repro.fleet.runner.FleetResult` path — while the NNAPI
    slice degrades gracefully and the CPU slices are untouched.
    """
    base = paper_population()
    return replace(base, target=_axis("target", [
        ("nnapi", 0.45),
        ("cpu", 0.25),
        ("snpe-dsp", 0.20),
        ("cpu1", 0.10),
    ]))


def resolve_workload(model_key, dtype, target):
    """Clamp a sampled (model, dtype, target) triple to a supported one.

    Independent axes can combine into pairs Table I rules out (e.g.
    NasNet has no int8 variant, AlexNet no NNAPI path, SNPE's DSP
    runtime requires int8). Downgrade deterministically — first the
    dtype to fp32, then the target to the 4-thread CPU path — so every
    expanded session is runnable.
    """
    card = MODEL_CARDS[model_key]
    if target == "snpe-dsp" and not (
        _support_dtype(dtype) == "int8" and card.supports("cpu", "int8")
    ):
        # The vendor DSP runtime only takes quantized graphs; a model
        # with no int8 variant runs on the CPU path instead.
        return resolve_workload(model_key, dtype, "cpu")
    framework = "nnapi" if target == "nnapi" else "cpu"
    if card.supports(framework, _support_dtype(dtype)):
        return dtype, target
    if card.supports(framework, "fp32"):
        return "fp32", target
    if card.supports("cpu", _support_dtype(dtype)):
        return dtype, "cpu"
    return "fp32", "cpu"


def _support_dtype(dtype):
    # Table I has fp32/int8 columns; fp16 rides the fp32 support row.
    return "fp32" if dtype == "fp16" else dtype


def expand_population(population, sessions, seed=0):
    """Expand a population into ``sessions`` deterministic session specs.

    One sampler generator (seeded from ``SeedSequence(seed)``) draws the
    axis values serially; each session's own root seed comes from
    ``RngStreams(seed).spawn(session_id)`` so simulation randomness is
    independent per session and independent of the sampling stream.
    """
    from repro.sim import RngStreams

    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    # Two-level spawn key: session seeds use single-element keys
    # ``(session_id,)``, so the sampler's key can never collide.
    sampler = np.random.default_rng(
        np.random.SeedSequence(int(seed) & ((1 << 128) - 1), spawn_key=(0, 0))
    )
    parent = RngStreams(seed)
    specs = []
    for session_id in range(sessions):
        soc = population.soc.sample(sampler)
        model_key, dtype = population.workload.sample(sampler)
        context = population.context.sample(sampler)
        target = population.target.sample(sampler)
        ambient = population.thermal.sample(sampler)
        background = population.background.sample(sampler)
        dtype, target = resolve_workload(model_key, dtype, target)
        if context == "cli":
            # CLI benchmarks follow the paper's §III-D protocol: run in
            # isolation on a device cooled to idle temperature. Apps get
            # whatever thermal/background state the fleet dealt them.
            # (Axes are still sampled above so the sampler stream
            # consumption per session stays fixed.)
            ambient = 33.0
            background = None
        specs.append(SessionSpec(
            session_id=session_id,
            soc=soc,
            model_key=model_key,
            dtype=dtype,
            context=context,
            target=target,
            runs=population.runs,
            seed=parent.spawn(session_id).seed,
            ambient_celsius=float(ambient),
            background=background,
            fault_rate=population.fault_rate,
        ))
    return specs
