"""Fleet execution: deterministic sharding over a worker pool + cache.

The parent expands the population serially (cheap, deterministic), then
farms cache-miss sessions out to a ``ProcessPoolExecutor``. Each session
is an independent simulation with its own SeedSequence-derived root
seed, so sharding is trivially safe: results are assembled back in
session-id order and are bit-identical whatever the worker count or
completion order. Cache hits never re-enter a worker.
"""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.fleet.cache import ResultCache
from repro.fleet.population import expand_population, paper_population
from repro.fleet.session import SessionResult, simulate_session, simulate_session_payload


@dataclass
class FleetResult:
    """Everything a fleet run produced, in session-id order."""

    seed: int
    workers: int
    results: list = field(default_factory=list)
    #: Sessions actually simulated this run (cache misses).
    simulated: int = 0
    #: Sessions served from the on-disk cache.
    cache_hits: int = 0

    def __len__(self):
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


def run_fleet(population=None, sessions=64, workers=1, seed=0,
              cache_dir=None, runs=None):
    """Simulate a device population; returns a :class:`FleetResult`.

    Parameters
    ----------
    population:
        A :class:`~repro.fleet.population.DevicePopulation`; defaults to
        :func:`~repro.fleet.population.paper_population`.
    sessions:
        Number of per-device sessions to expand and simulate.
    workers:
        Process-pool size; ``<= 1`` runs in-process (bit-identical
        results either way).
    seed:
        Root seed for both axis sampling and per-session streams.
    cache_dir:
        Optional directory for the content-hash result cache.
    runs:
        Override the population's per-session iteration count.
    """
    if population is None:
        population = paper_population()
    if runs is not None:
        population = population.with_runs(runs)
    specs = expand_population(population, sessions, seed=seed)
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    by_id = {}
    pending = []
    for spec in specs:
        payload = cache.get(spec.digest()) if cache is not None else None
        if payload is not None:
            by_id[spec.session_id] = SessionResult.from_dict(
                payload, from_cache=True
            )
        else:
            pending.append(spec)

    if workers > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            payloads = list(pool.map(
                simulate_session_payload,
                [spec.to_dict() for spec in pending],
            ))
        fresh = [SessionResult.from_dict(payload) for payload in payloads]
    else:
        fresh = [simulate_session(spec) for spec in pending]

    for spec, result in zip(pending, fresh):
        if cache is not None:
            cache.put(spec.digest(), result.to_dict())
        by_id[spec.session_id] = result

    return FleetResult(
        seed=seed,
        workers=workers,
        results=[by_id[spec.session_id] for spec in specs],
        simulated=len(pending),
        cache_hits=len(specs) - len(pending),
    )
